#ifndef LUSAIL_NET_FAULT_INJECTION_H_
#define LUSAIL_NET_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "net/endpoint.h"

namespace lusail::net {

/// Configuration of a FaultInjectingEndpoint. All fault draws are
/// *deterministic*: the decision for a request is a pure function of
/// (profile seed, endpoint id, query text, how many times this text was
/// seen before). Two runs issuing the same requests therefore observe
/// identical faults regardless of thread interleavings — and a *retry* of
/// the same text is a fresh draw, so transient faults really are
/// transient.
struct FaultProfile {
  uint64_t seed = 1;  ///< Deterministic fault stream seed.

  /// Probability a request fails with kUnavailable ("transient failure").
  double transient_error_rate = 0.0;

  /// Probability a request fails with kTimeout ("server-side timeout").
  double timeout_rate = 0.0;

  /// Probability a request is rejected with kUnavailable ("rate limited").
  double rate_limit_rate = 0.0;

  /// Probability a request is served slowly: `slow_latency_ms` extra
  /// simulated network time is charged and imposed on the caller.
  double slow_rate = 0.0;
  double slow_latency_ms = 0.0;

  /// Burst outage: requests with arrival index in
  /// [outage_start, outage_start + outage_length) fail with kUnavailable.
  uint64_t outage_start = 0;
  uint64_t outage_length = 0;

  /// Endpoint starts hard-down (every request fails). Also toggleable at
  /// runtime via FaultInjectingEndpoint::set_down.
  bool permanently_down = false;

  /// Crash after serving: once `crash_after_n_queries` requests have
  /// *arrived* (whatever their outcome), every later request fails with
  /// kUnavailable — permanently, exactly like a process that died and was
  /// never restarted. 0 disables. Deterministic by arrival index, so
  /// replica-death tests don't need timing games.
  uint64_t crash_after_n_queries = 0;

  static FaultProfile CrashAfter(uint64_t n) {
    FaultProfile p;
    p.crash_after_n_queries = n;
    return p;
  }

  static FaultProfile None() { return FaultProfile{}; }

  static FaultProfile Transient(double rate, uint64_t seed = 1) {
    FaultProfile p;
    p.transient_error_rate = rate;
    p.seed = seed;
    return p;
  }
};

/// What a FaultInjectingEndpoint did so far.
struct FaultStats {
  uint64_t requests = 0;           ///< All requests received.
  uint64_t injected_errors = 0;    ///< Transient kUnavailable failures.
  uint64_t injected_timeouts = 0;
  uint64_t injected_rate_limits = 0;
  uint64_t injected_slowdowns = 0;
  uint64_t outage_failures = 0;    ///< Burst-window + hard-down failures.
  uint64_t passed_through = 0;     ///< Requests the inner endpoint served.
};

/// Decorator that injects transient errors, timeouts, rate-limit
/// rejections, slow responses, and outage bursts in front of any
/// endpoint, reproducibly per seed. This is the chaos half of the fault
/// tolerance layer; ResilientEndpoint and the engines' retry policies are
/// the recovery half.
class FaultInjectingEndpoint : public Endpoint {
 public:
  FaultInjectingEndpoint(std::shared_ptr<Endpoint> inner,
                         FaultProfile profile);

  const std::string& id() const override { return inner_->id(); }

  Result<QueryResponse> Query(const std::string& text) override {
    return QueryWithDeadline(text, Deadline());
  }

  Result<QueryResponse> QueryWithDeadline(const std::string& text,
                                          const Deadline& deadline) override;

  /// Faults are drawn exactly as for QueryWithDeadline; pass-through
  /// requests forward the token so the inner endpoint stays cancellable
  /// under injected faults.
  Result<QueryResponse> QueryCancellable(const std::string& text,
                                         const CancelToken& cancel) override;

  /// Hard-down switch for permanent-outage scenarios.
  void set_down(bool down) { down_.store(down, std::memory_order_relaxed); }
  bool down() const { return down_.load(std::memory_order_relaxed); }

  const FaultProfile& profile() const { return profile_; }
  FaultStats stats() const;

  /// Forgets all request history (occurrence counters and stats); the
  /// fault stream restarts from the beginning.
  void ResetHistory();

 private:
  std::shared_ptr<Endpoint> inner_;
  FaultProfile profile_;
  uint64_t id_hash_;

  std::mutex mu_;  ///< Guards the occurrence map and the arrival counter.
  std::unordered_map<uint64_t, uint64_t> text_occurrences_;
  uint64_t arrival_index_ = 0;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> injected_errors_{0};
  std::atomic<uint64_t> injected_timeouts_{0};
  std::atomic<uint64_t> injected_rate_limits_{0};
  std::atomic<uint64_t> injected_slowdowns_{0};
  std::atomic<uint64_t> outage_failures_{0};
  std::atomic<uint64_t> passed_through_{0};
  std::atomic<bool> down_;
};

}  // namespace lusail::net

#endif  // LUSAIL_NET_FAULT_INJECTION_H_
