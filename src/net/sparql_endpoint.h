#ifndef LUSAIL_NET_SPARQL_ENDPOINT_H_
#define LUSAIL_NET_SPARQL_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/endpoint.h"
#include "net/latency_model.h"
#include "sparql/evaluator.h"
#include "store/triple_store.h"

namespace lusail::net {

/// Cumulative request statistics of one endpoint (server-side view).
struct EndpointStats {
  uint64_t requests = 0;
  uint64_t ask_requests = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t rows_out = 0;
};

/// A simulated SPARQL endpoint: a frozen TripleStore plus the local query
/// engine, fronted by the text-query interface and a latency model. This
/// plays the role of a Fuseki/Virtuoso server in the paper's setup.
class SparqlEndpoint : public Endpoint {
 public:
  /// Takes ownership of `store`; the store must already be frozen (or it
  /// will be frozen here).
  SparqlEndpoint(std::string id, std::unique_ptr<store::TripleStore> store,
                 LatencyModel latency);

  const std::string& id() const override { return id_; }

  Result<QueryResponse> Query(const std::string& sparql_text) override;

  /// Threads the token into the local evaluator, so a long-running
  /// evaluation aborts within ~1k join iterations of the token firing
  /// (deadline expiry or explicit cancel) and materializes no rows.
  Result<QueryResponse> QueryCancellable(const std::string& sparql_text,
                                         const CancelToken& cancel) override;

  /// Direct (non-network) access for workload generators and tests.
  const store::TripleStore& store() const { return *store_; }

  const LatencyModel& latency() const { return latency_; }
  void set_latency(LatencyModel latency) { latency_ = latency; }

  /// Server-side cumulative statistics.
  EndpointStats stats() const;
  void ResetStats();

 private:
  std::string id_;
  std::unique_ptr<store::TripleStore> store_;
  sparql::Evaluator evaluator_;
  LatencyModel latency_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> ask_requests_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> rows_out_{0};
};

}  // namespace lusail::net

#endif  // LUSAIL_NET_SPARQL_ENDPOINT_H_
