#include "net/sparql_endpoint.h"

#include "common/stopwatch.h"
#include "sparql/parser.h"

namespace lusail::net {

SparqlEndpoint::SparqlEndpoint(std::string id,
                               std::unique_ptr<store::TripleStore> store,
                               LatencyModel latency)
    : id_(std::move(id)),
      store_(std::move(store)),
      evaluator_(store_.get()),
      latency_(latency) {
  if (!store_->frozen()) store_->Freeze();
}

Result<QueryResponse> SparqlEndpoint::Query(const std::string& sparql_text) {
  return QueryCancellable(sparql_text, CancelToken());
}

Result<QueryResponse> SparqlEndpoint::QueryCancellable(
    const std::string& sparql_text, const CancelToken& cancel) {
  Stopwatch server_timer;
  LUSAIL_ASSIGN_OR_RETURN(sparql::Query query,
                          sparql::ParseQuery(sparql_text));
  QueryResponse response;
  LUSAIL_ASSIGN_OR_RETURN(response.table, evaluator_.Execute(query, cancel));
  response.server_ms = server_timer.ElapsedMillis();

  response.request_bytes = sparql_text.size();
  response.response_bytes = response.table.SerializedBytes();
  response.network_ms =
      latency_.CostMillis(response.request_bytes, response.response_bytes);

  requests_.fetch_add(1, std::memory_order_relaxed);
  if (query.form == sparql::QueryForm::kAsk) {
    ask_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  bytes_in_.fetch_add(response.request_bytes, std::memory_order_relaxed);
  bytes_out_.fetch_add(response.response_bytes, std::memory_order_relaxed);
  rows_out_.fetch_add(response.table.NumRows(), std::memory_order_relaxed);

  latency_.Impose(response.request_bytes, response.response_bytes);
  return response;
}

EndpointStats SparqlEndpoint::stats() const {
  EndpointStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.ask_requests = ask_requests_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.rows_out = rows_out_.load(std::memory_order_relaxed);
  return s;
}

void SparqlEndpoint::ResetStats() {
  requests_ = 0;
  ask_requests_ = 0;
  bytes_in_ = 0;
  bytes_out_ = 0;
  rows_out_ = 0;
}

}  // namespace lusail::net
