#ifndef LUSAIL_NET_ENDPOINT_H_
#define LUSAIL_NET_ENDPOINT_H_

#include <functional>
#include <memory>
#include <string>

#include "common/cancel.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "core/dictionary.h"
#include "core/id_table.h"
#include "sparql/result_table.h"

namespace lusail::net {

/// How a response physically travelled. In-process endpoints leave the
/// default (no network); transports like rpc::HttpSparqlEndpoint fill it
/// so federation spans and endpoint telemetry can report real wire
/// behavior (connection reuse, connect latency, bytes on the wire).
struct TransportInfo {
  bool over_network = false;     ///< True when a real socket was involved.
  bool reused_connection = false;  ///< Pooled keep-alive connection reused.
  double connect_ms = 0.0;       ///< TCP connect time (0 when reused).
  size_t wire_bytes_sent = 0;    ///< Bytes written incl. HTTP framing.
  size_t wire_bytes_received = 0;  ///< Bytes read incl. HTTP framing.
};

/// One request/response exchange with an endpoint, with the cost
/// accounting a federated engine needs.
struct QueryResponse {
  sparql::ResultTable table;
  size_t request_bytes = 0;   ///< Serialized query size.
  size_t response_bytes = 0;  ///< Serialized result size.
  double network_ms = 0.0;    ///< Network time (simulated or measured).
  double server_ms = 0.0;     ///< Endpoint-side evaluation time.
  TransportInfo transport;    ///< Physical transport details, if any.

  /// ID-space fast path: a transport configured with a parse dictionary
  /// (rpc::HttpSparqlEndpoint::set_parse_dictionary) decodes the wire
  /// response straight into an IdTable and leaves `table` empty —
  /// `ids_dict` records which dictionary the ids belong to, so a consumer
  /// holding a different dictionary can still decode and re-encode
  /// instead of silently comparing incomparable ids. Decorators pass both
  /// through untouched.
  std::shared_ptr<core::IdTable> ids;
  std::shared_ptr<core::TermDictionary> ids_dict;

  /// Row count regardless of representation (accounting, annotations).
  size_t RowCount() const {
    return ids != nullptr ? ids->NumRows() : table.NumRows();
  }

  /// Replica bookkeeping, filled by ReplicaGroup: the id of the replica
  /// that produced this response (empty for plain endpoints) and whether
  /// a hedged (duplicate) request was launched while this one ran.
  std::string served_by;
  bool hedged = false;

  /// Shard bookkeeping, filled by shard::ShardedEndpoint in
  /// partial-results mode: ids of the shard members whose contribution
  /// was dropped because the member failed mid-scatter. Non-empty means
  /// this response is a lower bound of the exact answer; Federation folds
  /// the ids into the query profile's failed-endpoint set.
  std::vector<std::string> degraded_members;

  /// Milliseconds from request start until the first result row was
  /// available to the caller. Filled by the streaming path (QueryStreaming
  /// implementations); 0 when unknown (buffered exchanges, empty results).
  double first_row_ms = 0.0;
};

/// One batch of rows delivered through a streaming query. Exactly one
/// representation is filled: `table` (wire-format rows) or `ids` +
/// `ids_dict` (ID-space rows, the fast path when the producer parses into
/// a dictionary). Batches of one response always use the same
/// representation and carry the same variable set.
struct StreamBatch {
  sparql::ResultTable table;
  std::shared_ptr<core::IdTable> ids;
  std::shared_ptr<core::TermDictionary> ids_dict;

  size_t NumRows() const {
    return ids != nullptr ? ids->NumRows() : table.NumRows();
  }
};

/// Row-batch consumer for QueryStreaming. Returning a non-OK status stops
/// the stream: the producer abandons remaining work (cancelling upstream
/// fetches where it can) and QueryStreaming returns that status. The sink
/// is invoked from the producer's thread, synchronously — a sink that
/// blocks (a slow socket write) back-pressures the producer instead of
/// letting it buffer unboundedly. On success the sink runs at least once:
/// an empty result still delivers one zero-row batch so the consumer
/// learns the variable set (streaming serializers need it for the head).
using StreamSink = std::function<Status(StreamBatch&&)>;

/// Tuning for one streaming query.
struct StreamOptions {
  /// Target rows per delivered batch (and per wire chunk).
  size_t batch_rows = 256;

  /// Stop after delivering this many rows (0 = unlimited). This is a
  /// *budget*, not a LIMIT: the producer may cut evaluation short once the
  /// budget is met, so the caller must treat a budget-bounded stream as
  /// possibly truncated.
  uint64_t max_rows = 0;
};

/// Summary of a completed stream: the per-exchange accounting of
/// QueryResponse (table/ids left empty — the rows went through the sink)
/// plus how many rows were delivered and whether a budget cut them short.
struct StreamSummary {
  QueryResponse response;   ///< Accounting only; row payloads are empty.
  uint64_t rows_delivered = 0;
  bool truncated = false;   ///< StreamOptions::max_rows cut the stream.
};

/// Abstract SPARQL endpoint. Federated engines interact with endpoints
/// exclusively through query *text* — exactly like HTTP SPARQL protocol
/// endpoints in the paper — so request counts and byte volumes are honest.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Stable endpoint identifier (plays the role of the endpoint URL).
  virtual const std::string& id() const = 0;

  /// Parses and evaluates `sparql_text`, charging simulated network cost.
  /// ASK queries yield a zero-column table with 0 or 1 rows. Thread-safe.
  virtual Result<QueryResponse> Query(const std::string& sparql_text) = 0;

  /// Deadline-aware variant used by resilient decorators: implementations
  /// that sleep (retry backoff, injected slowness) must never sleep past
  /// `deadline`. The default ignores the deadline (a plain endpoint does
  /// not sleep beyond its latency model).
  virtual Result<QueryResponse> QueryWithDeadline(
      const std::string& sparql_text, const Deadline& deadline) {
    (void)deadline;
    return Query(sparql_text);
  }

  /// Cancellable variant: implementations that evaluate locally check the
  /// token between work chunks and unwind with kTimeout once it fires;
  /// decorators thread it through to retries/injected sleeps. The default
  /// honors only the token's deadline (via QueryWithDeadline), which is
  /// correct for endpoints whose Query cannot block for long.
  virtual Result<QueryResponse> QueryCancellable(const std::string& sparql_text,
                                                 const CancelToken& cancel) {
    if (cancel.Cancelled()) return cancel.StatusAt("endpoint request");
    return QueryWithDeadline(sparql_text, cancel.deadline());
  }

  /// Streaming variant: rows reach the caller in batches through `sink`
  /// while the query runs, so no hop has to hold the whole answer. The
  /// default evaluates via QueryCancellable and then delivers the
  /// materialized table in `options.batch_rows` slices — wire transports
  /// (rpc::HttpSparqlEndpoint) override this with true incremental
  /// decoding, and decorators pass it through. Batches stop early when
  /// the sink errors, the token fires, or `options.max_rows` is met.
  virtual Result<StreamSummary> QueryStreaming(const std::string& sparql_text,
                                               const CancelToken& cancel,
                                               const StreamOptions& options,
                                               const StreamSink& sink);
};

}  // namespace lusail::net

#endif  // LUSAIL_NET_ENDPOINT_H_
