#include "net/latency_model.h"

#include <chrono>
#include <thread>

namespace lusail::net {

void LatencyModel::Impose(size_t request_bytes, size_t response_bytes) const {
  if (sleep_scale <= 0.0) return;
  double ms = CostMillis(request_bytes, response_bytes) * sleep_scale;
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace lusail::net
