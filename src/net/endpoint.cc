#include "net/endpoint.h"

#include <algorithm>
#include <utility>

namespace lusail::net {

// Default streaming: evaluate buffered, then hand the rows to the sink in
// batch_rows slices. The whole table exists once (inside this endpoint),
// but the consumer never holds more than one batch, and each delivered
// slice is *moved* out of the source table so the peak here decays as the
// stream drains. Wire transports override this with true incremental
// decoding.
Result<StreamSummary> Endpoint::QueryStreaming(const std::string& sparql_text,
                                               const CancelToken& cancel,
                                               const StreamOptions& options,
                                               const StreamSink& sink) {
  Stopwatch timer;
  auto evaluated = QueryCancellable(sparql_text, cancel);
  if (!evaluated.ok()) return evaluated.status();

  StreamSummary summary;
  summary.response = *evaluated;
  summary.response.table = sparql::ResultTable();
  summary.response.ids.reset();
  summary.response.ids_dict.reset();

  const size_t batch_rows = std::max<size_t>(1, options.batch_rows);
  const size_t total = evaluated->RowCount();
  size_t limit = total;
  if (options.max_rows > 0 && options.max_rows < total) {
    limit = static_cast<size_t>(options.max_rows);
    summary.truncated = true;
  }
  if (total > 0 && summary.response.first_row_ms == 0.0) {
    summary.response.first_row_ms = timer.ElapsedMillis();
  }

  if (evaluated->ids != nullptr) {
    // ID-space rows pass through in id-space batches; the consumer decodes
    // per batch (or not at all) through ids_dict.
    if (limit == 0) {
      // Even an empty result delivers one empty batch: the sink learns the
      // vars (the streaming serializer needs them for the head).
      if (cancel.Cancelled()) return cancel.StatusAt("stream delivery");
      StreamBatch batch;
      batch.ids =
          std::make_shared<core::IdTable>(core::IdTable(evaluated->ids->vars));
      batch.ids_dict = evaluated->ids_dict;
      Status delivered = sink(std::move(batch));
      if (!delivered.ok()) return delivered;
      return summary;
    }
    for (size_t begin = 0; begin < limit; begin += batch_rows) {
      if (cancel.Cancelled()) return cancel.StatusAt("stream delivery");
      size_t end = std::min(limit, begin + batch_rows);
      StreamBatch batch;
      batch.ids =
          std::make_shared<core::IdTable>(evaluated->ids->Slice(begin, end));
      batch.ids_dict = evaluated->ids_dict;
      summary.rows_delivered += batch.NumRows();
      Status delivered = sink(std::move(batch));
      if (!delivered.ok()) return delivered;
    }
    return summary;
  }

  if (limit == 0) {
    if (cancel.Cancelled()) return cancel.StatusAt("stream delivery");
    StreamBatch batch;
    batch.table.vars = evaluated->table.vars;
    Status delivered = sink(std::move(batch));
    if (!delivered.ok()) return delivered;
    return summary;
  }
  for (size_t begin = 0; begin < limit; begin += batch_rows) {
    if (cancel.Cancelled()) return cancel.StatusAt("stream delivery");
    size_t end = std::min(limit, begin + batch_rows);
    StreamBatch batch;
    batch.table.vars = evaluated->table.vars;
    batch.table.rows.reserve(end - begin);
    for (size_t r = begin; r < end; ++r) {
      batch.table.rows.push_back(std::move(evaluated->table.rows[r]));
    }
    summary.rows_delivered += batch.table.rows.size();
    Status delivered = sink(std::move(batch));
    if (!delivered.ok()) return delivered;
  }
  return summary;
}

}  // namespace lusail::net
