#ifndef LUSAIL_NET_REPLICA_H_
#define LUSAIL_NET_REPLICA_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "net/endpoint.h"
#include "net/resilience.h"
#include "obs/endpoint_stats.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace lusail::net {

/// Tuning knobs for a ReplicaGroup.
struct ReplicaGroupOptions {
  /// How long a health verdict (healthy/unhealthy) stays authoritative.
  /// Older verdicts decay to "stale": the replica is ranked between fresh
  /// healthy and fresh unhealthy peers, so a recovered replica gets
  /// retried without a dead one being hammered first.
  double health_decay_ms = 5000.0;

  /// Probe a never-used replica with `probe_query` before routing real
  /// traffic to it (lazy: the probe happens on first selection, not at
  /// construction).
  bool lazy_probe = true;

  /// Cheap liveness probe; any syntactically valid query the endpoint can
  /// answer fast works. ASK keeps response bytes minimal.
  std::string probe_query = "ASK { ?s ?p ?o }";

  /// Budget for one lazy probe (also capped by the caller's deadline).
  double probe_timeout_ms = 250.0;

  /// Launch a duplicate request on the next-best replica when the primary
  /// has not answered after the hedge delay. Needs >= 2 usable replicas.
  bool hedging_enabled = true;

  /// Fixed hedge delay; 0 means "use the primary replica's observed p95
  /// latency", clamped to [hedge_min_delay_ms, hedge_max_delay_ms].
  double hedge_delay_ms = 0.0;
  double hedge_min_delay_ms = 1.0;
  double hedge_max_delay_ms = 250.0;

  /// Breaker configuration applied to every replica.
  CircuitBreakerConfig breaker_config;
};

/// Cumulative counters of one ReplicaGroup.
struct ReplicaGroupStats {
  uint64_t requests = 0;         ///< Calls to Query*.
  uint64_t failovers = 0;        ///< Sequential switches after a failure.
  uint64_t probes = 0;           ///< Lazy health probes issued.
  uint64_t hedges_launched = 0;  ///< Duplicate requests started.
  uint64_t hedge_wins = 0;       ///< Hedge answered first (and won).
  uint64_t hedge_losses = 0;     ///< Primary answered first despite hedge.
  uint64_t breaker_skips = 0;    ///< Replicas skipped on an open breaker.

  obs::JsonValue ToJson() const;
};

/// N replicas of one logical endpoint behind a single Endpoint facade.
///
/// Selection ranks replicas into tiers — fresh-healthy, then
/// unknown/stale, then fresh-unhealthy, then open-breaker — and within a
/// tier by observed p95 latency, so traffic prefers the fastest replica
/// known to work while flapping ones keep getting occasional chances to
/// redeem themselves. A request that fails with a retryable error fails
/// over to the next candidate with the remaining deadline budget intact
/// (the caller's CancelToken is threaded through every attempt).
///
/// With hedging enabled and >= 2 usable replicas, a duplicate request
/// launches on the runner-up once the primary has been silent for the
/// hedge delay (default: the primary's observed p95); the first success
/// wins and the loser's token is cancelled. Losers run on detached
/// worker threads that hold only shared state; the destructor blocks
/// until all of them have drained, so a group can be destroyed (or the
/// process exited under TSan) while a cancelled loser is still unwinding.
///
/// Thread-safe: concurrent Query* calls from engine worker pools are the
/// expected usage.
class ReplicaGroup : public Endpoint {
 public:
  ReplicaGroup(std::string id,
               std::vector<std::shared_ptr<Endpoint>> replicas,
               ReplicaGroupOptions options = ReplicaGroupOptions());
  ~ReplicaGroup() override;

  ReplicaGroup(const ReplicaGroup&) = delete;
  ReplicaGroup& operator=(const ReplicaGroup&) = delete;

  const std::string& id() const override { return id_; }

  Result<QueryResponse> Query(const std::string& text) override {
    return QueryCancellable(text, CancelToken());
  }

  Result<QueryResponse> QueryWithDeadline(const std::string& text,
                                          const Deadline& deadline) override {
    return QueryCancellable(text, CancelToken(deadline));
  }

  Result<QueryResponse> QueryCancellable(const std::string& text,
                                         const CancelToken& cancel) override;

  /// Streaming across replicas: sequential failover only, and only while
  /// the sink has seen nothing (a failover after the first batch would
  /// replay rows). Hedging is never used — a duplicate stream would
  /// deliver duplicate rows to the same sink.
  Result<StreamSummary> QueryStreaming(const std::string& text,
                                       const CancelToken& cancel,
                                       const StreamOptions& options,
                                       const StreamSink& sink) override;

  size_t NumReplicas() const { return replicas_.size(); }

  /// The id of replica `i` (its inner endpoint's id).
  const std::string& replica_id(size_t i) const;

  /// True when at least one replica's breaker would admit a request now.
  /// Source selection uses this to skip ASK probes against groups whose
  /// every replica is known-dead.
  bool HasAvailableReplica() const;

  const CircuitBreaker& breaker(size_t i) const;
  CircuitBreaker* mutable_breaker(size_t i);

  ReplicaGroupStats stats() const;

  /// Group counters plus a per-replica section: breaker state, health
  /// verdict (healthy / unhealthy / unknown / stale), probe status, and
  /// latency percentiles.
  obs::JsonValue StatsJson() const;

  /// Emits lusail_replica_* counters ({endpoint=<group id>}) and the
  /// per-replica latency histograms ({endpoint,replica}).
  void ExportMetrics(obs::MetricsSnapshot* snapshot) const;

  const ReplicaGroupOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  enum class Health { kUnknown, kHealthy, kUnhealthy };

  /// Per-replica state, held by shared_ptr so detached hedge workers can
  /// outlive a returned Query* call (but never the group — see inflight_).
  struct Replica {
    explicit Replica(std::shared_ptr<Endpoint> ep,
                     const CircuitBreakerConfig& config)
        : endpoint(std::move(ep)), breaker(config) {}

    std::shared_ptr<Endpoint> endpoint;
    CircuitBreaker breaker;

    mutable std::mutex mu;  ///< Guards health fields and the histogram.
    Health health = Health::kUnknown;
    Clock::time_point verdict_at{};
    bool probed = false;  ///< A lazy probe was issued (or skipped).
    obs::LatencyHistogram latency;
  };

  /// Outcome slots shared between the caller and its hedge workers.
  struct Attempt {
    size_t replica_index = 0;
    CancelToken token;  ///< Cancellable child; fired to abandon a loser.
    std::optional<Result<QueryResponse>> result;
  };
  struct HedgeShared {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Attempt> attempts;
  };

  /// Count of detached workers still running; the destructor waits for
  /// zero so no worker ever touches freed group state.
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    int count = 0;
  };

  /// Candidate replicas in preference order (admissible tiers first,
  /// p95 within a tier). Never empty for a non-empty group.
  std::vector<size_t> RankReplicas() const;

  /// Issues `options_.probe_query` at an unknown replica, recording the
  /// verdict. No-op when the replica was already probed or lazy probing
  /// is off.
  void MaybeProbe(const std::shared_ptr<Replica>& replica,
                  const CancelToken& cancel);

  /// One synchronous attempt on the caller thread, with health/breaker
  /// accounting. Used by the sequential-failover path.
  Result<QueryResponse> IssueAttempt(const std::shared_ptr<Replica>& replica,
                                     const std::string& text,
                                     const CancelToken& cancel);

  /// Hedged execution across `ranked` (the primary plus runner-ups).
  Result<QueryResponse> QueryHedged(const std::vector<size_t>& ranked,
                                    const std::string& text,
                                    const CancelToken& cancel);

  /// Spawns a detached worker for attempt `slot` of `shared`.
  void LaunchAttempt(const std::shared_ptr<Replica>& replica,
                     const std::string& text,
                     const std::shared_ptr<HedgeShared>& shared, size_t slot);

  /// Records a finished request into the replica's breaker / health /
  /// histogram. `self_inflicted` suppresses breaker + health updates
  /// (our own deadline or a loser cancellation says nothing about the
  /// replica).
  static void RecordOutcome(const std::shared_ptr<Replica>& replica,
                            const Result<QueryResponse>& result,
                            double elapsed_ms, bool self_inflicted);

  /// The hedge delay for a primary: fixed or p95-derived, clamped.
  double HedgeDelayMs(const std::shared_ptr<Replica>& primary) const;

  std::string id_;
  ReplicaGroupOptions options_;
  std::vector<std::shared_ptr<Replica>> replicas_;
  std::shared_ptr<Inflight> inflight_ = std::make_shared<Inflight>();

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> hedges_launched_{0};
  std::atomic<uint64_t> hedge_wins_{0};
  std::atomic<uint64_t> hedge_losses_{0};
  std::atomic<uint64_t> breaker_skips_{0};
};

}  // namespace lusail::net

#endif  // LUSAIL_NET_REPLICA_H_
