#include "net/replica.h"

#include <algorithm>
#include <thread>

#include "obs/trace_context.h"

namespace lusail::net {

namespace {

const char* HealthName(bool healthy) {
  return healthy ? "healthy" : "unhealthy";
}

}  // namespace

obs::JsonValue ReplicaGroupStats::ToJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("requests", requests);
  out.Set("failovers", failovers);
  out.Set("probes", probes);
  out.Set("hedges_launched", hedges_launched);
  out.Set("hedge_wins", hedge_wins);
  out.Set("hedge_losses", hedge_losses);
  out.Set("breaker_skips", breaker_skips);
  return out;
}

ReplicaGroup::ReplicaGroup(std::string id,
                           std::vector<std::shared_ptr<Endpoint>> replicas,
                           ReplicaGroupOptions options)
    : id_(std::move(id)), options_(options) {
  replicas_.reserve(replicas.size());
  for (auto& endpoint : replicas) {
    replicas_.push_back(std::make_shared<Replica>(std::move(endpoint),
                                                  options_.breaker_config));
  }
}

ReplicaGroup::~ReplicaGroup() {
  // Drain detached hedge workers. They hold only shared_ptrs (replica,
  // outcome slots, this counter), so this wait is for process hygiene —
  // no thread may still be running user code when main() tears down
  // endpoints under TSan — not for memory safety. By the time any Query*
  // call has returned, every loser's token is cancelled, so the wait is
  // bounded by how fast losers notice cancellation.
  std::unique_lock<std::mutex> lock(inflight_->mu);
  inflight_->cv.wait(lock, [this] { return inflight_->count == 0; });
}

const std::string& ReplicaGroup::replica_id(size_t i) const {
  return replicas_[i]->endpoint->id();
}

bool ReplicaGroup::HasAvailableReplica() const {
  for (const auto& replica : replicas_) {
    if (replica->breaker.WouldAllowRequest()) return true;
  }
  return false;
}

const CircuitBreaker& ReplicaGroup::breaker(size_t i) const {
  return replicas_[i]->breaker;
}

CircuitBreaker* ReplicaGroup::mutable_breaker(size_t i) {
  return &replicas_[i]->breaker;
}

std::vector<size_t> ReplicaGroup::RankReplicas() const {
  struct Key {
    int tier;
    double p95;
    size_t index;
  };
  std::vector<Key> keys;
  keys.reserve(replicas_.size());
  Clock::time_point now = Clock::now();
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const Replica& replica = *replicas_[i];
    Key key{1, 0.0, i};
    if (!replica.breaker.WouldAllowRequest()) {
      key.tier = 3;
      std::lock_guard<std::mutex> lock(replica.mu);
      if (replica.latency.count() > 0) key.p95 = replica.latency.P95();
    } else {
      std::lock_guard<std::mutex> lock(replica.mu);
      double age_ms =
          std::chrono::duration<double, std::milli>(now - replica.verdict_at)
              .count();
      bool fresh = replica.health != Health::kUnknown &&
                   age_ms <= options_.health_decay_ms;
      if (fresh) {
        key.tier = replica.health == Health::kHealthy ? 0 : 2;
      }
      if (replica.latency.count() > 0) key.p95 = replica.latency.P95();
    }
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.tier != b.tier) return a.tier < b.tier;
    if (a.p95 != b.p95) return a.p95 < b.p95;
    return a.index < b.index;
  });
  std::vector<size_t> order;
  order.reserve(keys.size());
  for (const Key& key : keys) order.push_back(key.index);
  return order;
}

void ReplicaGroup::RecordOutcome(const std::shared_ptr<Replica>& replica,
                                 const Result<QueryResponse>& result,
                                 double elapsed_ms, bool self_inflicted) {
  if (result.ok()) {
    replica->breaker.RecordSuccess();
    std::lock_guard<std::mutex> lock(replica->mu);
    replica->latency.Record(elapsed_ms);
    replica->health = Health::kHealthy;
    replica->verdict_at = Clock::now();
    return;
  }
  if (self_inflicted) return;  // Our budget ran out; replica not at fault.
  const Status& status = result.status();
  // Client-side errors (parse, unsupported) say nothing about health.
  if (status.IsRetryable() || status.code() == StatusCode::kInternal) {
    replica->breaker.RecordFailure();
    std::lock_guard<std::mutex> lock(replica->mu);
    replica->health = Health::kUnhealthy;
    replica->verdict_at = Clock::now();
  }
}

void ReplicaGroup::MaybeProbe(const std::shared_ptr<Replica>& replica,
                              const CancelToken& cancel) {
  if (!options_.lazy_probe) return;
  {
    std::lock_guard<std::mutex> lock(replica->mu);
    if (replica->probed) return;
    replica->probed = true;
  }
  probes_.fetch_add(1, std::memory_order_relaxed);
  double budget = std::min(options_.probe_timeout_ms,
                           cancel.deadline().RemainingMillis());
  if (budget <= 0.0) return;
  Stopwatch sw;
  Result<QueryResponse> result = replica->endpoint->QueryWithDeadline(
      options_.probe_query, Deadline::AfterMillis(budget));
  bool self_inflicted = !result.ok() &&
                        result.status().code() == StatusCode::kTimeout &&
                        cancel.Cancelled();
  RecordOutcome(replica, result, sw.ElapsedMillis(), self_inflicted);
}

Result<QueryResponse> ReplicaGroup::IssueAttempt(
    const std::shared_ptr<Replica>& replica, const std::string& text,
    const CancelToken& cancel) {
  Stopwatch sw;
  Result<QueryResponse> result = replica->endpoint->QueryCancellable(text,
                                                                     cancel);
  bool self_inflicted = !result.ok() &&
                        result.status().code() == StatusCode::kTimeout &&
                        cancel.Cancelled();
  RecordOutcome(replica, result, sw.ElapsedMillis(), self_inflicted);
  return result;
}

double ReplicaGroup::HedgeDelayMs(
    const std::shared_ptr<Replica>& primary) const {
  if (options_.hedge_delay_ms > 0.0) return options_.hedge_delay_ms;
  double p95 = options_.hedge_max_delay_ms;  // No data: hedge late.
  {
    std::lock_guard<std::mutex> lock(primary->mu);
    if (primary->latency.count() > 0) p95 = primary->latency.P95();
  }
  return std::clamp(p95, options_.hedge_min_delay_ms,
                    options_.hedge_max_delay_ms);
}

Result<QueryResponse> ReplicaGroup::QueryCancellable(
    const std::string& text, const CancelToken& cancel) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (replicas_.empty()) {
    return Status::NotFound("replica group " + id_ + " has no replicas");
  }
  if (cancel.Cancelled()) return cancel.StatusAt("replica selection");

  std::vector<size_t> ranked = RankReplicas();
  // Lazy probe of the preferred candidate; a failed probe changes its
  // health verdict, so re-rank before committing traffic to it.
  {
    bool was_probed;
    {
      std::lock_guard<std::mutex> lock(replicas_[ranked[0]]->mu);
      was_probed = replicas_[ranked[0]]->probed;
    }
    if (!was_probed) {
      MaybeProbe(replicas_[ranked[0]], cancel);
      ranked = RankReplicas();
    }
  }

  if (options_.hedging_enabled && ranked.size() >= 2) {
    return QueryHedged(ranked, text, cancel);
  }

  // Sequential failover: walk the ranked candidates on the caller thread,
  // carrying the same cancel token (and thus the same remaining deadline
  // budget) into every attempt.
  Status last =
      Status::Unavailable("no usable replica in group " + id_);
  for (size_t pos = 0; pos < ranked.size(); ++pos) {
    if (cancel.Cancelled()) return cancel.StatusAt("replica failover");
    const std::shared_ptr<Replica>& replica = replicas_[ranked[pos]];
    MaybeProbe(replica, cancel);
    if (!replica->breaker.AllowRequest()) {
      breaker_skips_.fetch_add(1, std::memory_order_relaxed);
      last = Status::Unavailable("circuit breaker open for " +
                                 replica->endpoint->id());
      continue;
    }
    Result<QueryResponse> result = IssueAttempt(replica, text, cancel);
    if (result.ok()) {
      result->served_by = replica->endpoint->id();
      return result;
    }
    if (cancel.Cancelled()) return result.status();  // Our budget, not theirs.
    last = result.status();
    if (!last.IsRetryable()) return last;  // Every replica would refuse this.
    if (pos + 1 < ranked.size()) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status(last.code(), last.message() + " (all " +
                                 std::to_string(replicas_.size()) +
                                 " replicas of " + id_ + " exhausted)");
}

Result<StreamSummary> ReplicaGroup::QueryStreaming(
    const std::string& text, const CancelToken& cancel,
    const StreamOptions& options, const StreamSink& sink) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (replicas_.empty()) {
    return Status::NotFound("replica group " + id_ + " has no replicas");
  }
  if (cancel.Cancelled()) return cancel.StatusAt("replica selection");

  std::vector<size_t> ranked = RankReplicas();
  {
    bool was_probed;
    {
      std::lock_guard<std::mutex> lock(replicas_[ranked[0]]->mu);
      was_probed = replicas_[ranked[0]]->probed;
    }
    if (!was_probed) {
      MaybeProbe(replicas_[ranked[0]], cancel);
      ranked = RankReplicas();
    }
  }

  // Failover is sound only while the sink has seen nothing: rows already
  // delivered cannot be taken back, so a later replica would replay them.
  bool delivered = false;
  StreamSink guarded = [&](StreamBatch&& batch) -> Status {
    delivered = true;
    return sink(std::move(batch));
  };

  Status last = Status::Unavailable("no usable replica in group " + id_);
  for (size_t pos = 0; pos < ranked.size(); ++pos) {
    if (cancel.Cancelled()) return cancel.StatusAt("replica failover");
    const std::shared_ptr<Replica>& replica = replicas_[ranked[pos]];
    MaybeProbe(replica, cancel);
    if (!replica->breaker.AllowRequest()) {
      breaker_skips_.fetch_add(1, std::memory_order_relaxed);
      last = Status::Unavailable("circuit breaker open for " +
                                 replica->endpoint->id());
      continue;
    }
    Stopwatch sw;
    Result<StreamSummary> summary =
        replica->endpoint->QueryStreaming(text, cancel, options, guarded);
    bool self_inflicted = cancel.Cancelled();
    Result<QueryResponse> accounting =
        summary.ok() ? Result<QueryResponse>(summary->response)
                     : Result<QueryResponse>(summary.status());
    RecordOutcome(replica, accounting, sw.ElapsedMillis(), self_inflicted);
    if (summary.ok()) {
      summary->response.served_by = replica->endpoint->id();
      return summary;
    }
    if (cancel.Cancelled()) return summary.status();
    last = summary.status();
    if (delivered || !last.IsRetryable()) return last;
    if (pos + 1 < ranked.size()) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status(last.code(), last.message() + " (all " +
                                 std::to_string(replicas_.size()) +
                                 " replicas of " + id_ + " exhausted)");
}

void ReplicaGroup::LaunchAttempt(const std::shared_ptr<Replica>& replica,
                                 const std::string& text,
                                 const std::shared_ptr<HedgeShared>& shared,
                                 size_t slot) {
  {
    std::lock_guard<std::mutex> lock(replica->mu);
    replica->probed = true;  // The real request doubles as the probe.
  }
  std::shared_ptr<Inflight> inflight = inflight_;
  {
    std::lock_guard<std::mutex> lock(inflight->mu);
    ++inflight->count;
  }
  CancelToken token = shared->attempts[slot].token;
  // Capture the caller's trace context by value: the worker thread (its
  // own thread-local context empty) re-installs it so both hedge arms
  // propagate the same trace identity — the tracer is held via shared_ptr
  // and so outlives the query frame even for a detached loser.
  obs::TraceContext trace_context;
  if (const obs::TraceContext* current = obs::CurrentTraceContext()) {
    trace_context = *current;
  }
  // The worker captures only shared_ptrs and values — never `this` — so a
  // loser can finish after the Query* call (though not the group: the
  // destructor drains `inflight`).
  std::thread([replica, text, token, shared, slot, inflight,
               trace_context]() {
    std::optional<obs::TraceContextScope> trace_scope;
    if (trace_context.tracer != nullptr) {
      trace_scope.emplace(trace_context);
    }
    Result<QueryResponse> result = Status::Internal("unreachable");
    if (token.Cancelled()) {
      result = token.StatusAt("replica attempt");
    } else if (!replica->breaker.AllowRequest()) {
      result = Status::Unavailable("circuit breaker open for " +
                                   replica->endpoint->id());
    } else {
      Stopwatch sw;
      result = replica->endpoint->QueryCancellable(text, token);
      bool self_inflicted = !result.ok() &&
                            result.status().code() == StatusCode::kTimeout &&
                            token.Cancelled();
      RecordOutcome(replica, result, sw.ElapsedMillis(), self_inflicted);
    }
    trace_scope.reset();
    {
      std::lock_guard<std::mutex> lock(shared->mu);
      shared->attempts[slot].result = std::move(result);
    }
    shared->cv.notify_all();
    {
      std::lock_guard<std::mutex> lock(inflight->mu);
      --inflight->count;
    }
    inflight->cv.notify_all();
  }).detach();
}

Result<QueryResponse> ReplicaGroup::QueryHedged(
    const std::vector<size_t>& ranked, const std::string& text,
    const CancelToken& cancel) {
  auto shared = std::make_shared<HedgeShared>();
  shared->attempts.resize(ranked.size());  // Fixed size: workers index in.

  size_t launched = 0;
  int hedge_slot = -1;  // Slot launched *because of* the hedge timer.
  auto launch = [&](size_t slot) {
    Attempt& attempt = shared->attempts[slot];
    attempt.replica_index = ranked[slot];
    attempt.token = CancelToken::Cancellable(cancel.deadline());
    const std::shared_ptr<Replica>& replica = replicas_[ranked[slot]];
    if (!replica->breaker.WouldAllowRequest()) {
      breaker_skips_.fetch_add(1, std::memory_order_relaxed);
    }
    LaunchAttempt(replica, text, shared, slot);
    ++launched;
  };

  Stopwatch since_primary;
  double hedge_delay = HedgeDelayMs(replicas_[ranked[0]]);

  std::unique_lock<std::mutex> lock(shared->mu);
  launch(0);

  auto cancel_losers = [&](int winner) {
    for (size_t s = 0; s < launched; ++s) {
      if (static_cast<int>(s) != winner) shared->attempts[s].token.Cancel();
    }
  };

  while (true) {
    int winner = -1;
    size_t done = 0;
    for (size_t s = 0; s < launched; ++s) {
      const Attempt& attempt = shared->attempts[s];
      if (!attempt.result.has_value()) continue;
      ++done;
      if (winner < 0 && attempt.result->ok()) winner = static_cast<int>(s);
    }
    if (winner >= 0) {
      cancel_losers(winner);
      // When this query is traced, wait (bounded) for the cancelled
      // losers to finish: a loser's server answers the cancellation with
      // its span subtree, and the graft must land before the caller
      // snapshots the trace — this is what makes hedged traces show one
      // winning and one cancelled server subtree deterministically.
      if (obs::CurrentTraceContext() != nullptr) {
        Deadline drain = Deadline::AfterMillis(2500.0);
        for (;;) {
          size_t finished = 0;
          for (size_t s = 0; s < launched; ++s) {
            if (shared->attempts[s].result.has_value()) ++finished;
          }
          if (finished == launched || drain.Expired()) break;
          shared->cv.wait_for(lock, std::chrono::milliseconds(10));
        }
      }
      Result<QueryResponse> result = std::move(*shared->attempts[winner].result);
      result->served_by =
          replicas_[shared->attempts[winner].replica_index]->endpoint->id();
      result->hedged = hedge_slot >= 0;
      if (hedge_slot >= 0) {
        if (winner == hedge_slot) {
          hedge_wins_.fetch_add(1, std::memory_order_relaxed);
        } else {
          hedge_losses_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return result;
    }
    if (cancel.Cancelled()) {
      cancel_losers(-1);
      return cancel.StatusAt("replica group request");
    }
    if (done == launched) {
      // Everything launched so far has failed.
      if (launched < ranked.size()) {
        failovers_.fetch_add(1, std::memory_order_relaxed);
        launch(launched);
        continue;
      }
      const Status& primary = shared->attempts[0].result->status();
      return Status(primary.code(),
                    primary.message() + " (all " +
                        std::to_string(replicas_.size()) + " replicas of " +
                        id_ + " exhausted)");
    }
    // Primary still silent: arm the hedge once its delay elapses.
    if (hedge_slot < 0 && launched < ranked.size() &&
        !shared->attempts[0].result.has_value() &&
        since_primary.ElapsedMillis() >= hedge_delay) {
      hedge_slot = static_cast<int>(launched);
      hedges_launched_.fetch_add(1, std::memory_order_relaxed);
      launch(launched);
      continue;
    }
    double wait_ms = 5.0;  // Cancellation-check slice.
    if (hedge_slot < 0 && launched < ranked.size()) {
      double until_hedge = hedge_delay - since_primary.ElapsedMillis();
      wait_ms = std::clamp(until_hedge, 0.1, wait_ms);
    }
    shared->cv.wait_for(
        lock, std::chrono::duration<double, std::milli>(wait_ms));
  }
}

ReplicaGroupStats ReplicaGroup::stats() const {
  ReplicaGroupStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.failovers = failovers_.load(std::memory_order_relaxed);
  stats.probes = probes_.load(std::memory_order_relaxed);
  stats.hedges_launched = hedges_launched_.load(std::memory_order_relaxed);
  stats.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  stats.hedge_losses = hedge_losses_.load(std::memory_order_relaxed);
  stats.breaker_skips = breaker_skips_.load(std::memory_order_relaxed);
  return stats;
}

void ReplicaGroup::ExportMetrics(obs::MetricsSnapshot* snapshot) const {
  ReplicaGroupStats s = stats();
  obs::MetricLabels labels{{"endpoint", id_}};
  snapshot->AddCounter("lusail_replica_requests_total",
                       "Queries issued through the replica group.", labels,
                       static_cast<double>(s.requests));
  snapshot->AddCounter("lusail_replica_failovers_total",
                       "Sequential failovers after a replica failure.",
                       labels, static_cast<double>(s.failovers));
  snapshot->AddCounter("lusail_replica_probes_total",
                       "Lazy health probes issued.", labels,
                       static_cast<double>(s.probes));
  snapshot->AddCounter("lusail_replica_hedges_launched_total",
                       "Duplicate (hedged) requests started.", labels,
                       static_cast<double>(s.hedges_launched));
  snapshot->AddCounter("lusail_replica_hedge_wins_total",
                       "Hedged requests that answered first.", labels,
                       static_cast<double>(s.hedge_wins));
  snapshot->AddCounter("lusail_replica_hedge_losses_total",
                       "Hedges beaten by the primary.", labels,
                       static_cast<double>(s.hedge_losses));
  snapshot->AddCounter("lusail_replica_breaker_skips_total",
                       "Replicas skipped on an open breaker.", labels,
                       static_cast<double>(s.breaker_skips));
  for (const auto& replica : replicas_) {
    obs::MetricLabels replica_labels{{"endpoint", id_},
                                     {"replica", replica->endpoint->id()}};
    obs::LatencyHistogram latency;
    {
      std::lock_guard<std::mutex> lock(replica->mu);
      latency = replica->latency;
    }
    snapshot->AddHistogram("lusail_replica_latency_seconds",
                           "Per-replica request latency.", replica_labels,
                           latency);
    snapshot->AddGauge(
        "lusail_replica_breaker_open",
        "1 when the replica's circuit breaker would reject a request.",
        std::move(replica_labels),
        replica->breaker.WouldAllowRequest() ? 0.0 : 1.0);
  }
}

obs::JsonValue ReplicaGroup::StatsJson() const {
  obs::JsonValue out = stats().ToJson();
  out.Set("id", id_);
  obs::JsonValue replicas = obs::JsonValue::Array();
  Clock::time_point now = Clock::now();
  for (const auto& replica : replicas_) {
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("id", replica->endpoint->id());
    entry.Set("breaker_state", std::string(CircuitBreaker::StateName(
                                   replica->breaker.state())));
    entry.Set("breaker_trips", replica->breaker.trips());
    {
      std::lock_guard<std::mutex> lock(replica->mu);
      double age_ms =
          std::chrono::duration<double, std::milli>(now - replica->verdict_at)
              .count();
      bool fresh = replica->health != Health::kUnknown &&
                   age_ms <= options_.health_decay_ms;
      std::string health = "unknown";
      if (replica->health != Health::kUnknown) {
        health = HealthName(replica->health == Health::kHealthy);
        if (!fresh) health += " (stale)";
      }
      entry.Set("health", std::move(health));
      entry.Set("probed", replica->probed);
      entry.Set("latency_count", replica->latency.count());
      entry.Set("latency_p50_ms", replica->latency.P50());
      entry.Set("latency_p95_ms", replica->latency.P95());
    }
    replicas.Append(std::move(entry));
  }
  out.Set("replicas", std::move(replicas));
  return out;
}

}  // namespace lusail::net
