#ifndef LUSAIL_NET_LATENCY_MODEL_H_
#define LUSAIL_NET_LATENCY_MODEL_H_

#include <cstddef>

namespace lusail::net {

/// Deterministic network cost model for a simulated SPARQL endpoint.
///
/// Every request is charged `request_latency_ms` (round-trip setup) plus
/// transfer time for the query text and the serialized result at
/// `bandwidth_bytes_per_ms`. The charged time is always *accounted* in the
/// metrics; it is additionally *imposed* on the calling thread (via sleep)
/// scaled by `sleep_scale`, so wall-clock measurements reflect network
/// behaviour. sleep_scale = 0 turns the simulation into pure accounting.
///
/// Presets mirror the paper's two deployments: a local cluster (1-10 Gbps
/// Ethernet, sub-millisecond RTT) and a geo-distributed Azure federation
/// (tens of milliseconds RTT across 7 regions, WAN bandwidth).
struct LatencyModel {
  double request_latency_ms = 0.0;
  double bandwidth_bytes_per_ms = 0.0;  ///< 0 means infinite bandwidth.
  double sleep_scale = 1.0;

  /// No latency, infinite bandwidth, no sleeping (unit tests).
  static LatencyModel None() { return LatencyModel{0.0, 0.0, 0.0}; }

  /// ~0.2 ms RTT, 1 Gbps.
  static LatencyModel LocalCluster() {
    return LatencyModel{0.2, 125000.0, 1.0};
  }

  /// ~15 ms RTT, ~20 Mbps effective single-stream WAN throughput
  /// (typical for cross-region transfers).
  static LatencyModel GeoDistributed() {
    return LatencyModel{15.0, 2500.0, 1.0};
  }

  /// Simulated milliseconds charged for one request/response exchange.
  double CostMillis(size_t request_bytes, size_t response_bytes) const {
    double ms = request_latency_ms;
    if (bandwidth_bytes_per_ms > 0.0) {
      ms += static_cast<double>(request_bytes + response_bytes) /
            bandwidth_bytes_per_ms;
    }
    return ms;
  }

  /// Blocks the calling thread for sleep_scale * CostMillis(...).
  void Impose(size_t request_bytes, size_t response_bytes) const;
};

}  // namespace lusail::net

#endif  // LUSAIL_NET_LATENCY_MODEL_H_
