#include "net/resilience.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <thread>

#include "common/rng.h"
#include "net/replica.h"

namespace lusail::net {

// ---------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------

bool CircuitBreaker::AllowRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      double open_ms = std::chrono::duration<double, std::milli>(
                           Clock::now() - opened_at_)
                           .count();
      if (open_ms < config_.open_cooldown_ms) return false;
      state_ = State::kHalfOpen;
      half_open_in_flight_ = 0;
      [[fallthrough]];
    }
    case State::kHalfOpen:
      if (half_open_in_flight_ >= config_.half_open_probes) return false;
      ++half_open_in_flight_;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // The probe proved the endpoint healthy again.
    state_ = State::kClosed;
    window_.clear();
    window_failures_ = 0;
    half_open_in_flight_ = 0;
    return;
  }
  if (state_ == State::kOpen) return;  // Late response; ignore.
  window_.push_back(false);
  if (window_.size() > config_.window_size) {
    if (window_.front()) --window_failures_;
    window_.pop_front();
  }
}

bool CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    TripLocked();
    return true;
  }
  if (state_ == State::kOpen) return false;  // Late response; ignore.
  window_.push_back(true);
  ++window_failures_;
  if (window_.size() > config_.window_size) {
    if (window_.front()) --window_failures_;
    window_.pop_front();
  }
  if (window_.size() >= config_.min_samples) {
    double rate = static_cast<double>(window_failures_) /
                  static_cast<double>(window_.size());
    if (rate >= config_.failure_rate_threshold) {
      TripLocked();
      return true;
    }
  }
  return false;
}

void CircuitBreaker::TripLocked() {
  state_ = State::kOpen;
  opened_at_ = Clock::now();
  half_open_in_flight_ = 0;
  window_.clear();
  window_failures_ = 0;
  trips_.fetch_add(1, std::memory_order_relaxed);
}

bool CircuitBreaker::WouldAllowRequest() const {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      double open_ms = std::chrono::duration<double, std::milli>(
                           Clock::now() - opened_at_)
                           .count();
      // An expired cooldown means AllowRequest() would go half-open and
      // admit a probe; report that without performing the transition.
      return open_ms >= config_.open_cooldown_ms;
    }
    case State::kHalfOpen:
      return half_open_in_flight_ < config_.half_open_probes;
  }
  return true;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

void CircuitBreaker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = State::kClosed;
  window_.clear();
  window_failures_ = 0;
  half_open_in_flight_ = 0;
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

// ---------------------------------------------------------------------
// QueryWithRetry
// ---------------------------------------------------------------------

namespace {

/// Sleeps `millis`, clamped to the remaining deadline. Returns the time
/// actually slept.
double SleepWithin(double millis, const Deadline& deadline) {
  double capped = std::min(millis, deadline.RemainingMillis());
  if (capped <= 0.0) return 0.0;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(capped));
  return capped;
}

}  // namespace

Result<QueryResponse> QueryWithRetry(Endpoint* endpoint,
                                     const std::string& text,
                                     const Deadline& deadline,
                                     const RetryPolicy& policy,
                                     CircuitBreaker* breaker,
                                     RetryOutcome* outcome,
                                     obs::Tracer* tracer,
                                     obs::SpanId trace_parent,
                                     const CancelToken* cancel) {
  RetryOutcome local;
  RetryOutcome* out = outcome != nullptr ? outcome : &local;
  if (!policy.use_circuit_breaker) breaker = nullptr;

  // Jitter stream: reproducible per (seed, query text).
  Rng rng(policy.jitter_seed ^ std::hash<std::string>{}(text));
  int max_attempts = std::max(1, policy.max_attempts);
  double prev_backoff = policy.initial_backoff_ms;
  Status last = Status::Unavailable("no attempt issued to " + endpoint->id());

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (cancel != nullptr && cancel->CancelRequested()) {
      return cancel->StatusAt("endpoint retry loop");
    }
    if (deadline.Expired()) {
      return Status::Timeout("query deadline expired before attempt " +
                             std::to_string(attempt + 1) + " to " +
                             endpoint->id());
    }
    if (breaker != nullptr && !breaker->AllowRequest()) {
      ++out->breaker_rejections;
      if (tracer != nullptr) {
        obs::SpanId rejection = tracer->StartSpan(
            "breaker rejection", "breaker", trace_parent);
        tracer->Annotate(rejection, "endpoint", endpoint->id());
        tracer->EndSpan(rejection);
      }
      return Status::Unavailable("circuit breaker open for " + endpoint->id());
    }
    ++out->attempts;
    obs::ScopedSpan attempt_span(
        tracer, "attempt " + std::to_string(attempt + 1),
        attempt == 0 ? "attempt" : "retry", trace_parent);
    Result<QueryResponse> response =
        cancel != nullptr ? endpoint->QueryCancellable(text, *cancel)
                          : endpoint->QueryWithDeadline(text, deadline);
    attempt_span.Annotate("ok", response.ok());
    if (!response.ok()) {
      attempt_span.Annotate("status", response.status().ToString());
    }
    attempt_span.End();
    if (response.ok()) {
      if (breaker != nullptr) breaker->RecordSuccess();
      return response;
    }
    last = response.status();
    // Client-side errors (parse, unsupported, ...) say nothing about the
    // endpoint's health; only server-side failures feed the breaker. A
    // kTimeout that coincides with our own expired deadline (or a fired
    // cancel token) is *our* budget running out, not the endpoint being
    // slow — feeding it to the breaker would trip healthy endpoints open
    // whenever clients send tight deadlines.
    bool self_inflicted_timeout =
        last.code() == StatusCode::kTimeout &&
        (deadline.Expired() ||
         (cancel != nullptr && cancel->CancelRequested()));
    if (breaker != nullptr && !self_inflicted_timeout &&
        (last.IsRetryable() || last.code() == StatusCode::kInternal)) {
      if (breaker->RecordFailure()) ++out->breaker_trips;
    }
    if (!last.IsRetryable() || attempt + 1 >= max_attempts) break;

    double backoff;
    if (policy.decorrelated_jitter) {
      // AWS-style decorrelated jitter: U[initial, 3 * previous].
      double lo = policy.initial_backoff_ms;
      double hi = std::max(lo, prev_backoff * 3.0);
      backoff = lo + rng.NextDouble() * (hi - lo);
    } else {
      backoff = prev_backoff;
    }
    backoff = std::min(backoff, policy.max_backoff_ms);
    prev_backoff = policy.decorrelated_jitter
                       ? backoff
                       : std::min(prev_backoff * policy.backoff_multiplier,
                                  policy.max_backoff_ms);
    // A retry whose deadline is already gone is doomed: don't sleep, don't
    // issue it — surface the timeout now so the caller gets its thread
    // back. (Previously this `break` returned the prior attempt's status,
    // hiding that the deadline, not the endpoint, ended the retry loop.)
    if (deadline.has_deadline() && deadline.RemainingMillis() <= 0.0) {
      return Status::Timeout("query deadline expired before retry " +
                             std::to_string(attempt + 2) + " to " +
                             endpoint->id() + " (last attempt: " +
                             last.ToString() + ")");
    }
    out->backoff_ms += SleepWithin(backoff, deadline);
    ++out->retries;
  }

  if (out->attempts > 1) {
    return Status(last.code(), last.message() + " (after " +
                                   std::to_string(out->attempts) +
                                   " attempts to " + endpoint->id() + ")");
  }
  return last;
}

// ---------------------------------------------------------------------
// ResilientEndpoint
// ---------------------------------------------------------------------

Result<QueryResponse> ResilientEndpoint::QueryWithDeadline(
    const std::string& text, const Deadline& deadline) {
  return QueryCancellable(text, CancelToken(deadline));
}

Result<QueryResponse> ResilientEndpoint::QueryCancellable(
    const std::string& text, const CancelToken& cancel) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  RetryOutcome outcome;
  Result<QueryResponse> response =
      QueryWithRetry(inner_.get(), text, cancel.deadline(), policy_, &breaker_,
                     &outcome, /*tracer=*/nullptr, /*trace_parent=*/0,
                     &cancel);
  attempts_.fetch_add(outcome.attempts, std::memory_order_relaxed);
  retries_.fetch_add(outcome.retries, std::memory_order_relaxed);
  breaker_rejections_.fetch_add(outcome.breaker_rejections,
                                std::memory_order_relaxed);
  breaker_trips_.fetch_add(outcome.breaker_trips, std::memory_order_relaxed);
  // llround, not a truncating cast: sub-microsecond sleeps must not
  // vanish from the totals (same fix as MetricsCollector::RecordRequest).
  backoff_us_.fetch_add(
      static_cast<uint64_t>(std::llround(outcome.backoff_ms * 1000.0)),
      std::memory_order_relaxed);
  if (!response.ok()) failures_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

Result<StreamSummary> ResilientEndpoint::QueryStreaming(
    const std::string& text, const CancelToken& cancel,
    const StreamOptions& options, const StreamSink& sink) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const Deadline& deadline = cancel.deadline();
  CircuitBreaker* breaker = policy_.use_circuit_breaker ? &breaker_ : nullptr;

  // Once the sink has seen any batch, a retry would replay rows at the
  // consumer; a failure after that point is final.
  bool delivered = false;
  StreamSink guarded = [&](StreamBatch&& batch) -> Status {
    delivered = true;
    return sink(std::move(batch));
  };

  Rng rng(policy_.jitter_seed ^ std::hash<std::string>{}(text));
  int max_attempts = std::max(1, policy_.max_attempts);
  double prev_backoff = policy_.initial_backoff_ms;
  Status last = Status::Unavailable("no attempt issued to " + id());

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (cancel.CancelRequested()) {
      failures_.fetch_add(1, std::memory_order_relaxed);
      return cancel.StatusAt("endpoint retry loop");
    }
    if (deadline.Expired()) {
      failures_.fetch_add(1, std::memory_order_relaxed);
      return Status::Timeout("query deadline expired before attempt " +
                             std::to_string(attempt + 1) + " to " + id());
    }
    if (breaker != nullptr && !breaker->AllowRequest()) {
      breaker_rejections_.fetch_add(1, std::memory_order_relaxed);
      failures_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("circuit breaker open for " + id());
    }
    attempts_.fetch_add(1, std::memory_order_relaxed);
    Result<StreamSummary> summary =
        inner_->QueryStreaming(text, cancel, options, guarded);
    if (summary.ok()) {
      if (breaker != nullptr) breaker->RecordSuccess();
      return summary;
    }
    last = summary.status();
    bool self_inflicted_timeout =
        last.code() == StatusCode::kTimeout &&
        (deadline.Expired() || cancel.CancelRequested());
    if (breaker != nullptr && !self_inflicted_timeout &&
        (last.IsRetryable() || last.code() == StatusCode::kInternal)) {
      if (breaker->RecordFailure()) {
        breaker_trips_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (delivered || !last.IsRetryable() || attempt + 1 >= max_attempts) {
      break;
    }

    double backoff;
    if (policy_.decorrelated_jitter) {
      double lo = policy_.initial_backoff_ms;
      double hi = std::max(lo, prev_backoff * 3.0);
      backoff = lo + rng.NextDouble() * (hi - lo);
    } else {
      backoff = prev_backoff;
    }
    backoff = std::min(backoff, policy_.max_backoff_ms);
    prev_backoff = policy_.decorrelated_jitter
                       ? backoff
                       : std::min(prev_backoff * policy_.backoff_multiplier,
                                  policy_.max_backoff_ms);
    if (deadline.has_deadline() && deadline.RemainingMillis() <= 0.0) {
      failures_.fetch_add(1, std::memory_order_relaxed);
      return Status::Timeout("query deadline expired before retry " +
                             std::to_string(attempt + 2) + " to " + id() +
                             " (last attempt: " + last.ToString() + ")");
    }
    double slept = SleepWithin(backoff, deadline);
    backoff_us_.fetch_add(
        static_cast<uint64_t>(std::llround(slept * 1000.0)),
        std::memory_order_relaxed);
    retries_.fetch_add(1, std::memory_order_relaxed);
  }
  failures_.fetch_add(1, std::memory_order_relaxed);
  return last;
}

ResilienceStats ResilientEndpoint::stats() const {
  ResilienceStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.attempts = attempts_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.failures = failures_.load(std::memory_order_relaxed);
  stats.breaker_rejections =
      breaker_rejections_.load(std::memory_order_relaxed);
  stats.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  stats.backoff_ms =
      static_cast<double>(backoff_us_.load(std::memory_order_relaxed)) /
      1000.0;
  return stats;
}

obs::JsonValue ResilienceStats::ToJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("requests", requests);
  out.Set("attempts", attempts);
  out.Set("retries", retries);
  out.Set("failures", failures);
  out.Set("breaker_rejections", breaker_rejections);
  out.Set("breaker_trips", breaker_trips);
  out.Set("backoff_ms", backoff_ms);
  return out;
}

void ResilientEndpoint::ExportMetrics(obs::MetricsSnapshot* snapshot) const {
  ResilienceStats s = stats();
  obs::MetricLabels labels{{"endpoint", id()}};
  snapshot->AddCounter("lusail_resilience_requests_total",
                       "Queries entering the resilient wrapper.", labels,
                       static_cast<double>(s.requests));
  snapshot->AddCounter("lusail_resilience_attempts_total",
                       "Requests issued to the inner endpoint.", labels,
                       static_cast<double>(s.attempts));
  snapshot->AddCounter("lusail_resilience_retries_total",
                       "Attempts beyond the first.", labels,
                       static_cast<double>(s.retries));
  snapshot->AddCounter("lusail_resilience_failures_total",
                       "Queries that failed after all retries.", labels,
                       static_cast<double>(s.failures));
  snapshot->AddCounter("lusail_resilience_breaker_rejections_total",
                       "Requests refused by the open breaker.", labels,
                       static_cast<double>(s.breaker_rejections));
  snapshot->AddCounter("lusail_resilience_breaker_trips_total",
                       "Breaker transitions to open.", labels,
                       static_cast<double>(s.breaker_trips));
  snapshot->AddCounter("lusail_resilience_backoff_seconds_total",
                       "Total backoff sleep time.", labels,
                       s.backoff_ms / 1e3);
  snapshot->AddGauge(
      "lusail_resilience_breaker_open",
      "1 when the breaker would reject a request right now.",
      std::move(labels), breaker_.WouldAllowRequest() ? 0.0 : 1.0);
  if (const auto* group = dynamic_cast<const ReplicaGroup*>(inner_.get())) {
    group->ExportMetrics(snapshot);
  }
}

obs::JsonValue ResilientEndpoint::StatsJson() const {
  obs::JsonValue out = stats().ToJson();
  out.Set("breaker_state", std::string(CircuitBreaker::StateName(
                               breaker_.state())));
  out.Set("breaker_trips_total", breaker_.trips());
  // A resilient wrapper around a replica group exposes the group's
  // failover/hedge counters and per-replica breakers alongside its own.
  if (const auto* group = dynamic_cast<const ReplicaGroup*>(inner_.get())) {
    out.Set("replica_group", group->StatsJson());
  }
  return out;
}

}  // namespace lusail::net
