#ifndef LUSAIL_NET_RESILIENCE_H_
#define LUSAIL_NET_RESILIENCE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "common/stopwatch.h"
#include "net/endpoint.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lusail::net {

/// Client-side retry configuration for endpoint requests. The defaults
/// (max_attempts = 1) mean *no* retrying — the fail-stop behaviour every
/// engine had before the fault-tolerance layer existed.
///
/// Retries apply only to retryable failures (Status::IsRetryable():
/// kUnavailable, kTimeout); malformed queries and engine bugs fail
/// immediately. Between attempts the client sleeps an exponentially
/// growing backoff with decorrelated jitter, capped both by
/// `max_backoff_ms` and by the remaining query deadline, so a retry loop
/// never sleeps past the deadline.
struct RetryPolicy {
  /// Total attempts per request (first try included). 1 disables retries.
  int max_attempts = 1;

  /// Backoff before the first retry.
  double initial_backoff_ms = 2.0;

  /// Upper bound for any single backoff sleep.
  double max_backoff_ms = 50.0;

  /// Growth factor of the deterministic (jitter-free) backoff schedule.
  double backoff_multiplier = 2.0;

  /// Decorrelated jitter (sleep ~ U[initial, 3 * previous]) instead of
  /// the deterministic schedule; avoids synchronized retry storms.
  bool decorrelated_jitter = true;

  /// Seed for the jitter RNG; the per-request stream also mixes in the
  /// query text so runs are reproducible.
  uint64_t jitter_seed = 0x5eedULL;

  /// Consult the per-endpoint circuit breaker (when the caller provides
  /// one) before each attempt.
  bool use_circuit_breaker = true;

  bool enabled() const { return max_attempts > 1; }

  static RetryPolicy NoRetry() { return RetryPolicy{}; }

  /// A sensible production default: up to `attempts` tries with jittered
  /// exponential backoff between 2 ms and 50 ms.
  static RetryPolicy Standard(int attempts = 4) {
    RetryPolicy p;
    p.max_attempts = attempts;
    return p;
  }
};

/// Circuit-breaker tuning. The breaker watches a sliding window of
/// request outcomes; when the failure rate over at least `min_samples`
/// outcomes reaches `failure_rate_threshold` it *opens* and rejects
/// requests without contacting the endpoint. After `open_cooldown_ms` it
/// lets `half_open_probes` trial requests through (*half-open*); a probe
/// success closes the breaker, a probe failure re-opens it.
struct CircuitBreakerConfig {
  size_t window_size = 32;             ///< Outcomes kept in the window.
  /// Outcomes required before the failure rate is evaluated at all. Keep
  /// this a decent fraction of `window_size`: with few samples, sustained
  /// but tolerable transient noise (say a 20% fault rate) spuriously
  /// crosses the threshold far too often.
  size_t min_samples = 16;
  double failure_rate_threshold = 0.5; ///< Open at >= this failure rate.
  double open_cooldown_ms = 100.0;     ///< Open -> half-open delay.
  int half_open_probes = 1;            ///< Concurrent half-open trials.
};

/// Thread-safe circuit breaker state machine (closed / open / half-open).
/// One instance guards one endpoint; all engines sharing a Federation
/// share its breakers, mirroring how real deployments share endpoint
/// health.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerConfig config = CircuitBreakerConfig())
      : config_(config) {}

  /// True when a request may be issued now. An expired open-cooldown
  /// transitions the breaker to half-open and admits up to
  /// `half_open_probes` trials.
  bool AllowRequest();

  /// Side-effect-free peek: would AllowRequest() admit a request right
  /// now? Unlike AllowRequest() it neither transitions open -> half-open
  /// nor reserves a half-open probe slot, so callers can *rank* endpoints
  /// by admissibility (replica selection, source selection) without
  /// consuming probe budget they may never use.
  bool WouldAllowRequest() const;

  /// Records a successful request. A half-open success closes the breaker
  /// and clears the outcome window.
  void RecordSuccess();

  /// Records a failed request. Returns true when this failure *tripped*
  /// the breaker (closed -> open or half-open -> open).
  bool RecordFailure();

  State state() const;

  /// Cumulative number of times the breaker tripped open.
  uint64_t trips() const {
    return trips_.load(std::memory_order_relaxed);
  }

  /// Back to closed with an empty window (tests, endpoint replacement).
  void Reset();

  const CircuitBreakerConfig& config() const { return config_; }

  static const char* StateName(State state);

 private:
  using Clock = std::chrono::steady_clock;

  void TripLocked();

  CircuitBreakerConfig config_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  std::deque<bool> window_;  ///< Recent outcomes; true = failure.
  size_t window_failures_ = 0;
  int half_open_in_flight_ = 0;
  Clock::time_point opened_at_{};
  std::atomic<uint64_t> trips_{0};
};

/// Per-call resilience accounting returned by QueryWithRetry; callers
/// fold it into their own stats (engine metrics, decorator counters).
struct RetryOutcome {
  int attempts = 0;            ///< Requests actually issued.
  int retries = 0;             ///< attempts - 1, when > 0.
  int breaker_rejections = 0;  ///< Attempts refused by an open breaker.
  int breaker_trips = 0;       ///< Failures that tripped the breaker.
  double backoff_ms = 0.0;     ///< Total time slept between attempts.
};

/// The shared retry loop: issues `text` at `endpoint` under `policy`,
/// consulting `breaker` (may be null) before each attempt and recording
/// outcomes into it. Honors `deadline`: no attempt starts and no backoff
/// sleeps past it — a doomed attempt (deadline already past) is never
/// issued, the loop bails with kTimeout instead. Deadline-caused
/// kTimeout says nothing about the endpoint's health and is *not* fed to
/// the breaker. `outcome` (may be null) receives per-call accounting.
/// With a non-null `tracer`, every issued attempt and every breaker
/// rejection becomes a child span of `trace_parent` (retries are thus
/// visible in query traces as "attempt N" spans under the request span).
/// A non-null `cancel` makes attempts cooperatively cancellable: the loop
/// checks it before every attempt and forwards it to QueryCancellable.
Result<QueryResponse> QueryWithRetry(Endpoint* endpoint,
                                     const std::string& text,
                                     const Deadline& deadline,
                                     const RetryPolicy& policy,
                                     CircuitBreaker* breaker,
                                     RetryOutcome* outcome,
                                     obs::Tracer* tracer = nullptr,
                                     obs::SpanId trace_parent = 0,
                                     const CancelToken* cancel = nullptr);

/// Cumulative client-side statistics of one ResilientEndpoint.
struct ResilienceStats {
  uint64_t requests = 0;            ///< Calls to Query*.
  uint64_t attempts = 0;            ///< Requests issued to the inner endpoint.
  uint64_t retries = 0;
  uint64_t failures = 0;            ///< Calls that failed after all retries.
  uint64_t breaker_rejections = 0;
  uint64_t breaker_trips = 0;
  double backoff_ms = 0.0;

  obs::JsonValue ToJson() const;
};

/// Decorator giving any endpoint a retry policy and a circuit breaker.
/// Stacks under FaultInjectingEndpoint in tests and over real endpoints
/// in deployments:
///
///   engine -> ResilientEndpoint -> FaultInjectingEndpoint -> SparqlEndpoint
class ResilientEndpoint : public Endpoint {
 public:
  ResilientEndpoint(std::shared_ptr<Endpoint> inner, RetryPolicy policy,
                    CircuitBreakerConfig breaker_config = CircuitBreakerConfig())
      : inner_(std::move(inner)), policy_(policy), breaker_(breaker_config) {}

  const std::string& id() const override { return inner_->id(); }

  Result<QueryResponse> Query(const std::string& text) override {
    return QueryWithDeadline(text, Deadline());
  }

  Result<QueryResponse> QueryWithDeadline(const std::string& text,
                                          const Deadline& deadline) override;

  Result<QueryResponse> QueryCancellable(const std::string& text,
                                         const CancelToken& cancel) override;

  /// Streaming with retries restricted to attempts that delivered nothing:
  /// once the sink has seen a batch, a retry would replay rows, so a
  /// mid-stream failure surfaces to the caller instead. Breaker accounting
  /// matches the buffered path.
  Result<StreamSummary> QueryStreaming(const std::string& text,
                                       const CancelToken& cancel,
                                       const StreamOptions& options,
                                       const StreamSink& sink) override;

  const CircuitBreaker& breaker() const { return breaker_; }
  CircuitBreaker* mutable_breaker() { return &breaker_; }
  const RetryPolicy& policy() const { return policy_; }

  ResilienceStats stats() const;

  /// Operational snapshot: the cumulative stats plus the breaker's
  /// current state ("closed" / "open" / "half-open") and trip count.
  obs::JsonValue StatsJson() const;

  /// Emits lusail_resilience_* counters labelled {endpoint=<id>}; a
  /// wrapped ReplicaGroup exports its lusail_replica_* metrics too.
  void ExportMetrics(obs::MetricsSnapshot* snapshot) const;

 private:
  std::shared_ptr<Endpoint> inner_;
  RetryPolicy policy_;
  CircuitBreaker breaker_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> attempts_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> breaker_rejections_{0};
  std::atomic<uint64_t> breaker_trips_{0};
  std::atomic<uint64_t> backoff_us_{0};
};

}  // namespace lusail::net

#endif  // LUSAIL_NET_RESILIENCE_H_
