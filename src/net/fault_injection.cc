#include "net/fault_injection.h"

#include <algorithm>
#include <functional>
#include <thread>

#include "common/rng.h"

namespace lusail::net {

FaultInjectingEndpoint::FaultInjectingEndpoint(std::shared_ptr<Endpoint> inner,
                                               FaultProfile profile)
    : inner_(std::move(inner)),
      profile_(profile),
      id_hash_(std::hash<std::string>{}(inner_->id())),
      down_(profile.permanently_down) {}

Result<QueryResponse> FaultInjectingEndpoint::QueryWithDeadline(
    const std::string& text, const Deadline& deadline) {
  return QueryCancellable(text, CancelToken(deadline));
}

Result<QueryResponse> FaultInjectingEndpoint::QueryCancellable(
    const std::string& text, const CancelToken& cancel) {
  const Deadline& deadline = cancel.deadline();
  requests_.fetch_add(1, std::memory_order_relaxed);

  uint64_t occurrence;
  uint64_t arrival;
  uint64_t text_hash = std::hash<std::string>{}(text);
  {
    std::lock_guard<std::mutex> lock(mu_);
    occurrence = text_occurrences_[text_hash]++;
    arrival = arrival_index_++;
  }

  if (down_.load(std::memory_order_relaxed)) {
    outage_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("endpoint " + id() + " is down");
  }
  if (profile_.crash_after_n_queries > 0 &&
      arrival >= profile_.crash_after_n_queries) {
    outage_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("endpoint " + id() + " crashed after " +
                               std::to_string(
                                   profile_.crash_after_n_queries) +
                               " queries");
  }
  if (profile_.outage_length > 0 && arrival >= profile_.outage_start &&
      arrival < profile_.outage_start + profile_.outage_length) {
    outage_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("endpoint " + id() +
                               " is in an outage window (request #" +
                               std::to_string(arrival) + ")");
  }

  // One deterministic draw stream per (seed, endpoint, text, occurrence).
  Rng rng(profile_.seed ^ (id_hash_ * 0x9e3779b97f4a7c15ULL) ^
          (text_hash * 0xbf58476d1ce4e5b9ULL) ^
          (occurrence * 0x94d049bb133111ebULL));
  if (rng.NextBool(profile_.transient_error_rate)) {
    injected_errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("injected transient failure at " + id());
  }
  if (rng.NextBool(profile_.timeout_rate)) {
    injected_timeouts_.fetch_add(1, std::memory_order_relaxed);
    return Status::Timeout("injected server timeout at " + id());
  }
  if (rng.NextBool(profile_.rate_limit_rate)) {
    injected_rate_limits_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("rate limited by " + id());
  }

  bool slow = rng.NextBool(profile_.slow_rate) && profile_.slow_latency_ms > 0;
  if (slow) {
    injected_slowdowns_.fetch_add(1, std::memory_order_relaxed);
    // Slow responders still respect the caller's deadline budget: the
    // imposed delay is capped to the remaining time (the response then
    // arrives with the deadline already spent — the caller's next
    // cooperative check fails it with kTimeout).
    double sleep_ms =
        std::min(profile_.slow_latency_ms, deadline.RemainingMillis());
    if (sleep_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
    }
  }

  passed_through_.fetch_add(1, std::memory_order_relaxed);
  Result<QueryResponse> response = inner_->QueryCancellable(text, cancel);
  if (response.ok() && slow) {
    response->network_ms += profile_.slow_latency_ms;
  }
  return response;
}

FaultStats FaultInjectingEndpoint::stats() const {
  FaultStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.injected_errors = injected_errors_.load(std::memory_order_relaxed);
  stats.injected_timeouts = injected_timeouts_.load(std::memory_order_relaxed);
  stats.injected_rate_limits =
      injected_rate_limits_.load(std::memory_order_relaxed);
  stats.injected_slowdowns =
      injected_slowdowns_.load(std::memory_order_relaxed);
  stats.outage_failures = outage_failures_.load(std::memory_order_relaxed);
  stats.passed_through = passed_through_.load(std::memory_order_relaxed);
  return stats;
}

void FaultInjectingEndpoint::ResetHistory() {
  std::lock_guard<std::mutex> lock(mu_);
  text_occurrences_.clear();
  arrival_index_ = 0;
  requests_.store(0, std::memory_order_relaxed);
  injected_errors_.store(0, std::memory_order_relaxed);
  injected_timeouts_.store(0, std::memory_order_relaxed);
  injected_rate_limits_.store(0, std::memory_order_relaxed);
  injected_slowdowns_.store(0, std::memory_order_relaxed);
  outage_failures_.store(0, std::memory_order_relaxed);
  passed_through_.store(0, std::memory_order_relaxed);
}

}  // namespace lusail::net
