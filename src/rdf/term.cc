#include "rdf/term.h"

#include <cstdio>
#include <cstdlib>
#include <tuple>

#include "common/string_util.h"

namespace lusail::rdf {

Term Term::Iri(std::string iri) {
  Term t;
  t.kind_ = TermKind::kIri;
  t.lexical_ = std::move(iri);
  return t;
}

Term Term::Literal(std::string lexical) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.lexical_ = std::move(lexical);
  return t;
}

Term Term::TypedLiteral(std::string lexical, std::string datatype) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.lexical_ = std::move(lexical);
  t.datatype_ = std::move(datatype);
  return t;
}

Term Term::LangLiteral(std::string lexical, std::string lang) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.lexical_ = std::move(lexical);
  t.lang_ = std::move(lang);
  return t;
}

Term Term::Integer(int64_t value) {
  return TypedLiteral(std::to_string(value), std::string(kXsdInteger));
}

Term Term::Double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return TypedLiteral(buf, std::string(kXsdDouble));
}

Term Term::BlankNode(std::string label) {
  Term t;
  t.kind_ = TermKind::kBlankNode;
  t.lexical_ = std::move(label);
  return t;
}

bool Term::IsNumeric() const {
  return kind_ == TermKind::kLiteral &&
         (datatype_ == kXsdInteger || datatype_ == kXsdDecimal ||
          datatype_ == kXsdDouble);
}

double Term::AsDouble() const { return std::strtod(lexical_.c_str(), nullptr); }

std::string Term::ToString() const {
  switch (kind_) {
    case TermKind::kIri:
      return "<" + lexical_ + ">";
    case TermKind::kBlankNode:
      return "_:" + lexical_;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeLiteral(lexical_) + "\"";
      if (!lang_.empty()) {
        out += "@" + lang_;
      } else if (!datatype_.empty()) {
        out += "^^<" + datatype_ + ">";
      }
      return out;
    }
  }
  return "";
}

Result<Term> Term::Parse(std::string_view token) {
  token = StripWhitespace(token);
  if (token.empty()) {
    return Status::ParseError("empty term token");
  }
  if (token.front() == '<') {
    if (token.back() != '>') {
      return Status::ParseError("unterminated IRI: " + std::string(token));
    }
    return Term::Iri(std::string(token.substr(1, token.size() - 2)));
  }
  if (StartsWith(token, "_:")) {
    return Term::BlankNode(std::string(token.substr(2)));
  }
  if (token.front() == '"') {
    // Find the closing quote, honoring backslash escapes.
    size_t close = std::string_view::npos;
    for (size_t i = 1; i < token.size(); ++i) {
      if (token[i] == '\\') {
        ++i;
        continue;
      }
      if (token[i] == '"') {
        close = i;
        break;
      }
    }
    if (close == std::string_view::npos) {
      return Status::ParseError("unterminated literal: " + std::string(token));
    }
    std::string lexical = UnescapeLiteral(token.substr(1, close - 1));
    std::string_view rest = token.substr(close + 1);
    if (rest.empty()) {
      return Term::Literal(std::move(lexical));
    }
    if (rest.front() == '@') {
      return Term::LangLiteral(std::move(lexical), std::string(rest.substr(1)));
    }
    if (StartsWith(rest, "^^<") && rest.back() == '>') {
      return Term::TypedLiteral(std::move(lexical),
                                std::string(rest.substr(3, rest.size() - 4)));
    }
    return Status::ParseError("malformed literal suffix: " +
                              std::string(token));
  }
  return Status::ParseError("unrecognized term token: " + std::string(token));
}

bool Term::operator<(const Term& other) const {
  return std::tie(kind_, lexical_, datatype_, lang_) <
         std::tie(other.kind_, other.lexical_, other.datatype_, other.lang_);
}

size_t Term::Hash() const {
  size_t h = 1469598103934665603ULL;
  auto mix = [&h](std::string_view s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0xff;
    h *= 1099511628211ULL;
  };
  h ^= static_cast<size_t>(kind_);
  h *= 1099511628211ULL;
  mix(lexical_);
  mix(datatype_);
  mix(lang_);
  return h;
}

}  // namespace lusail::rdf
