#ifndef LUSAIL_RDF_TERM_H_
#define LUSAIL_RDF_TERM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace lusail::rdf {

/// Kind of an RDF term.
enum class TermKind : uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlankNode = 2,
};

/// Well-known XSD datatype IRIs.
inline constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr std::string_view kXsdDecimal =
    "http://www.w3.org/2001/XMLSchema#decimal";
inline constexpr std::string_view kXsdDouble =
    "http://www.w3.org/2001/XMLSchema#double";
inline constexpr std::string_view kXsdString =
    "http://www.w3.org/2001/XMLSchema#string";
inline constexpr std::string_view kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";

/// The rdf:type predicate IRI.
inline constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// An RDF term: IRI, literal (with optional datatype IRI or language tag),
/// or blank node. Terms are immutable value types; equality is structural.
class Term {
 public:
  /// Default-constructs an empty IRI; only useful as a placeholder.
  Term() : kind_(TermKind::kIri) {}

  /// Creates an IRI term.
  static Term Iri(std::string iri);

  /// Creates a plain (xsd:string) literal.
  static Term Literal(std::string lexical);

  /// Creates a typed literal.
  static Term TypedLiteral(std::string lexical, std::string datatype);

  /// Creates a language-tagged literal.
  static Term LangLiteral(std::string lexical, std::string lang);

  /// Creates an xsd:integer literal.
  static Term Integer(int64_t value);

  /// Creates an xsd:double literal.
  static Term Double(double value);

  /// Creates a blank node with the given label (no leading "_:").
  static Term BlankNode(std::string label);

  TermKind kind() const { return kind_; }
  bool is_iri() const { return kind_ == TermKind::kIri; }
  bool is_literal() const { return kind_ == TermKind::kLiteral; }
  bool is_blank() const { return kind_ == TermKind::kBlankNode; }

  /// The lexical form: IRI string, literal value, or blank-node label.
  const std::string& lexical() const { return lexical_; }

  /// Datatype IRI for literals ("" when plain or language-tagged).
  const std::string& datatype() const { return datatype_; }

  /// Language tag for literals ("" when absent).
  const std::string& lang() const { return lang_; }

  /// True for literals whose datatype is a numeric XSD type.
  bool IsNumeric() const;

  /// Parses the lexical form as a double. Requires IsNumeric().
  double AsDouble() const;

  /// N-Triples serialization: <iri>, "lit"^^<dt>, "lit"@lang, _:label.
  std::string ToString() const;

  /// Parses a single N-Triples-syntax token into a Term.
  static Result<Term> Parse(std::string_view token);

  bool operator==(const Term& other) const {
    return kind_ == other.kind_ && lexical_ == other.lexical_ &&
           datatype_ == other.datatype_ && lang_ == other.lang_;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }

  /// Total order for use in sorted containers (kind, lexical, datatype,
  /// lang).
  bool operator<(const Term& other) const;

  /// Hash over all fields (FNV-1a).
  size_t Hash() const;

 private:
  TermKind kind_;
  std::string lexical_;
  std::string datatype_;
  std::string lang_;
};

/// std::hash adapter for Term.
struct TermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

}  // namespace lusail::rdf

#endif  // LUSAIL_RDF_TERM_H_
