#ifndef LUSAIL_RDF_NTRIPLES_H_
#define LUSAIL_RDF_NTRIPLES_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"

namespace lusail::rdf {

/// A materialized RDF triple of Term values (pre-dictionary-encoding).
struct TermTriple {
  Term subject;
  Term predicate;
  Term object;

  bool operator==(const TermTriple& other) const {
    return subject == other.subject && predicate == other.predicate &&
           object == other.object;
  }

  /// N-Triples line without the trailing newline, e.g. `<s> <p> "o" .`
  std::string ToString() const;
};

/// Parses one N-Triples line (`<s> <p> <o> .`, comments and blank lines
/// yield no triple). Returns true via `*has_triple` when a triple was
/// produced.
Status ParseNTriplesLine(std::string_view line, TermTriple* triple,
                         bool* has_triple);

/// Parses a full N-Triples document into triples. Stops at the first
/// syntax error.
Result<std::vector<TermTriple>> ParseNTriples(std::string_view text);

/// Serializes triples as an N-Triples document.
std::string WriteNTriples(const std::vector<TermTriple>& triples);

}  // namespace lusail::rdf

#endif  // LUSAIL_RDF_NTRIPLES_H_
