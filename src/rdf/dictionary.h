#ifndef LUSAIL_RDF_DICTIONARY_H_
#define LUSAIL_RDF_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace lusail::rdf {

/// Dense integer id of an interned term. Valid ids start at 0;
/// kInvalidTermId marks "not present".
using TermId = uint64_t;
inline constexpr TermId kInvalidTermId = ~0ULL;

/// Bidirectional Term <-> TermId map. Every triple store (one per endpoint)
/// owns a private Dictionary; the federated query processor owns another
/// one for join keys, re-interning endpoint results as they arrive.
///
/// Not thread-safe for concurrent interning; lookups of already-interned
/// ids are safe once loading is complete.
class Dictionary {
 public:
  Dictionary() = default;

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Interns `term`, returning its id (existing or newly assigned).
  TermId Intern(const Term& term);

  /// Returns the id of `term` if interned, otherwise kInvalidTermId.
  TermId Lookup(const Term& term) const;

  /// Returns the term for `id`. Requires id < size().
  const Term& term(TermId id) const { return terms_[id]; }

  /// Number of interned terms.
  size_t size() const { return terms_.size(); }

  /// Approximate memory usage in bytes (term payloads + table overhead).
  size_t MemoryUsageBytes() const;

 private:
  std::vector<Term> terms_;
  std::unordered_map<Term, TermId, TermHash> ids_;
};

}  // namespace lusail::rdf

#endif  // LUSAIL_RDF_DICTIONARY_H_
