#include "rdf/ntriples.h"

#include "common/string_util.h"

namespace lusail::rdf {

namespace {

// Extracts the next term token from `line` starting at `*pos`, advancing
// `*pos` past it. Handles IRIs, blank nodes, and literals with suffixes.
Status NextToken(std::string_view line, size_t* pos, std::string_view* token) {
  while (*pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[*pos]))) {
    ++*pos;
  }
  if (*pos >= line.size()) {
    return Status::ParseError("unexpected end of N-Triples line");
  }
  size_t start = *pos;
  char c = line[start];
  if (c == '<') {
    size_t end = line.find('>', start);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated IRI");
    }
    *pos = end + 1;
  } else if (c == '_') {
    size_t end = start;
    while (end < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[end]))) {
      ++end;
    }
    *pos = end;
  } else if (c == '"') {
    size_t end = start + 1;
    while (end < line.size()) {
      if (line[end] == '\\') {
        end += 2;
        continue;
      }
      if (line[end] == '"') break;
      ++end;
    }
    if (end >= line.size()) {
      return Status::ParseError("unterminated literal");
    }
    ++end;  // Past the closing quote.
    // Absorb an optional @lang or ^^<datatype> suffix.
    if (end < line.size() && line[end] == '@') {
      while (end < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[end]))) {
        ++end;
      }
    } else if (end + 1 < line.size() && line[end] == '^' &&
               line[end + 1] == '^') {
      size_t close = line.find('>', end);
      if (close == std::string_view::npos) {
        return Status::ParseError("unterminated datatype IRI");
      }
      end = close + 1;
    }
    *pos = end;
  } else {
    return Status::ParseError("unexpected character in N-Triples line: " +
                              std::string(1, c));
  }
  *token = line.substr(start, *pos - start);
  return Status::OK();
}

}  // namespace

std::string TermTriple::ToString() const {
  return subject.ToString() + " " + predicate.ToString() + " " +
         object.ToString() + " .";
}

Status ParseNTriplesLine(std::string_view line, TermTriple* triple,
                         bool* has_triple) {
  *has_triple = false;
  std::string_view stripped = StripWhitespace(line);
  if (stripped.empty() || stripped.front() == '#') {
    return Status::OK();
  }
  size_t pos = 0;
  std::string_view s_tok, p_tok, o_tok;
  LUSAIL_RETURN_NOT_OK(NextToken(stripped, &pos, &s_tok));
  LUSAIL_RETURN_NOT_OK(NextToken(stripped, &pos, &p_tok));
  LUSAIL_RETURN_NOT_OK(NextToken(stripped, &pos, &o_tok));
  std::string_view tail = StripWhitespace(stripped.substr(pos));
  if (tail != ".") {
    return Status::ParseError("N-Triples line must end with '.': " +
                              std::string(stripped));
  }
  LUSAIL_ASSIGN_OR_RETURN(triple->subject, Term::Parse(s_tok));
  LUSAIL_ASSIGN_OR_RETURN(triple->predicate, Term::Parse(p_tok));
  LUSAIL_ASSIGN_OR_RETURN(triple->object, Term::Parse(o_tok));
  if (!triple->predicate.is_iri()) {
    return Status::ParseError("predicate must be an IRI: " +
                              std::string(p_tok));
  }
  *has_triple = true;
  return Status::OK();
}

Result<std::vector<TermTriple>> ParseNTriples(std::string_view text) {
  std::vector<TermTriple> triples;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = (end == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, end - start);
    TermTriple triple;
    bool has_triple = false;
    LUSAIL_RETURN_NOT_OK(ParseNTriplesLine(line, &triple, &has_triple));
    if (has_triple) triples.push_back(std::move(triple));
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return triples;
}

std::string WriteNTriples(const std::vector<TermTriple>& triples) {
  std::string out;
  for (const TermTriple& t : triples) {
    out += t.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace lusail::rdf
