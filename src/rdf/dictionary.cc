#include "rdf/dictionary.h"

namespace lusail::rdf {

TermId Dictionary::Intern(const Term& term) {
  auto it = ids_.find(term);
  if (it != ids_.end()) return it->second;
  TermId id = terms_.size();
  terms_.push_back(term);
  ids_.emplace(term, id);
  return id;
}

TermId Dictionary::Lookup(const Term& term) const {
  auto it = ids_.find(term);
  return it == ids_.end() ? kInvalidTermId : it->second;
}

size_t Dictionary::MemoryUsageBytes() const {
  size_t bytes = terms_.capacity() * sizeof(Term);
  for (const Term& t : terms_) {
    bytes += t.lexical().capacity() + t.datatype().capacity() +
             t.lang().capacity();
  }
  // Hash table entries: key copy + id + bucket overhead estimate.
  bytes += ids_.size() * (sizeof(Term) + sizeof(TermId) + 16);
  return bytes;
}

}  // namespace lusail::rdf
