#ifndef LUSAIL_COMMON_STRING_UTIL_H_
#define LUSAIL_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace lusail {

/// Returns true if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Returns true if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Escapes a string for embedding inside an N-Triples / SPARQL literal
/// (backslash, quote, newline, carriage return, tab).
std::string EscapeLiteral(std::string_view s);

/// Reverses EscapeLiteral. Unknown escapes are passed through verbatim.
std::string UnescapeLiteral(std::string_view s);

/// Case-insensitive ASCII equality, used for SPARQL keywords.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True when `text` is an ASK query, tolerating leading whitespace,
/// comments, and PREFIX/BASE declarations (matching is case-insensitive,
/// like SPARQL keywords). Lives here — not in the federation layer —
/// because both the federator's request accounting and the server-side
/// ASK-verdict cache need it.
bool LooksLikeAskQuery(const std::string& text);

/// Formats a byte count as a human-readable string, e.g. "3.2 MiB".
std::string HumanBytes(double bytes);

}  // namespace lusail

#endif  // LUSAIL_COMMON_STRING_UTIL_H_
