#ifndef LUSAIL_COMMON_STATUS_H_
#define LUSAIL_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace lusail {

/// Error category carried by a Status. Mirrors the failure classes that
/// surface in a federated query processor.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (query text, term syntax, options).
  kNotFound,          ///< Missing entity (endpoint id, variable, file).
  kParseError,        ///< SPARQL or N-Triples syntax error.
  kTimeout,           ///< Query exceeded its deadline.
  kUnsupported,       ///< Feature outside the implemented SPARQL subset.
  kInternal,          ///< Invariant violation; indicates a bug.
  kUnavailable,       ///< Transient endpoint failure (outage, rate limit).
};

/// True for failure classes that a retry may fix: the request itself was
/// well-formed but the endpoint could not serve it right now.
inline bool IsRetryableCode(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout;
}

/// Returns a human-readable name for `code`, e.g. "ParseError".
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. Fallible library APIs return Status
/// (or Result<T>) instead of throwing; exceptions never cross module
/// boundaries.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given error code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }

  /// True when retrying the failed operation may succeed (transient
  /// endpoint unavailability or a per-attempt timeout).
  bool IsRetryable() const { return IsRetryableCode(code_); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Code: message" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error holder, analogous to absl::StatusOr. A Result is either
/// an OK status plus a value, or a non-OK status and no value.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding `value`.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT

  /// Constructs a failed Result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accesses the value. Requires ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T* operator->() {
    assert(ok());
    return &*value_;
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace lusail

/// Propagates a non-OK Status from an expression, Arrow-style.
#define LUSAIL_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::lusail::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (false)

/// Evaluates a Result-returning expression; on error returns its status,
/// otherwise moves the value into `lhs`.
#define LUSAIL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define LUSAIL_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define LUSAIL_ASSIGN_OR_RETURN_NAME(x, y) LUSAIL_ASSIGN_OR_RETURN_CONCAT(x, y)
#define LUSAIL_ASSIGN_OR_RETURN(lhs, expr) \
  LUSAIL_ASSIGN_OR_RETURN_IMPL(            \
      LUSAIL_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

#endif  // LUSAIL_COMMON_STATUS_H_
