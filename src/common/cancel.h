#ifndef LUSAIL_COMMON_CANCEL_H_
#define LUSAIL_COMMON_CANCEL_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/stopwatch.h"

namespace lusail {

/// Cooperative cancellation handle for one query evaluation: an optional
/// shared atomic flag plus a wall-clock deadline. Both fire the same way
/// — Cancelled() turns true and every evaluation loop that checks it
/// unwinds with kTimeout — so deadline expiry and explicit cancellation
/// (client disconnect, QueryService::Cancel, server shutdown) share one
/// code path and one retryable status.
///
/// Tokens are cheap value types. The default-constructed token is inert
/// (never fires, no allocation); a deadline-only token costs nothing
/// either, so the hot path of deadline-less queries stays allocation-free.
/// Only Cancellable() allocates the shared flag that lets another thread
/// cancel a running evaluation.
///
/// Granularity contract: evaluation code checks Cancelled() at *chunk*
/// boundaries (per endpoint fetch, per VALUES block, per join partition,
/// every few thousand join cells), so a multi-second evaluation aborts
/// within milliseconds of the flag being set without per-row clock reads.
class CancelToken {
 public:
  /// Inert token: never cancelled, infinite deadline.
  CancelToken() = default;

  /// Deadline-only token (no shared flag; Cancel() is a no-op). This is
  /// what a plain Execute(text, deadline) call wraps its deadline in.
  explicit CancelToken(const Deadline& deadline) : deadline_(deadline) {}

  /// A token another thread can fire via Cancel(), with an optional
  /// deadline on top. The one allocation happens here.
  static CancelToken Cancellable(const Deadline& deadline = Deadline()) {
    CancelToken token(deadline);
    token.state_ = std::make_shared<State>();
    return token;
  }

  /// Requests cancellation. Safe from any thread; a no-op on tokens
  /// without a shared flag.
  void Cancel() {
    if (state_ != nullptr) {
      state_->cancelled.store(true, std::memory_order_release);
    }
  }

  /// True when Cancel() was called (does not consider the deadline).
  bool CancelRequested() const {
    return state_ != nullptr &&
           state_->cancelled.load(std::memory_order_acquire);
  }

  /// True when evaluation must stop: explicit cancel or expired deadline.
  bool Cancelled() const {
    return CancelRequested() || deadline_.Expired();
  }

  /// The kTimeout status evaluation unwinds with, naming the cancellation
  /// point and distinguishing explicit cancellation from deadline expiry
  /// (both stay kTimeout so HTTP 504 mapping and retry classification are
  /// identical).
  Status StatusAt(const char* where) const {
    if (CancelRequested()) {
      return Status::Timeout(std::string("query cancelled during ") + where);
    }
    return Status::Timeout(std::string("deadline expired during ") + where);
  }

  /// The deadline endpoint requests and backoff sleeps are bounded by.
  const Deadline& deadline() const { return deadline_; }

  /// True when some other thread could fire this token (a shared flag
  /// exists); deadline-only tokens return false.
  bool can_cancel() const { return state_ != nullptr; }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
  };

  std::shared_ptr<State> state_;
  Deadline deadline_;
};

}  // namespace lusail

#endif  // LUSAIL_COMMON_CANCEL_H_
