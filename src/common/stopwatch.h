#ifndef LUSAIL_COMMON_STOPWATCH_H_
#define LUSAIL_COMMON_STOPWATCH_H_

#include <chrono>
#include <limits>

namespace lusail {

/// Monotonic wall-clock stopwatch used for phase profiling (source
/// selection / query analysis / execution) and benchmark timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock deadline for cooperative query timeouts. Engines check
/// Expired() between endpoint requests, mirroring the paper's one-hour
/// per-query abort limit.
class Deadline {
 public:
  /// An infinite deadline (never expires).
  Deadline() : has_deadline_(false) {}

  /// A deadline `millis` milliseconds from now.
  static Deadline AfterMillis(double millis) {
    Deadline d;
    d.has_deadline_ = true;
    d.expiry_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       millis));
    return d;
  }

  bool Expired() const {
    return has_deadline_ && Clock::now() >= expiry_;
  }

  /// Milliseconds until expiry: +infinity without a deadline, never
  /// negative. Retry loops use this to cap backoff sleeps so no attempt
  /// ever sleeps past the query deadline.
  double RemainingMillis() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    double ms = std::chrono::duration<double, std::milli>(expiry_ -
                                                          Clock::now())
                    .count();
    return ms > 0.0 ? ms : 0.0;
  }

  bool has_deadline() const { return has_deadline_; }

 private:
  using Clock = std::chrono::steady_clock;
  bool has_deadline_;
  Clock::time_point expiry_{};
};

}  // namespace lusail

#endif  // LUSAIL_COMMON_STOPWATCH_H_
