#include "common/thread_pool.h"

#include <algorithm>

namespace lusail {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    // Endpoint requests are latency-bound (the network simulator sleeps),
    // so the pool floor is higher than the core count on small machines.
    num_threads = std::max(8u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace lusail
