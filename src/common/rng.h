#ifndef LUSAIL_COMMON_RNG_H_
#define LUSAIL_COMMON_RNG_H_

#include <cstdint>

namespace lusail {

/// Deterministic 64-bit RNG (SplitMix64). Workload generators use this so
/// that every federation, interlink, and literal is reproducible from a
/// seed; benches and tests rely on that determinism.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    return lo + NextBelow(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace lusail

#endif  // LUSAIL_COMMON_RNG_H_
