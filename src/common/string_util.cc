#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace lusail {

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string EscapeLiteral(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string UnescapeLiteral(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case '\\':
        out += '\\';
        break;
      case '"':
        out += '"';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      default:
        out += '\\';
        out += s[i];
    }
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool LooksLikeAskQuery(const std::string& text) {
  size_t i = 0;
  while (i < text.size()) {
    // Skip whitespace and '#' comments.
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    if (text[i] == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    // Read the next keyword.
    size_t start = i;
    while (i < text.size() &&
           std::isalpha(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i == start) return false;  // Starts with '{', '<', digits, ...
    std::string word = text.substr(start, i - start);
    if (EqualsIgnoreCase(word, "ASK")) return true;
    if (EqualsIgnoreCase(word, "PREFIX") || EqualsIgnoreCase(word, "BASE")) {
      // Skip the declaration through its closing '>' of the IRI.
      while (i < text.size() && text[i] != '>') ++i;
      if (i < text.size()) ++i;
      continue;
    }
    return false;  // SELECT, CONSTRUCT, ...
  }
  return false;
}

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, kUnits[unit]);
  return buf;
}

}  // namespace lusail
