#ifndef LUSAIL_COMMON_THREAD_POOL_H_
#define LUSAIL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace lusail {

/// Fixed-size worker pool. This is the paper's Elastic Request Handler
/// (ERH): Lusail, the baselines, and the SAPE join phase schedule their
/// endpoint requests and local join partitions through a pool sized by the
/// number of physical cores (or an explicit thread count).
///
/// Tasks are arbitrary callables; Submit returns a std::future for the
/// callable's result. The pool drains remaining tasks on destruction.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers; 0 means
  /// std::thread::hardware_concurrency() (minimum 2).
  explicit ThreadPool(size_t num_threads = 0);

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn(args...)` and returns a future for its result.
  template <typename Fn, typename... Args>
  auto Submit(Fn&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<Fn, Args...>> {
    using R = std::invoke_result_t<Fn, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::bind(std::forward<Fn>(fn), std::forward<Args>(args)...));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lusail

#endif  // LUSAIL_COMMON_THREAD_POOL_H_
