#include "common/status.h"

namespace lusail {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace lusail
