#ifndef LUSAIL_BASELINES_HIBISCUS_H_
#define LUSAIL_BASELINES_HIBISCUS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "baselines/fedx_engine.h"
#include "federation/federation.h"

namespace lusail::baselines {

/// HiBISCuS-style source selection (Saleem & Ngonga Ngomo, ESWC 2014): a
/// preprocessing pass summarizes, per endpoint and per predicate, the URI
/// *authorities* (scheme + host) of subjects and objects. At query time a
/// triple pattern's candidate sources are pruned by predicate membership
/// and by the authority of any constant subject/object — no ASK probes
/// needed for patterns with a constant predicate.
///
/// This is the index add-on the paper stacks on FedX ("FedX+HiBISCuS"):
/// it helps on heterogeneous federations and is useless when all
/// endpoints share one schema (LUBM), exactly as in the paper.
class HibiscusIndex : public SourceProvider {
 public:
  /// Builds the index by inspecting every endpoint's store directly
  /// (standing in for the offline summary build over data dumps). The
  /// build duration models the paper's preprocessing cost; see
  /// build_millis().
  static HibiscusIndex Build(const fed::Federation& federation);

  std::optional<std::vector<int>> Sources(
      const sparql::TriplePattern& tp) const override;

  /// HiBISCuS's join-aware pruning: for every join variable shared by two
  /// patterns with constant predicates, a candidate source of one pattern
  /// survives only if its authorities at the variable's position
  /// intersect the union of the other pattern's authorities across its
  /// candidates. Iterates to a fixpoint.
  void PruneJointSources(
      const std::vector<sparql::TriplePattern>& triples,
      std::vector<std::vector<int>>* sources) const override;

  std::string name() const override { return "HiBISCuS"; }

  double build_millis() const { return build_millis_; }
  size_t SizeBytes() const;

  /// Authority of an IRI: scheme + "://" + host. Literals map to "~lit",
  /// blank nodes to "~bnode".
  static std::string Authority(const rdf::Term& term);

 private:
  struct EndpointSummary {
    /// predicate IRI -> authorities of its subjects / objects.
    std::map<std::string, std::set<std::string>> subject_auths;
    std::map<std::string, std::set<std::string>> object_auths;
  };
  std::vector<EndpointSummary> endpoints_;
  double build_millis_ = 0.0;
};

}  // namespace lusail::baselines

#endif  // LUSAIL_BASELINES_HIBISCUS_H_
