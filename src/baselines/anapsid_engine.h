#ifndef LUSAIL_BASELINES_ANAPSID_ENGINE_H_
#define LUSAIL_BASELINES_ANAPSID_ENGINE_H_

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "federation/binding_table.h"
#include "federation/federation.h"
#include "federation/source_selection.h"
#include "sparql/parser.h"

namespace lusail::baselines {

/// ANAPSID configuration.
struct AnapsidOptions {
  size_t num_threads = 0;
  bool use_cache = true;

  /// Client-side retry policy for endpoint requests (same decorator the
  /// Lusail engine uses). Disabled (fail-stop) by default.
  net::RetryPolicy retry_policy;

  /// Record a span trace into ExecutionProfile::trace (same format as
  /// Lusail's, so engine traces are comparable side by side).
  bool trace = false;
};

/// ANAPSID-style adaptive federated engine (Acosta et al., ISWC 2011) —
/// the adaptive system from the paper's related work (Section 6).
///
/// Decomposition follows ANAPSID's *star-shaped groups*: triple patterns
/// sharing a subject variable and the same relevant-source list form one
/// group, shipped whole to each relevant endpoint. Execution is
/// *adaptive and non-blocking*: every (group, endpoint) request is
/// dispatched concurrently, and groups are joined in completion order —
/// whichever endpoint answers first gets processed first (the in-process
/// analogue of ANAPSID's agjoin operator, which hides endpoint latency
/// and bursty traffic). Like FedX it is index-free (ASK + cache); unlike
/// FedX nothing is evaluated one-triple-pattern-at-a-time sequentially.
///
/// This engine is an *extension* beyond the paper's evaluated lineup
/// (the paper compares against FedX, HiBISCuS, SPLENDID only); it is
/// wired into the consistency test suite and available to benches.
class AnapsidEngine : public fed::FederatedEngine {
 public:
  explicit AnapsidEngine(const fed::Federation* federation,
                         AnapsidOptions options = AnapsidOptions());

  std::string name() const override { return "ANAPSID"; }

  Result<fed::FederatedResult> Execute(const std::string& sparql_text,
                                       const Deadline& deadline) override;
  using fed::FederatedEngine::Execute;

  void ClearCaches() { ask_cache_.Clear(); }

 private:
  /// A star-shaped group: patterns sharing a subject and source list.
  struct StarGroup {
    std::vector<sparql::TriplePattern> triples;
    std::vector<int> sources;
    std::vector<sparql::Expr> filters;
  };

  static std::vector<StarGroup> BuildStarGroups(
      const std::vector<sparql::TriplePattern>& triples,
      const std::vector<std::vector<int>>& sources,
      const std::vector<sparql::Expr>& filters,
      std::vector<sparql::Expr>* residual_filters);

  Result<fed::BindingTable> ExecutePattern(const sparql::GraphPattern& pattern,
                                           fed::SharedDictionary* dict,
                                           fed::MetricsCollector* metrics,
                                           const Deadline& deadline,
                                           fed::ExecutionProfile* profile);

  /// The engine's retry policy, or null when retries are disabled.
  const net::RetryPolicy* Retry() const {
    return options_.retry_policy.enabled() ? &options_.retry_policy : nullptr;
  }

  const fed::Federation* federation_;
  AnapsidOptions options_;
  ThreadPool pool_;
  fed::AskCache ask_cache_;
};

}  // namespace lusail::baselines

#endif  // LUSAIL_BASELINES_ANAPSID_ENGINE_H_
