#include "baselines/anapsid_engine.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <set>

#include "sparql/expr_eval.h"
#include "sparql/serializer.h"

namespace lusail::baselines {

namespace {

using fed::BindingTable;
using sparql::TriplePattern;

std::vector<std::string> GroupVars(const std::vector<TriplePattern>& triples) {
  std::vector<std::string> out;
  for (const TriplePattern& tp : triples) {
    for (const std::string& v : tp.VariableNames()) {
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
    }
  }
  return out;
}

std::string GroupSparql(const std::vector<TriplePattern>& triples,
                        const std::vector<sparql::Expr>& filters) {
  sparql::Query q;
  q.form = sparql::QueryForm::kSelect;
  for (const std::string& v : GroupVars(triples)) {
    q.projection.push_back(sparql::Variable{v});
  }
  q.where.triples = triples;
  q.where.filters = filters;
  return sparql::QueryToString(q);
}

}  // namespace

AnapsidEngine::AnapsidEngine(const fed::Federation* federation,
                             AnapsidOptions options)
    : federation_(federation),
      options_(options),
      pool_(options.num_threads) {}

std::vector<AnapsidEngine::StarGroup> AnapsidEngine::BuildStarGroups(
    const std::vector<TriplePattern>& triples,
    const std::vector<std::vector<int>>& sources,
    const std::vector<sparql::Expr>& filters,
    std::vector<sparql::Expr>* residual_filters) {
  // Key: (subject vertex, source list). Patterns with a constant or
  // distinct subject each start their own group.
  std::map<std::pair<std::string, std::vector<int>>, StarGroup> stars;
  std::vector<StarGroup> groups;
  for (size_t i = 0; i < triples.size(); ++i) {
    std::string subject = triples[i].s.ToString();
    StarGroup& group = stars[{subject, sources[i]}];
    group.triples.push_back(triples[i]);
    group.sources = sources[i];
  }
  groups.reserve(stars.size());
  for (auto& [key, group] : stars) groups.push_back(std::move(group));

  for (const sparql::Expr& f : filters) {
    std::set<std::string> fvars;
    f.CollectVariables(&fvars);
    bool pushed = false;
    for (StarGroup& group : groups) {
      std::vector<std::string> gv = GroupVars(group.triples);
      bool covered =
          std::all_of(fvars.begin(), fvars.end(), [&](const auto& v) {
            return std::find(gv.begin(), gv.end(), v) != gv.end();
          });
      if (covered) {
        group.filters.push_back(f);
        pushed = true;
        break;
      }
    }
    if (!pushed) residual_filters->push_back(f);
  }
  return groups;
}

Result<BindingTable> AnapsidEngine::ExecutePattern(
    const sparql::GraphPattern& pattern, fed::SharedDictionary* dict,
    fed::MetricsCollector* metrics, const Deadline& deadline,
    fed::ExecutionProfile* profile) {
  if (!pattern.exists_filters.empty()) {
    return Status::Unsupported(
        "FILTER [NOT] EXISTS is not supported by ANAPSID");
  }

  Stopwatch timer;
  fed::PhaseSpan source_span(metrics, "source selection");
  fed::SourceSelector selector(federation_, &ask_cache_, &pool_);
  LUSAIL_ASSIGN_OR_RETURN(
      std::vector<std::vector<int>> sources,
      selector.SelectSources(pattern.triples, metrics, deadline,
                             options_.use_cache, Retry()));
  source_span.End();
  profile->source_selection_ms += timer.ElapsedMillis();

  timer.Restart();
  fed::PhaseSpan exec_span(metrics, "adaptive execution");
  for (size_t i = 0; i < pattern.triples.size(); ++i) {
    if (sources[i].empty()) {
      BindingTable empty;
      std::set<std::string> vars;
      pattern.CollectVariables(&vars);
      empty.vars.assign(vars.begin(), vars.end());
      return empty;
    }
  }

  std::vector<sparql::Expr> residual_filters;
  std::vector<StarGroup> groups = BuildStarGroups(
      pattern.triples, sources, pattern.filters, &residual_filters);

  // Adaptive phase: dispatch every (group, endpoint) request at once.
  struct Fetch {
    size_t group;
    std::future<Result<sparql::ResultTable>> result;
  };
  std::vector<Fetch> fetches;
  for (size_t g = 0; g < groups.size(); ++g) {
    std::string text = GroupSparql(groups[g].triples, groups[g].filters);
    for (int ep : groups[g].sources) {
      Fetch fetch;
      fetch.group = g;
      fetch.result = pool_.Submit([this, ep, text, metrics, deadline]() {
        return federation_->Execute(static_cast<size_t>(ep), text, metrics,
                                    deadline, Retry());
      });
      fetches.push_back(std::move(fetch));
    }
  }

  // agjoin-style routing: consume responses in completion order; a
  // group's table joins into the running result the moment its last
  // endpoint answered.
  std::vector<BindingTable> group_tables(groups.size());
  std::vector<size_t> outstanding(groups.size(), 0);
  for (size_t g = 0; g < groups.size(); ++g) {
    group_tables[g].vars = GroupVars(groups[g].triples);
    outstanding[g] = groups[g].sources.size();
  }
  std::vector<BindingTable> ready;
  // Memory-footprint proxy: all rows held across the partial group
  // tables and the ready-to-join tables (matches what SAPE and FedX
  // report, so the engines' peaks are comparable).
  auto track_peak = [&]() {
    uint64_t total = 0;
    for (const BindingTable& t : group_tables) total += t.NumRows();
    for (const BindingTable& t : ready) total += t.NumRows();
    profile->peak_intermediate_rows =
        std::max(profile->peak_intermediate_rows, total);
  };
  std::vector<bool> done(fetches.size(), false);
  size_t remaining = fetches.size();
  Status first_error;
  while (remaining > 0) {
    // Poll for any completed future (completion-order processing).
    bool progressed = false;
    for (size_t i = 0; i < fetches.size(); ++i) {
      if (done[i]) continue;
      if (fetches[i].result.wait_for(std::chrono::milliseconds(0)) !=
          std::future_status::ready) {
        continue;
      }
      done[i] = true;
      --remaining;
      progressed = true;
      Result<sparql::ResultTable> part = fetches[i].result.get();
      if (!part.ok()) {
        if (first_error.ok()) first_error = part.status();
        continue;
      }
      size_t g = fetches[i].group;
      fed::AppendUnion(&group_tables[g], fed::InternTable(*part, dict));
      track_peak();
      if (--outstanding[g] == 0) {
        ready.push_back(std::move(group_tables[g]));
        // Opportunistically join with any connected ready table.
        bool merged = true;
        while (merged && ready.size() > 1) {
          merged = false;
          for (size_t a = 0; a < ready.size() && !merged; ++a) {
            for (size_t b = a + 1; b < ready.size() && !merged; ++b) {
              if (!BindingTable::SharedVars(ready[a], ready[b]).empty()) {
                ready[a] = fed::HashJoin(ready[a], ready[b]);
                ready.erase(ready.begin() + b);
                merged = true;
              }
            }
          }
        }
        track_peak();
      }
    }
    if (!progressed && remaining > 0) {
      // Nothing ready yet: block briefly on the first unfinished future.
      for (size_t i = 0; i < fetches.size(); ++i) {
        if (!done[i]) {
          fetches[i].result.wait_for(std::chrono::milliseconds(1));
          break;
        }
      }
    }
  }
  if (!first_error.ok()) return first_error;

  // Cartesian-combine any disjoint leftovers.
  while (ready.size() > 1) {
    ready[0] = fed::HashJoin(ready[0], ready[1]);
    ready.erase(ready.begin() + 1);
    track_peak();
  }
  BindingTable table = ready.empty() ? BindingTable() : std::move(ready[0]);

  for (const auto& chain : pattern.unions) {
    BindingTable unioned;
    for (const sparql::GraphPattern& alt : chain) {
      LUSAIL_ASSIGN_OR_RETURN(
          BindingTable branch,
          ExecutePattern(alt, dict, metrics, deadline, profile));
      fed::AppendUnion(&unioned, branch);
    }
    if (table.vars.empty() && table.NumRows() == 0 && pattern.triples.empty()) {
      table = std::move(unioned);
    } else {
      table = fed::HashJoin(table, unioned);
    }
  }
  for (const sparql::GraphPattern& opt : pattern.optionals) {
    LUSAIL_ASSIGN_OR_RETURN(
        BindingTable right,
        ExecutePattern(opt, dict, metrics, deadline, profile));
    table = fed::LeftOuterJoin(table, right);
  }
  for (const sparql::Expr& f : residual_filters) {
    fed::FilterRows(&table, f, *dict);
  }
  profile->peak_intermediate_rows = std::max(
      profile->peak_intermediate_rows,
      static_cast<uint64_t>(table.NumRows()));
  profile->execution_ms += timer.ElapsedMillis();
  return table;
}

Result<fed::FederatedResult> AnapsidEngine::Execute(
    const std::string& sparql_text, const Deadline& deadline) {
  Stopwatch total_timer;
  LUSAIL_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(sparql_text));

  fed::FederatedResult result;
  fed::MetricsCollector metrics;
  fed::QueryTrace trace(options_.trace, name(), &metrics);
  fed::SharedDictionary dict;

  Result<BindingTable> table_or =
      ExecutePattern(query.where, &dict, &metrics, deadline, &result.profile);
  if (!table_or.ok()) {
    metrics.FillCounters(&result.profile);
    trace.Attach(&result.profile);
    return table_or.status();
  }
  BindingTable table = std::move(table_or).value();

  if (query.form == sparql::QueryForm::kAsk) {
    if (table.NumRows() > 0) result.table.rows.push_back({});
  } else if (query.aggregate.has_value()) {
    const sparql::CountAggregate& agg = *query.aggregate;
    uint64_t count = 0;
    if (!agg.var.has_value()) {
      count = table.NumRows();
    } else {
      int idx = table.VarIndex(agg.var->name);
      if (idx >= 0) {
        std::set<rdf::TermId> seen;
        for (rdf::TermId id : table.Column(static_cast<size_t>(idx))) {
          if (id == rdf::kInvalidTermId) continue;
          if (agg.distinct) {
            seen.insert(id);
          } else {
            ++count;
          }
        }
        if (agg.distinct) count = seen.size();
      }
    }
    result.table.vars.push_back(agg.alias.name);
    result.table.rows.push_back(
        {rdf::Term::Integer(static_cast<int64_t>(count))});
  } else {
    std::vector<std::string> projection;
    for (const sparql::Variable& v : query.EffectiveProjection()) {
      projection.push_back(v.name);
    }
    BindingTable projected = fed::Project(table, projection, query.distinct);
    if (!query.order_by.empty()) {
      result.table = fed::DecodeTable(projected, dict);
      sparql::SortRows(&result.table, query.order_by);
      size_t begin = std::min<size_t>(query.offset.value_or(0),
                                      result.table.rows.size());
      size_t end = result.table.rows.size();
      if (query.limit.has_value()) end = std::min(end, begin + *query.limit);
      result.table.rows.assign(result.table.rows.begin() + begin,
                               result.table.rows.begin() + end);
    } else {
      size_t begin =
          std::min<size_t>(query.offset.value_or(0), projected.NumRows());
      size_t end = projected.NumRows();
      if (query.limit.has_value()) end = std::min(end, begin + *query.limit);
      result.table = fed::DecodeTable(projected.Slice(begin, end), dict);
    }
  }

  metrics.FillCounters(&result.profile);
  result.profile.total_ms = total_timer.ElapsedMillis();
  trace.Attach(&result.profile);
  return result;
}

}  // namespace lusail::baselines
