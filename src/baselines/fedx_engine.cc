#include "baselines/fedx_engine.h"

#include "sparql/expr_eval.h"

#include <algorithm>
#include <future>
#include <map>
#include <set>
#include <unordered_set>

#include "sparql/serializer.h"

namespace lusail::baselines {

namespace {

using fed::BindingTable;
using sparql::TriplePattern;

std::vector<std::string> OperandVars(
    const std::vector<TriplePattern>& triples) {
  std::vector<std::string> out;
  for (const TriplePattern& tp : triples) {
    for (const std::string& v : tp.VariableNames()) {
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
    }
  }
  return out;
}

std::string OperandSparql(const std::vector<TriplePattern>& triples,
                          const std::vector<sparql::Expr>& filters,
                          const std::vector<std::string>& projection,
                          const sparql::ValuesClause* values) {
  sparql::Query q;
  q.form = sparql::QueryForm::kSelect;
  for (const std::string& v : projection) {
    q.projection.push_back(sparql::Variable{v});
  }
  if (q.projection.empty()) q.select_all = true;
  q.where.triples = triples;
  q.where.filters = filters;
  if (values != nullptr) q.where.values.push_back(*values);
  return sparql::QueryToString(q);
}

}  // namespace

FedXEngine::FedXEngine(const fed::Federation* federation, FedXOptions options)
    : federation_(federation),
      options_(options),
      pool_(options.num_threads) {}

std::string FedXEngine::name() const {
  return provider_ == nullptr ? "FedX" : "FedX+" + provider_->name();
}

Result<std::vector<std::vector<int>>> FedXEngine::SelectSources(
    const std::vector<TriplePattern>& triples, fed::MetricsCollector* metrics,
    const Deadline& deadline) {
  std::vector<std::vector<int>> sources(triples.size());
  std::vector<TriplePattern> need_ask;
  std::vector<size_t> need_ask_index;
  for (size_t i = 0; i < triples.size(); ++i) {
    std::optional<std::vector<int>> from_index;
    if (provider_ != nullptr) from_index = provider_->Sources(triples[i]);
    if (from_index.has_value()) {
      sources[i] = std::move(*from_index);
    } else {
      need_ask.push_back(triples[i]);
      need_ask_index.push_back(i);
    }
  }
  if (!need_ask.empty()) {
    fed::SourceSelector selector(federation_, &ask_cache_, &pool_);
    LUSAIL_ASSIGN_OR_RETURN(
        std::vector<std::vector<int>> asked,
        selector.SelectSources(need_ask, metrics, deadline,
                               options_.use_cache, Retry()));
    for (size_t k = 0; k < need_ask.size(); ++k) {
      sources[need_ask_index[k]] = std::move(asked[k]);
    }
  }
  if (provider_ != nullptr) {
    provider_->PruneJointSources(triples, &sources);
  }
  return sources;
}

std::vector<FedXEngine::Operand> FedXEngine::BuildOperands(
    const std::vector<TriplePattern>& triples,
    const std::vector<std::vector<int>>& sources,
    const std::vector<sparql::Expr>& filters,
    std::vector<sparql::Expr>* residual_filters) {
  std::vector<Operand> ops;
  // Exclusive groups: patterns whose single relevant source matches.
  std::map<int, Operand> exclusive;
  for (size_t i = 0; i < triples.size(); ++i) {
    if (sources[i].size() == 1) {
      Operand& op = exclusive[sources[i][0]];
      op.triples.push_back(triples[i]);
      op.sources = sources[i];
      op.exclusive = true;
    } else {
      Operand op;
      op.triples.push_back(triples[i]);
      op.sources = sources[i];
      ops.push_back(std::move(op));
    }
  }
  for (auto& [ep, op] : exclusive) ops.push_back(std::move(op));

  // Push filters into the first operand covering their variables.
  for (const sparql::Expr& f : filters) {
    std::set<std::string> fvars;
    f.CollectVariables(&fvars);
    bool pushed = false;
    for (Operand& op : ops) {
      std::vector<std::string> ov = OperandVars(op.triples);
      bool covered =
          std::all_of(fvars.begin(), fvars.end(), [&](const auto& v) {
            return std::find(ov.begin(), ov.end(), v) != ov.end();
          });
      if (covered) {
        op.filters.push_back(f);
        pushed = true;
        break;
      }
    }
    if (!pushed) residual_filters->push_back(f);
  }
  return ops;
}

std::vector<size_t> FedXEngine::OrderOperands(const std::vector<Operand>& ops) {
  // FedX's variable-counting heuristic: repeatedly pick the operand with
  // the fewest free (still unbound) variables; exclusive groups win ties.
  std::vector<size_t> order;
  std::vector<bool> used(ops.size(), false);
  std::set<std::string> bound;
  for (size_t n = 0; n < ops.size(); ++n) {
    size_t best = ops.size();
    int best_free = 0;
    bool best_exclusive = false;
    bool best_connected = false;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (used[i]) continue;
      std::vector<std::string> vars = OperandVars(ops[i].triples);
      int free_vars = 0;
      bool connected = bound.empty();
      for (const std::string& v : vars) {
        if (bound.count(v)) {
          connected = true;
        } else {
          ++free_vars;
        }
      }
      bool better;
      if (best == ops.size()) {
        better = true;
      } else if (connected != best_connected) {
        better = connected;
      } else if (free_vars != best_free) {
        better = free_vars < best_free;
      } else {
        better = ops[i].exclusive && !best_exclusive;
      }
      if (better) {
        best = i;
        best_free = free_vars;
        best_exclusive = ops[i].exclusive;
        best_connected = connected;
      }
    }
    order.push_back(best);
    used[best] = true;
    for (const std::string& v : OperandVars(ops[best].triples)) {
      bound.insert(v);
    }
  }
  return order;
}

Result<BindingTable> FedXEngine::BoundJoinStep(
    const Operand& op, BindingTable table, bool left_outer,
    std::optional<uint64_t> result_cap, fed::SharedDictionary* dict,
    fed::MetricsCollector* metrics, const Deadline& deadline) {
  std::vector<std::string> op_vars = OperandVars(op.triples);
  std::vector<std::string> shared;
  for (const std::string& v : op_vars) {
    if (table.VarIndex(v) >= 0) shared.push_back(v);
  }

  auto fetch_all = [&]() -> Result<BindingTable> {
    // No bindings to ship: fetch the operand fully from all its sources.
    std::string text = OperandSparql(op.triples, op.filters, op_vars, nullptr);
    BindingTable fetched;
    fetched.vars = op_vars;
    for (int ep : op.sources) {
      LUSAIL_ASSIGN_OR_RETURN(
          sparql::ResultTable part,
          federation_->Execute(static_cast<size_t>(ep), text, metrics,
                               deadline, Retry()));
      fed::AppendUnion(&fetched, fed::InternTable(part, dict));
    }
    return fetched;
  };

  if (table.vars.empty() && table.NumRows() == 0) {
    // First operand.
    return fetch_all();
  }
  if (shared.empty()) {
    LUSAIL_ASSIGN_OR_RETURN(BindingTable fetched, fetch_all());
    return left_outer ? fed::LeftOuterJoin(table, fetched)
                      : fed::HashJoin(table, fetched);
  }

  // Distinct binding tuples of the shared variables.
  std::vector<int> shared_idx;
  for (const std::string& v : shared) shared_idx.push_back(table.VarIndex(v));
  std::vector<std::vector<rdf::TermId>> distinct;
  {
    std::set<std::vector<rdf::TermId>> seen;
    for (size_t r = 0; r < table.NumRows(); ++r) {
      std::vector<rdf::TermId> key;
      key.reserve(shared_idx.size());
      bool bound_key = true;
      for (int idx : shared_idx) {
        rdf::TermId id = table.At(r, static_cast<size_t>(idx));
        if (id == rdf::kInvalidTermId) {
          bound_key = false;
          break;
        }
        key.push_back(id);
      }
      if (bound_key && seen.insert(key).second) distinct.push_back(key);
    }
  }
  if (distinct.empty()) {
    LUSAIL_ASSIGN_OR_RETURN(BindingTable fetched, fetch_all());
    return left_outer ? fed::LeftOuterJoin(table, fetched)
                      : fed::HashJoin(table, fetched);
  }

  // Ship the bindings block by block to every relevant source,
  // sequentially — FedX processes the query one join step at a time.
  BindingTable fetched;
  fetched.vars = op_vars;
  for (const std::string& v : shared) {
    if (std::find(fetched.vars.begin(), fetched.vars.end(), v) ==
        fetched.vars.end()) {
      fetched.vars.push_back(v);
    }
  }
  const size_t block = std::max<size_t>(1, options_.bound_join_block_size);
  for (size_t start = 0; start < distinct.size(); start += block) {
    if (deadline.Expired()) {
      return Status::Timeout("deadline expired in FedX bound join");
    }
    sparql::ValuesClause values;
    for (const std::string& v : shared) {
      values.vars.push_back(sparql::Variable{v});
    }
    size_t end = std::min(distinct.size(), start + block);
    for (size_t i = start; i < end; ++i) {
      std::vector<std::optional<rdf::Term>> row;
      row.reserve(distinct[i].size());
      for (rdf::TermId id : distinct[i]) row.push_back(dict->term(id));
      values.rows.push_back(std::move(row));
    }
    std::string text = OperandSparql(op.triples, op.filters, fetched.vars,
                                     &values);
    for (int ep : op.sources) {
      LUSAIL_ASSIGN_OR_RETURN(
          sparql::ResultTable part,
          federation_->Execute(static_cast<size_t>(ep), text, metrics,
                               deadline, Retry()));
      fed::AppendUnion(&fetched, fed::InternTable(part, dict));
    }
    if (result_cap.has_value()) {
      // LIMIT shortcut: stop shipping blocks once enough joined results
      // exist (FedX's first-N termination; see the paper's C4 discussion).
      BindingTable probe = left_outer ? fed::LeftOuterJoin(table, fetched)
                                      : fed::HashJoin(table, fetched);
      if (probe.NumRows() >= *result_cap) return probe;
    }
  }
  return left_outer ? fed::LeftOuterJoin(table, fetched)
                    : fed::HashJoin(table, fetched);
}

Result<BindingTable> FedXEngine::ExecutePattern(
    const sparql::GraphPattern& pattern, std::optional<uint64_t> result_cap,
    fed::SharedDictionary* dict, fed::MetricsCollector* metrics,
    const Deadline& deadline, fed::ExecutionProfile* profile) {
  if (!pattern.exists_filters.empty()) {
    return Status::Unsupported("FILTER [NOT] EXISTS is not supported by FedX");
  }

  Stopwatch timer;
  fed::PhaseSpan source_span(metrics, "source selection");
  LUSAIL_ASSIGN_OR_RETURN(
      std::vector<std::vector<int>> sources,
      SelectSources(pattern.triples, metrics, deadline));
  source_span.End();
  profile->source_selection_ms += timer.ElapsedMillis();

  timer.Restart();
  fed::PhaseSpan exec_span(metrics, "bound-join execution");
  for (size_t i = 0; i < pattern.triples.size(); ++i) {
    if (sources[i].empty()) {
      BindingTable empty;
      std::set<std::string> vars;
      pattern.CollectVariables(&vars);
      empty.vars.assign(vars.begin(), vars.end());
      return empty;
    }
  }

  std::vector<sparql::Expr> residual_filters;
  std::vector<Operand> ops =
      BuildOperands(pattern.triples, sources, pattern.filters,
                    &residual_filters);
  std::vector<size_t> order = OrderOperands(ops);

  BindingTable table;
  for (size_t k = 0; k < order.size(); ++k) {
    bool last = (k + 1 == order.size()) && pattern.unions.empty() &&
                pattern.optionals.empty() && residual_filters.empty();
    LUSAIL_ASSIGN_OR_RETURN(
        table, BoundJoinStep(ops[order[k]], std::move(table),
                             /*left_outer=*/false,
                             last ? result_cap : std::nullopt, dict, metrics,
                             deadline));
    profile->peak_intermediate_rows = std::max(
        profile->peak_intermediate_rows,
        static_cast<uint64_t>(table.NumRows()));
    if (table.NumRows() == 0 && !table.vars.empty() && k + 1 < order.size()) {
      // Join already empty; later operands cannot add rows.
      break;
    }
  }

  for (const auto& chain : pattern.unions) {
    BindingTable unioned;
    for (const sparql::GraphPattern& alt : chain) {
      LUSAIL_ASSIGN_OR_RETURN(
          BindingTable branch,
          ExecutePattern(alt, std::nullopt, dict, metrics, deadline, profile));
      fed::AppendUnion(&unioned, branch);
    }
    if (table.vars.empty() && table.NumRows() == 0 && pattern.triples.empty()) {
      table = std::move(unioned);
    } else {
      table = fed::HashJoin(table, unioned);
    }
  }
  for (const sparql::GraphPattern& opt : pattern.optionals) {
    LUSAIL_ASSIGN_OR_RETURN(
        BindingTable right,
        ExecutePattern(opt, std::nullopt, dict, metrics, deadline, profile));
    table = fed::LeftOuterJoin(table, right);
  }
  for (const sparql::Expr& f : residual_filters) {
    fed::FilterRows(&table, f, *dict);
  }
  if (pattern.triples.empty()) {
    for (const sparql::Expr& f : pattern.filters) {
      fed::FilterRows(&table, f, *dict);
    }
  }
  // VALUES blocks.
  for (const sparql::ValuesClause& vc : pattern.values) {
    BindingTable vt;
    for (const sparql::Variable& v : vc.vars) vt.vars.push_back(v.name);
    std::vector<rdf::TermId> ids;
    for (const auto& row : vc.rows) {
      ids.clear();
      for (const auto& cell : row) {
        ids.push_back(cell.has_value() ? dict->Intern(*cell)
                                       : rdf::kInvalidTermId);
      }
      vt.AppendRow(ids);
    }
    table = fed::HashJoin(table, vt);
  }
  profile->execution_ms += timer.ElapsedMillis();
  return table;
}

Result<fed::FederatedResult> FedXEngine::Execute(
    const std::string& sparql_text, const Deadline& deadline) {
  Stopwatch total_timer;
  LUSAIL_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(sparql_text));

  fed::FederatedResult result;
  fed::MetricsCollector metrics;
  fed::QueryTrace trace(options_.trace, name(), &metrics);
  fed::SharedDictionary dict;

  std::optional<uint64_t> cap;
  if (query.limit.has_value() && !query.distinct &&
      !query.aggregate.has_value()) {
    cap = *query.limit + query.offset.value_or(0);
  }

  Result<BindingTable> table_or =
      ExecutePattern(query.where, cap, &dict, &metrics, deadline,
                     &result.profile);
  if (!table_or.ok()) {
    metrics.FillCounters(&result.profile);
    trace.Attach(&result.profile);
    return table_or.status();
  }
  BindingTable table = std::move(table_or).value();

  if (query.form == sparql::QueryForm::kAsk) {
    if (table.NumRows() > 0) result.table.rows.push_back({});
  } else if (query.aggregate.has_value()) {
    const sparql::CountAggregate& agg = *query.aggregate;
    uint64_t count = 0;
    if (!agg.var.has_value()) {
      count = table.NumRows();
    } else {
      int idx = table.VarIndex(agg.var->name);
      if (idx >= 0) {
        std::set<rdf::TermId> seen;
        for (rdf::TermId id : table.Column(static_cast<size_t>(idx))) {
          if (id == rdf::kInvalidTermId) continue;
          if (agg.distinct) {
            seen.insert(id);
          } else {
            ++count;
          }
        }
        if (agg.distinct) count = seen.size();
      }
    }
    result.table.vars.push_back(agg.alias.name);
    result.table.rows.push_back(
        {rdf::Term::Integer(static_cast<int64_t>(count))});
  } else {
    std::vector<std::string> projection;
    for (const sparql::Variable& v : query.EffectiveProjection()) {
      projection.push_back(v.name);
    }
    BindingTable projected = fed::Project(table, projection, query.distinct);
    if (!query.order_by.empty()) {
      // Sort the decoded full result, then cut the LIMIT/OFFSET window.
      result.table = fed::DecodeTable(projected, dict);
      sparql::SortRows(&result.table, query.order_by);
      size_t begin = std::min<size_t>(query.offset.value_or(0),
                                      result.table.rows.size());
      size_t end = result.table.rows.size();
      if (query.limit.has_value()) end = std::min(end, begin + *query.limit);
      result.table.rows.assign(result.table.rows.begin() + begin,
                               result.table.rows.begin() + end);
    } else {
      size_t begin =
          std::min<size_t>(query.offset.value_or(0), projected.NumRows());
      size_t end = projected.NumRows();
      if (query.limit.has_value()) end = std::min(end, begin + *query.limit);
      result.table = fed::DecodeTable(projected.Slice(begin, end), dict);
    }
  }

  metrics.FillCounters(&result.profile);
  result.profile.total_ms = total_timer.ElapsedMillis();
  trace.Attach(&result.profile);
  return result;
}

}  // namespace lusail::baselines
