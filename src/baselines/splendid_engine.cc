#include "baselines/splendid_engine.h"

#include "sparql/expr_eval.h"

#include <algorithm>
#include <set>

#include "common/stopwatch.h"
#include "net/sparql_endpoint.h"
#include "sparql/serializer.h"

namespace lusail::baselines {

namespace {

using fed::BindingTable;
using sparql::TriplePattern;

std::string PatternSparql(const TriplePattern& tp,
                          const std::vector<std::string>& projection,
                          const sparql::ValuesClause* values) {
  sparql::Query q;
  q.form = sparql::QueryForm::kSelect;
  for (const std::string& v : projection) {
    q.projection.push_back(sparql::Variable{v});
  }
  if (q.projection.empty()) q.select_all = true;
  q.where.triples.push_back(tp);
  if (values != nullptr) q.where.values.push_back(*values);
  return sparql::QueryToString(q);
}

}  // namespace

SplendidEngine::SplendidEngine(const fed::Federation* federation,
                               SplendidOptions options)
    : federation_(federation),
      options_(options),
      pool_(options.num_threads) {}

void SplendidEngine::BuildIndex() {
  Stopwatch timer;
  index_.assign(federation_->size(), VoidStats());
  for (size_t e = 0; e < federation_->size(); ++e) {
    auto* endpoint =
        dynamic_cast<const net::SparqlEndpoint*>(federation_->endpoint(e));
    if (endpoint == nullptr) continue;
    const store::TripleStore& store = endpoint->store();
    VoidStats& stats = index_[e];
    stats.total_triples = store.size();
    for (rdf::TermId p : store.Predicates()) {
      const std::string& pred = store.dict().term(p).lexical();
      stats.predicate_counts[pred] = store.StatsFor(p).triples;
      if (pred == rdf::kRdfType) {
        for (const store::EncodedTriple& t :
             store.Match(std::nullopt, p, std::nullopt)) {
          ++stats.class_counts[store.dict().term(t.o).lexical()];
        }
      }
    }
  }
  index_build_millis_ = timer.ElapsedMillis();
}

Result<std::vector<int>> SplendidEngine::SourcesFor(
    const TriplePattern& tp, fed::MetricsCollector* metrics,
    const Deadline& deadline) {
  if (!index_.empty() && tp.p.is_term() && tp.p.term().is_iri()) {
    const std::string& pred = tp.p.term().lexical();
    bool is_type = pred == rdf::kRdfType;
    std::vector<int> out;
    for (size_t e = 0; e < index_.size(); ++e) {
      if (is_type && tp.o.is_term()) {
        if (index_[e].class_counts.count(tp.o.term().lexical())) {
          out.push_back(static_cast<int>(e));
        }
      } else if (index_[e].predicate_counts.count(pred)) {
        out.push_back(static_cast<int>(e));
      }
    }
    return out;
  }
  // Variable predicate (or no index): ASK probes, SPLENDID-style.
  fed::SourceSelector selector(federation_, &ask_cache_, &pool_);
  LUSAIL_ASSIGN_OR_RETURN(
      std::vector<std::vector<int>> sources,
      selector.SelectSources({tp}, metrics, deadline, /*use_cache=*/true));
  return sources[0];
}

double SplendidEngine::EstimateCardinality(
    const TriplePattern& tp, const std::vector<int>& sources) const {
  double total = 0.0;
  for (int e : sources) {
    if (index_.empty()) {
      total += 1000.0;
      continue;
    }
    const VoidStats& stats = index_[e];
    double est;
    if (tp.p.is_term() && tp.p.term().is_iri()) {
      const std::string& pred = tp.p.term().lexical();
      if (pred == rdf::kRdfType && tp.o.is_term()) {
        auto it = stats.class_counts.find(tp.o.term().lexical());
        est = it == stats.class_counts.end() ? 0.0
                                             : static_cast<double>(it->second);
      } else {
        auto it = stats.predicate_counts.find(pred);
        est = it == stats.predicate_counts.end()
                  ? 0.0
                  : static_cast<double>(it->second);
        // Constant subject/object: SPLENDID divides by distinct counts;
        // we approximate with a fixed selectivity factor.
        if (tp.s.is_term()) est /= 100.0;
        if (tp.o.is_term()) est /= 100.0;
      }
    } else {
      est = static_cast<double>(stats.total_triples);
    }
    total += est;
  }
  return total;
}

Result<BindingTable> SplendidEngine::ExecutePattern(
    const sparql::GraphPattern& pattern, fed::SharedDictionary* dict,
    fed::MetricsCollector* metrics, const Deadline& deadline,
    fed::ExecutionProfile* profile) {
  if (!pattern.exists_filters.empty() || !pattern.unions.empty()) {
    return Status::Unsupported(
        "SPLENDID reimplementation does not support this query shape "
        "(UNION / FILTER EXISTS)");
  }

  Stopwatch timer;
  fed::PhaseSpan source_span(metrics, "source selection");
  std::vector<std::vector<int>> sources(pattern.triples.size());
  for (size_t i = 0; i < pattern.triples.size(); ++i) {
    LUSAIL_ASSIGN_OR_RETURN(sources[i],
                            SourcesFor(pattern.triples[i], metrics, deadline));
    if (sources[i].empty()) {
      BindingTable empty;
      std::set<std::string> vars;
      pattern.CollectVariables(&vars);
      empty.vars.assign(vars.begin(), vars.end());
      return empty;
    }
  }
  source_span.End();
  profile->source_selection_ms += timer.ElapsedMillis();

  timer.Restart();
  fed::PhaseSpan exec_span(metrics, "sequential execution");
  // Order patterns by estimated cardinality (connected patterns first
  // once execution starts).
  std::vector<size_t> order;
  std::vector<bool> used(pattern.triples.size(), false);
  std::set<std::string> bound;
  for (size_t n = 0; n < pattern.triples.size(); ++n) {
    size_t best = pattern.triples.size();
    double best_est = 0.0;
    bool best_connected = false;
    for (size_t i = 0; i < pattern.triples.size(); ++i) {
      if (used[i]) continue;
      double est = EstimateCardinality(pattern.triples[i], sources[i]);
      bool connected = bound.empty();
      for (const std::string& v : pattern.triples[i].VariableNames()) {
        if (bound.count(v)) connected = true;
      }
      bool better;
      if (best == pattern.triples.size()) {
        better = true;
      } else if (connected != best_connected) {
        better = connected;
      } else {
        better = est < best_est;
      }
      if (better) {
        best = i;
        best_est = est;
        best_connected = connected;
      }
    }
    order.push_back(best);
    used[best] = true;
    for (const std::string& v : pattern.triples[best].VariableNames()) {
      bound.insert(v);
    }
  }

  BindingTable table;
  bool first = true;
  for (size_t k : order) {
    if (deadline.Expired()) {
      return Status::Timeout("deadline expired in SPLENDID execution");
    }
    const TriplePattern& tp = pattern.triples[k];
    std::vector<std::string> tp_vars = tp.VariableNames();
    std::vector<std::string> shared;
    for (const std::string& v : tp_vars) {
      if (!first && table.VarIndex(v) >= 0) shared.push_back(v);
    }

    BindingTable fetched;
    fetched.vars = tp_vars;
    if (!first && !shared.empty() &&
        table.NumRows() <= options_.bind_join_threshold) {
      // Bind join: ship current bindings of the first shared variable.
      const std::string& bv = shared[0];
      int idx = table.VarIndex(bv);
      std::set<rdf::TermId> distinct;
      for (rdf::TermId id : table.Column(static_cast<size_t>(idx))) {
        if (id != rdf::kInvalidTermId) distinct.insert(id);
      }
      std::vector<rdf::TermId> values(distinct.begin(), distinct.end());
      const size_t block = std::max<size_t>(1, options_.bind_join_block_size);
      for (size_t start = 0; start < values.size(); start += block) {
        sparql::ValuesClause vc;
        vc.vars.push_back(sparql::Variable{bv});
        size_t end = std::min(values.size(), start + block);
        for (size_t i = start; i < end; ++i) {
          vc.rows.push_back({dict->term(values[i])});
        }
        std::string text = PatternSparql(tp, tp_vars, &vc);
        for (int ep : sources[k]) {
          LUSAIL_ASSIGN_OR_RETURN(
              sparql::ResultTable part,
              federation_->Execute(static_cast<size_t>(ep), text, metrics,
                                   deadline));
          fed::AppendUnion(&fetched, fed::InternTable(part, dict));
        }
      }
    } else {
      // Fetch the pattern's full extension and hash join.
      std::string text = PatternSparql(tp, tp_vars, nullptr);
      for (int ep : sources[k]) {
        LUSAIL_ASSIGN_OR_RETURN(
            sparql::ResultTable part,
            federation_->Execute(static_cast<size_t>(ep), text, metrics,
                                 deadline));
        fed::AppendUnion(&fetched, fed::InternTable(part, dict));
      }
    }
    // Memory-footprint proxy: the running result plus the freshly
    // fetched extension coexist at join time (matches what SAPE and
    // FedX report, so the engines' peaks are comparable).
    profile->peak_intermediate_rows = std::max(
        profile->peak_intermediate_rows,
        static_cast<uint64_t>(table.NumRows() + fetched.NumRows()));
    table = first ? std::move(fetched) : fed::HashJoin(table, fetched);
    profile->peak_intermediate_rows = std::max(
        profile->peak_intermediate_rows,
        static_cast<uint64_t>(table.NumRows()));
    first = false;
  }

  for (const sparql::GraphPattern& opt : pattern.optionals) {
    LUSAIL_ASSIGN_OR_RETURN(
        BindingTable right,
        ExecutePattern(opt, dict, metrics, deadline, profile));
    table = fed::LeftOuterJoin(table, right);
  }
  for (const sparql::Expr& f : pattern.filters) {
    fed::FilterRows(&table, f, *dict);
  }
  profile->execution_ms += timer.ElapsedMillis();
  return table;
}

Result<fed::FederatedResult> SplendidEngine::Execute(
    const std::string& sparql_text, const Deadline& deadline) {
  Stopwatch total_timer;
  LUSAIL_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(sparql_text));

  fed::FederatedResult result;
  fed::MetricsCollector metrics;
  fed::QueryTrace trace(options_.trace, name(), &metrics);
  fed::SharedDictionary dict;

  Result<BindingTable> table_or =
      ExecutePattern(query.where, &dict, &metrics, deadline, &result.profile);
  if (!table_or.ok()) {
    metrics.FillCounters(&result.profile);
    trace.Attach(&result.profile);
    return table_or.status();
  }
  BindingTable table = std::move(table_or).value();

  if (query.form == sparql::QueryForm::kAsk) {
    if (table.NumRows() > 0) result.table.rows.push_back({});
  } else if (query.aggregate.has_value()) {
    uint64_t count = table.NumRows();
    result.table.vars.push_back(query.aggregate->alias.name);
    result.table.rows.push_back(
        {rdf::Term::Integer(static_cast<int64_t>(count))});
  } else {
    std::vector<std::string> projection;
    for (const sparql::Variable& v : query.EffectiveProjection()) {
      projection.push_back(v.name);
    }
    BindingTable projected = fed::Project(table, projection, query.distinct);
    if (!query.order_by.empty()) {
      // Sort the decoded full result, then cut the LIMIT/OFFSET window.
      result.table = fed::DecodeTable(projected, dict);
      sparql::SortRows(&result.table, query.order_by);
      size_t begin = std::min<size_t>(query.offset.value_or(0),
                                      result.table.rows.size());
      size_t end = result.table.rows.size();
      if (query.limit.has_value()) end = std::min(end, begin + *query.limit);
      result.table.rows.assign(result.table.rows.begin() + begin,
                               result.table.rows.begin() + end);
    } else {
      size_t begin =
          std::min<size_t>(query.offset.value_or(0), projected.NumRows());
      size_t end = projected.NumRows();
      if (query.limit.has_value()) end = std::min(end, begin + *query.limit);
      result.table = fed::DecodeTable(projected.Slice(begin, end), dict);
    }
  }

  metrics.FillCounters(&result.profile);
  result.profile.total_ms = total_timer.ElapsedMillis();
  trace.Attach(&result.profile);
  return result;
}

}  // namespace lusail::baselines
