#include "baselines/hibiscus.h"

#include <map>

#include "common/stopwatch.h"
#include "net/sparql_endpoint.h"

namespace lusail::baselines {

std::string HibiscusIndex::Authority(const rdf::Term& term) {
  if (term.is_literal()) return "~lit";
  if (term.is_blank()) return "~bnode";
  const std::string& iri = term.lexical();
  size_t scheme_end = iri.find("://");
  if (scheme_end == std::string::npos) return iri;
  size_t host_end = iri.find('/', scheme_end + 3);
  return host_end == std::string::npos ? iri : iri.substr(0, host_end);
}

HibiscusIndex HibiscusIndex::Build(const fed::Federation& federation) {
  Stopwatch timer;
  HibiscusIndex index;
  index.endpoints_.resize(federation.size());
  for (size_t e = 0; e < federation.size(); ++e) {
    auto* endpoint =
        dynamic_cast<const net::SparqlEndpoint*>(federation.endpoint(e));
    if (endpoint == nullptr) continue;  // Unknown endpoint type: no summary.
    const store::TripleStore& store = endpoint->store();
    EndpointSummary& summary = index.endpoints_[e];
    for (const store::EncodedTriple& t :
         store.Match(std::nullopt, std::nullopt, std::nullopt)) {
      const std::string& pred = store.dict().term(t.p).lexical();
      summary.subject_auths[pred].insert(
          Authority(store.dict().term(t.s)));
      summary.object_auths[pred].insert(Authority(store.dict().term(t.o)));
    }
  }
  index.build_millis_ = timer.ElapsedMillis();
  return index;
}

std::optional<std::vector<int>> HibiscusIndex::Sources(
    const sparql::TriplePattern& tp) const {
  // Variable predicates are outside the summary's reach; fall back to ASK.
  if (tp.p.is_variable()) return std::nullopt;
  const std::string& pred = tp.p.term().lexical();
  std::vector<int> out;
  for (size_t e = 0; e < endpoints_.size(); ++e) {
    const EndpointSummary& summary = endpoints_[e];
    auto subj_it = summary.subject_auths.find(pred);
    if (subj_it == summary.subject_auths.end()) continue;
    if (tp.s.is_term() &&
        subj_it->second.count(Authority(tp.s.term())) == 0) {
      continue;
    }
    if (tp.o.is_term()) {
      auto obj_it = summary.object_auths.find(pred);
      if (obj_it == summary.object_auths.end() ||
          obj_it->second.count(Authority(tp.o.term())) == 0) {
        continue;
      }
    }
    out.push_back(static_cast<int>(e));
  }
  return out;
}

void HibiscusIndex::PruneJointSources(
    const std::vector<sparql::TriplePattern>& triples,
    std::vector<std::vector<int>>* sources) const {
  // Occurrences of each join variable: (pattern index, is_subject).
  std::map<std::string, std::vector<std::pair<size_t, bool>>> joins;
  for (size_t i = 0; i < triples.size(); ++i) {
    if (!triples[i].p.is_term()) continue;  // No summary for var predicates.
    if (triples[i].s.is_variable()) {
      joins[triples[i].s.var().name].emplace_back(i, true);
    }
    if (triples[i].o.is_variable()) {
      joins[triples[i].o.var().name].emplace_back(i, false);
    }
  }

  auto auths_at = [this, &triples](size_t pattern, bool subject,
                                   int endpoint) -> const std::set<std::string>* {
    const EndpointSummary& summary = endpoints_[endpoint];
    const auto& map = subject ? summary.subject_auths : summary.object_auths;
    auto it = map.find(triples[pattern].p.term().lexical());
    return it == map.end() ? nullptr : &it->second;
  };

  // Iterate to a fixpoint (each round only shrinks candidate lists).
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 8) {
    changed = false;
    for (const auto& [var, occurrences] : joins) {
      if (occurrences.size() < 2) continue;
      for (const auto& [i, i_subject] : occurrences) {
        for (const auto& [j, j_subject] : occurrences) {
          if (i == j) continue;
          // Union of pattern j's authorities at the shared variable.
          std::set<std::string> other;
          for (int ep : (*sources)[j]) {
            const std::set<std::string>* a = auths_at(j, j_subject, ep);
            if (a != nullptr) other.insert(a->begin(), a->end());
          }
          std::vector<int> kept;
          for (int ep : (*sources)[i]) {
            const std::set<std::string>* a = auths_at(i, i_subject, ep);
            bool intersects = false;
            if (a != nullptr) {
              for (const std::string& auth : *a) {
                if (other.count(auth)) {
                  intersects = true;
                  break;
                }
              }
            }
            if (intersects) kept.push_back(ep);
          }
          if (kept.size() < (*sources)[i].size()) {
            (*sources)[i] = std::move(kept);
            changed = true;
          }
        }
      }
    }
  }
}

size_t HibiscusIndex::SizeBytes() const {
  size_t bytes = 0;
  for (const EndpointSummary& s : endpoints_) {
    for (const auto& [pred, auths] : s.subject_auths) {
      bytes += pred.size();
      for (const std::string& a : auths) bytes += a.size();
    }
    for (const auto& [pred, auths] : s.object_auths) {
      bytes += pred.size();
      for (const std::string& a : auths) bytes += a.size();
    }
  }
  return bytes;
}

}  // namespace lusail::baselines
