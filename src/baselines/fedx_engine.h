#ifndef LUSAIL_BASELINES_FEDX_ENGINE_H_
#define LUSAIL_BASELINES_FEDX_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "federation/binding_table.h"
#include "federation/federation.h"
#include "federation/source_selection.h"
#include "sparql/parser.h"

namespace lusail::baselines {

/// Pluggable source selection for index-based systems (HiBISCuS,
/// SPLENDID). Returning std::nullopt makes the engine fall back to ASK
/// probes for that pattern.
class SourceProvider {
 public:
  virtual ~SourceProvider() = default;
  virtual std::optional<std::vector<int>> Sources(
      const sparql::TriplePattern& tp) const = 0;

  /// Join-aware refinement (HiBISCuS's hypergraph pruning): given the
  /// per-pattern candidate sources, drop sources whose join-position
  /// capabilities cannot match any candidate of a joined pattern. The
  /// default is a no-op.
  virtual void PruneJointSources(
      const std::vector<sparql::TriplePattern>& triples,
      std::vector<std::vector<int>>* sources) const {
    (void)triples;
    (void)sources;
  }

  virtual std::string name() const = 0;
};

/// FedX configuration.
struct FedXOptions {
  /// Bindings per bound-join block (FedX ships 15 bindings per request).
  size_t bound_join_block_size = 15;
  size_t num_threads = 0;
  bool use_cache = true;

  /// Client-side retry policy for endpoint requests (same decorator the
  /// Lusail engine uses, so resilience comparisons are apples-to-apples).
  /// Disabled (fail-stop) by default.
  net::RetryPolicy retry_policy;

  /// Record a span trace into ExecutionProfile::trace (same format as
  /// Lusail's, so engine traces are comparable side by side).
  bool trace = false;
};

/// Reimplementation of the FedX federated engine (Schwarte et al., ISWC
/// 2011) — the paper's primary baseline.
///
/// Source selection uses per-pattern ASK probes with a cache (or an
/// injected index). Triple patterns answerable by exactly one endpoint
/// are fused into *exclusive groups* evaluated as a unit; everything else
/// is evaluated one triple pattern at a time with *bound joins*: the
/// current bindings are shipped in blocks and joined operand by operand,
/// strictly sequentially. This is precisely the schema-only strategy
/// whose request explosion Lusail's instance-aware decomposition avoids.
class FedXEngine : public fed::FederatedEngine {
 public:
  explicit FedXEngine(const fed::Federation* federation,
                      FedXOptions options = FedXOptions());

  /// Installs an index-based source provider; the engine then reports its
  /// name as "FedX+<provider>". Not owned.
  void set_source_provider(const SourceProvider* provider) {
    provider_ = provider;
  }

  std::string name() const override;

  Result<fed::FederatedResult> Execute(const std::string& sparql_text,
                                       const Deadline& deadline) override;
  using fed::FederatedEngine::Execute;

  void ClearCaches() { ask_cache_.Clear(); }

 private:
  /// An execution operand: an exclusive group or a single triple pattern.
  struct Operand {
    std::vector<sparql::TriplePattern> triples;
    std::vector<int> sources;
    std::vector<sparql::Expr> filters;
    bool exclusive = false;
  };

  Result<std::vector<std::vector<int>>> SelectSources(
      const std::vector<sparql::TriplePattern>& triples,
      fed::MetricsCollector* metrics, const Deadline& deadline);

  /// Builds exclusive groups + singleton operands and pushes filters.
  static std::vector<Operand> BuildOperands(
      const std::vector<sparql::TriplePattern>& triples,
      const std::vector<std::vector<int>>& sources,
      const std::vector<sparql::Expr>& filters,
      std::vector<sparql::Expr>* residual_filters);

  /// FedX join-order heuristic: fewest free variables first, exclusive
  /// groups preferred on ties.
  static std::vector<size_t> OrderOperands(const std::vector<Operand>& ops);

  /// Evaluates an operand with the current bindings via block bound
  /// joins; joins the fetched rows with `table` (inner or left-outer).
  Result<fed::BindingTable> BoundJoinStep(
      const Operand& op, fed::BindingTable table, bool left_outer,
      std::optional<uint64_t> result_cap, fed::SharedDictionary* dict,
      fed::MetricsCollector* metrics, const Deadline& deadline);

  /// Evaluates a whole graph pattern (BGP + unions + optionals).
  Result<fed::BindingTable> ExecutePattern(
      const sparql::GraphPattern& pattern, std::optional<uint64_t> result_cap,
      fed::SharedDictionary* dict, fed::MetricsCollector* metrics,
      const Deadline& deadline, fed::ExecutionProfile* profile);

  /// The engine's retry policy, or null when retries are disabled.
  const net::RetryPolicy* Retry() const {
    return options_.retry_policy.enabled() ? &options_.retry_policy : nullptr;
  }

  const fed::Federation* federation_;
  FedXOptions options_;
  ThreadPool pool_;
  fed::AskCache ask_cache_;
  const SourceProvider* provider_ = nullptr;
};

}  // namespace lusail::baselines

#endif  // LUSAIL_BASELINES_FEDX_ENGINE_H_
