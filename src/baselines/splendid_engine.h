#ifndef LUSAIL_BASELINES_SPLENDID_ENGINE_H_
#define LUSAIL_BASELINES_SPLENDID_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "federation/binding_table.h"
#include "federation/federation.h"
#include "federation/source_selection.h"
#include "sparql/parser.h"

namespace lusail::baselines {

/// SPLENDID configuration.
struct SplendidOptions {
  /// Below this intermediate-result size SPLENDID switches from
  /// fetch-and-hash-join to bind joins.
  size_t bind_join_threshold = 200;
  size_t bind_join_block_size = 100;
  size_t num_threads = 0;

  /// Record a span trace into ExecutionProfile::trace (same format as
  /// Lusail's, so engine traces are comparable side by side).
  bool trace = false;
};

/// SPLENDID-style index-based federated engine (Görlitz & Staab, COLD
/// 2011). A preprocessing pass builds VoID-like statistics (per endpoint:
/// total triples, per-predicate counts, per-class counts). Source
/// selection uses the index for constant predicates and rdf:type classes
/// and falls back to ASK probes otherwise. Execution orders triple
/// patterns by index-estimated cardinality and evaluates them one at a
/// time — fetching a pattern's full extension and hash-joining, or bind-
/// joining when the running intermediate result is small. The full-
/// extension fetches are what make SPLENDID time out on low-selectivity
/// queries in the paper.
class SplendidEngine : public fed::FederatedEngine {
 public:
  explicit SplendidEngine(const fed::Federation* federation,
                          SplendidOptions options = SplendidOptions());

  /// Builds the VoID statistics index (the paper's preprocessing phase —
  /// 25 s on QFed, 3513 s on LargeRDFBench with real dumps; here it reads
  /// the stores directly and reports the measured time).
  void BuildIndex();

  double index_build_millis() const { return index_build_millis_; }

  std::string name() const override { return "SPLENDID"; }

  Result<fed::FederatedResult> Execute(const std::string& sparql_text,
                                       const Deadline& deadline) override;
  using fed::FederatedEngine::Execute;

 private:
  struct VoidStats {
    uint64_t total_triples = 0;
    std::map<std::string, uint64_t> predicate_counts;
    std::map<std::string, uint64_t> class_counts;
  };

  Result<std::vector<int>> SourcesFor(const sparql::TriplePattern& tp,
                                      fed::MetricsCollector* metrics,
                                      const Deadline& deadline);

  double EstimateCardinality(const sparql::TriplePattern& tp,
                             const std::vector<int>& sources) const;

  Result<fed::BindingTable> ExecutePattern(const sparql::GraphPattern& pattern,
                                           fed::SharedDictionary* dict,
                                           fed::MetricsCollector* metrics,
                                           const Deadline& deadline,
                                           fed::ExecutionProfile* profile);

  const fed::Federation* federation_;
  SplendidOptions options_;
  ThreadPool pool_;
  fed::AskCache ask_cache_;
  std::vector<VoidStats> index_;
  double index_build_millis_ = 0.0;
};

}  // namespace lusail::baselines

#endif  // LUSAIL_BASELINES_SPLENDID_ENGINE_H_
