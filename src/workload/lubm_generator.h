#ifndef LUSAIL_WORKLOAD_LUBM_GENERATOR_H_
#define LUSAIL_WORKLOAD_LUBM_GENERATOR_H_

#include <string>
#include <vector>

#include "workload/federation_builder.h"

namespace lusail::workload {

/// Configuration of the LUBM-style university generator. Each university
/// is one endpoint; cross-university interlinks come from remote
/// PhD / undergraduate degrees, mirroring the LUBM federation the paper
/// scales to 256 endpoints.
struct LubmConfig {
  int num_universities = 2;
  int departments_per_university = 3;
  int professors_per_department = 6;
  int grad_students_per_department = 15;
  int undergrad_students_per_department = 25;
  int courses_per_department = 8;  ///< Half of them graduate courses.

  /// Fraction of professors whose PhD is from another university (the
  /// interlink that makes ?U a global join variable in Q_a / Q4).
  double remote_phd_fraction = 0.3;

  /// Fraction of graduate students with a remote undergraduate degree.
  /// Remote targets are skewed toward university0, so Q3's pattern
  /// (?x ub:undergraduateDegreeFrom <univ0>) is relevant at some but not
  /// all endpoints.
  double remote_undergrad_fraction = 0.25;

  /// Fraction of professors who teach no course. 0 matches real LUBM
  /// (every faculty teaches), keeping Q2 a single subquery; raise it to
  /// reproduce the paper's "Ann" extraneous-GJV example on Q_a.
  double professor_no_course_fraction = 0.0;

  uint64_t seed = 42;

  /// A small configuration for unit tests (2 universities, ~500 triples
  /// each).
  static LubmConfig Small();

  /// The default benchmark configuration (~6k triples per university).
  static LubmConfig Bench();

  /// A tiny per-university configuration for the 64-256 endpoint sweeps.
  static LubmConfig Sweep();
};

/// Deterministic LUBM-style data generator.
class LubmGenerator {
 public:
  explicit LubmGenerator(LubmConfig config) : config_(config) {}

  const LubmConfig& config() const { return config_; }

  /// IRI of university `u`.
  static std::string UniversityIri(int u);

  /// Triples of university `u`'s endpoint (deterministic in seed and u).
  std::vector<rdf::TermTriple> GenerateUniversity(int u) const;

  /// All endpoints of the federation.
  std::vector<EndpointSpec> GenerateAll() const;

  // --- Benchmark queries (Section 5.2: Q1..Q4 are LUBM Q2, Q9, Q13 and a
  // Q9 variant that reaches into remote universities). ---

  /// The paper's running example Q_a (Figure 2).
  static std::string QueryQa();

  /// Q1 = LUBM Q2: the student/department/university triangle.
  static std::string Q1();

  /// Q2 = LUBM Q9: the student/advisor/course triangle.
  static std::string Q2();

  /// Q3 = LUBM Q13-like: graduate students with an undergraduate degree
  /// from `university` (default university0).
  static std::string Q3(int university = 0);

  /// Q4 = Q9 variant: the triangle plus the advisor's alma mater address
  /// (crosses endpoints through ub:PhDDegreeFrom).
  static std::string Q4();

  /// All four benchmark queries with labels.
  static std::vector<std::pair<std::string, std::string>> BenchmarkQueries();

 private:
  LubmConfig config_;
};

}  // namespace lusail::workload

#endif  // LUSAIL_WORKLOAD_LUBM_GENERATOR_H_
