#include "workload/lrb_generator.h"

#include <cstdio>

#include "common/rng.h"

namespace lusail::workload {

namespace {

using rdf::Term;
using rdf::TermTriple;

Term RdfType() { return Term::Iri(std::string(rdf::kRdfType)); }

void Add(std::vector<TermTriple>* out, Term s, Term p, Term o) {
  out->push_back(TermTriple{std::move(s), std::move(p), std::move(o)});
}

Term Vocab(const std::string& ds, const std::string& local) {
  return Term::Iri("http://" + ds + ".example.org/vocab#" + local);
}

Term Res(const std::string& ds, const std::string& kind, int i) {
  return Term::Iri("http://" + ds + ".example.org/resource/" + kind + "/" +
                   std::to_string(i));
}

const char* kDrugSuffixes[] = {"amide", "ol", "ine", "ate", "an", "ex"};

constexpr const char* kPrologue = R"(PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX dbo: <http://dbpedia.example.org/vocab#>
PREFIX gn: <http://geonames.example.org/vocab#>
PREFIX db: <http://drugbank.example.org/vocab#>
PREFIX kegg: <http://kegg.example.org/vocab#>
PREFIX chebi: <http://chebi.example.org/vocab#>
PREFIX lmdb: <http://linkedmdb.example.org/vocab#>
PREFIX mo: <http://jamendo.example.org/vocab#>
PREFIX foaf: <http://jamendo.example.org/vocab#>
PREFIX nyt: <http://nytimes.example.org/vocab#>
PREFIX swdf: <http://swdf.example.org/vocab#>
PREFIX affy: <http://affymetrix.example.org/vocab#>
PREFIX tcga: <http://tcga.example.org/vocab#>
)";

std::string Q(const std::string& body) { return std::string(kPrologue) + body; }

}  // namespace

LrbConfig LrbConfig::Small() {
  LrbConfig c;
  c.dbpedia_persons = 300;
  c.dbpedia_films = 100;
  c.dbpedia_drugs = 60;
  c.geonames_places = 300;
  c.num_countries = 12;
  c.drugbank_drugs = 120;
  c.kegg_compounds = 100;
  c.chebi_compounds = 140;
  c.lmdb_films = 150;
  c.jamendo_artists = 80;
  c.jamendo_records = 160;
  c.nytimes_topics = 120;
  c.swdf_papers = 60;
  c.swdf_people = 40;
  c.affymetrix_probes = 180;
  c.tcga_patients = 40;
  c.tcga_meth_rows_per_patient = 20;
  c.tcga_expr_rows_per_patient = 6;
  c.num_genes = 60;
  return c;
}

std::string LrbGenerator::DrugName(int i) {
  return "Drug" + std::string(kDrugSuffixes[i % 6]) + std::to_string(i);
}

std::string LrbGenerator::GeneSymbol(int i) {
  return "GENE" + std::to_string(i);
}

std::vector<EndpointSpec> LrbGenerator::GenerateAll() const {
  const LrbConfig& c = config_;
  std::vector<EndpointSpec> specs;

  // ---- dbpedia: the hub dataset (persons, films, drugs, countries) ----
  {
    EndpointSpec spec;
    spec.id = "dbpedia";
    auto* t = &spec.triples;
    for (int i = 0; i < c.dbpedia_persons; ++i) {
      Term person = Res("dbpedia", "persons", i);
      Add(t, person, RdfType(), Vocab("dbpedia", "Person"));
      Add(t, person, Vocab("dbpedia", "name"),
          Term::Literal("Person" + std::to_string(i)));
      Add(t, person, Vocab("dbpedia", "birthPlace"),
          Res("geonames", "places", i % c.geonames_places));
      Add(t, person, Vocab("dbpedia", "occupation"),
          Term::Literal("Occupation" + std::to_string(i % 30)));
    }
    for (int f = 0; f < c.dbpedia_films; ++f) {
      Term film = Res("dbpedia", "films", f);
      Add(t, film, RdfType(), Vocab("dbpedia", "Film"));
      Add(t, film, Vocab("dbpedia", "name"),
          Term::Literal("Film" + std::to_string(f)));
      Add(t, film, Vocab("dbpedia", "director"),
          Res("dbpedia", "persons", (f * 3) % c.dbpedia_persons));
      Add(t, film, Vocab("dbpedia", "starring"),
          Res("dbpedia", "persons", (f * 7 + 1) % c.dbpedia_persons));
    }
    for (int d = 0; d < c.dbpedia_drugs; ++d) {
      Term drug = Res("dbpedia", "drugs", d);
      Add(t, drug, RdfType(), Vocab("dbpedia", "Drug"));
      Add(t, drug, Vocab("dbpedia", "name"), Term::Literal(DrugName(d)));
    }
    for (int k = 0; k < c.num_countries; ++k) {
      Term country = Res("dbpedia", "countries", k);
      Add(t, country, RdfType(), Vocab("dbpedia", "Country"));
      Add(t, country, Vocab("dbpedia", "name"),
          Term::Literal("Country" + std::to_string(k)));
    }
    specs.push_back(std::move(spec));
  }

  // ---- geonames ----
  {
    EndpointSpec spec;
    spec.id = "geonames";
    auto* t = &spec.triples;
    for (int k = 0; k < c.num_countries; ++k) {
      Term country = Res("geonames", "countries", k);
      Add(t, country, RdfType(), Vocab("geonames", "Country"));
      Add(t, country, Vocab("geonames", "countryName"),
          Term::Literal("Country" + std::to_string(k)));
    }
    for (int i = 0; i < c.geonames_places; ++i) {
      Term place = Res("geonames", "places", i);
      Add(t, place, RdfType(), Vocab("geonames", "Feature"));
      Add(t, place, Vocab("geonames", "name"),
          Term::Literal("Place" + std::to_string(i)));
      Add(t, place, Vocab("geonames", "parentCountry"),
          Res("geonames", "countries", i % c.num_countries));
      Add(t, place, Vocab("geonames", "population"),
          Term::Integer((i * 37057LL) % 1000000));
    }
    specs.push_back(std::move(spec));
  }

  // ---- drugbank ----
  {
    EndpointSpec spec;
    spec.id = "drugbank";
    auto* t = &spec.triples;
    for (int i = 0; i < c.drugbank_drugs; ++i) {
      Term drug = Res("drugbank", "drugs", i);
      Add(t, drug, RdfType(), Vocab("drugbank", "drugs"));
      Add(t, drug, Vocab("drugbank", "name"), Term::Literal(DrugName(i)));
      Add(t, drug, Vocab("drugbank", "casRegistryNumber"),
          Term::Literal("CAS-" + std::to_string(100000 + i)));
      Add(t, drug, Vocab("drugbank", "keggCompoundId"),
          Res("kegg", "compounds", i % c.kegg_compounds));
      Add(t, drug, Vocab("drugbank", "sameAs"),
          Res("dbpedia", "drugs", i % c.dbpedia_drugs));
    }
    specs.push_back(std::move(spec));
  }

  // ---- kegg ----
  {
    EndpointSpec spec;
    spec.id = "kegg";
    auto* t = &spec.triples;
    for (int k = 0; k < c.kegg_compounds; ++k) {
      Term cpd = Res("kegg", "compounds", k);
      Add(t, cpd, RdfType(), Vocab("kegg", "Compound"));
      Add(t, cpd, Vocab("kegg", "name"),
          Term::Literal("Compound" + std::to_string(k)));
      Add(t, cpd, Vocab("kegg", "formula"),
          Term::Literal("C" + std::to_string(k % 40) + "H" +
                        std::to_string(k % 80)));
      Add(t, cpd, Vocab("kegg", "mass"), Term::Double(100.0 + k * 0.5));
      Add(t, cpd, Vocab("kegg", "sameAs"),
          Res("chebi", "compounds", k % c.chebi_compounds));
    }
    specs.push_back(std::move(spec));
  }

  // ---- chebi ----
  {
    EndpointSpec spec;
    spec.id = "chebi";
    auto* t = &spec.triples;
    for (int k = 0; k < c.chebi_compounds; ++k) {
      Term cpd = Res("chebi", "compounds", k);
      Add(t, cpd, RdfType(), Vocab("chebi", "Compound"));
      Add(t, cpd, Vocab("chebi", "name"),
          Term::Literal("ChebiCompound" + std::to_string(k)));
      Add(t, cpd, Vocab("chebi", "formula"),
          Term::Literal("C" + std::to_string(k % 40) + "H" +
                        std::to_string(k % 80)));
      Add(t, cpd, Vocab("chebi", "charge"), Term::Integer(k % 5 - 2));
    }
    specs.push_back(std::move(spec));
  }

  // ---- linkedmdb ----
  {
    EndpointSpec spec;
    spec.id = "linkedmdb";
    auto* t = &spec.triples;
    for (int f = 0; f < c.lmdb_films; ++f) {
      Term film = Res("linkedmdb", "films", f);
      Add(t, film, RdfType(), Vocab("linkedmdb", "Film"));
      Add(t, film, Vocab("linkedmdb", "title"),
          Term::Literal("Film" + std::to_string(f % c.dbpedia_films)));
      Add(t, film, Vocab("linkedmdb", "sameAs"),
          Res("dbpedia", "films", f % c.dbpedia_films));
      Term actor = Res("linkedmdb", "actors", f % 200);
      Add(t, film, Vocab("linkedmdb", "actor"), actor);
      Add(t, actor, Vocab("linkedmdb", "actorName"),
          Term::Literal("Actor" + std::to_string(f % 200)));
      Add(t, film, Vocab("linkedmdb", "runtime"),
          Term::Integer(80 + (f * 13) % 100));
    }
    specs.push_back(std::move(spec));
  }

  // ---- jamendo ----
  {
    EndpointSpec spec;
    spec.id = "jamendo";
    auto* t = &spec.triples;
    for (int a = 0; a < c.jamendo_artists; ++a) {
      Term artist = Res("jamendo", "artists", a);
      Add(t, artist, RdfType(), Vocab("jamendo", "MusicArtist"));
      Add(t, artist, Vocab("jamendo", "name"),
          Term::Literal("Artist" + std::to_string(a)));
      Add(t, artist, Vocab("jamendo", "based_near"),
          Res("geonames", "places", (a * 5) % c.geonames_places));
    }
    for (int r = 0; r < c.jamendo_records; ++r) {
      Term record = Res("jamendo", "records", r);
      Add(t, record, RdfType(), Vocab("jamendo", "Record"));
      Add(t, record, Vocab("jamendo", "maker"),
          Res("jamendo", "artists", r % c.jamendo_artists));
      Add(t, record, Vocab("jamendo", "title"),
          Term::Literal("Record" + std::to_string(r)));
    }
    specs.push_back(std::move(spec));
  }

  // ---- nytimes ----
  {
    EndpointSpec spec;
    spec.id = "nytimes";
    auto* t = &spec.triples;
    for (int n = 0; n < c.nytimes_topics; ++n) {
      Term topic = Res("nytimes", "topics", n);
      Add(t, topic, RdfType(), Vocab("nytimes", "Topic"));
      Add(t, topic, Vocab("nytimes", "label"),
          Term::Literal("Person" + std::to_string(n % c.dbpedia_persons)));
      Add(t, topic, Vocab("nytimes", "sameAs"),
          Res("dbpedia", "persons", n % c.dbpedia_persons));
      Add(t, topic, Vocab("nytimes", "articleCount"),
          Term::Integer((n * 13) % 500));
    }
    specs.push_back(std::move(spec));
  }

  // ---- swdf ----
  {
    EndpointSpec spec;
    spec.id = "swdf";
    auto* t = &spec.triples;
    for (int q = 0; q < c.swdf_people; ++q) {
      Term person = Res("swdf", "people", q);
      Add(t, person, RdfType(), Vocab("swdf", "Person"));
      // Names overlap with DBpedia persons: the literal join of C10.
      Add(t, person, Vocab("swdf", "name"),
          Term::Literal("Person" + std::to_string((q * 4) %
                                                  c.dbpedia_persons)));
    }
    for (int p = 0; p < c.swdf_papers; ++p) {
      Term paper = Res("swdf", "papers", p);
      Add(t, paper, RdfType(), Vocab("swdf", "InProceedings"));
      Add(t, paper, Vocab("swdf", "title"),
          Term::Literal("Paper" + std::to_string(p)));
      Add(t, paper, Vocab("swdf", "year"), Term::Integer(2000 + p % 15));
      Add(t, paper, Vocab("swdf", "author"),
          Res("swdf", "people", p % c.swdf_people));
      Add(t, paper, Vocab("swdf", "author"),
          Res("swdf", "people", (p * 3 + 1) % c.swdf_people));
    }
    specs.push_back(std::move(spec));
  }

  // ---- affymetrix ----
  {
    EndpointSpec spec;
    spec.id = "affymetrix";
    auto* t = &spec.triples;
    for (int b = 0; b < c.affymetrix_probes; ++b) {
      Term probe = Res("affymetrix", "probes", b);
      Add(t, probe, RdfType(), Vocab("affymetrix", "Probe"));
      Add(t, probe, Vocab("affymetrix", "symbol"),
          Term::Literal(GeneSymbol(b % c.num_genes)));
      Add(t, probe, Vocab("affymetrix", "keggCompound"),
          Res("kegg", "compounds", b % c.kegg_compounds));
      Add(t, probe, Vocab("affymetrix", "chromosome"),
          Term::Literal("chr" + std::to_string(b % 23)));
    }
    specs.push_back(std::move(spec));
  }

  // ---- tcga-a (clinical) ----
  {
    EndpointSpec spec;
    spec.id = "tcga-a";
    auto* t = &spec.triples;
    for (int i = 0; i < c.tcga_patients; ++i) {
      Term patient = Res("tcga", "patients", i);
      Add(t, patient, RdfType(), Vocab("tcga", "Patient"));
      Add(t, patient, Vocab("tcga", "barcode"),
          Term::Literal("TCGA-" + std::to_string(1000 + i)));
      Add(t, patient, Vocab("tcga", "gender"),
          Term::Literal(i % 2 == 0 ? "female" : "male"));
      Add(t, patient, Vocab("tcga", "drugName"),
          Term::Literal(DrugName(i % c.drugbank_drugs)));
      Add(t, patient, Vocab("tcga", "diseaseType"),
          Term::Literal("cancer" + std::to_string(i % 8)));
    }
    specs.push_back(std::move(spec));
  }

  // ---- tcga-m (methylation; the largest endpoint) ----
  {
    EndpointSpec spec;
    spec.id = "tcga-m";
    auto* t = &spec.triples;
    for (int i = 0; i < c.tcga_patients; ++i) {
      for (int j = 0; j < c.tcga_meth_rows_per_patient; ++j) {
        Term result = Term::Iri("http://tcga.example.org/resource/meth/" +
                                std::to_string(i) + "_" + std::to_string(j));
        Add(t, result, Vocab("tcga", "methPatient"),
            Res("tcga", "patients", i));
        Add(t, result, Vocab("tcga", "methValue"),
            Term::Double(((i * 31 + j * 7) % 100) / 100.0));
        Add(t, result, Vocab("tcga", "methGene"),
            Term::Literal(GeneSymbol((i + j) % c.num_genes)));
      }
    }
    specs.push_back(std::move(spec));
  }

  // ---- tcga-e (expression) ----
  {
    EndpointSpec spec;
    spec.id = "tcga-e";
    auto* t = &spec.triples;
    for (int i = 0; i < c.tcga_patients; ++i) {
      for (int j = 0; j < c.tcga_expr_rows_per_patient; ++j) {
        Term result = Term::Iri("http://tcga.example.org/resource/expr/" +
                                std::to_string(i) + "_" + std::to_string(j));
        Add(t, result, Vocab("tcga", "exprPatient"),
            Res("tcga", "patients", i));
        Add(t, result, Vocab("tcga", "exprValue"),
            Term::Double(((i * 17 + j * 11) % 1000) / 10.0));
        Add(t, result, Vocab("tcga", "exprGene"),
            Term::Literal(GeneSymbol((i + 2 * j) % c.num_genes)));
      }
    }
    specs.push_back(std::move(spec));
  }

  return specs;
}

std::vector<std::pair<std::string, std::string>> LrbGenerator::SimpleQueries() {
  return {
      {"S1", Q(R"(SELECT ?drug ?cpd ?mass WHERE {
  ?drug db:name "Drugamide12" .
  ?drug db:keggCompoundId ?cpd .
  ?cpd kegg:mass ?mass .
})")},
      {"S2", Q(R"(SELECT ?p ?place ?pname WHERE {
  ?p dbo:name "Person42" .
  ?p dbo:birthPlace ?place .
  ?place gn:name ?pname .
})")},
      {"S3", Q(R"(SELECT ?drug ?dbp ?name WHERE {
  ?drug rdf:type db:drugs .
  ?drug db:sameAs ?dbp .
  ?dbp dbo:name ?name .
})")},
      {"S4", Q(R"(SELECT ?cpd ?ch ?chname WHERE {
  ?drug db:name "Drugol13" .
  ?drug db:keggCompoundId ?cpd .
  ?cpd kegg:sameAs ?ch .
  ?ch chebi:name ?chname .
})")},
      {"S5", Q(R"(SELECT ?topic ?person ?occ WHERE {
  ?topic nyt:label "Person7" .
  ?topic nyt:sameAs ?person .
  ?person dbo:occupation ?occ .
})")},
      {"S6", Q(R"(SELECT ?artist ?place ?country WHERE {
  ?artist rdf:type mo:MusicArtist .
  ?artist mo:based_near ?place .
  ?place gn:parentCountry ?country .
})")},
      {"S7", Q(R"(SELECT ?film ?dbf ?director WHERE {
  ?film lmdb:sameAs ?dbf .
  ?film lmdb:title ?t .
  ?dbf dbo:director ?director .
})")},
      {"S8", Q(R"(SELECT ?probe ?cpd ?name WHERE {
  ?probe affy:symbol "GENE5" .
  ?probe affy:keggCompound ?cpd .
  ?cpd kegg:name ?name .
})")},
      {"S9", Q(R"(SELECT ?paper ?title ?year WHERE {
  ?paper swdf:author ?a .
  ?a swdf:name "Person40" .
  ?paper swdf:title ?title .
  ?paper swdf:year ?year .
})")},
      {"S10", Q(R"(SELECT ?patient ?dn ?drug ?cas WHERE {
  ?patient tcga:barcode "TCGA-1007" .
  ?patient tcga:drugName ?dn .
  ?drug db:name ?dn .
  ?drug db:casRegistryNumber ?cas .
})")},
      {"S11", Q(R"(SELECT ?cpd ?ch ?f WHERE {
  ?cpd kegg:sameAs ?ch .
  ?cpd kegg:formula ?f .
  ?ch chebi:formula ?f2 .
  FILTER (?f = ?f2)
})")},
      {"S12", Q(R"(SELECT ?place ?name ?pop WHERE {
  ?place gn:parentCountry ?c .
  ?c gn:countryName "Country3" .
  ?place gn:name ?name .
  ?place gn:population ?pop .
  FILTER (?pop > 500000)
})")},
      {"S13", Q(R"(SELECT ?topic ?person ?place WHERE {
  ?topic rdf:type nyt:Topic .
  ?topic nyt:sameAs ?person .
  ?person dbo:birthPlace ?place .
  ?place gn:parentCountry ?country .
})")},
      {"S14", Q(R"(SELECT ?film ?dbf ?director ?topic WHERE {
  ?film lmdb:sameAs ?dbf .
  ?dbf dbo:director ?director .
  ?topic nyt:sameAs ?director .
})")},
  };
}

std::vector<std::pair<std::string, std::string>>
LrbGenerator::ComplexQueries() {
  return {
      {"C1", Q(R"(SELECT ?patient ?dn ?drug ?cpd ?chname WHERE {
  ?patient rdf:type tcga:Patient .
  ?patient tcga:gender "female" .
  ?patient tcga:drugName ?dn .
  ?drug db:name ?dn .
  ?drug db:keggCompoundId ?cpd .
  ?cpd kegg:sameAs ?ch .
  ?ch chebi:name ?chname .
})")},
      {"C2", Q(R"(SELECT ?patient ?dn ?drug ?cas ?cpd WHERE {
  ?patient tcga:barcode "TCGA-1007" .
  ?patient tcga:drugName ?dn .
  ?drug db:name ?dn .
  ?drug db:casRegistryNumber ?cas .
  ?drug db:keggCompoundId ?cpd .
  ?cpd kegg:mass ?mass .
})")},
      {"C3", Q(R"(SELECT DISTINCT ?film ?director ?place ?country WHERE {
  ?film rdf:type dbo:Film .
  ?film dbo:director ?director .
  ?director dbo:birthPlace ?place .
  ?place gn:parentCountry ?country .
  ?place gn:name ?pname .
  ?country gn:countryName ?cname .
})")},
      {"C4", Q(R"(SELECT ?film ?director ?place ?pname WHERE {
  ?film rdf:type dbo:Film .
  ?film dbo:director ?director .
  ?director dbo:birthPlace ?place .
  ?place gn:name ?pname .
} LIMIT 50)")},
      {"C5", Q(R"(SELECT ?drug ?dbpDrug WHERE {
  ?drug rdf:type db:drugs .
  ?drug db:name ?n1 .
  ?dbpDrug rdf:type dbo:Drug .
  ?dbpDrug dbo:name ?n2 .
  FILTER (?n1 = ?n2)
})")},
      {"C6", Q(R"(SELECT ?drug ?cpd ?mass ?charge WHERE {
  ?drug rdf:type db:drugs .
  ?drug db:keggCompoundId ?cpd .
  ?cpd kegg:mass ?mass .
  ?cpd kegg:sameAs ?ch .
  OPTIONAL { ?ch chebi:charge ?charge . }
  FILTER (?mass > 120)
})")},
      {"C7", Q(R"(SELECT ?probe ?g ?result ?patient WHERE {
  ?probe affy:symbol ?g .
  ?probe affy:chromosome "chr5" .
  ?result tcga:methGene ?g .
  ?result tcga:methPatient ?patient .
  ?patient tcga:gender "male" .
})")},
      {"C8", Q(R"(SELECT ?n ?topic WHERE {
  ?topic nyt:label ?n .
  { ?a mo:name ?n . } UNION { ?p swdf:name ?n . }
})")},
      {"C9", Q(R"(SELECT DISTINCT ?topic ?person ?film ?lfilm WHERE {
  ?topic rdf:type nyt:Topic .
  ?topic nyt:sameAs ?person .
  ?film dbo:starring ?person .
  ?lfilm lmdb:sameAs ?film .
  ?lfilm lmdb:title ?t .
})")},
      {"C10", Q(R"(SELECT ?author ?n ?person ?place WHERE {
  ?paper swdf:author ?author .
  ?author swdf:name ?n .
  ?person dbo:name ?n .
  ?person dbo:birthPlace ?place .
  ?place gn:name ?pname .
})")},
  };
}

std::vector<std::pair<std::string, std::string>> LrbGenerator::LargeQueries() {
  return {
      {"B1", Q(R"(SELECT ?g ?probe WHERE {
  ?probe affy:symbol ?g .
  { ?r tcga:methGene ?g . } UNION { ?r2 tcga:exprGene ?g . }
})")},
      {"B2", Q(R"(SELECT ?patient ?r ?v WHERE {
  ?patient tcga:diseaseType "cancer3" .
  ?r tcga:methPatient ?patient .
  ?r tcga:methValue ?v .
})")},
      {"B3", Q(R"(SELECT ?patient ?g ?mv ?ev WHERE {
  ?patient tcga:gender "female" .
  ?m tcga:methPatient ?patient .
  ?m tcga:methGene ?g .
  ?m tcga:methValue ?mv .
  ?e tcga:exprPatient ?patient .
  ?e tcga:exprGene ?g .
  ?e tcga:exprValue ?ev .
})")},
      {"B4", Q(R"(SELECT ?drug ?dn ?cpd ?kn ?ch ?chn WHERE {
  ?drug rdf:type db:drugs .
  ?drug db:name ?dn .
  ?drug db:keggCompoundId ?cpd .
  ?cpd kegg:name ?kn .
  ?cpd kegg:sameAs ?ch .
  ?ch chebi:name ?chn .
})")},
      {"B5", Q(R"(SELECT ?probe ?r WHERE {
  ?probe affy:symbol ?g1 .
  ?probe affy:chromosome "chr1" .
  ?r tcga:methGene ?g2 .
  ?p2 tcga:diseaseType "cancer1" .
  ?r tcga:methPatient ?p2 .
  FILTER (?g1 = ?g2)
})")},
      {"B6", Q(R"(SELECT ?person ?n ?topic ?n2 WHERE {
  ?person dbo:occupation "Occupation5" .
  ?person dbo:name ?n .
  ?topic nyt:label ?n2 .
  FILTER (?n = ?n2)
})")},
      {"B7", Q(R"(SELECT ?place ?c ?country WHERE {
  ?place gn:parentCountry ?c .
  ?c gn:countryName ?cn .
  ?country rdf:type dbo:Country .
  ?country dbo:name ?cn .
  ?place gn:population ?pop .
})")},
      {"B8", Q(R"(SELECT ?record ?artist ?place ?pop WHERE {
  ?record rdf:type mo:Record .
  ?record mo:maker ?artist .
  ?artist mo:based_near ?place .
  ?place gn:population ?pop .
  FILTER (?pop > 200000)
})")},
  };
}

std::vector<std::pair<std::string, std::string>>
LrbGenerator::Bio2RdfQueries() {
  return {
      {"R1", Q(R"(SELECT ?drug ?cpd ?f WHERE {
  ?drug rdf:type db:drugs .
  ?drug db:keggCompoundId ?cpd .
  ?cpd kegg:formula ?f .
  FILTER (STRSTARTS(?f, "C1"))
})")},
      {"R2", Q(R"(SELECT ?probe ?cpd ?drug ?dn WHERE {
  ?probe affy:keggCompound ?cpd .
  ?drug db:keggCompoundId ?cpd .
  ?drug db:name ?dn .
})")},
      {"R3", Q(R"(SELECT ?patient ?dn ?drug ?cpd WHERE {
  ?patient rdf:type tcga:Patient .
  ?patient tcga:drugName ?dn .
  ?drug db:name ?dn .
  ?drug db:keggCompoundId ?cpd .
})")},
      {"R4", Q(R"(SELECT ?drug ?dbp ?name ?ch WHERE {
  ?drug db:sameAs ?dbp .
  ?dbp dbo:name ?name .
  ?drug db:keggCompoundId ?cpd .
  ?cpd kegg:sameAs ?ch .
})")},
      {"R5", Q(R"(SELECT ?probe ?g ?result WHERE {
  ?probe affy:symbol ?g .
  ?probe affy:chromosome "chr7" .
  ?result tcga:methGene ?g .
})")},
  };
}

}  // namespace lusail::workload
