#include "workload/federation_builder.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "store/triple_store.h"

namespace lusail::workload {

namespace {

using rdf::Term;
using rdf::TermTriple;

constexpr const char* kUb = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

Term UbIri(const std::string& local) { return Term::Iri(kUb + local); }
Term RdfType() { return Term::Iri(std::string(rdf::kRdfType)); }

void Add(std::vector<TermTriple>* out, Term s, Term p, Term o) {
  out->push_back(TermTriple{std::move(s), std::move(p), std::move(o)});
}

}  // namespace

std::unique_ptr<fed::Federation> BuildFederation(
    std::vector<EndpointSpec> specs, const net::LatencyModel& latency) {
  auto federation = std::make_unique<fed::Federation>();
  for (EndpointSpec& spec : specs) {
    auto store = std::make_unique<store::TripleStore>();
    for (const TermTriple& t : spec.triples) store->Add(t);
    store->Freeze();
    federation->Add(std::make_shared<net::SparqlEndpoint>(
        spec.id, std::move(store), latency));
  }
  return federation;
}

Status ExportFederation(const std::vector<EndpointSpec>& specs,
                        const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create directory " + directory +
                                   ": " + ec.message());
  }
  for (const EndpointSpec& spec : specs) {
    std::string path = directory + "/" + spec.id + ".nt";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::InvalidArgument("cannot write " + path);
    }
    out << rdf::WriteNTriples(spec.triples);
    if (!out.good()) {
      return Status::Internal("short write to " + path);
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<fed::Federation>> LoadFederationFromDirectory(
    const std::string& directory, const net::LatencyModel& latency) {
  std::error_code ec;
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory, ec)) {
    if (entry.path().extension() == ".nt") files.push_back(entry.path());
  }
  if (ec) {
    return Status::NotFound("cannot read directory " + directory + ": " +
                            ec.message());
  }
  if (files.empty()) {
    return Status::NotFound("no .nt files in " + directory);
  }
  std::sort(files.begin(), files.end());
  auto federation = std::make_unique<fed::Federation>();
  for (const auto& path : files) {
    auto store = std::make_unique<store::TripleStore>();
    LUSAIL_RETURN_NOT_OK(store->LoadNTriplesFile(path.string()));
    store->Freeze();
    federation->Add(std::make_shared<net::SparqlEndpoint>(
        path.stem().string(), std::move(store), latency));
  }
  return federation;
}

std::vector<EndpointSpec> Figure1Federation() {
  Term mit = Term::Iri("http://www.mit.edu");
  Term cmu = Term::Iri("http://www.cmu.edu");
  auto person = [](const std::string& host, const std::string& name) {
    return Term::Iri("http://www." + host + "/people#" + name);
  };
  auto course = [](const std::string& host, const std::string& name) {
    return Term::Iri("http://www." + host + "/courses#" + name);
  };

  // EP1 hosts MIT: professors Ben (teaches C3) and Ann (advises Sam but
  // teaches nothing — the paper's "extraneous computation" case), student
  // Lee, and MIT's address.
  EndpointSpec ep1;
  ep1.id = "EP1";
  {
    auto* t = &ep1.triples;
    Term ben = person("mit.edu", "Ben");
    Term ann = person("mit.edu", "Ann");
    Term lee = person("mit.edu", "Lee");
    Term sam = person("mit.edu", "Sam");
    Term c3 = course("mit.edu", "C3");
    Add(t, mit, UbIri("address"), Term::Literal("XXX"));
    Add(t, ben, RdfType(), UbIri("associateProfessor"));
    Add(t, ben, UbIri("PhDDegreeFrom"), mit);
    Add(t, ben, UbIri("teacherOf"), c3);
    Add(t, ben, UbIri("worksFor"), mit);
    Add(t, ann, RdfType(), UbIri("associateProfessor"));
    Add(t, ann, UbIri("PhDDegreeFrom"), mit);
    Add(t, ann, UbIri("worksFor"), mit);
    Add(t, lee, RdfType(), UbIri("graduateStudent"));
    Add(t, lee, UbIri("advisor"), ben);
    Add(t, lee, UbIri("takesCourse"), c3);
    Add(t, sam, RdfType(), UbIri("graduateStudent"));
    Add(t, sam, UbIri("advisor"), ann);
    Add(t, sam, UbIri("takesCourse"), c3);
    Add(t, c3, RdfType(), UbIri("graduateCourse"));
  }

  // EP2 hosts CMU: professors Joy (PhD from CMU) and Tim (PhD from MIT —
  // the interlink), student Kim advised by both.
  EndpointSpec ep2;
  ep2.id = "EP2";
  {
    auto* t = &ep2.triples;
    Term joy = person("cmu.edu", "Joy");
    Term tim = person("cmu.edu", "Tim");
    Term kim = person("cmu.edu", "Kim");
    Term c1 = course("cmu.edu", "C1");
    Term c2 = course("cmu.edu", "C2");
    Add(t, cmu, UbIri("address"), Term::Literal("CCCC"));
    Add(t, joy, RdfType(), UbIri("associateProfessor"));
    Add(t, joy, UbIri("PhDDegreeFrom"), cmu);
    Add(t, joy, UbIri("teacherOf"), c1);
    Add(t, joy, UbIri("worksFor"), cmu);
    Add(t, tim, RdfType(), UbIri("associateProfessor"));
    Add(t, tim, UbIri("PhDDegreeFrom"), mit);  // Interlink to EP1.
    Add(t, tim, UbIri("teacherOf"), c2);
    Add(t, tim, UbIri("worksFor"), cmu);
    Add(t, kim, RdfType(), UbIri("graduateStudent"));
    Add(t, kim, UbIri("advisor"), joy);
    Add(t, kim, UbIri("advisor"), tim);
    Add(t, kim, UbIri("takesCourse"), c1);
    Add(t, kim, UbIri("takesCourse"), c2);
    Add(t, c1, RdfType(), UbIri("graduateCourse"));
    Add(t, c2, RdfType(), UbIri("graduateCourse"));
  }
  return {std::move(ep1), std::move(ep2)};
}

std::string Figure2QueryQa() {
  return R"(PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?S ?P ?U ?A WHERE {
  ?S ub:advisor ?P .
  ?S rdf:type ub:graduateStudent .
  ?P ub:teacherOf ?C .
  ?P rdf:type ub:associateProfessor .
  ?S ub:takesCourse ?C .
  ?C rdf:type ub:graduateCourse .
  ?P ub:PhDDegreeFrom ?U .
  ?U ub:address ?A .
})";
}

}  // namespace lusail::workload
