#include "workload/lubm_generator.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace lusail::workload {

namespace {

using rdf::Term;
using rdf::TermTriple;

constexpr const char* kUb = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

Term UbIri(const std::string& local) { return Term::Iri(kUb + local); }
Term RdfType() { return Term::Iri(std::string(rdf::kRdfType)); }

void Add(std::vector<TermTriple>* out, Term s, Term p, Term o) {
  out->push_back(TermTriple{std::move(s), std::move(p), std::move(o)});
}

std::string DeptPrefix(int u, int d) {
  return "http://www.department" + std::to_string(d) + ".university" +
         std::to_string(u) + ".edu";
}

/// Picks a remote university for a degree link, skewed toward low indices
/// (university0 is the most popular alma mater).
int RemoteUniversity(lusail::Rng* rng, int self, int num_universities) {
  if (num_universities <= 1) return self;
  double r = rng->NextDouble();
  int target = static_cast<int>(std::floor(num_universities * r * r));
  if (target >= num_universities) target = num_universities - 1;
  if (target == self) target = (target + 1) % num_universities;
  return target;
}

constexpr const char* kPrologue =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";

}  // namespace

LubmConfig LubmConfig::Small() {
  LubmConfig c;
  c.num_universities = 2;
  c.departments_per_university = 2;
  c.professors_per_department = 4;
  c.grad_students_per_department = 8;
  c.undergrad_students_per_department = 10;
  c.courses_per_department = 6;
  return c;
}

LubmConfig LubmConfig::Bench() {
  LubmConfig c;
  c.num_universities = 4;
  c.departments_per_university = 5;
  c.professors_per_department = 10;
  c.grad_students_per_department = 40;
  c.undergrad_students_per_department = 80;
  c.courses_per_department = 15;
  return c;
}

LubmConfig LubmConfig::Sweep() {
  LubmConfig c;
  c.num_universities = 64;
  c.departments_per_university = 2;
  c.professors_per_department = 4;
  c.grad_students_per_department = 10;
  c.undergrad_students_per_department = 15;
  c.courses_per_department = 6;
  return c;
}

std::string LubmGenerator::UniversityIri(int u) {
  return "http://www.university" + std::to_string(u) + ".edu";
}

std::vector<TermTriple> LubmGenerator::GenerateUniversity(int u) const {
  const LubmConfig& cfg = config_;
  lusail::Rng rng(cfg.seed * 2654435761ULL + static_cast<uint64_t>(u));
  std::vector<TermTriple> triples;

  Term univ = Term::Iri(UniversityIri(u));
  Add(&triples, univ, RdfType(), UbIri("University"));
  Add(&triples, univ, UbIri("name"),
      Term::Literal("University" + std::to_string(u)));
  Add(&triples, univ, UbIri("address"),
      Term::Literal("Campus Drive " + std::to_string(100 + u) +
                    ", College Town " + std::to_string(u)));

  for (int d = 0; d < cfg.departments_per_university; ++d) {
    std::string prefix = DeptPrefix(u, d);
    Term dept = Term::Iri(prefix);
    Add(&triples, dept, RdfType(), UbIri("Department"));
    Add(&triples, dept, UbIri("subOrganizationOf"), univ);
    Add(&triples, dept, UbIri("name"),
        Term::Literal("Department" + std::to_string(d)));

    // Courses: the first half graduate, the rest undergraduate.
    std::vector<Term> grad_courses, undergrad_courses;
    for (int c = 0; c < cfg.courses_per_department; ++c) {
      bool graduate = c < cfg.courses_per_department / 2;
      Term course = Term::Iri(prefix + "/" +
                              (graduate ? "graduateCourse" : "course") +
                              std::to_string(c));
      Add(&triples, course, RdfType(),
          UbIri(graduate ? "GraduateCourse" : "Course"));
      Add(&triples, course, UbIri("name"),
          Term::Literal("Course" + std::to_string(c)));
      (graduate ? grad_courses : undergrad_courses).push_back(course);
    }

    // Professors: round-robin Full / Associate / Assistant.
    static const char* kRanks[] = {"FullProfessor", "AssociateProfessor",
                                   "AssistantProfessor"};
    std::vector<Term> professors;
    std::vector<std::vector<Term>> courses_of(cfg.professors_per_department);
    for (int p = 0; p < cfg.professors_per_department; ++p) {
      Term prof = Term::Iri(prefix + "/professor" + std::to_string(p));
      professors.push_back(prof);
      Add(&triples, prof, RdfType(), UbIri(kRanks[p % 3]));
      Add(&triples, prof, UbIri("worksFor"), dept);
      Add(&triples, prof, UbIri("name"),
          Term::Literal("Professor" + std::to_string(p)));
      Add(&triples, prof, UbIri("emailAddress"),
          Term::Literal("professor" + std::to_string(p) + "@university" +
                        std::to_string(u) + ".edu"));
      Add(&triples, prof, UbIri("address"),
          Term::Literal("Office " + std::to_string(p) + ", Department " +
                        std::to_string(d)));
      Add(&triples, prof, UbIri("researchInterest"),
          Term::Literal("Research" + std::to_string(
                            static_cast<int>(rng.NextBelow(20)))));
      // Degrees: undergraduate and masters local, PhD possibly remote.
      Add(&triples, prof, UbIri("undergraduateDegreeFrom"), univ);
      Add(&triples, prof, UbIri("mastersDegreeFrom"), univ);
      Term phd_univ = univ;
      if (rng.NextBool(cfg.remote_phd_fraction)) {
        phd_univ = Term::Iri(UniversityIri(
            RemoteUniversity(&rng, u, cfg.num_universities)));
      }
      Add(&triples, prof, UbIri("PhDDegreeFrom"), phd_univ);
    }
    // Teaching: every course is taught by some professor (round-robin, as
    // in real LUBM where courses exist because faculty teach them), except
    // for configured non-teaching professors (the paper's "Ann" case).
    {
      std::vector<bool> teaches(professors.size(), true);
      for (size_t p = 0; p < professors.size(); ++p) {
        if (rng.NextBool(cfg.professor_no_course_fraction)) {
          teaches[p] = false;
        }
      }
      // Guarantee at least one teaching professor.
      if (std::find(teaches.begin(), teaches.end(), true) == teaches.end()) {
        teaches[0] = true;
      }
      std::vector<Term> all_courses = grad_courses;
      all_courses.insert(all_courses.end(), undergrad_courses.begin(),
                         undergrad_courses.end());
      size_t next = 0;
      for (const Term& course : all_courses) {
        while (!teaches[next % professors.size()]) ++next;
        size_t p = next % professors.size();
        Add(&triples, professors[p], UbIri("teacherOf"), course);
        courses_of[p].push_back(course);
        ++next;
      }
      // Any teaching professor left without a course (more professors
      // than courses) still teaches at least one.
      for (size_t p = 0; p < professors.size(); ++p) {
        if (teaches[p] && courses_of[p].empty() && !all_courses.empty()) {
          Term course = all_courses[p % all_courses.size()];
          Add(&triples, professors[p], UbIri("teacherOf"), course);
          courses_of[p].push_back(course);
        }
      }
    }

    // Graduate students.
    for (int s = 0; s < cfg.grad_students_per_department; ++s) {
      Term student = Term::Iri(prefix + "/graduateStudent" +
                               std::to_string(s));
      Add(&triples, student, RdfType(), UbIri("GraduateStudent"));
      Add(&triples, student, UbIri("memberOf"), dept);
      Add(&triples, student, UbIri("name"),
          Term::Literal("GraduateStudent" + std::to_string(s)));
      Add(&triples, student, UbIri("emailAddress"),
          Term::Literal("gradstudent" + std::to_string(s) + "@department" +
                        std::to_string(d) + ".university" +
                        std::to_string(u) + ".edu"));
      Add(&triples, student, UbIri("address"),
          Term::Literal("Dorm " + std::to_string(s % 7) + ", Campus " +
                        std::to_string(u)));
      // Undergraduate degree: local, or remote skewed toward university0.
      Term ug_univ = univ;
      if (rng.NextBool(cfg.remote_undergrad_fraction)) {
        ug_univ = Term::Iri(UniversityIri(
            RemoteUniversity(&rng, u, cfg.num_universities)));
      }
      Add(&triples, student, UbIri("undergraduateDegreeFrom"), ug_univ);
      // Advisor from the same department; half the time the student takes
      // one of the advisor's courses (the Q9 triangle).
      int advisor_index = static_cast<int>(rng.NextBelow(professors.size()));
      Add(&triples, student, UbIri("advisor"), professors[advisor_index]);
      // Coverage guarantee: student s takes grad course s mod |courses|,
      // so every graduate course has at least one taker; plus the Q9
      // triangle (a course taught by the advisor) half of the time, plus
      // random extras.
      Add(&triples, student, UbIri("takesCourse"),
          grad_courses[s % grad_courses.size()]);
      if (rng.NextBool(0.5) && !courses_of[advisor_index].empty()) {
        Add(&triples, student, UbIri("takesCourse"),
            courses_of[advisor_index][rng.NextBelow(
                courses_of[advisor_index].size())]);
      }
      size_t extras = rng.NextBelow(2);
      for (size_t k = 0; k < extras; ++k) {
        Add(&triples, student, UbIri("takesCourse"),
            grad_courses[rng.NextBelow(grad_courses.size())]);
      }
    }

    // Undergraduate students.
    for (int s = 0; s < cfg.undergrad_students_per_department; ++s) {
      Term student = Term::Iri(prefix + "/undergraduateStudent" +
                               std::to_string(s));
      Add(&triples, student, RdfType(), UbIri("UndergraduateStudent"));
      Add(&triples, student, UbIri("memberOf"), dept);
      Add(&triples, student, UbIri("name"),
          Term::Literal("UndergraduateStudent" + std::to_string(s)));
      const std::vector<Term>& pool =
          undergrad_courses.empty() ? grad_courses : undergrad_courses;
      // Same coverage guarantee for undergraduate courses.
      Add(&triples, student, UbIri("takesCourse"), pool[s % pool.size()]);
      size_t extras = rng.NextBelow(3);
      for (size_t k = 0; k < extras; ++k) {
        Add(&triples, student, UbIri("takesCourse"),
            pool[rng.NextBelow(pool.size())]);
      }
    }
  }
  return triples;
}

std::vector<EndpointSpec> LubmGenerator::GenerateAll() const {
  std::vector<EndpointSpec> specs;
  specs.reserve(config_.num_universities);
  for (int u = 0; u < config_.num_universities; ++u) {
    EndpointSpec spec;
    spec.id = "university" + std::to_string(u);
    spec.triples = GenerateUniversity(u);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::string LubmGenerator::QueryQa() {
  return std::string(kPrologue) + R"(SELECT ?S ?P ?U ?A WHERE {
  ?S ub:advisor ?P .
  ?S rdf:type ub:GraduateStudent .
  ?P ub:teacherOf ?C .
  ?P rdf:type ub:AssociateProfessor .
  ?S ub:takesCourse ?C .
  ?C rdf:type ub:GraduateCourse .
  ?P ub:PhDDegreeFrom ?U .
  ?U ub:address ?A .
})";
}

std::string LubmGenerator::Q1() {
  return std::string(kPrologue) + R"(SELECT ?X ?Y ?Z WHERE {
  ?X rdf:type ub:GraduateStudent .
  ?Y rdf:type ub:University .
  ?Z rdf:type ub:Department .
  ?X ub:memberOf ?Z .
  ?Z ub:subOrganizationOf ?Y .
  ?X ub:undergraduateDegreeFrom ?Y .
})";
}

std::string LubmGenerator::Q2() {
  return std::string(kPrologue) + R"(SELECT ?X ?Y ?Z WHERE {
  ?X rdf:type ub:GraduateStudent .
  ?Z rdf:type ub:GraduateCourse .
  ?X ub:advisor ?Y .
  ?Y ub:teacherOf ?Z .
  ?X ub:takesCourse ?Z .
})";
}

std::string LubmGenerator::Q3(int university) {
  return std::string(kPrologue) + "SELECT ?X WHERE {\n  ?X rdf:type "
         "ub:GraduateStudent .\n  ?X ub:undergraduateDegreeFrom <" +
         UniversityIri(university) + "> .\n}";
}

std::string LubmGenerator::Q4() {
  return std::string(kPrologue) + R"(SELECT ?X ?Y ?U ?A WHERE {
  ?X rdf:type ub:GraduateStudent .
  ?X ub:advisor ?Y .
  ?Y ub:teacherOf ?Z .
  ?X ub:takesCourse ?Z .
  ?Y ub:PhDDegreeFrom ?U .
  ?U ub:address ?A .
})";
}

std::vector<std::pair<std::string, std::string>>
LubmGenerator::BenchmarkQueries() {
  return {{"Q1", Q1()}, {"Q2", Q2()}, {"Q3", Q3(0)}, {"Q4", Q4()}};
}

}  // namespace lusail::workload
