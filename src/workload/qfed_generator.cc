#include "workload/qfed_generator.h"

#include "common/rng.h"

namespace lusail::workload {

namespace {

using rdf::Term;
using rdf::TermTriple;

constexpr const char* kDb = "http://drugbank.example.org/vocab#";
constexpr const char* kDis = "http://diseasome.example.org/vocab#";
constexpr const char* kSid = "http://sider.example.org/vocab#";
constexpr const char* kDm = "http://dailymed.example.org/vocab#";

Term RdfType() { return Term::Iri(std::string(rdf::kRdfType)); }

void Add(std::vector<TermTriple>* out, Term s, Term p, Term o) {
  out->push_back(TermTriple{std::move(s), std::move(p), std::move(o)});
}

Term DrugIri(int i) {
  return Term::Iri("http://drugbank.example.org/resource/drugs/" +
                   std::to_string(i));
}

const char* kNameSuffixes[] = {"amide", "ol", "ine", "ate", "an", "ex"};

std::string DrugName(int i) {
  return "Drug" + std::string(kNameSuffixes[i % 6]) + std::to_string(i);
}

/// A deterministic pseudo-text literal of roughly `chars` characters.
std::string BigLiteral(const std::string& topic, int chars, uint64_t seed) {
  static const char* kWords[] = {
      "treatment", "of",       "chronic",   "conditions", "with",
      "observed",  "efficacy", "in",        "clinical",   "trials",
      "including", "adverse",  "reactions", "monitoring", "dosage",
      "adjusted",  "for",      "hepatic",   "impairment", "patients"};
  lusail::Rng rng(seed);
  std::string out = topic + ": ";
  while (static_cast<int>(out.size()) < chars) {
    out += kWords[rng.NextBelow(20)];
    out += ' ';
  }
  return out;
}

constexpr const char* kPrologue =
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
    "PREFIX db: <http://drugbank.example.org/vocab#>\n"
    "PREFIX dis: <http://diseasome.example.org/vocab#>\n"
    "PREFIX sid: <http://sider.example.org/vocab#>\n"
    "PREFIX dm: <http://dailymed.example.org/vocab#>\n";

constexpr const char* kBaseJoin = R"(
  ?disease rdf:type dis:disease .
  ?disease dis:name ?diseaseName .
  ?disease dis:possibleDrug ?drug .
  ?drug rdf:type db:drugs .
  ?drug db:name ?dn .
  ?label dm:genericDrug ?drug .
)";

}  // namespace

QFedConfig QFedConfig::Small() {
  QFedConfig c;
  c.num_drugs = 150;
  c.num_diseases = 60;
  c.num_sider_drugs = 50;
  c.num_labels = 70;
  c.big_literal_chars = 120;
  return c;
}

std::vector<TermTriple> QFedGenerator::GenerateDrugBank() const {
  std::vector<TermTriple> t;
  auto db = [](const char* local) { return Term::Iri(kDb + std::string(local)); };
  for (int i = 0; i < config_.num_drugs; ++i) {
    Term drug = DrugIri(i);
    Add(&t, drug, RdfType(), db("drugs"));
    Add(&t, drug, db("name"), Term::Literal(DrugName(i)));
    Add(&t, drug, db("casRegistryNumber"),
        Term::Literal("CAS-" + std::to_string(100000 + i)));
    Add(&t, drug, db("indication"),
        Term::Literal(BigLiteral("Indication of " + DrugName(i),
                                 config_.big_literal_chars,
                                 config_.seed * 31 + i)));
    Add(&t, drug, db("target"),
        Term::Iri("http://drugbank.example.org/resource/targets/" +
                  std::to_string(i % 300)));
    if (config_.num_drugs > 1) {
      Add(&t, drug, db("interactsWith"),
          DrugIri((i * 7 + 1) % config_.num_drugs));
    }
  }
  return t;
}

std::vector<TermTriple> QFedGenerator::GenerateDiseasome() const {
  std::vector<TermTriple> t;
  auto dis = [](const char* local) {
    return Term::Iri(kDis + std::string(local));
  };
  lusail::Rng rng(config_.seed * 17 + 1);
  for (int j = 0; j < config_.num_diseases; ++j) {
    Term disease = Term::Iri(
        "http://diseasome.example.org/resource/diseases/" + std::to_string(j));
    Add(&t, disease, RdfType(), dis("disease"));
    Add(&t, disease, dis("name"),
        Term::Literal("Disease" + std::to_string(j)));
    Add(&t, disease, dis("associatedGene"),
        Term::Iri("http://diseasome.example.org/resource/genes/" +
                  std::to_string(j % 200)));
    // 1-3 candidate drugs — the interlink into DrugBank.
    int num_links = 1 + static_cast<int>(rng.NextBelow(3));
    for (int k = 0; k < num_links; ++k) {
      Add(&t, disease, dis("possibleDrug"),
          DrugIri((j * 3 + k * 11) % config_.num_drugs));
    }
  }
  return t;
}

std::vector<TermTriple> QFedGenerator::GenerateSider() const {
  std::vector<TermTriple> t;
  auto sid = [](const char* local) {
    return Term::Iri(kSid + std::string(local));
  };
  for (int k = 0; k < config_.num_sider_drugs; ++k) {
    Term drug = Term::Iri("http://sider.example.org/resource/drugs/" +
                          std::to_string(k));
    Add(&t, drug, RdfType(), sid("drugs"));
    Add(&t, drug, sid("siderDrugName"),
        Term::Literal(DrugName((k * 2) % config_.num_drugs)));
    Add(&t, drug, sid("sameAs"), DrugIri((k * 2) % config_.num_drugs));
    Term effect = Term::Iri("http://sider.example.org/resource/effects/" +
                            std::to_string(k % 50));
    Add(&t, drug, sid("sideEffect"), effect);
    Add(&t, effect, sid("sideEffectName"),
        Term::Literal("SideEffect" + std::to_string(k % 50)));
  }
  return t;
}

std::vector<TermTriple> QFedGenerator::GenerateDailyMed() const {
  std::vector<TermTriple> t;
  auto dm = [](const char* local) { return Term::Iri(kDm + std::string(local)); };
  for (int m = 0; m < config_.num_labels; ++m) {
    Term label = Term::Iri("http://dailymed.example.org/resource/labels/" +
                           std::to_string(m));
    Add(&t, label, RdfType(), dm("drugs"));
    Add(&t, label, dm("genericDrug"), DrugIri((m * 5 + 2) % config_.num_drugs));
    Add(&t, label, dm("activeIngredient"),
        Term::Literal("Ingredient" + std::to_string(m % 120)));
    Add(&t, label, dm("description"),
        Term::Literal(BigLiteral("Label " + std::to_string(m),
                                 config_.big_literal_chars,
                                 config_.seed * 53 + m)));
  }
  return t;
}

std::vector<EndpointSpec> QFedGenerator::GenerateAll() const {
  std::vector<EndpointSpec> specs(4);
  specs[0].id = "drugbank";
  specs[0].triples = GenerateDrugBank();
  specs[1].id = "diseasome";
  specs[1].triples = GenerateDiseasome();
  specs[2].id = "sider";
  specs[2].triples = GenerateSider();
  specs[3].id = "dailymed";
  specs[3].triples = GenerateDailyMed();
  return specs;
}

std::string QFedGenerator::C2P2() {
  return std::string(kPrologue) +
         "SELECT ?disease ?diseaseName ?drug ?dn ?label WHERE {" + kBaseJoin +
         "}";
}

std::string QFedGenerator::C2P2F() {
  return std::string(kPrologue) +
         "SELECT ?disease ?diseaseName ?drug ?dn ?label WHERE {" + kBaseJoin +
         "  FILTER (CONTAINS(?dn, \"amide\"))\n}";
}

std::string QFedGenerator::C2P2B() {
  return std::string(kPrologue) +
         "SELECT ?disease ?drug ?dn ?ind ?label WHERE {" + kBaseJoin +
         "  ?drug db:indication ?ind .\n}";
}

std::string QFedGenerator::C2P2BF() {
  return std::string(kPrologue) +
         "SELECT ?disease ?drug ?dn ?ind ?label WHERE {" + kBaseJoin +
         "  ?drug db:indication ?ind .\n"
         "  FILTER (CONTAINS(?dn, \"amide\"))\n}";
}

std::string QFedGenerator::C2P2BO() {
  return std::string(kPrologue) +
         "SELECT ?disease ?drug ?dn ?ind ?label ?desc WHERE {" + kBaseJoin +
         "  ?drug db:indication ?ind .\n"
         "  OPTIONAL { ?label dm:description ?desc . }\n}";
}

std::string QFedGenerator::C2P2BOF() {
  return std::string(kPrologue) +
         "SELECT ?disease ?drug ?dn ?ind ?label ?desc WHERE {" + kBaseJoin +
         "  ?drug db:indication ?ind .\n"
         "  OPTIONAL { ?label dm:description ?desc . }\n"
         "  FILTER (CONTAINS(?dn, \"amide\"))\n}";
}

std::string QFedGenerator::C2P2OF() {
  return std::string(kPrologue) +
         "SELECT ?disease ?drug ?dn ?label ?desc WHERE {" + kBaseJoin +
         "  OPTIONAL { ?label dm:description ?desc . }\n"
         "  FILTER (CONTAINS(?dn, \"amide\"))\n}";
}

std::vector<std::pair<std::string, std::string>>
QFedGenerator::BenchmarkQueries() {
  return {{"C2P2", C2P2()},     {"C2P2B", C2P2B()},   {"C2P2BF", C2P2BF()},
          {"C2P2BO", C2P2BO()}, {"C2P2BOF", C2P2BOF()}, {"C2P2F", C2P2F()},
          {"C2P2OF", C2P2OF()}};
}

}  // namespace lusail::workload
