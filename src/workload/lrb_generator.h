#ifndef LUSAIL_WORKLOAD_LRB_GENERATOR_H_
#define LUSAIL_WORKLOAD_LRB_GENERATOR_H_

#include <string>
#include <utility>
#include <vector>

#include "workload/federation_builder.h"

namespace lusail::workload {

/// Configuration of the LargeRDFBench-style federation: 13 heterogeneous
/// datasets (DBpedia, GeoNames, DrugBank, KEGG, ChEBI, LinkedMDB,
/// Jamendo, NYTimes, SWDogFood, Affymetrix and the three LinkedTCGA
/// slices) with the benchmark's interlink structure: sameAs bridges into
/// DBpedia, compound chains DrugBank→KEGG→ChEBI, geo links into GeoNames,
/// and literal-valued joins (drug names, gene symbols) between the
/// biomedical sets. The TCGA slices dominate the volume, as in the paper.
struct LrbConfig {
  int dbpedia_persons = 2000;
  int dbpedia_films = 600;
  int dbpedia_drugs = 300;
  int geonames_places = 2500;
  int num_countries = 40;
  int drugbank_drugs = 800;
  int kegg_compounds = 700;
  int chebi_compounds = 900;
  int lmdb_films = 1000;
  int jamendo_artists = 500;
  int jamendo_records = 1000;
  int nytimes_topics = 800;
  int swdf_papers = 400;
  int swdf_people = 200;
  int affymetrix_probes = 1200;
  int tcga_patients = 300;
  int tcga_meth_rows_per_patient = 40;   ///< LinkedTCGA-M (largest).
  int tcga_expr_rows_per_patient = 25;   ///< LinkedTCGA-E.
  int num_genes = 400;
  uint64_t seed = 11;

  static LrbConfig Small();
};

/// Deterministic LargeRDFBench-style generator and query workload.
class LrbGenerator {
 public:
  explicit LrbGenerator(LrbConfig config) : config_(config) {}

  const LrbConfig& config() const { return config_; }

  /// The 13 endpoints, ids: dbpedia, geonames, drugbank, kegg, chebi,
  /// linkedmdb, jamendo, nytimes, swdf, affymetrix, tcga-a, tcga-m,
  /// tcga-e.
  std::vector<EndpointSpec> GenerateAll() const;

  /// Simple category (S1..S14): 2-4 triple patterns, 2-3 datasets.
  static std::vector<std::pair<std::string, std::string>> SimpleQueries();

  /// Complex category (C1..C10): more triple patterns and advanced
  /// clauses (DISTINCT, OPTIONAL, FILTER, LIMIT; C5 joins two disjoint
  /// subgraphs through a FILTER variable).
  static std::vector<std::pair<std::string, std::string>> ComplexQueries();

  /// Large category (B1..B8): large intermediate results; B1 contains a
  /// UNION over the biggest endpoints; B5/B6 join disjoint subgraphs by
  /// FILTER.
  static std::vector<std::pair<std::string, std::string>> LargeQueries();

  /// Bio2RDF-style log queries R1..R5 (Table 2).
  static std::vector<std::pair<std::string, std::string>> Bio2RdfQueries();

  /// Canonical drug name / gene symbol helpers shared by datasets (these
  /// literal joins are what C1/C7/B5-style queries exercise).
  static std::string DrugName(int i);
  static std::string GeneSymbol(int i);

 private:
  LrbConfig config_;
};

}  // namespace lusail::workload

#endif  // LUSAIL_WORKLOAD_LRB_GENERATOR_H_
