#ifndef LUSAIL_WORKLOAD_QFED_GENERATOR_H_
#define LUSAIL_WORKLOAD_QFED_GENERATOR_H_

#include <string>
#include <utility>
#include <vector>

#include "workload/federation_builder.h"

namespace lusail::workload {

/// Configuration of the QFed-style linked life-science federation: four
/// real-world-shaped datasets (DrugBank, Diseasome, Sider, DailyMed) with
/// cross-dataset interlinks (diseasome:possibleDrug, dailymed:genericDrug
/// and sider:sameAs all reference DrugBank drug IRIs).
struct QFedConfig {
  int num_drugs = 1500;
  int num_diseases = 600;
  int num_sider_drugs = 500;
  int num_labels = 700;
  /// Length of the "big literal" drug indications / label descriptions
  /// that drive the C2P2B* queries' communication volume.
  int big_literal_chars = 400;
  uint64_t seed = 7;

  static QFedConfig Small();
};

/// Deterministic QFed-style generator.
class QFedGenerator {
 public:
  explicit QFedGenerator(QFedConfig config) : config_(config) {}

  const QFedConfig& config() const { return config_; }

  std::vector<rdf::TermTriple> GenerateDrugBank() const;
  std::vector<rdf::TermTriple> GenerateDiseasome() const;
  std::vector<rdf::TermTriple> GenerateSider() const;
  std::vector<rdf::TermTriple> GenerateDailyMed() const;

  /// The four endpoints: drugbank, diseasome, sider, dailymed.
  std::vector<EndpointSpec> GenerateAll() const;

  // --- The C2P2 query family (Figure 8): 2 classes, 2 interlinking
  // predicates, with B (big literal), O (OPTIONAL) and F (FILTER)
  // variants. ---
  static std::string C2P2();
  static std::string C2P2F();
  static std::string C2P2B();
  static std::string C2P2BF();
  static std::string C2P2BO();
  static std::string C2P2BOF();
  static std::string C2P2OF();

  /// All benchmark queries with the labels of Figure 8.
  static std::vector<std::pair<std::string, std::string>> BenchmarkQueries();

 private:
  QFedConfig config_;
};

}  // namespace lusail::workload

#endif  // LUSAIL_WORKLOAD_QFED_GENERATOR_H_
