#ifndef LUSAIL_WORKLOAD_FEDERATION_BUILDER_H_
#define LUSAIL_WORKLOAD_FEDERATION_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "federation/federation.h"
#include "net/latency_model.h"
#include "net/sparql_endpoint.h"
#include "rdf/ntriples.h"

namespace lusail::workload {

/// One endpoint's dataset before deployment.
struct EndpointSpec {
  std::string id;
  std::vector<rdf::TermTriple> triples;
};

/// Deploys the specs as simulated SPARQL endpoints under one latency
/// model and returns the federation.
std::unique_ptr<fed::Federation> BuildFederation(
    std::vector<EndpointSpec> specs, const net::LatencyModel& latency);

/// Writes each endpoint's dataset to `<directory>/<id>.nt` (N-Triples).
/// Creates the directory if needed.
Status ExportFederation(const std::vector<EndpointSpec>& specs,
                        const std::string& directory);

/// Loads every `*.nt` file in `directory` as one endpoint (the endpoint
/// id is the file stem) and deploys the federation. Files are loaded in
/// lexicographic order for stable endpoint indices.
Result<std::unique_ptr<fed::Federation>> LoadFederationFromDirectory(
    const std::string& directory, const net::LatencyModel& latency);

/// The toy decentralized graph of the paper's Figure 1: two universities
/// (EP1 hosts MIT, EP2 hosts CMU), professors Ann / Tim / Joy / Ben,
/// students Kim / Lee / Sam, and the interlink — Tim's PhD is from MIT,
/// which lives at the *other* endpoint. Running the paper's query Q_a
/// (Figure 2) over this federation must yield exactly three answers:
/// (Kim, Joy, CMU, "CCCC"), (Kim, Tim, MIT, "XXX"), (Lee, Ben, MIT,
/// "XXX").
std::vector<EndpointSpec> Figure1Federation();

/// The paper's query Q_a (Figure 2) over the Figure 1 federation.
std::string Figure2QueryQa();

}  // namespace lusail::workload

#endif  // LUSAIL_WORKLOAD_FEDERATION_BUILDER_H_
