#ifndef LUSAIL_FEDERATION_BINDING_TABLE_H_
#define LUSAIL_FEDERATION_BINDING_TABLE_H_

#include <mutex>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "sparql/result_table.h"

namespace lusail::fed {

/// Thread-safe term dictionary owned by the federated query processor.
/// Endpoint results are re-interned here so that all federation-level
/// joins run on integer keys regardless of which endpoint produced a
/// binding.
class SharedDictionary {
 public:
  SharedDictionary() = default;
  SharedDictionary(const SharedDictionary&) = delete;
  SharedDictionary& operator=(const SharedDictionary&) = delete;

  rdf::TermId Intern(const rdf::Term& term) {
    std::lock_guard<std::mutex> lock(mu_);
    return dict_.Intern(term);
  }

  rdf::Term term(rdf::TermId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return dict_.term(id);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dict_.size();
  }

 private:
  mutable std::mutex mu_;
  rdf::Dictionary dict_;
};

/// A federation-level binding table: columns are variable names, cells are
/// SharedDictionary ids (kInvalidTermId = unbound).
struct BindingTable {
  std::vector<std::string> vars;
  std::vector<std::vector<rdf::TermId>> rows;

  size_t NumRows() const { return rows.size(); }

  /// Index of `var` in vars, or -1.
  int VarIndex(const std::string& var) const;

  /// Variables present in both tables.
  static std::vector<std::string> SharedVars(const BindingTable& a,
                                             const BindingTable& b);
};

/// Re-interns an endpoint result into the shared dictionary.
BindingTable InternTable(const sparql::ResultTable& table,
                         SharedDictionary* dict);

/// Decodes a binding table back to term-level results (final answer).
sparql::ResultTable DecodeTable(const BindingTable& table,
                                const SharedDictionary& dict);

/// Natural inner join on all shared variables (cartesian product when the
/// tables share none). Rows with an unbound shared variable use SPARQL
/// compatibility semantics: unbound is compatible with any value.
BindingTable HashJoin(const BindingTable& left, const BindingTable& right);

/// Left outer join: left rows with no compatible right row survive with
/// the right-only columns unbound (OPTIONAL at the federator).
BindingTable LeftOuterJoin(const BindingTable& left,
                           const BindingTable& right);

/// Appends src's rows to dst, aligning columns by name; variables missing
/// from src become unbound (UNION at the federator).
void AppendUnion(BindingTable* dst, const BindingTable& src);

/// Keeps the rows satisfying `filter` (decoding cells through `dict`).
void FilterRows(BindingTable* table, const sparql::Expr& filter,
                const SharedDictionary& dict);

/// Projects the table onto `vars` (missing variables become unbound
/// columns); optionally deduplicates rows.
BindingTable Project(const BindingTable& table,
                     const std::vector<std::string>& vars, bool distinct);

}  // namespace lusail::fed

#endif  // LUSAIL_FEDERATION_BINDING_TABLE_H_
