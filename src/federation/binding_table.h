#ifndef LUSAIL_FEDERATION_BINDING_TABLE_H_
#define LUSAIL_FEDERATION_BINDING_TABLE_H_

#include <string>
#include <vector>

#include "core/dictionary.h"
#include "core/id_table.h"
#include "sparql/ast.h"
#include "sparql/result_table.h"

namespace lusail::fed {

/// The federation-level binding table is the columnar core::IdTable, and
/// the shared dictionary is the sharded, engine-owned core::TermDictionary
/// — ID-space execution replaced the old row-major table and the
/// single-mutex per-query dictionary. The aliases and the thin wrappers
/// below keep the established federation-layer vocabulary (InternTable /
/// DecodeTable / HashJoin / ...) for the engines and baselines built on
/// it.
using SharedDictionary = core::TermDictionary;
using BindingTable = core::IdTable;

/// Encodes an endpoint result into the shared dictionary's id space.
inline BindingTable InternTable(const sparql::ResultTable& table,
                                SharedDictionary* dict) {
  return core::EncodeResultTable(table, dict);
}

/// Decodes a binding table back to term-level results (final answer).
inline sparql::ResultTable DecodeTable(const BindingTable& table,
                                       const SharedDictionary& dict) {
  return core::DecodeIdTable(table, dict);
}

/// Natural inner join on all shared variables (cartesian product when the
/// tables share none). Rows with an unbound shared variable use SPARQL
/// compatibility semantics: unbound is compatible with any value. Builds
/// the hash on the smaller side; column order of the result follows the
/// build side, so align by name, not position.
inline BindingTable HashJoin(const BindingTable& left,
                             const BindingTable& right) {
  if (right.NumRows() > left.NumRows()) {
    return core::JoinIds(right, left, /*left_outer=*/false);
  }
  return core::JoinIds(left, right, /*left_outer=*/false);
}

/// Left outer join: left rows with no compatible right row survive with
/// the right-only columns unbound (OPTIONAL at the federator).
inline BindingTable LeftOuterJoin(const BindingTable& left,
                                  const BindingTable& right) {
  return core::JoinIds(left, right, /*left_outer=*/true);
}

/// Appends src's rows to dst, aligning columns by name; variables missing
/// from src become unbound (UNION at the federator).
inline void AppendUnion(BindingTable* dst, const BindingTable& src) {
  core::AppendUnionIds(dst, src);
}

/// Keeps the rows satisfying `filter` (decoding cells through `dict`).
inline void FilterRows(BindingTable* table, const sparql::Expr& filter,
                       const SharedDictionary& dict) {
  core::FilterIds(table, filter, dict);
}

/// Projects the table onto `vars` (missing variables become unbound
/// columns); optionally deduplicates rows.
inline BindingTable Project(const BindingTable& table,
                            const std::vector<std::string>& vars,
                            bool distinct) {
  return core::ProjectIds(table, vars, distinct);
}

}  // namespace lusail::fed

#endif  // LUSAIL_FEDERATION_BINDING_TABLE_H_
