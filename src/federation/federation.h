#ifndef LUSAIL_FEDERATION_FEDERATION_H_
#define LUSAIL_FEDERATION_FEDERATION_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "federation/binding_table.h"
#include "net/endpoint.h"
#include "net/resilience.h"
#include "obs/endpoint_stats.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "sparql/result_table.h"

namespace lusail::cache {
class FederationCache;
}  // namespace lusail::cache

namespace lusail::fed {

/// Per-query cost summary a federated engine reports with its result.
/// This is the data behind the paper's figures: runtime, request counts,
/// and communication volume.
struct ExecutionProfile {
  uint64_t requests = 0;       ///< Total endpoint requests issued.
  uint64_t ask_requests = 0;   ///< Subset that were ASK probes.
  uint64_t bytes_sent = 0;     ///< Query text shipped to endpoints.
  uint64_t bytes_received = 0; ///< Serialized results received.
  uint64_t rows_received = 0;  ///< Binding rows received.
  double network_ms = 0.0;     ///< Sum of simulated per-request network time.

  /// Wall time from the collector's birth (query start) to the first
  /// endpoint response that carried at least one binding row; 0 when no
  /// rows ever arrived. The federated analogue of time-to-first-row: on
  /// streamed answers it bounds how early the first batch could leave.
  double first_row_ms = 0.0;

  double source_selection_ms = 0.0;
  double analysis_ms = 0.0;    ///< Lusail's LADE phase (GJV + decomposition).
  double execution_ms = 0.0;
  double total_ms = 0.0;

  /// OPTIONAL blocks LADE pushed into endpoint subqueries (Lusail only).
  uint64_t pushed_optionals = 0;

  /// Largest number of intermediate binding rows held at once — the
  /// memory-footprint proxy of the paper's extended-version experiments.
  uint64_t peak_intermediate_rows = 0;

  // --- Fault tolerance (client-side resilience + degradation) ---

  uint64_t retries = 0;             ///< Endpoint requests retried.
  uint64_t breaker_rejections = 0;  ///< Requests refused by an open breaker.
  uint64_t breaker_trips = 0;       ///< Circuit-breaker trips this query.
  uint64_t endpoints_failed = 0;    ///< Distinct endpoints dropped.
  uint64_t subqueries_dropped = 0;  ///< Subqueries that lost every endpoint.
  uint64_t hedged_requests = 0;     ///< Requests that launched a hedge.

  /// Ids of the endpoints whose contributions were dropped (partial
  /// results mode); empty when the result is exact.
  std::vector<std::string> failed_endpoint_ids;

  /// True when any endpoint contribution was dropped: the result is a
  /// lower bound of the exact answer, not the exact answer.
  bool partial = false;

  /// The query's span trace, present only when the engine ran with
  /// tracing enabled (LusailOptions::trace or a baseline's trace flag).
  /// Export with trace->ToChromeJsonString() for chrome://tracing.
  std::shared_ptr<const obs::Trace> trace;
};

/// The profile's counters and phase timings as a JSON object (keys match
/// the field names). This is the record the benches dump per query.
obs::JsonValue ProfileToJson(const ExecutionProfile& profile);

/// Thread-safe accumulator for one federated query execution.
///
/// All counters live under one mutex so a reader (FillCounters, or a
/// /metrics scrape through the collector) always sees a consistent cut:
/// request counts can never lag the retry counts folded in by the same
/// exchange. Record an exchange's response and retry outcome together
/// with RecordExchange — separate RecordRetryOutcome-then-RecordRequest
/// calls open a window where a snapshot reports retries for requests it
/// has not counted yet.
class MetricsCollector {
 public:
  MetricsCollector() = default;
  MetricsCollector(const MetricsCollector&) = delete;
  MetricsCollector& operator=(const MetricsCollector&) = delete;

  /// Folds one endpoint exchange — the response (when the request
  /// produced one) and its retry-loop accounting — into the totals as a
  /// single atomic update. `response` may be null for requests that
  /// failed without a response.
  void RecordExchange(const net::QueryResponse* response, bool is_ask,
                      const net::RetryOutcome& outcome) {
    std::lock_guard<std::mutex> lock(mu_);
    if (response != nullptr) {
      AddResponseLocked(*response, is_ask);
    }
    retries_ += outcome.retries;
    breaker_rejections_ += outcome.breaker_rejections;
    breaker_trips_ += outcome.breaker_trips;
  }

  void RecordRequest(const net::QueryResponse& response, bool is_ask) {
    std::lock_guard<std::mutex> lock(mu_);
    AddResponseLocked(response, is_ask);
  }

  /// Folds one retry loop's accounting into the query totals.
  void RecordRetryOutcome(const net::RetryOutcome& outcome) {
    std::lock_guard<std::mutex> lock(mu_);
    retries_ += outcome.retries;
    breaker_rejections_ += outcome.breaker_rejections;
    breaker_trips_ += outcome.breaker_trips;
  }

  /// Records that `endpoint_id`'s contribution was dropped from a
  /// subquery union (partial-results degradation).
  void RecordEndpointDropped(const std::string& endpoint_id) {
    std::lock_guard<std::mutex> lock(mu_);
    dropped_endpoints_.insert(endpoint_id);
  }

  /// Records a subquery that lost *all* of its endpoints.
  void RecordSubqueryDropped() {
    std::lock_guard<std::mutex> lock(mu_);
    ++subqueries_dropped_;
  }

  // --- Tracing (optional; engines attach a tracer per traced query) ---

  /// Attaches a tracer; every Federation request accounted through this
  /// collector then emits a "request" span. Non-owning; the tracer must
  /// outlive the query.
  void SetTracer(obs::Tracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }
  obs::Tracer* tracer() const {
    return tracer_.load(std::memory_order_acquire);
  }

  /// Shared ownership of the same tracer, for components that may hold a
  /// reference past the query frame (detached hedge losers grafting a
  /// late server subtree). Set alongside SetTracer when the owner keeps
  /// the tracer in a shared_ptr; empty otherwise.
  void SetTracerShared(std::shared_ptr<obs::Tracer> tracer) {
    std::lock_guard<std::mutex> lock(tracer_mu_);
    shared_tracer_ = std::move(tracer);
  }
  std::shared_ptr<obs::Tracer> shared_tracer() const {
    std::lock_guard<std::mutex> lock(tracer_mu_);
    return shared_tracer_;
  }

  /// The span new request spans are parented to when the call site does
  /// not pass an explicit parent. Engines point this at the currently
  /// running phase span (PhaseSpan maintains it automatically).
  void SetTraceParent(obs::SpanId span) {
    trace_parent_.store(span, std::memory_order_release);
  }
  obs::SpanId trace_parent() const {
    return trace_parent_.load(std::memory_order_acquire);
  }

  /// Copies the counters into a profile (phase timings are the caller's)
  /// as one consistent snapshot.
  void FillCounters(ExecutionProfile* profile) const {
    std::lock_guard<std::mutex> lock(mu_);
    profile->requests = requests_;
    profile->ask_requests = ask_requests_;
    profile->bytes_sent = bytes_sent_;
    profile->bytes_received = bytes_received_;
    profile->rows_received = rows_received_;
    profile->network_ms = static_cast<double>(network_us_) / 1000.0;
    profile->first_row_ms = first_row_ms_;
    profile->retries = retries_;
    profile->breaker_rejections = breaker_rejections_;
    profile->breaker_trips = breaker_trips_;
    profile->subqueries_dropped = subqueries_dropped_;
    profile->hedged_requests = hedged_requests_;
    profile->failed_endpoint_ids.assign(dropped_endpoints_.begin(),
                                        dropped_endpoints_.end());
    profile->endpoints_failed = profile->failed_endpoint_ids.size();
    profile->partial =
        profile->endpoints_failed > 0 || profile->subqueries_dropped > 0;
  }

 private:
  void AddResponseLocked(const net::QueryResponse& response, bool is_ask) {
    ++requests_;
    if (is_ask) ++ask_requests_;
    bytes_sent_ += response.request_bytes;
    bytes_received_ += response.response_bytes;
    rows_received_ += response.RowCount();
    if (first_row_ms_ == 0.0 && response.RowCount() > 0) {
      first_row_ms_ = born_.ElapsedMillis();
    }
    // Round to the nearest microsecond instead of truncating: a
    // truncating cast floors every request's network time, so workloads
    // of many sub-microsecond requests would report ~0 network time.
    network_us_ +=
        static_cast<uint64_t>(std::llround(response.network_ms * 1000.0));
    if (response.hedged) ++hedged_requests_;
  }

  mutable std::mutex mu_;
  uint64_t requests_ = 0;
  uint64_t ask_requests_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
  uint64_t rows_received_ = 0;
  uint64_t network_us_ = 0;
  Stopwatch born_;  ///< Started at construction = query start.
  double first_row_ms_ = 0.0;
  uint64_t retries_ = 0;
  uint64_t breaker_rejections_ = 0;
  uint64_t breaker_trips_ = 0;
  uint64_t subqueries_dropped_ = 0;
  uint64_t hedged_requests_ = 0;
  std::set<std::string> dropped_endpoints_;
  std::atomic<obs::Tracer*> tracer_{nullptr};
  mutable std::mutex tracer_mu_;
  std::shared_ptr<obs::Tracer> shared_tracer_;
  std::atomic<obs::SpanId> trace_parent_{0};
};

/// RAII phase span tied to a MetricsCollector: opens a "phase" span under
/// the collector's current trace parent, makes itself the parent for
/// requests issued while alive, and restores the previous parent on
/// destruction. A no-op when the collector has no tracer, so engines can
/// scope their phases unconditionally.
class PhaseSpan {
 public:
  PhaseSpan(MetricsCollector* metrics, const std::string& name)
      : metrics_(metrics) {
    obs::Tracer* tracer =
        metrics_ != nullptr ? metrics_->tracer() : nullptr;
    if (tracer == nullptr) return;
    prev_ = metrics_->trace_parent();
    span_ = tracer->StartSpan(name, "phase", prev_);
    metrics_->SetTraceParent(span_);
  }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;
  ~PhaseSpan() { End(); }

  void End() {
    if (span_ == 0) return;
    metrics_->SetTraceParent(prev_);
    metrics_->tracer()->EndSpan(span_);
    span_ = 0;
  }

  template <typename V>
  void Annotate(std::string key, V value) {
    if (span_ != 0) {
      metrics_->tracer()->Annotate(span_, std::move(key), value);
    }
  }

  obs::SpanId id() const { return span_; }

 private:
  MetricsCollector* metrics_ = nullptr;
  obs::SpanId span_ = 0;
  obs::SpanId prev_ = 0;
};

/// Per-query tracing harness shared by all engines: when `enabled`, owns
/// the tracer (shared, so detached hedge losers can finish grafting a
/// late server subtree after the query frame unwinds), generates the
/// query's 128-bit trace id, opens the root "query" span, and registers
/// the tracer with the metrics collector. Attach() closes the root span
/// and hands the finished trace to the profile.
class QueryTrace {
 public:
  QueryTrace(bool enabled, const std::string& engine_name,
             MetricsCollector* metrics);
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;
  ~QueryTrace() {
    // Detach before the tracer dies (the collector outlives this guard
    // only within the engine's Execute frame, but stay defensive).
    if (tracer_ != nullptr && metrics_ != nullptr) {
      metrics_->SetTracer(nullptr);
      metrics_->SetTracerShared(nullptr);
    }
  }

  bool enabled() const { return tracer_ != nullptr; }
  obs::Tracer* tracer() const { return tracer_.get(); }
  obs::SpanId root() const { return root_; }

  /// Ends the root span and attaches the finished trace to `profile`.
  void Attach(ExecutionProfile* profile) {
    if (tracer_ == nullptr) return;
    tracer_->EndSpan(root_);
    profile->trace = std::make_shared<const obs::Trace>(tracer_->Snapshot());
  }

 private:
  MetricsCollector* metrics_ = nullptr;
  std::shared_ptr<obs::Tracer> tracer_;
  obs::SpanId root_ = 0;
};

/// ASK-query detection lives in common/string_util.h (the server-side
/// verdict cache needs it below this layer); re-exported here because
/// fed:: is where federated engines historically found it.
using ::lusail::LooksLikeAskQuery;

/// The registry of endpoints a federated query runs against, plus the
/// request path every engine uses (with per-query accounting and
/// cooperative deadline checks).
class Federation {
 public:
  Federation() = default;

  /// Registers an endpoint; returns its index. A circuit breaker is
  /// created alongside it (engaged only by retry-policy executions).
  size_t Add(std::shared_ptr<net::Endpoint> endpoint);

  size_t size() const { return endpoints_.size(); }

  net::Endpoint* endpoint(size_t i) const { return endpoints_[i].get(); }
  const std::string& id(size_t i) const { return endpoints_[i]->id(); }

  /// Replaces every endpoint's circuit breaker with a fresh one using
  /// `config` (also applied to endpoints added later).
  void ConfigureBreakers(const net::CircuitBreakerConfig& config);

  /// The circuit breaker guarding endpoint `i`. Shared by all engines on
  /// this federation — endpoint health is a property of the endpoint,
  /// not of any one client.
  net::CircuitBreaker* breaker(size_t i) const { return breakers_[i].get(); }

  /// Attaches a cross-query telemetry registry: every request issued
  /// through this federation (by any engine) is then accounted per
  /// endpoint — latency histogram, error/retry/breaker counters, byte
  /// volumes. Non-owning; pass nullptr to detach.
  void set_stats_registry(obs::EndpointStatsRegistry* registry) {
    stats_ = registry;
  }
  obs::EndpointStatsRegistry* stats_registry() const { return stats_; }

  /// Attaches a cross-query cache shared by every engine on this
  /// federation: ASK/check-query verdicts, COUNT-probe cardinalities,
  /// and (opt-in per engine) subquery result tables. Non-owning; pass
  /// nullptr to detach.
  void set_query_cache(cache::FederationCache* cache) {
    query_cache_ = cache;
  }
  cache::FederationCache* query_cache() const { return query_cache_; }

  /// Issues `text` at endpoint `i`. Accounts the exchange into `metrics`
  /// (when non-null) and fails with Timeout when `deadline` has expired
  /// before the request is issued. With a non-null `retry` whose policy
  /// is enabled, retryable failures are retried with backoff under the
  /// endpoint's circuit breaker, never sleeping past `deadline`; retry
  /// and breaker activity is accounted into `metrics`.
  ///
  /// When `metrics` carries a tracer, the exchange is recorded as a
  /// "request" span — parented to `trace_parent` when non-zero, else to
  /// the collector's current default parent — with retry attempts and
  /// breaker rejections as child spans.
  Result<sparql::ResultTable> Execute(size_t i, const std::string& text,
                                      MetricsCollector* metrics,
                                      const Deadline& deadline,
                                      const net::RetryPolicy* retry = nullptr,
                                      obs::SpanId trace_parent = 0) const;

  /// ID-space variant of Execute: the response lands as a BindingTable in
  /// `dict`'s id space. When the endpoint parses straight into this
  /// dictionary (HttpSparqlEndpoint::set_parse_dictionary), the ids pass
  /// through untouched; a string response is encoded here at the
  /// federator boundary; ids from a *different* dictionary are decoded
  /// and re-encoded (correct, just slower). When `wire_table` is non-null
  /// it receives the string form of the response if one existed on the
  /// wire path (for result-cache stores); it stays nullopt on the pure
  /// id path, where the caller decides whether decoding is worth it.
  Result<BindingTable> ExecuteEncoded(
      size_t i, const std::string& text, SharedDictionary* dict,
      MetricsCollector* metrics, const Deadline& deadline,
      const net::RetryPolicy* retry = nullptr, obs::SpanId trace_parent = 0,
      std::optional<sparql::ResultTable>* wire_table = nullptr) const;

  /// Convenience ASK wrapper: true iff the endpoint returned a row.
  Result<bool> Ask(size_t i, const std::string& text,
                   MetricsCollector* metrics, const Deadline& deadline,
                   const net::RetryPolicy* retry = nullptr,
                   obs::SpanId trace_parent = 0) const;

 private:
  /// Shared body of Execute/ExecuteEncoded: the full request path with
  /// accounting, tracing, and endpoint-stats recording, representation
  /// untouched (the response may carry a string table or an IdTable).
  Result<net::QueryResponse> ExecuteResponse(
      size_t i, const std::string& text, MetricsCollector* metrics,
      const Deadline& deadline, const net::RetryPolicy* retry,
      obs::SpanId trace_parent) const;

  std::vector<std::shared_ptr<net::Endpoint>> endpoints_;
  std::vector<std::unique_ptr<net::CircuitBreaker>> breakers_;
  net::CircuitBreakerConfig breaker_config_;
  obs::EndpointStatsRegistry* stats_ = nullptr;
  cache::FederationCache* query_cache_ = nullptr;
};

/// Result of a federated query: the final table plus the cost profile.
struct FederatedResult {
  sparql::ResultTable table;
  ExecutionProfile profile;
};

/// Common interface of Lusail and the baseline engines.
class FederatedEngine {
 public:
  virtual ~FederatedEngine() = default;

  /// Engine name for benchmark reports ("Lusail", "FedX", ...).
  virtual std::string name() const = 0;

  /// Executes a federated SPARQL query within `deadline`.
  virtual Result<FederatedResult> Execute(const std::string& sparql_text,
                                          const Deadline& deadline) = 0;

  /// Executes with no deadline.
  Result<FederatedResult> Execute(const std::string& sparql_text) {
    return Execute(sparql_text, Deadline());
  }
};

}  // namespace lusail::fed

#endif  // LUSAIL_FEDERATION_FEDERATION_H_
