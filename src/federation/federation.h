#ifndef LUSAIL_FEDERATION_FEDERATION_H_
#define LUSAIL_FEDERATION_FEDERATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "net/endpoint.h"
#include "net/resilience.h"
#include "sparql/result_table.h"

namespace lusail::fed {

/// Per-query cost summary a federated engine reports with its result.
/// This is the data behind the paper's figures: runtime, request counts,
/// and communication volume.
struct ExecutionProfile {
  uint64_t requests = 0;       ///< Total endpoint requests issued.
  uint64_t ask_requests = 0;   ///< Subset that were ASK probes.
  uint64_t bytes_sent = 0;     ///< Query text shipped to endpoints.
  uint64_t bytes_received = 0; ///< Serialized results received.
  uint64_t rows_received = 0;  ///< Binding rows received.
  double network_ms = 0.0;     ///< Sum of simulated per-request network time.

  double source_selection_ms = 0.0;
  double analysis_ms = 0.0;    ///< Lusail's LADE phase (GJV + decomposition).
  double execution_ms = 0.0;
  double total_ms = 0.0;

  /// OPTIONAL blocks LADE pushed into endpoint subqueries (Lusail only).
  uint64_t pushed_optionals = 0;

  /// Largest number of intermediate binding rows held at once — the
  /// memory-footprint proxy of the paper's extended-version experiments.
  uint64_t peak_intermediate_rows = 0;

  // --- Fault tolerance (client-side resilience + degradation) ---

  uint64_t retries = 0;             ///< Endpoint requests retried.
  uint64_t breaker_rejections = 0;  ///< Requests refused by an open breaker.
  uint64_t breaker_trips = 0;       ///< Circuit-breaker trips this query.
  uint64_t endpoints_failed = 0;    ///< Distinct endpoints dropped.
  uint64_t subqueries_dropped = 0;  ///< Subqueries that lost every endpoint.

  /// Ids of the endpoints whose contributions were dropped (partial
  /// results mode); empty when the result is exact.
  std::vector<std::string> failed_endpoint_ids;

  /// True when any endpoint contribution was dropped: the result is a
  /// lower bound of the exact answer, not the exact answer.
  bool partial = false;
};

/// Thread-safe accumulator for one federated query execution.
class MetricsCollector {
 public:
  MetricsCollector() = default;
  MetricsCollector(const MetricsCollector&) = delete;
  MetricsCollector& operator=(const MetricsCollector&) = delete;

  void RecordRequest(const net::QueryResponse& response, bool is_ask) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (is_ask) ask_requests_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(response.request_bytes, std::memory_order_relaxed);
    bytes_received_.fetch_add(response.response_bytes,
                              std::memory_order_relaxed);
    rows_received_.fetch_add(response.table.NumRows(),
                             std::memory_order_relaxed);
    network_us_.fetch_add(static_cast<uint64_t>(response.network_ms * 1000.0),
                          std::memory_order_relaxed);
  }

  /// Folds one retry loop's accounting into the query totals.
  void RecordRetryOutcome(const net::RetryOutcome& outcome) {
    retries_.fetch_add(outcome.retries, std::memory_order_relaxed);
    breaker_rejections_.fetch_add(outcome.breaker_rejections,
                                  std::memory_order_relaxed);
    breaker_trips_.fetch_add(outcome.breaker_trips,
                             std::memory_order_relaxed);
  }

  /// Records that `endpoint_id`'s contribution was dropped from a
  /// subquery union (partial-results degradation).
  void RecordEndpointDropped(const std::string& endpoint_id) {
    std::lock_guard<std::mutex> lock(dropped_mu_);
    dropped_endpoints_.insert(endpoint_id);
  }

  /// Records a subquery that lost *all* of its endpoints.
  void RecordSubqueryDropped() {
    subqueries_dropped_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Copies the counters into a profile (phase timings are the caller's).
  void FillCounters(ExecutionProfile* profile) const {
    profile->requests = requests_.load(std::memory_order_relaxed);
    profile->ask_requests = ask_requests_.load(std::memory_order_relaxed);
    profile->bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    profile->bytes_received = bytes_received_.load(std::memory_order_relaxed);
    profile->rows_received = rows_received_.load(std::memory_order_relaxed);
    profile->network_ms =
        static_cast<double>(network_us_.load(std::memory_order_relaxed)) /
        1000.0;
    profile->retries = retries_.load(std::memory_order_relaxed);
    profile->breaker_rejections =
        breaker_rejections_.load(std::memory_order_relaxed);
    profile->breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
    profile->subqueries_dropped =
        subqueries_dropped_.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(dropped_mu_);
      profile->failed_endpoint_ids.assign(dropped_endpoints_.begin(),
                                          dropped_endpoints_.end());
    }
    profile->endpoints_failed = profile->failed_endpoint_ids.size();
    profile->partial =
        profile->endpoints_failed > 0 || profile->subqueries_dropped > 0;
  }

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> ask_requests_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> rows_received_{0};
  std::atomic<uint64_t> network_us_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> breaker_rejections_{0};
  std::atomic<uint64_t> breaker_trips_{0};
  std::atomic<uint64_t> subqueries_dropped_{0};
  mutable std::mutex dropped_mu_;
  std::set<std::string> dropped_endpoints_;
};

/// True when `text` is an ASK query, tolerating leading whitespace,
/// comments, and PREFIX/BASE declarations (matching is case-insensitive,
/// like SPARQL keywords).
bool LooksLikeAskQuery(const std::string& text);

/// The registry of endpoints a federated query runs against, plus the
/// request path every engine uses (with per-query accounting and
/// cooperative deadline checks).
class Federation {
 public:
  Federation() = default;

  /// Registers an endpoint; returns its index. A circuit breaker is
  /// created alongside it (engaged only by retry-policy executions).
  size_t Add(std::shared_ptr<net::Endpoint> endpoint);

  size_t size() const { return endpoints_.size(); }

  net::Endpoint* endpoint(size_t i) const { return endpoints_[i].get(); }
  const std::string& id(size_t i) const { return endpoints_[i]->id(); }

  /// Replaces every endpoint's circuit breaker with a fresh one using
  /// `config` (also applied to endpoints added later).
  void ConfigureBreakers(const net::CircuitBreakerConfig& config);

  /// The circuit breaker guarding endpoint `i`. Shared by all engines on
  /// this federation — endpoint health is a property of the endpoint,
  /// not of any one client.
  net::CircuitBreaker* breaker(size_t i) const { return breakers_[i].get(); }

  /// Issues `text` at endpoint `i`. Accounts the exchange into `metrics`
  /// (when non-null) and fails with Timeout when `deadline` has expired
  /// before the request is issued. With a non-null `retry` whose policy
  /// is enabled, retryable failures are retried with backoff under the
  /// endpoint's circuit breaker, never sleeping past `deadline`; retry
  /// and breaker activity is accounted into `metrics`.
  Result<sparql::ResultTable> Execute(size_t i, const std::string& text,
                                      MetricsCollector* metrics,
                                      const Deadline& deadline,
                                      const net::RetryPolicy* retry =
                                          nullptr) const;

  /// Convenience ASK wrapper: true iff the endpoint returned a row.
  Result<bool> Ask(size_t i, const std::string& text,
                   MetricsCollector* metrics, const Deadline& deadline,
                   const net::RetryPolicy* retry = nullptr) const;

 private:
  std::vector<std::shared_ptr<net::Endpoint>> endpoints_;
  std::vector<std::unique_ptr<net::CircuitBreaker>> breakers_;
  net::CircuitBreakerConfig breaker_config_;
};

/// Result of a federated query: the final table plus the cost profile.
struct FederatedResult {
  sparql::ResultTable table;
  ExecutionProfile profile;
};

/// Common interface of Lusail and the baseline engines.
class FederatedEngine {
 public:
  virtual ~FederatedEngine() = default;

  /// Engine name for benchmark reports ("Lusail", "FedX", ...).
  virtual std::string name() const = 0;

  /// Executes a federated SPARQL query within `deadline`.
  virtual Result<FederatedResult> Execute(const std::string& sparql_text,
                                          const Deadline& deadline) = 0;

  /// Executes with no deadline.
  Result<FederatedResult> Execute(const std::string& sparql_text) {
    return Execute(sparql_text, Deadline());
  }
};

}  // namespace lusail::fed

#endif  // LUSAIL_FEDERATION_FEDERATION_H_
