#ifndef LUSAIL_FEDERATION_SOURCE_SELECTION_H_
#define LUSAIL_FEDERATION_SOURCE_SELECTION_H_

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "federation/federation.h"
#include "sparql/ast.h"

namespace lusail::fed {

/// Thread-safe boolean cache keyed by arbitrary strings. Lusail and FedX
/// share this structure for caching ASK source-selection probes; Lusail
/// additionally caches the outcomes of its locality check queries
/// (Section 3.1 / Figure 12 of the paper measure the effect of this
/// cache).
class AskCache {
 public:
  AskCache() = default;
  AskCache(const AskCache&) = delete;
  AskCache& operator=(const AskCache&) = delete;

  std::optional<bool> Get(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  void Put(const std::string& key, bool value) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[key] = value;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, bool> entries_;
};

/// Cache key for a triple pattern at an endpoint; variable *names* are
/// erased (only the variable positions matter for an ASK probe).
std::string PatternCacheKey(const sparql::TriplePattern& tp,
                            const std::string& endpoint_id);

/// Renders `ASK { s p o . }` for one triple pattern.
std::string AskQueryText(const sparql::TriplePattern& tp);

/// ASK-based source selection shared by Lusail and the FedX baseline:
/// every triple pattern is probed at every endpoint (in parallel through
/// the pool), except where the cache already knows the answer.
class SourceSelector {
 public:
  SourceSelector(const Federation* federation, AskCache* cache,
                 ThreadPool* pool)
      : federation_(federation), cache_(cache), pool_(pool) {}

  /// Returns, per triple pattern, the sorted list of endpoint indices
  /// with at least one matching triple. `use_cache=false` forces fresh
  /// probes (and still populates the cache). Probes go through `retry`
  /// when given. A failed probe normally fails the selection (with every
  /// failure aggregated into one status); with `tolerate_failures` the
  /// endpoint is conservatively kept as relevant instead (uncached), so a
  /// flaky endpoint degrades at execution time rather than silently
  /// losing sources here.
  Result<std::vector<std::vector<int>>> SelectSources(
      const std::vector<sparql::TriplePattern>& patterns,
      MetricsCollector* metrics, const Deadline& deadline, bool use_cache,
      const net::RetryPolicy* retry = nullptr,
      bool tolerate_failures = false);

 private:
  const Federation* federation_;
  AskCache* cache_;
  ThreadPool* pool_;
};

}  // namespace lusail::fed

#endif  // LUSAIL_FEDERATION_SOURCE_SELECTION_H_
