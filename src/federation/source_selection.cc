#include "federation/source_selection.h"

#include <future>

namespace lusail::fed {

std::string PatternCacheKey(const sparql::TriplePattern& tp,
                            const std::string& endpoint_id) {
  auto slot = [](const sparql::TermOrVar& tv) {
    return tv.is_variable() ? std::string("?") : tv.term().ToString();
  };
  return endpoint_id + "|" + slot(tp.s) + " " + slot(tp.p) + " " + slot(tp.o);
}

std::string AskQueryText(const sparql::TriplePattern& tp) {
  return "ASK { " + tp.ToString() + " . }";
}

Result<std::vector<std::vector<int>>> SourceSelector::SelectSources(
    const std::vector<sparql::TriplePattern>& patterns,
    MetricsCollector* metrics, const Deadline& deadline, bool use_cache) {
  const size_t num_eps = federation_->size();
  std::vector<std::vector<int>> sources(patterns.size());

  struct Probe {
    size_t pattern;
    size_t endpoint;
    std::string cache_key;
    std::future<Result<bool>> result;
  };
  std::vector<Probe> probes;

  for (size_t pi = 0; pi < patterns.size(); ++pi) {
    for (size_t ei = 0; ei < num_eps; ++ei) {
      std::string key = PatternCacheKey(patterns[pi], federation_->id(ei));
      if (use_cache) {
        std::optional<bool> cached = cache_->Get(key);
        if (cached.has_value()) {
          if (*cached) sources[pi].push_back(static_cast<int>(ei));
          continue;
        }
      }
      Probe probe;
      probe.pattern = pi;
      probe.endpoint = ei;
      probe.cache_key = std::move(key);
      std::string text = AskQueryText(patterns[pi]);
      probe.result = pool_->Submit(
          [this, ei, text = std::move(text), metrics, deadline]() {
            return federation_->Ask(ei, text, metrics, deadline);
          });
      probes.push_back(std::move(probe));
    }
  }

  Status first_error;
  for (Probe& probe : probes) {
    Result<bool> answer = probe.result.get();
    if (!answer.ok()) {
      if (first_error.ok()) first_error = answer.status();
      continue;
    }
    cache_->Put(probe.cache_key, *answer);
    if (*answer) sources[probe.pattern].push_back(static_cast<int>(probe.endpoint));
  }
  if (!first_error.ok()) return first_error;

  // Probes may resolve out of order across endpoints; keep lists sorted.
  for (auto& list : sources) std::sort(list.begin(), list.end());
  return sources;
}

}  // namespace lusail::fed
