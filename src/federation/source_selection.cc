#include "federation/source_selection.h"

#include <algorithm>
#include <future>

#include "cache/federation_cache.h"
#include "net/replica.h"
#include "shard/sharded_endpoint.h"

namespace lusail::fed {

std::string PatternCacheKey(const sparql::TriplePattern& tp,
                            const std::string& endpoint_id) {
  auto slot = [](const sparql::TermOrVar& tv) {
    return tv.is_variable() ? std::string("?") : tv.term().ToString();
  };
  return endpoint_id + "|" + slot(tp.s) + " " + slot(tp.p) + " " + slot(tp.o);
}

std::string AskQueryText(const sparql::TriplePattern& tp) {
  return "ASK { " + tp.ToString() + " . }";
}

Result<std::vector<std::vector<int>>> SourceSelector::SelectSources(
    const std::vector<sparql::TriplePattern>& patterns,
    MetricsCollector* metrics, const Deadline& deadline, bool use_cache,
    const net::RetryPolicy* retry, bool tolerate_failures) {
  const size_t num_eps = federation_->size();
  std::vector<std::vector<int>> sources(patterns.size());

  struct Probe {
    size_t pattern;
    size_t endpoint;
    std::string cache_key;
    std::future<Result<bool>> result;
  };
  std::vector<Probe> probes;

  // Replica-group / shard health consult: a group whose every replica
  // has an open breaker — or a sharded endpoint whose every shard is
  // known-dead — cannot answer a probe, so don't spend deadline budget
  // asking. Evaluated once per endpoint, not per pattern.
  std::vector<bool> group_dead(num_eps, false);
  for (size_t ei = 0; ei < num_eps; ++ei) {
    if (const auto* group =
            dynamic_cast<const net::ReplicaGroup*>(federation_->endpoint(ei))) {
      group_dead[ei] = !group->HasAvailableReplica();
    } else if (const auto* sharded = dynamic_cast<const shard::ShardedEndpoint*>(
                   federation_->endpoint(ei))) {
      group_dead[ei] = !sharded->HasAvailableShard();
    }
  }

  cache::FederationCache* shared =
      use_cache ? federation_->query_cache() : nullptr;
  for (size_t pi = 0; pi < patterns.size(); ++pi) {
    for (size_t ei = 0; ei < num_eps; ++ei) {
      std::string key = PatternCacheKey(patterns[pi], federation_->id(ei));
      if (use_cache) {
        std::optional<bool> cached = cache_->Get(key);
        if (!cached.has_value() && shared != nullptr) {
          cached = shared->GetVerdict(key);
          // Warm the per-engine cache so repeats stay off the shared lock.
          if (cached.has_value()) cache_->Put(key, *cached);
        }
        if (cached.has_value()) {
          if (*cached) sources[pi].push_back(static_cast<int>(ei));
          continue;
        }
      }
      if (group_dead[ei]) {
        if (tolerate_failures) {
          // Same conservative keep as a failed probe, without issuing it:
          // execution-time failover decides the endpoint's fate.
          sources[pi].push_back(static_cast<int>(ei));
          continue;
        }
        return Status::Unavailable(
            "every replica of " + federation_->id(ei) +
            " has an open circuit breaker; source selection cannot probe it");
      }
      Probe probe;
      probe.pattern = pi;
      probe.endpoint = ei;
      probe.cache_key = std::move(key);
      std::string text = AskQueryText(patterns[pi]);
      probe.result = pool_->Submit(
          [this, ei, text = std::move(text), metrics, deadline, retry]() {
            return federation_->Ask(ei, text, metrics, deadline, retry);
          });
      probes.push_back(std::move(probe));
    }
  }

  std::vector<std::pair<size_t, Status>> failures;
  for (Probe& probe : probes) {
    Result<bool> answer = probe.result.get();
    if (!answer.ok()) {
      if (tolerate_failures) {
        // Unreachable endpoint: conservatively assume it is relevant (and
        // leave it uncached) so it is retried/dropped at execution time.
        sources[probe.pattern].push_back(static_cast<int>(probe.endpoint));
      } else {
        failures.emplace_back(probe.endpoint, answer.status());
      }
      continue;
    }
    cache_->Put(probe.cache_key, *answer);
    if (shared != nullptr) {
      shared->PutVerdict(probe.cache_key, federation_->id(probe.endpoint),
                         *answer);
    }
    if (*answer) sources[probe.pattern].push_back(static_cast<int>(probe.endpoint));
  }
  if (!failures.empty()) {
    std::string msg = std::to_string(failures.size()) + " of " +
                      std::to_string(probes.size()) +
                      " source-selection probes failed (endpoints: ";
    std::vector<std::string> ids;
    for (const auto& [ei, status] : failures) {
      std::string id = federation_->id(ei);
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
        ids.push_back(std::move(id));
      }
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i > 0) msg += ", ";
      msg += ids[i];
    }
    msg += "); first: " + failures.front().second.ToString();
    return Status(failures.front().second.code(), std::move(msg));
  }

  // Conservative keeps may duplicate endpoints already found relevant.
  for (auto& list : sources) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  return sources;
}

}  // namespace lusail::fed
