#include "federation/binding_table.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "sparql/expr_eval.h"

namespace lusail::fed {

namespace {

/// FNV-style hash of an id vector.
struct IdRowHash {
  size_t operator()(const std::vector<rdf::TermId>& row) const {
    size_t h = 1469598103934665603ULL;
    for (rdf::TermId id : row) {
      h ^= id + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// Builds the merged output row for a compatible (left,right) pair.
std::vector<rdf::TermId> MergeRows(const std::vector<rdf::TermId>& left,
                                   const std::vector<rdf::TermId>& right,
                                   const std::vector<int>& shared_left,
                                   const std::vector<int>& shared_right,
                                   const std::vector<int>& right_only) {
  std::vector<rdf::TermId> out = left;
  // Shared columns: prefer the bound value.
  for (size_t i = 0; i < shared_left.size(); ++i) {
    if (out[shared_left[i]] == rdf::kInvalidTermId) {
      out[shared_left[i]] = right[shared_right[i]];
    }
  }
  for (int idx : right_only) out.push_back(right[idx]);
  return out;
}

bool Compatible(const std::vector<rdf::TermId>& left,
                const std::vector<rdf::TermId>& right,
                const std::vector<int>& shared_left,
                const std::vector<int>& shared_right) {
  for (size_t i = 0; i < shared_left.size(); ++i) {
    rdf::TermId a = left[shared_left[i]];
    rdf::TermId b = right[shared_right[i]];
    if (a != rdf::kInvalidTermId && b != rdf::kInvalidTermId && a != b) {
      return false;
    }
  }
  return true;
}

/// Core join routine shared by inner and left-outer joins.
BindingTable JoinImpl(const BindingTable& left, const BindingTable& right,
                      bool left_outer) {
  BindingTable out;
  out.vars = left.vars;
  std::vector<std::string> shared = BindingTable::SharedVars(left, right);
  std::vector<int> shared_left, shared_right, right_only;
  for (const std::string& v : shared) {
    shared_left.push_back(left.VarIndex(v));
    shared_right.push_back(right.VarIndex(v));
  }
  for (size_t i = 0; i < right.vars.size(); ++i) {
    if (std::find(shared.begin(), shared.end(), right.vars[i]) ==
        shared.end()) {
      right_only.push_back(static_cast<int>(i));
      out.vars.push_back(right.vars[i]);
    }
  }

  // Partition right rows into hashable (all shared vars bound) and
  // wildcard rows (some shared var unbound — rare; OPTIONAL results).
  std::unordered_map<std::vector<rdf::TermId>, std::vector<size_t>, IdRowHash>
      hash_index;
  std::vector<size_t> right_wildcards;
  for (size_t r = 0; r < right.rows.size(); ++r) {
    std::vector<rdf::TermId> key;
    key.reserve(shared_right.size());
    bool keyed = true;
    for (int idx : shared_right) {
      rdf::TermId id = right.rows[r][idx];
      if (id == rdf::kInvalidTermId) {
        keyed = false;
        break;
      }
      key.push_back(id);
    }
    if (keyed) {
      hash_index[std::move(key)].push_back(r);
    } else {
      right_wildcards.push_back(r);
    }
  }

  for (const auto& lrow : left.rows) {
    bool matched = false;
    std::vector<rdf::TermId> key;
    key.reserve(shared_left.size());
    bool keyed = true;
    for (int idx : shared_left) {
      rdf::TermId id = lrow[idx];
      if (id == rdf::kInvalidTermId) {
        keyed = false;
        break;
      }
      key.push_back(id);
    }
    if (keyed) {
      auto it = hash_index.find(key);
      if (it != hash_index.end()) {
        for (size_t r : it->second) {
          out.rows.push_back(MergeRows(lrow, right.rows[r], shared_left,
                                       shared_right, right_only));
          matched = true;
        }
      }
      for (size_t r : right_wildcards) {
        if (Compatible(lrow, right.rows[r], shared_left, shared_right)) {
          out.rows.push_back(MergeRows(lrow, right.rows[r], shared_left,
                                       shared_right, right_only));
          matched = true;
        }
      }
    } else {
      // Left row has an unbound shared var: scan everything.
      for (size_t r = 0; r < right.rows.size(); ++r) {
        if (Compatible(lrow, right.rows[r], shared_left, shared_right)) {
          out.rows.push_back(MergeRows(lrow, right.rows[r], shared_left,
                                       shared_right, right_only));
          matched = true;
        }
      }
    }
    if (left_outer && !matched) {
      std::vector<rdf::TermId> padded = lrow;
      padded.resize(lrow.size() + right_only.size(), rdf::kInvalidTermId);
      out.rows.push_back(std::move(padded));
    }
  }
  return out;
}

}  // namespace

int BindingTable::VarIndex(const std::string& var) const {
  for (size_t i = 0; i < vars.size(); ++i) {
    if (vars[i] == var) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> BindingTable::SharedVars(const BindingTable& a,
                                                  const BindingTable& b) {
  std::vector<std::string> shared;
  for (const std::string& v : a.vars) {
    if (b.VarIndex(v) >= 0) shared.push_back(v);
  }
  return shared;
}

BindingTable InternTable(const sparql::ResultTable& table,
                         SharedDictionary* dict) {
  BindingTable out;
  out.vars = table.vars;
  out.rows.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    std::vector<rdf::TermId> ids;
    ids.reserve(row.size());
    for (const auto& cell : row) {
      ids.push_back(cell.has_value() ? dict->Intern(*cell)
                                     : rdf::kInvalidTermId);
    }
    out.rows.push_back(std::move(ids));
  }
  return out;
}

sparql::ResultTable DecodeTable(const BindingTable& table,
                                const SharedDictionary& dict) {
  sparql::ResultTable out;
  out.vars = table.vars;
  out.rows.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    std::vector<std::optional<rdf::Term>> cells;
    cells.reserve(row.size());
    for (rdf::TermId id : row) {
      if (id == rdf::kInvalidTermId) {
        cells.push_back(std::nullopt);
      } else {
        cells.push_back(dict.term(id));
      }
    }
    out.rows.push_back(std::move(cells));
  }
  return out;
}

BindingTable HashJoin(const BindingTable& left, const BindingTable& right) {
  // Build the hash on the smaller side for speed; the join is symmetric.
  if (right.rows.size() > left.rows.size()) {
    return JoinImpl(right, left, /*left_outer=*/false);
  }
  return JoinImpl(left, right, /*left_outer=*/false);
}

BindingTable LeftOuterJoin(const BindingTable& left,
                           const BindingTable& right) {
  return JoinImpl(left, right, /*left_outer=*/true);
}

void AppendUnion(BindingTable* dst, const BindingTable& src) {
  if (dst->vars.empty() && dst->rows.empty()) {
    *dst = src;
    return;
  }
  std::vector<int> mapping(src.vars.size(), -1);
  for (size_t i = 0; i < src.vars.size(); ++i) {
    int idx = dst->VarIndex(src.vars[i]);
    if (idx < 0) {
      idx = static_cast<int>(dst->vars.size());
      dst->vars.push_back(src.vars[i]);
      for (auto& row : dst->rows) row.push_back(rdf::kInvalidTermId);
    }
    mapping[i] = idx;
  }
  for (const auto& row : src.rows) {
    std::vector<rdf::TermId> aligned(dst->vars.size(), rdf::kInvalidTermId);
    for (size_t i = 0; i < row.size(); ++i) aligned[mapping[i]] = row[i];
    dst->rows.push_back(std::move(aligned));
  }
}

void FilterRows(BindingTable* table, const sparql::Expr& filter,
                const SharedDictionary& dict) {
  std::vector<std::vector<rdf::TermId>> kept;
  kept.reserve(table->rows.size());
  for (auto& row : table->rows) {
    // Decode on demand; cache per row to keep Term lifetimes valid during
    // expression evaluation.
    std::unordered_map<std::string, rdf::Term> decoded;
    auto lookup = [&](const std::string& name) -> const rdf::Term* {
      int idx = table->VarIndex(name);
      if (idx < 0 || row[idx] == rdf::kInvalidTermId) return nullptr;
      auto it = decoded.find(name);
      if (it == decoded.end()) {
        it = decoded.emplace(name, dict.term(row[idx])).first;
      }
      return &it->second;
    };
    if (sparql::EvalFilter(filter, lookup)) kept.push_back(std::move(row));
  }
  table->rows = std::move(kept);
}

BindingTable Project(const BindingTable& table,
                     const std::vector<std::string>& vars, bool distinct) {
  BindingTable out;
  out.vars = vars;
  std::vector<int> idx;
  idx.reserve(vars.size());
  for (const std::string& v : vars) idx.push_back(table.VarIndex(v));
  std::unordered_set<std::vector<rdf::TermId>, IdRowHash> seen;
  out.rows.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    std::vector<rdf::TermId> projected;
    projected.reserve(idx.size());
    for (int i : idx) {
      projected.push_back(i >= 0 ? row[i] : rdf::kInvalidTermId);
    }
    if (distinct && !seen.insert(projected).second) continue;
    out.rows.push_back(std::move(projected));
  }
  return out;
}

}  // namespace lusail::fed
