#include "federation/federation.h"

#include <cctype>

#include "common/string_util.h"

namespace lusail::fed {

bool LooksLikeAskQuery(const std::string& text) {
  size_t i = 0;
  while (i < text.size()) {
    // Skip whitespace and '#' comments.
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    if (text[i] == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    // Read the next keyword.
    size_t start = i;
    while (i < text.size() &&
           std::isalpha(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i == start) return false;  // Starts with '{', '<', digits, ...
    std::string word = text.substr(start, i - start);
    if (EqualsIgnoreCase(word, "ASK")) return true;
    if (EqualsIgnoreCase(word, "PREFIX") || EqualsIgnoreCase(word, "BASE")) {
      // Skip the declaration through its closing '>' of the IRI.
      while (i < text.size() && text[i] != '>') ++i;
      if (i < text.size()) ++i;
      continue;
    }
    return false;  // SELECT, CONSTRUCT, ...
  }
  return false;
}

size_t Federation::Add(std::shared_ptr<net::Endpoint> endpoint) {
  endpoints_.push_back(std::move(endpoint));
  breakers_.push_back(std::make_unique<net::CircuitBreaker>(breaker_config_));
  return endpoints_.size() - 1;
}

void Federation::ConfigureBreakers(const net::CircuitBreakerConfig& config) {
  breaker_config_ = config;
  for (auto& breaker : breakers_) {
    breaker = std::make_unique<net::CircuitBreaker>(config);
  }
}

Result<sparql::ResultTable> Federation::Execute(
    size_t i, const std::string& text, MetricsCollector* metrics,
    const Deadline& deadline, const net::RetryPolicy* retry) const {
  if (i >= endpoints_.size()) {
    return Status::NotFound("no endpoint with index " + std::to_string(i));
  }
  if (deadline.Expired()) {
    return Status::Timeout("query deadline expired before request to " +
                           endpoints_[i]->id());
  }
  Result<net::QueryResponse> response = Status::Internal("unreachable");
  if (retry != nullptr && retry->enabled()) {
    net::RetryOutcome outcome;
    response = net::QueryWithRetry(endpoints_[i].get(), text, deadline,
                                   *retry, breakers_[i].get(), &outcome);
    if (metrics != nullptr) metrics->RecordRetryOutcome(outcome);
  } else {
    response = endpoints_[i]->QueryWithDeadline(text, deadline);
  }
  if (!response.ok()) return response.status();
  if (metrics != nullptr) {
    metrics->RecordRequest(*response, LooksLikeAskQuery(text));
  }
  return std::move(response->table);
}

Result<bool> Federation::Ask(size_t i, const std::string& text,
                             MetricsCollector* metrics,
                             const Deadline& deadline,
                             const net::RetryPolicy* retry) const {
  LUSAIL_ASSIGN_OR_RETURN(sparql::ResultTable table,
                          Execute(i, text, metrics, deadline, retry));
  return !table.rows.empty();
}

}  // namespace lusail::fed
