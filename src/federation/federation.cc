#include "federation/federation.h"

#include <unistd.h>

#include <cctype>
#include <optional>

#include "common/string_util.h"
#include "obs/trace_context.h"

namespace lusail::fed {

QueryTrace::QueryTrace(bool enabled, const std::string& engine_name,
                       MetricsCollector* metrics)
    : metrics_(metrics) {
  if (!enabled) return;
  tracer_ = std::make_shared<obs::Tracer>();
  tracer_->set_trace_id(obs::GenerateTraceId());
  tracer_->RegisterProcess(static_cast<uint64_t>(::getpid()),
                           "federator/" + engine_name);
  root_ = tracer_->StartSpan("query", "query");
  tracer_->Annotate(root_, "engine", engine_name);
  tracer_->Annotate(root_, "trace_id", tracer_->trace_id());
  metrics_->SetTracer(tracer_.get());
  metrics_->SetTracerShared(tracer_);
  metrics_->SetTraceParent(root_);
}

obs::JsonValue ProfileToJson(const ExecutionProfile& profile) {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("requests", profile.requests);
  out.Set("ask_requests", profile.ask_requests);
  out.Set("bytes_sent", profile.bytes_sent);
  out.Set("bytes_received", profile.bytes_received);
  out.Set("rows_received", profile.rows_received);
  out.Set("network_ms", profile.network_ms);
  out.Set("first_row_ms", profile.first_row_ms);
  out.Set("source_selection_ms", profile.source_selection_ms);
  out.Set("analysis_ms", profile.analysis_ms);
  out.Set("execution_ms", profile.execution_ms);
  out.Set("total_ms", profile.total_ms);
  out.Set("pushed_optionals", profile.pushed_optionals);
  out.Set("peak_intermediate_rows", profile.peak_intermediate_rows);
  out.Set("retries", profile.retries);
  out.Set("breaker_rejections", profile.breaker_rejections);
  out.Set("breaker_trips", profile.breaker_trips);
  out.Set("endpoints_failed", profile.endpoints_failed);
  out.Set("subqueries_dropped", profile.subqueries_dropped);
  out.Set("hedged_requests", profile.hedged_requests);
  obs::JsonValue failed = obs::JsonValue::Array();
  for (const std::string& id : profile.failed_endpoint_ids) {
    failed.Append(id);
  }
  out.Set("failed_endpoint_ids", std::move(failed));
  out.Set("partial", profile.partial);
  return out;
}

size_t Federation::Add(std::shared_ptr<net::Endpoint> endpoint) {
  endpoints_.push_back(std::move(endpoint));
  breakers_.push_back(std::make_unique<net::CircuitBreaker>(breaker_config_));
  return endpoints_.size() - 1;
}

void Federation::ConfigureBreakers(const net::CircuitBreakerConfig& config) {
  breaker_config_ = config;
  for (auto& breaker : breakers_) {
    breaker = std::make_unique<net::CircuitBreaker>(config);
  }
}

Result<net::QueryResponse> Federation::ExecuteResponse(
    size_t i, const std::string& text, MetricsCollector* metrics,
    const Deadline& deadline, const net::RetryPolicy* retry,
    obs::SpanId trace_parent) const {
  if (i >= endpoints_.size()) {
    return Status::NotFound("no endpoint with index " + std::to_string(i));
  }
  const std::string& endpoint_id = endpoints_[i]->id();
  if (deadline.Expired()) {
    return Status::Timeout("query deadline expired before request to " +
                           endpoint_id);
  }
  bool is_ask = LooksLikeAskQuery(text);
  obs::Tracer* tracer = metrics != nullptr ? metrics->tracer() : nullptr;
  obs::SpanId span = 0;
  if (tracer != nullptr) {
    obs::SpanId parent =
        trace_parent != 0 ? trace_parent : metrics->trace_parent();
    span = tracer->StartSpan("request " + endpoint_id, "request", parent);
    tracer->Annotate(span, "endpoint", endpoint_id);
    tracer->Annotate(span, "is_ask", is_ask);
  }

  // While the endpoint call runs, downstream layers (the HTTP client,
  // hedged replica workers) can pick up the trace identity from the
  // calling thread and propagate it across the wire. Parent remote
  // subtrees under this exchange's "request" span.
  std::optional<obs::TraceContextScope> trace_scope;
  if (tracer != nullptr) {
    std::shared_ptr<obs::Tracer> shared = metrics->shared_tracer();
    if (shared != nullptr && shared.get() == tracer) {
      obs::TraceContext context;
      context.tracer = std::move(shared);
      context.trace_id = tracer->trace_id();
      context.parent = span;
      trace_scope.emplace(std::move(context));
    }
  }

  Result<net::QueryResponse> response = Status::Internal("unreachable");
  net::RetryOutcome outcome;
  if (retry != nullptr && retry->enabled()) {
    response = net::QueryWithRetry(endpoints_[i].get(), text, deadline,
                                   *retry, breakers_[i].get(), &outcome,
                                   tracer, span);
  } else {
    response = endpoints_[i]->QueryWithDeadline(text, deadline);
  }
  trace_scope.reset();
  if (metrics != nullptr) {
    metrics->RecordExchange(response.ok() ? &*response : nullptr, is_ask,
                            outcome);
    // A sharded endpoint answering in partial-results mode names the
    // members it dropped; fold them into the profile's failed-endpoint
    // set so the caller sees the answer is a lower bound.
    if (response.ok()) {
      for (const std::string& member : response->degraded_members) {
        metrics->RecordEndpointDropped(member);
      }
    }
  }

  if (stats_ != nullptr) {
    obs::EndpointExchange exchange;
    exchange.success = response.ok();
    exchange.retries = static_cast<uint64_t>(outcome.retries);
    exchange.breaker_rejections =
        static_cast<uint64_t>(outcome.breaker_rejections);
    exchange.breaker_trips = static_cast<uint64_t>(outcome.breaker_trips);
    if (response.ok()) {
      exchange.latency_ms = response->network_ms + response->server_ms;
      exchange.bytes_sent = response->request_bytes;
      exchange.bytes_received = response->response_bytes;
      exchange.rows = response->RowCount();
      if (response->transport.over_network) {
        exchange.network = true;
        exchange.reused_connection = response->transport.reused_connection;
        exchange.wire_bytes_sent = response->transport.wire_bytes_sent;
        exchange.wire_bytes_received =
            response->transport.wire_bytes_received;
      }
    } else {
      exchange.timeout =
          response.status().code() == StatusCode::kTimeout;
    }
    stats_->RecordExchange(endpoint_id, exchange);
  }

  if (span != 0) {
    tracer->Annotate(span, "ok", response.ok());
    if (response.ok()) {
      tracer->Annotate(span, "rows",
                       static_cast<uint64_t>(response->RowCount()));
      tracer->Annotate(span, "bytes_received", response->response_bytes);
      tracer->Annotate(span, "network_ms", response->network_ms);
      if (!response->served_by.empty()) {
        tracer->Annotate(span, "replica.served_by", response->served_by);
      }
      if (response->hedged) {
        tracer->Annotate(span, "replica.hedged", true);
      }
      if (!response->degraded_members.empty()) {
        tracer->Annotate(
            span, "shard.degraded_members",
            static_cast<uint64_t>(response->degraded_members.size()));
      }
      if (response->transport.over_network) {
        const net::TransportInfo& t = response->transport;
        tracer->Annotate(span, "net.reused_connection", t.reused_connection);
        tracer->Annotate(span, "net.connect_ms", t.connect_ms);
        tracer->Annotate(span, "net.wire_bytes_sent",
                         static_cast<uint64_t>(t.wire_bytes_sent));
        tracer->Annotate(span, "net.wire_bytes_received",
                         static_cast<uint64_t>(t.wire_bytes_received));
      }
    } else {
      tracer->Annotate(span, "status", response.status().ToString());
    }
    if (outcome.retries > 0) {
      tracer->Annotate(span, "retries",
                       static_cast<int64_t>(outcome.retries));
    }
    tracer->EndSpan(span);
  }

  if (!response.ok()) return response.status();
  return std::move(*response);
}

Result<sparql::ResultTable> Federation::Execute(
    size_t i, const std::string& text, MetricsCollector* metrics,
    const Deadline& deadline, const net::RetryPolicy* retry,
    obs::SpanId trace_parent) const {
  LUSAIL_ASSIGN_OR_RETURN(
      net::QueryResponse response,
      ExecuteResponse(i, text, metrics, deadline, retry, trace_parent));
  if (response.ids != nullptr) {
    // A string-path consumer over an endpoint that parses straight to
    // ids (set_parse_dictionary): decode at the boundary so callers see
    // the same ResultTable they always did.
    return core::DecodeIdTable(*response.ids, *response.ids_dict);
  }
  return std::move(response.table);
}

Result<BindingTable> Federation::ExecuteEncoded(
    size_t i, const std::string& text, SharedDictionary* dict,
    MetricsCollector* metrics, const Deadline& deadline,
    const net::RetryPolicy* retry, obs::SpanId trace_parent,
    std::optional<sparql::ResultTable>* wire_table) const {
  LUSAIL_ASSIGN_OR_RETURN(
      net::QueryResponse response,
      ExecuteResponse(i, text, metrics, deadline, retry, trace_parent));
  if (response.ids != nullptr) {
    if (response.ids_dict.get() == dict) {
      // Fast path: the transport already interned into our dictionary;
      // the ids are the result, no string rows ever existed.
      return std::move(*response.ids);
    }
    // Ids from a foreign dictionary (endpoint shared across engines, or
    // reconfigured mid-flight): decode through the dictionary that
    // minted them, then re-encode into ours. Correct, just slower.
    sparql::ResultTable table =
        core::DecodeIdTable(*response.ids, *response.ids_dict);
    BindingTable ids = core::EncodeResultTable(table, dict);
    if (wire_table != nullptr) *wire_table = std::move(table);
    return ids;
  }
  BindingTable ids = core::EncodeResultTable(response.table, dict);
  if (wire_table != nullptr) *wire_table = std::move(response.table);
  return ids;
}

Result<bool> Federation::Ask(size_t i, const std::string& text,
                             MetricsCollector* metrics,
                             const Deadline& deadline,
                             const net::RetryPolicy* retry,
                             obs::SpanId trace_parent) const {
  LUSAIL_ASSIGN_OR_RETURN(
      net::QueryResponse response,
      ExecuteResponse(i, text, metrics, deadline, retry, trace_parent));
  return response.RowCount() > 0;
}

}  // namespace lusail::fed
