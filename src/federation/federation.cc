#include "federation/federation.h"

namespace lusail::fed {

size_t Federation::Add(std::shared_ptr<net::Endpoint> endpoint) {
  endpoints_.push_back(std::move(endpoint));
  return endpoints_.size() - 1;
}

Result<sparql::ResultTable> Federation::Execute(size_t i,
                                                const std::string& text,
                                                MetricsCollector* metrics,
                                                const Deadline& deadline) const {
  if (i >= endpoints_.size()) {
    return Status::NotFound("no endpoint with index " + std::to_string(i));
  }
  if (deadline.Expired()) {
    return Status::Timeout("query deadline expired before request to " +
                           endpoints_[i]->id());
  }
  LUSAIL_ASSIGN_OR_RETURN(net::QueryResponse response,
                          endpoints_[i]->Query(text));
  if (metrics != nullptr) {
    // Crude but robust ASK detection on the wire text (the endpoint parsed
    // the query anyway; this avoids widening the interface).
    bool is_ask = text.rfind("ASK", 0) == 0;
    metrics->RecordRequest(response, is_ask);
  }
  return std::move(response.table);
}

Result<bool> Federation::Ask(size_t i, const std::string& text,
                             MetricsCollector* metrics,
                             const Deadline& deadline) const {
  LUSAIL_ASSIGN_OR_RETURN(sparql::ResultTable table,
                          Execute(i, text, metrics, deadline));
  return !table.rows.empty();
}

}  // namespace lusail::fed
