#ifndef LUSAIL_SHARD_SHARD_MAP_H_
#define LUSAIL_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"

namespace lusail::shard {

/// 64-bit FNV-1a over `data`. The shard layer's only hash: it is defined
/// by the algorithm (not by std::hash), so a loader process splitting an
/// N-Triples file and a federator process routing subqueries agree on
/// subject placement even across builds and machines.
uint64_t StableHash64(std::string_view data);

/// How a ShardMap assigns subjects to shards.
enum class ShardMode {
  kHashRing,  ///< Consistent hashing over the subject's N-Triples form.
  kTokens,    ///< Explicit ranges: first member whose token matches wins.
};

/// Deterministic subject-to-shard assignment for one logical endpoint
/// split into N shards.
///
/// Hash-ring mode places `vnodes` points per shard on a 64-bit ring keyed
/// only by the shard *index* ("shard<k>#<v>"), so every process that
/// agrees on N — the loader splitting the file, each endpointd filtering
/// its slice, the federator routing subqueries — derives the identical
/// assignment with no shared state. Callers that build a map from a host
/// list must fix the index order first (ParseShardsArg sorts member
/// addresses lexicographically), which is what makes the assignment
/// independent of the order hosts were listed in.
///
/// Token mode captures partitioned datasets whose file layout already
/// names the partition — LUBM's per-university files, where subject IRIs
/// embed ".University<u>." mid-string. The first member whose token is a
/// substring of the subject's N-Triples form owns the subject; subjects
/// matching no token fall back to the hash ring over the same N, so the
/// loader and the router still agree on strays.
class ShardMap {
 public:
  /// Hash-ring map over `num_shards` shards. `num_shards` must be >= 1.
  static ShardMap HashRing(size_t num_shards, size_t vnodes = 64);

  /// Token map: shard k owns subjects containing `tokens[k]`. Tokens must
  /// be non-empty; earlier tokens win on overlap.
  static Result<ShardMap> Tokens(std::vector<std::string> tokens,
                                 size_t vnodes = 64);

  size_t NumShards() const { return num_shards_; }
  ShardMode mode() const { return mode_; }

  /// The shard owning `subject`. Deterministic: same term, same N, same
  /// tokens => same answer in every process.
  size_t ShardOfSubject(const rdf::Term& subject) const;

  /// The shard owning the subject rendered in N-Triples form (loader fast
  /// path: no Term construction needed when the line is already split).
  size_t ShardOfSubjectText(std::string_view subject_ntriples) const;

  /// One point on the consistent-hash ring (public so the ring builder
  /// can construct them; the ring itself stays private).
  struct RingPoint {
    uint64_t hash;
    uint32_t shard;
    bool operator<(const RingPoint& other) const {
      return hash < other.hash || (hash == other.hash && shard < other.shard);
    }
  };

 private:
  ShardMap() = default;

  size_t RingShardOf(uint64_t hash) const;

  ShardMode mode_ = ShardMode::kHashRing;
  size_t num_shards_ = 1;
  std::vector<RingPoint> ring_;         ///< Sorted by hash.
  std::vector<std::string> tokens_;     ///< Token mode only, one per shard.
};

/// One shard member from a parsed --shards spec: the replica addresses
/// serving this shard (>= 1; several mean a ReplicaGroup) and, in token
/// mode, the substring this member's slice owns.
struct ShardMemberSpec {
  std::vector<std::string> addresses;  ///< host:port, sorted.
  std::string token;                   ///< Empty in hash-ring mode.

  /// Stable member id: "<logical>#<index>" is assigned by the parser; the
  /// primary address is kept for display.
  std::string id;
};

/// A parsed --shards argument: one logical endpoint split into members.
struct ShardSpec {
  std::string logical_id;
  std::vector<ShardMemberSpec> members;

  /// The assignment map this spec implies (token mode iff any member
  /// carries a token).
  ShardMap Map() const;
};

/// Parses one --shards argument:
///
///   host:port,host:port,...=logical-id
///
/// where each comma-separated member is `addr[|addr...][^token]` —
/// multiple `|`-joined addresses make that shard a replica group, and a
/// `^token` suffix switches the whole spec to explicit-token mode (LUBM
/// per-university files; every member must then carry a token).
///
/// Members are sorted by primary address before shard indices are
/// assigned, so the same host list in any order yields the identical
/// hash-ring assignment. Malformed input — missing `=id`, empty member,
/// an address without `host:port` shape, mixed token/tokenless members,
/// duplicate addresses — returns kInvalidArgument naming the offending
/// token.
Result<ShardSpec> ParseShardsArg(const std::string& arg);

/// Splits an N-Triples document into NumShards() chunks by subject
/// assignment (the loader side of the contract ShardOfSubject routes
/// by). Returns one N-Triples document per shard; comments and blank
/// lines are dropped, malformed lines fail the split.
Result<std::vector<std::string>> SplitNTriples(std::string_view text,
                                               const ShardMap& map);

}  // namespace lusail::shard

#endif  // LUSAIL_SHARD_SHARD_MAP_H_
