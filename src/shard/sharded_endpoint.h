#ifndef LUSAIL_SHARD_SHARDED_ENDPOINT_H_
#define LUSAIL_SHARD_SHARDED_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cache/federation_cache.h"
#include "common/cancel.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/dictionary.h"
#include "core/id_table.h"
#include "net/endpoint.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "shard/shard_map.h"
#include "sparql/ast.h"

namespace lusail::shard {

/// Tuning knobs for a ShardedEndpoint.
struct ShardedEndpointOptions {
  /// When a shard member fails, drop its contribution and return a
  /// lower-bound answer (the failed member ids travel back on
  /// QueryResponse::degraded_members) instead of failing the query.
  bool partial_results = false;

  /// Shared verdict/COUNT tiers consulted for per-shard pruning and fed
  /// by scattered ASK / COUNT probes, keyed by member id. The endpoint
  /// registers its member ids with the cache so Invalidate(logical id)
  /// reaches every member's entries. Optional; null disables pruning by
  /// cached verdicts (routing by subject still applies).
  cache::FederationCache* cache = nullptr;

  /// Pool the scatter requests run on. Must NOT be a pool whose workers
  /// can block inside ShardedEndpoint::Query* (the scatter-gather caller
  /// waits for its fan-out futures, so sharing the engine's SAPE pool
  /// would deadlock under load). Null means the endpoint owns a private
  /// pool of `own_pool_threads` workers.
  ThreadPool* pool = nullptr;

  /// Worker count for the private pool (0 = hardware concurrency).
  size_t own_pool_threads = 0;
};

/// Cumulative counters of one ShardedEndpoint.
struct ShardedEndpointStats {
  uint64_t queries = 0;            ///< Calls to Query*.
  uint64_t fanout_requests = 0;    ///< Member requests issued.
  uint64_t pruned_shards = 0;      ///< (star, shard) pairs skipped: subject
                                   ///< routing, VALUES routing, or a cached
                                   ///< false verdict.
  uint64_t single_shard_queries = 0;  ///< Whole query routed to one shard.
  uint64_t ask_short_circuits = 0;    ///< ASK answered from cached verdicts
                                      ///< with zero member requests.
  uint64_t broadcast_fallbacks = 0;   ///< Non-decomposable query texts
                                      ///< broadcast wholesale to all shards.
  uint64_t partial_queries = 0;       ///< Queries that dropped >= 1 member.
  uint64_t shard_failures = 0;        ///< Member requests that failed.

  obs::JsonValue ToJson() const;
};

/// N shards of one logical endpoint behind a single net::Endpoint facade
/// — the data-partitioned dual of net::ReplicaGroup (each member may
/// itself be a ReplicaGroup, giving sharding * replication).
///
/// The data contract is the ShardMap's: every triple lives on exactly the
/// shard owning its *subject* (the loader splits files with the same
/// map). Execution exploits it by star decomposition: a query's triple
/// patterns are grouped by subject slot, so each group is answerable
/// per-shard with no cross-shard loss; groups scatter in parallel to
/// their relevant shards, per-shard results union in ID space
/// (AppendUnionIds into the endpoint's TermDictionary), and the groups
/// are joined — plus residual filters, OPTIONAL / UNION / EXISTS blocks,
/// VALUES, DISTINCT, COUNT, ORDER BY, LIMIT/OFFSET — at the gather site.
///
/// Routing prunes before any request is issued: a star whose subject is
/// a constant (or bound by a pushed VALUES block) goes to exactly the
/// owning shard(s), and a shard with a cached false ASK verdict for one
/// of the star's patterns is skipped. ASK queries consult per-member
/// verdicts first (a cached true answers with zero requests) and store
/// the scattered verdicts back per member; single-star COUNT(*) probes
/// scatter the count itself and sum, through the COUNT tier.
///
/// Queries whose body the decomposer does not cover (nested OPTIONAL,
/// UNION alternatives beyond flat BGPs, unparseable text) are broadcast
/// wholesale to every shard and unioned — exact for single-star bodies;
/// for Lusail's multi-star locality checks the per-shard evaluation can
/// only *over*-report counterexamples, which costs pushdown, never
/// correctness.
///
/// Thread-safe; the caller's CancelToken/deadline is threaded through
/// every member request.
class ShardedEndpoint : public net::Endpoint {
 public:
  /// `members.size()` must equal `map.NumShards()`; member i serves the
  /// subjects `map` assigns to shard i.
  ShardedEndpoint(std::string id, ShardMap map,
                  std::vector<std::shared_ptr<net::Endpoint>> members,
                  ShardedEndpointOptions options = ShardedEndpointOptions());

  ShardedEndpoint(const ShardedEndpoint&) = delete;
  ShardedEndpoint& operator=(const ShardedEndpoint&) = delete;

  const std::string& id() const override { return id_; }

  Result<net::QueryResponse> Query(const std::string& text) override {
    return QueryCancellable(text, CancelToken());
  }

  Result<net::QueryResponse> QueryWithDeadline(
      const std::string& text, const Deadline& deadline) override {
    return QueryCancellable(text, CancelToken(deadline));
  }

  Result<net::QueryResponse> QueryCancellable(
      const std::string& text, const CancelToken& cancel) override;

  size_t NumShards() const { return members_.size(); }
  const std::string& member_id(size_t i) const;
  net::Endpoint* member(size_t i) const { return members_[i].get(); }
  std::vector<std::string> MemberIds() const;
  const ShardMap& map() const { return map_; }

  /// True when at least one shard member would admit a request now (a
  /// member that is a ReplicaGroup counts as available iff it has an
  /// available replica). Source selection uses this to skip ASK probes
  /// against endpoints whose every shard is known-dead.
  bool HasAvailableShard() const;

  /// Dictionary gather results are encoded into (and responses returned
  /// in). Defaults to a private dictionary; engines share theirs so the
  /// ExecuteEncoded fast path applies. Call before issuing queries.
  void set_parse_dictionary(std::shared_ptr<core::TermDictionary> dict) {
    dict_ = std::move(dict);
  }

  ShardedEndpointStats stats() const;

  /// Endpoint counters plus a per-member section (id, addresses implied
  /// by the inner endpoint, request/failure counts).
  obs::JsonValue StatsJson() const;

  /// Emits lusail_shard_* counters labelled {endpoint=<logical id>}.
  void ExportMetrics(obs::MetricsSnapshot* snapshot) const;

  const ShardedEndpointOptions& options() const { return options_; }

 private:
  /// One subject star: the triple patterns sharing a subject slot, the
  /// filters/VALUES pushed into the shard subquery, and the shards it
  /// must visit.
  struct StarGroup {
    std::vector<sparql::TriplePattern> triples;
    std::vector<sparql::Expr> filters;
    std::vector<sparql::ValuesClause> values;
    std::set<std::string> vars;
    std::vector<size_t> shards;
  };

  /// A flat sub-pattern (OPTIONAL block, UNION alternative, EXISTS body)
  /// evaluated with the same star machinery and combined at the gather.
  struct Plan {
    std::vector<StarGroup> stars;
    std::vector<sparql::Expr> residual_filters;   ///< Applied post-join.
    std::vector<sparql::ValuesClause> gather_values;
    std::vector<Plan> optionals;                  ///< Left-joined.
    std::vector<std::vector<Plan>> unions;        ///< Joined union chains.
    std::vector<std::pair<bool, Plan>> exists;    ///< (negated, body).
  };

  /// Builds a plan for `pattern`; false when the shape is outside the
  /// decomposer (caller falls back to broadcast). `top_level` admits
  /// OPTIONAL/UNION/EXISTS blocks; nested blocks must be flat BGPs.
  bool BuildPlan(const sparql::GraphPattern& pattern, bool top_level,
                 Plan* plan);

  /// Routes every star of `plan` (and nested plans), filling
  /// StarGroup::shards and counting pruned pairs.
  void RoutePlan(Plan* plan);

  /// Collects the shard indices a routed plan touches (single-shard
  /// accounting).
  static void CollectShards(const Plan& plan, std::set<size_t>* out);

  /// Per-query scatter bookkeeping (accounting sums, degraded members,
  /// captured trace context); defined in the .cc.
  struct ScatterContext;

  /// Evaluates `plan` to an IdTable over dict_ (scatter + gather).
  /// When `star_limit` is non-zero each star subquery ships `LIMIT
  /// star_limit` to the shards — only safe when the caller proved the
  /// gather cannot need more than that many rows per shard (single
  /// star, no ORDER BY / DISTINCT / aggregate / gather-side joins).
  Result<core::IdTable> EvaluatePlan(const Plan& plan,
                                     const CancelToken& cancel,
                                     ScatterContext* ctx,
                                     size_t star_limit = 0);

  Result<net::QueryResponse> ExecuteDecomposed(const sparql::Query& query,
                                               const CancelToken& cancel,
                                               ScatterContext* ctx);
  Result<net::QueryResponse> ExecuteAsk(const sparql::Query& query,
                                        const CancelToken& cancel,
                                        ScatterContext* ctx);
  Result<net::QueryResponse> Broadcast(const sparql::Query& query,
                                       const CancelToken& cancel,
                                       ScatterContext* ctx);
  Result<net::QueryResponse> ScatterCount(const sparql::Query& query,
                                          const StarGroup& star,
                                          const CancelToken& cancel,
                                          ScatterContext* ctx);
  Result<net::QueryResponse> FinishSelect(const sparql::Query& query,
                                          core::IdTable acc,
                                          ScatterContext* ctx);

  /// One member request, run on a pool worker: tracing span, accounting,
  /// failure counters.
  Result<net::QueryResponse> IssueShardRequest(size_t shard,
                                               const std::string& text,
                                               const CancelToken& cancel,
                                               ScatterContext* ctx);

  /// Runs (shard, text) jobs on the pool and waits for all of them.
  std::vector<Result<net::QueryResponse>> RunScatter(
      const std::vector<std::pair<size_t, std::string>>& jobs,
      const CancelToken& cancel, ScatterContext* ctx);

  /// Re-encodes a member response into dict_ (fast path when the member
  /// already parsed into the same dictionary).
  core::IdTable EncodeResponse(const net::QueryResponse& response) const;

  /// Builds the response envelope from the context's accounting sums.
  net::QueryResponse MakeResponse(ScatterContext* ctx);

  std::string id_;
  ShardMap map_;
  std::vector<std::shared_ptr<net::Endpoint>> members_;
  std::vector<std::string> member_ids_;
  ShardedEndpointOptions options_;
  std::unique_ptr<ThreadPool> own_pool_;
  ThreadPool* pool_ = nullptr;
  std::shared_ptr<core::TermDictionary> dict_;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> fanout_requests_{0};
  std::atomic<uint64_t> pruned_shards_{0};
  std::atomic<uint64_t> single_shard_queries_{0};
  std::atomic<uint64_t> ask_short_circuits_{0};
  std::atomic<uint64_t> broadcast_fallbacks_{0};
  std::atomic<uint64_t> partial_queries_{0};
  std::atomic<uint64_t> shard_failures_{0};
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> member_requests_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> member_failures_;
};

}  // namespace lusail::shard

#endif  // LUSAIL_SHARD_SHARDED_ENDPOINT_H_
