#include "shard/shard_map.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <utility>

namespace lusail::shard {

uint64_t StableHash64(std::string_view data) {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis.
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ull;  // FNV-1a prime.
  }
  return hash;
}

namespace {

std::vector<ShardMap::RingPoint> BuildRing(size_t num_shards, size_t vnodes);

}  // namespace

ShardMap ShardMap::HashRing(size_t num_shards, size_t vnodes) {
  ShardMap map;
  map.mode_ = ShardMode::kHashRing;
  map.num_shards_ = num_shards == 0 ? 1 : num_shards;
  map.ring_ = BuildRing(map.num_shards_, vnodes);
  return map;
}

Result<ShardMap> ShardMap::Tokens(std::vector<std::string> tokens,
                                  size_t vnodes) {
  for (const std::string& token : tokens) {
    if (token.empty()) {
      return Status::InvalidArgument("shard token must be non-empty");
    }
  }
  ShardMap map;
  map.mode_ = ShardMode::kTokens;
  map.num_shards_ = tokens.empty() ? 1 : tokens.size();
  map.tokens_ = std::move(tokens);
  // Strays (subjects matching no token) fall back to this ring, keeping
  // the loader and the router consistent without a catch-all member.
  map.ring_ = BuildRing(map.num_shards_, vnodes);
  return map;
}

namespace {

std::vector<ShardMap::RingPoint> BuildRing(size_t num_shards, size_t vnodes) {
  if (vnodes == 0) vnodes = 1;
  std::vector<ShardMap::RingPoint> ring;
  ring.reserve(num_shards * vnodes);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    for (size_t v = 0; v < vnodes; ++v) {
      std::string key =
          "shard" + std::to_string(shard) + "#" + std::to_string(v);
      ring.push_back(ShardMap::RingPoint{StableHash64(key),
                                         static_cast<uint32_t>(shard)});
    }
  }
  std::sort(ring.begin(), ring.end());
  return ring;
}

}  // namespace

size_t ShardMap::RingShardOf(uint64_t hash) const {
  // First ring point at or after the subject's hash, wrapping past the
  // top of the ring back to the first point.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), RingPoint{hash, 0},
      [](const RingPoint& a, const RingPoint& b) { return a.hash < b.hash; });
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

size_t ShardMap::ShardOfSubjectText(std::string_view subject_ntriples) const {
  if (num_shards_ <= 1) return 0;
  if (mode_ == ShardMode::kTokens) {
    for (size_t i = 0; i < tokens_.size(); ++i) {
      if (subject_ntriples.find(tokens_[i]) != std::string_view::npos) {
        return i;
      }
    }
  }
  return RingShardOf(StableHash64(subject_ntriples));
}

size_t ShardMap::ShardOfSubject(const rdf::Term& subject) const {
  return ShardOfSubjectText(subject.ToString());
}

ShardMap ShardSpec::Map() const {
  bool tokens = !members.empty() && !members.front().token.empty();
  if (tokens) {
    std::vector<std::string> list;
    list.reserve(members.size());
    for (const ShardMemberSpec& member : members) list.push_back(member.token);
    auto map = ShardMap::Tokens(std::move(list));
    if (map.ok()) return *std::move(map);  // Parser validated the tokens.
  }
  return ShardMap::HashRing(members.size());
}

namespace {

std::vector<std::string> SplitOn(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool IsHostPort(std::string_view addr) {
  size_t colon = addr.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == addr.size()) {
    return false;
  }
  for (size_t i = colon + 1; i < addr.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(addr[i]))) return false;
  }
  return true;
}

}  // namespace

Result<ShardSpec> ParseShardsArg(const std::string& arg) {
  size_t eq = arg.rfind('=');
  if (eq == std::string::npos || eq + 1 == arg.size()) {
    return Status::InvalidArgument("--shards spec missing '=logical-id': '" +
                                   arg + "'");
  }
  ShardSpec spec;
  spec.logical_id = arg.substr(eq + 1);
  std::string members_text = arg.substr(0, eq);
  if (members_text.empty()) {
    return Status::InvalidArgument("--shards spec has no members: '" + arg +
                                   "'");
  }
  size_t with_token = 0;
  for (const std::string& member_text : SplitOn(members_text, ',')) {
    if (member_text.empty()) {
      return Status::InvalidArgument(
          "--shards spec has an empty member (stray comma): '" + members_text +
          "'");
    }
    ShardMemberSpec member;
    std::string addresses_text = member_text;
    size_t caret = member_text.find('^');
    if (caret != std::string::npos) {
      member.token = member_text.substr(caret + 1);
      addresses_text = member_text.substr(0, caret);
      if (member.token.empty() ||
          member.token.find('^') != std::string::npos) {
        return Status::InvalidArgument("--shards member has a malformed "
                                       "'^token' suffix: '" +
                                       member_text + "'");
      }
      ++with_token;
    }
    for (const std::string& addr : SplitOn(addresses_text, '|')) {
      if (!IsHostPort(addr)) {
        return Status::InvalidArgument(
            "--shards address is not host:port: '" + addr + "'");
      }
      member.addresses.push_back(addr);
    }
    std::sort(member.addresses.begin(), member.addresses.end());
    spec.members.push_back(std::move(member));
  }
  if (with_token != 0 && with_token != spec.members.size()) {
    return Status::InvalidArgument(
        "--shards spec mixes '^token' and tokenless members: '" +
        members_text + "'");
  }
  // Lexicographic member order fixes the shard indices, so the same host
  // list in any order produces the identical assignment.
  std::sort(spec.members.begin(), spec.members.end(),
            [](const ShardMemberSpec& a, const ShardMemberSpec& b) {
              return a.addresses < b.addresses;
            });
  std::set<std::string> seen;
  for (size_t i = 0; i < spec.members.size(); ++i) {
    spec.members[i].id = spec.logical_id + "#" + std::to_string(i);
    for (const std::string& addr : spec.members[i].addresses) {
      if (!seen.insert(addr).second) {
        return Status::InvalidArgument(
            "--shards address appears twice: '" + addr + "'");
      }
    }
  }
  return spec;
}

Result<std::vector<std::string>> SplitNTriples(std::string_view text,
                                               const ShardMap& map) {
  std::vector<std::string> chunks(map.NumShards());
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = end == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, end - start);
    if (!line.empty()) {
      rdf::TermTriple triple;
      bool has_triple = false;
      Status status = rdf::ParseNTriplesLine(line, &triple, &has_triple);
      if (!status.ok()) return status;
      if (has_triple) {
        std::string& chunk = chunks[map.ShardOfSubject(triple.subject)];
        chunk.append(triple.ToString());
        chunk.push_back('\n');
      }
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return chunks;
}

}  // namespace lusail::shard
