#include "shard/sharded_endpoint.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <numeric>
#include <optional>
#include <unordered_set>
#include <utility>

#include "net/replica.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "sparql/parser.h"
#include "sparql/serializer.h"
#include "sparql/expr_eval.h"

namespace lusail::shard {

using core::IdTable;
using net::QueryResponse;

/// Per-query scatter bookkeeping shared between the gather thread and the
/// pool tasks it fans out.
struct ShardedEndpoint::ScatterContext {
  std::mutex mu;
  size_t request_bytes = 0;
  size_t response_bytes = 0;
  double network_ms = 0.0;
  double server_ms = 0.0;
  bool over_network = false;
  std::set<std::string> degraded;  ///< Member ids dropped (partial mode).

  /// Caller-thread trace context, copied by value so pool tasks can open
  /// "shard request" spans under the federation's request span.
  bool have_trace = false;
  obs::TraceContext trace;
};

obs::JsonValue ShardedEndpointStats::ToJson() const {
  obs::JsonValue v = obs::JsonValue::Object();
  v.Set("queries", obs::JsonValue(queries));
  v.Set("fanoutRequests", obs::JsonValue(fanout_requests));
  v.Set("prunedShards", obs::JsonValue(pruned_shards));
  v.Set("singleShardQueries", obs::JsonValue(single_shard_queries));
  v.Set("askShortCircuits", obs::JsonValue(ask_short_circuits));
  v.Set("broadcastFallbacks", obs::JsonValue(broadcast_fallbacks));
  v.Set("partialQueries", obs::JsonValue(partial_queries));
  v.Set("shardFailures", obs::JsonValue(shard_failures));
  return v;
}

namespace {

/// The exact probe text source selection caches verdicts under (keep in
/// sync with AskQueryText in federation/source_selection.cc).
std::string AskTextFor(const sparql::TriplePattern& tp) {
  return "ASK { " + tp.ToString() + " . }";
}

/// Subject slot rendered as a grouping key: "?name" or the term text.
std::string SubjectKey(const sparql::TriplePattern& tp) {
  return tp.s.ToString();
}

std::optional<uint64_t> ParseCount(const rdf::Term& term) {
  if (!term.is_literal()) return std::nullopt;
  const std::string& lex = term.lexical();
  if (lex.empty()) return std::nullopt;
  char* end = nullptr;
  uint64_t value = std::strtoull(lex.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return value;
}

/// The COUNT value in a one-row aggregate response, whichever
/// representation it arrived in.
std::optional<uint64_t> CountFromResponse(const QueryResponse& response,
                                          const std::string& alias) {
  if (response.ids != nullptr) {
    if (response.ids->NumRows() == 0) return 0;
    int idx = response.ids->VarIndex(alias);
    if (idx < 0 && response.ids->NumVars() == 1) idx = 0;
    if (idx < 0 || response.ids_dict == nullptr) return std::nullopt;
    rdf::TermId id = response.ids->At(0, static_cast<size_t>(idx));
    if (id == rdf::kInvalidTermId) return std::nullopt;
    return ParseCount(response.ids_dict->term(id));
  }
  if (response.table.rows.empty()) return 0;
  int idx = -1;
  for (size_t i = 0; i < response.table.vars.size(); ++i) {
    if (response.table.vars[i] == alias) idx = static_cast<int>(i);
  }
  if (idx < 0 && response.table.vars.size() == 1) idx = 0;
  if (idx < 0) return std::nullopt;
  const auto& cell = response.table.rows[0][static_cast<size_t>(idx)];
  if (!cell.has_value()) return std::nullopt;
  return ParseCount(*cell);
}

/// SPARQL compatibility on a shared-var tuple: unbound matches anything.
bool CompatibleTuples(const std::vector<rdf::TermId>& a,
                      const std::vector<rdf::TermId>& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != rdf::kInvalidTermId && b[i] != rdf::kInvalidTermId &&
        a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

std::string TupleKey(const std::vector<rdf::TermId>& tuple) {
  return std::string(reinterpret_cast<const char*>(tuple.data()),
                     tuple.size() * sizeof(rdf::TermId));
}

/// EXISTS / NOT EXISTS as a (anti-)semi-join on the shared variables.
/// Fully-bound tuples go through a hash set; rows with unbound shared
/// cells (rare) fall back to a compatibility scan, so the semantics stay
/// exact.
void SemiFilter(IdTable* acc, const IdTable& inner, bool negated) {
  std::vector<std::string> shared = IdTable::SharedVars(*acc, inner);
  if (shared.empty()) {
    bool exists = inner.NumRows() > 0;
    if (negated ? exists : !exists) {
      *acc = acc->SelectRows({});
    }
    return;
  }
  std::vector<int> acc_idx, inner_idx;
  for (const std::string& v : shared) {
    acc_idx.push_back(acc->VarIndex(v));
    inner_idx.push_back(inner.VarIndex(v));
  }
  std::unordered_set<std::string> exact;
  std::vector<std::vector<rdf::TermId>> wild;
  std::vector<std::vector<rdf::TermId>> all;
  all.reserve(inner.NumRows());
  for (size_t r = 0; r < inner.NumRows(); ++r) {
    std::vector<rdf::TermId> tuple(shared.size());
    bool bound = true;
    for (size_t c = 0; c < shared.size(); ++c) {
      tuple[c] = inner_idx[c] < 0
                     ? rdf::kInvalidTermId
                     : inner.At(r, static_cast<size_t>(inner_idx[c]));
      bound = bound && tuple[c] != rdf::kInvalidTermId;
    }
    if (bound) {
      exact.insert(TupleKey(tuple));
    } else {
      wild.push_back(tuple);
    }
    all.push_back(std::move(tuple));
  }
  std::vector<uint32_t> kept;
  kept.reserve(acc->NumRows());
  for (size_t r = 0; r < acc->NumRows(); ++r) {
    std::vector<rdf::TermId> tuple(shared.size());
    bool bound = true;
    for (size_t c = 0; c < shared.size(); ++c) {
      tuple[c] = acc_idx[c] < 0
                     ? rdf::kInvalidTermId
                     : acc->At(r, static_cast<size_t>(acc_idx[c]));
      bound = bound && tuple[c] != rdf::kInvalidTermId;
    }
    bool match;
    if (bound) {
      match = exact.count(TupleKey(tuple)) > 0;
      if (!match) {
        for (const auto& w : wild) {
          if (CompatibleTuples(tuple, w)) {
            match = true;
            break;
          }
        }
      }
    } else {
      match = false;
      for (const auto& candidate : all) {
        if (CompatibleTuples(tuple, candidate)) {
          match = true;
          break;
        }
      }
    }
    if (match != negated) kept.push_back(static_cast<uint32_t>(r));
  }
  if (kept.size() != acc->NumRows()) *acc = acc->SelectRows(kept);
}

/// A flat sub-pattern the star machinery covers wholesale: a non-empty
/// BGP plus plain filters, nothing nested.
bool IsFlatPattern(const sparql::GraphPattern& pattern) {
  return !pattern.triples.empty() && pattern.exists_filters.empty() &&
         pattern.optionals.empty() && pattern.unions.empty() &&
         pattern.values.empty();
}

std::vector<std::string> ProjectionNames(
    const std::vector<sparql::Variable>& vars) {
  std::vector<std::string> names;
  names.reserve(vars.size());
  for (const sparql::Variable& v : vars) names.push_back(v.name);
  return names;
}

}  // namespace

ShardedEndpoint::ShardedEndpoint(
    std::string id, ShardMap map,
    std::vector<std::shared_ptr<net::Endpoint>> members,
    ShardedEndpointOptions options)
    : id_(std::move(id)),
      map_(std::move(map)),
      members_(std::move(members)),
      options_(options),
      dict_(std::make_shared<core::TermDictionary>()) {
  member_ids_.reserve(members_.size());
  for (size_t i = 0; i < members_.size(); ++i) {
    member_ids_.push_back(members_[i] != nullptr ? members_[i]->id()
                                                 : id_ + "#" +
                                                       std::to_string(i));
    member_requests_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    member_failures_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    own_pool_ = std::make_unique<ThreadPool>(options_.own_pool_threads);
    pool_ = own_pool_.get();
  }
  if (options_.cache != nullptr) {
    options_.cache->RegisterMemberIds(id_, member_ids_);
  }
}

const std::string& ShardedEndpoint::member_id(size_t i) const {
  return member_ids_[i];
}

std::vector<std::string> ShardedEndpoint::MemberIds() const {
  return member_ids_;
}

bool ShardedEndpoint::HasAvailableShard() const {
  for (const auto& member : members_) {
    if (member == nullptr) continue;
    if (const auto* group =
            dynamic_cast<const net::ReplicaGroup*>(member.get())) {
      if (group->HasAvailableReplica()) return true;
      continue;
    }
    return true;  // Plain endpoints have no breaker state to consult.
  }
  return false;
}

ShardedEndpointStats ShardedEndpoint::stats() const {
  ShardedEndpointStats s;
  s.queries = queries_.load();
  s.fanout_requests = fanout_requests_.load();
  s.pruned_shards = pruned_shards_.load();
  s.single_shard_queries = single_shard_queries_.load();
  s.ask_short_circuits = ask_short_circuits_.load();
  s.broadcast_fallbacks = broadcast_fallbacks_.load();
  s.partial_queries = partial_queries_.load();
  s.shard_failures = shard_failures_.load();
  return s;
}

obs::JsonValue ShardedEndpoint::StatsJson() const {
  obs::JsonValue v = stats().ToJson();
  v.Set("numShards", obs::JsonValue(static_cast<uint64_t>(members_.size())));
  obs::JsonValue member_list = obs::JsonValue::Array();
  for (size_t i = 0; i < members_.size(); ++i) {
    obs::JsonValue m = obs::JsonValue::Object();
    m.Set("id", obs::JsonValue(member_ids_[i]));
    m.Set("requests", obs::JsonValue(member_requests_[i]->load()));
    m.Set("failures", obs::JsonValue(member_failures_[i]->load()));
    member_list.Append(std::move(m));
  }
  v.Set("members", std::move(member_list));
  return v;
}

void ShardedEndpoint::ExportMetrics(obs::MetricsSnapshot* snapshot) const {
  obs::MetricLabels labels{{"endpoint", id_}};
  ShardedEndpointStats s = stats();
  snapshot->AddCounter("lusail_shard_queries_total",
                       "Queries handled by the sharded endpoint.", labels,
                       static_cast<double>(s.queries));
  snapshot->AddCounter("lusail_shard_fanout_total",
                       "Shard member requests issued by scatter-gather.",
                       labels, static_cast<double>(s.fanout_requests));
  snapshot->AddCounter(
      "lusail_shard_pruned_total",
      "(star, shard) pairs skipped by subject routing, VALUES routing, or "
      "cached false verdicts.",
      labels, static_cast<double>(s.pruned_shards));
  snapshot->AddCounter("lusail_shard_single_total",
                       "Queries routed to exactly one shard.", labels,
                       static_cast<double>(s.single_shard_queries));
  snapshot->AddCounter(
      "lusail_shard_ask_short_circuit_total",
      "ASK queries answered from cached verdicts with zero requests.",
      labels, static_cast<double>(s.ask_short_circuits));
  snapshot->AddCounter("lusail_shard_broadcast_total",
                       "Non-decomposable queries broadcast to every shard.",
                       labels, static_cast<double>(s.broadcast_fallbacks));
  snapshot->AddCounter("lusail_shard_partial_total",
                       "Queries that dropped at least one shard member.",
                       labels, static_cast<double>(s.partial_queries));
  snapshot->AddCounter("lusail_shard_failures_total",
                       "Shard member requests that failed.", labels,
                       static_cast<double>(s.shard_failures));
}

// --- Planning -------------------------------------------------------------

bool ShardedEndpoint::BuildPlan(const sparql::GraphPattern& pattern,
                                bool top_level, Plan* plan) {
  // Stars: triples grouped by subject slot, in first-appearance order.
  std::vector<std::string> keys;
  for (const sparql::TriplePattern& tp : pattern.triples) {
    std::string key = SubjectKey(tp);
    size_t si = 0;
    for (; si < keys.size(); ++si) {
      if (keys[si] == key) break;
    }
    if (si == keys.size()) {
      keys.push_back(key);
      plan->stars.emplace_back();
    }
    StarGroup& star = plan->stars[si];
    star.triples.push_back(tp);
    for (const std::string& v : tp.VariableNames()) star.vars.insert(v);
  }

  // Filters: pushed into the one star that binds all their variables
  // (star variables are always triple-bound, so early evaluation is
  // exact); the rest run at the gather after OPTIONAL joins.
  for (const sparql::Expr& filter : pattern.filters) {
    std::set<std::string> fvars;
    filter.CollectVariables(&fvars);
    bool pushed = false;
    for (StarGroup& star : plan->stars) {
      if (std::includes(star.vars.begin(), star.vars.end(), fvars.begin(),
                        fvars.end())) {
        star.filters.push_back(filter);
        pushed = true;
        break;
      }
    }
    if (!pushed) {
      if (!top_level) return false;  // Correlated nested filter.
      plan->residual_filters.push_back(filter);
    }
  }

  // VALUES: pushed into every star that binds all the block's variables
  // (it can only restrict that star), or joined at the gather.
  for (const sparql::ValuesClause& vc : pattern.values) {
    if (!top_level) return false;
    std::set<std::string> vvars;
    for (const sparql::Variable& v : vc.vars) vvars.insert(v.name);
    bool pushed = false;
    for (StarGroup& star : plan->stars) {
      if (std::includes(star.vars.begin(), star.vars.end(), vvars.begin(),
                        vvars.end())) {
        star.values.push_back(vc);
        pushed = true;
        break;
      }
    }
    if (!pushed) plan->gather_values.push_back(vc);
  }

  if (!top_level) {
    return pattern.exists_filters.empty() && pattern.optionals.empty() &&
           pattern.unions.empty();
  }

  for (const sparql::GraphPattern& opt : pattern.optionals) {
    if (!IsFlatPattern(opt)) return false;
    Plan sub;
    if (!BuildPlan(opt, false, &sub)) return false;
    plan->optionals.push_back(std::move(sub));
  }
  for (const auto& chain : pattern.unions) {
    std::vector<Plan> alternatives;
    for (const sparql::GraphPattern& alt : chain) {
      if (!IsFlatPattern(alt)) return false;
      Plan sub;
      if (!BuildPlan(alt, false, &sub)) return false;
      alternatives.push_back(std::move(sub));
    }
    plan->unions.push_back(std::move(alternatives));
  }
  for (const sparql::ExistsFilter& ef : pattern.exists_filters) {
    if (!IsFlatPattern(ef.pattern)) return false;
    Plan sub;
    if (!BuildPlan(ef.pattern, false, &sub)) return false;
    plan->exists.emplace_back(ef.negated, std::move(sub));
  }
  return true;
}

void ShardedEndpoint::RoutePlan(Plan* plan) {
  const size_t n = NumShards();
  for (StarGroup& star : plan->stars) {
    std::vector<size_t> candidates;
    const sparql::TermOrVar& subject = star.triples.front().s;
    if (subject.is_term()) {
      candidates.push_back(map_.ShardOfSubject(subject.term()));
    } else {
      // A pushed VALUES block binding exactly the subject variable (all
      // rows bound) names the owning shards outright.
      const std::string& sname = subject.var().name;
      bool routed = false;
      for (const sparql::ValuesClause& vc : star.values) {
        if (vc.vars.size() != 1 || vc.vars[0].name != sname) continue;
        std::set<size_t> owners;
        bool all_bound = true;
        for (const auto& row : vc.rows) {
          if (row.empty() || !row[0].has_value()) {
            all_bound = false;
            break;
          }
          owners.insert(map_.ShardOfSubject(*row[0]));
        }
        if (all_bound) {
          candidates.assign(owners.begin(), owners.end());
          routed = true;
        }
        break;
      }
      if (!routed) {
        candidates.resize(n);
        std::iota(candidates.begin(), candidates.end(), 0);
      }
    }
    if (options_.cache != nullptr) {
      std::vector<size_t> alive;
      for (size_t shard : candidates) {
        bool dead = false;
        for (const sparql::TriplePattern& tp : star.triples) {
          auto verdict = options_.cache->GetVerdict(
              cache::FederationCache::Key(member_ids_[shard], AskTextFor(tp)));
          if (verdict.has_value() && !*verdict) {
            dead = true;
            break;
          }
        }
        if (!dead) alive.push_back(shard);
      }
      candidates = std::move(alive);
    }
    pruned_shards_.fetch_add(n - candidates.size());
    star.shards = std::move(candidates);
  }
  for (Plan& sub : plan->optionals) RoutePlan(&sub);
  for (auto& chain : plan->unions) {
    for (Plan& sub : chain) RoutePlan(&sub);
  }
  for (auto& [negated, sub] : plan->exists) RoutePlan(&sub);
}

// --- Scatter --------------------------------------------------------------

Result<QueryResponse> ShardedEndpoint::IssueShardRequest(
    size_t shard, const std::string& text, const CancelToken& cancel,
    ScatterContext* ctx) {
  fanout_requests_.fetch_add(1);
  member_requests_[shard]->fetch_add(1);
  obs::SpanId span = 0;
  std::optional<obs::TraceContextScope> scope;
  if (ctx->have_trace && ctx->trace.tracer != nullptr) {
    span = ctx->trace.tracer->StartSpan("shard request", "shard",
                                        ctx->trace.parent);
    ctx->trace.tracer->Annotate(span, "shard.member", member_ids_[shard]);
    scope.emplace(
        obs::TraceContext{ctx->trace.tracer, ctx->trace.trace_id, span});
  }
  Result<QueryResponse> result = members_[shard]->QueryCancellable(text, cancel);
  if (span != 0) {
    obs::Tracer* tracer = ctx->trace.tracer.get();
    if (result.ok()) {
      tracer->Annotate(span, "rows",
                       static_cast<uint64_t>(result->RowCount()));
    } else {
      tracer->Annotate(span, "error", result.status().message());
    }
    tracer->EndSpan(span);
  }
  if (result.ok()) {
    std::lock_guard<std::mutex> lock(ctx->mu);
    ctx->request_bytes += result->request_bytes;
    ctx->response_bytes += result->response_bytes;
    ctx->network_ms += result->network_ms;
    ctx->server_ms += result->server_ms;
    ctx->over_network = ctx->over_network || result->transport.over_network;
  } else {
    shard_failures_.fetch_add(1);
    member_failures_[shard]->fetch_add(1);
  }
  return result;
}

std::vector<Result<QueryResponse>> ShardedEndpoint::RunScatter(
    const std::vector<std::pair<size_t, std::string>>& jobs,
    const CancelToken& cancel, ScatterContext* ctx) {
  std::vector<std::future<Result<QueryResponse>>> futures;
  futures.reserve(jobs.size());
  for (const auto& [shard, text] : jobs) {
    futures.push_back(pool_->Submit(
        [this, shard = shard, text = text, cancel, ctx]() {
          return IssueShardRequest(shard, text, cancel, ctx);
        }));
  }
  std::vector<Result<QueryResponse>> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

IdTable ShardedEndpoint::EncodeResponse(const QueryResponse& response) const {
  if (response.ids != nullptr) {
    if (response.ids_dict.get() == dict_.get()) return *response.ids;
    if (response.ids_dict != nullptr) {
      return core::EncodeResultTable(
          core::DecodeIdTable(*response.ids, *response.ids_dict),
          dict_.get());
    }
  }
  return core::EncodeResultTable(response.table, dict_.get());
}

QueryResponse ShardedEndpoint::MakeResponse(ScatterContext* ctx) {
  QueryResponse response;
  std::lock_guard<std::mutex> lock(ctx->mu);
  response.request_bytes = ctx->request_bytes;
  response.response_bytes = ctx->response_bytes;
  response.network_ms = ctx->network_ms;
  response.server_ms = ctx->server_ms;
  response.transport.over_network = ctx->over_network;
  response.degraded_members.assign(ctx->degraded.begin(),
                                   ctx->degraded.end());
  return response;
}

// --- Gather ---------------------------------------------------------------

Result<IdTable> ShardedEndpoint::EvaluatePlan(const Plan& plan,
                                              const CancelToken& cancel,
                                              ScatterContext* ctx,
                                              size_t star_limit) {
  // One scatter wave covers every (star, shard) pair of this plan level.
  std::vector<std::pair<size_t, std::string>> jobs;
  std::vector<size_t> job_star;
  for (size_t si = 0; si < plan.stars.size(); ++si) {
    const StarGroup& star = plan.stars[si];
    sparql::Query sub;
    sub.form = sparql::QueryForm::kSelect;
    sub.select_all = true;
    sub.where.triples = star.triples;
    sub.where.filters = star.filters;
    sub.where.values = star.values;
    if (star_limit > 0) sub.limit = star_limit;
    std::string text = sparql::QueryToString(sub);
    for (size_t shard : star.shards) {
      jobs.emplace_back(shard, text);
      job_star.push_back(si);
    }
  }
  std::vector<Result<QueryResponse>> results = RunScatter(jobs, cancel, ctx);

  std::vector<IdTable> star_tables(plan.stars.size());
  for (size_t si = 0; si < plan.stars.size(); ++si) {
    star_tables[si].vars.assign(plan.stars[si].vars.begin(),
                                plan.stars[si].vars.end());
  }
  for (size_t i = 0; i < results.size(); ++i) {
    Result<QueryResponse>& r = results[i];
    if (!r.ok()) {
      if (!options_.partial_results) return r.status();
      std::lock_guard<std::mutex> lock(ctx->mu);
      ctx->degraded.insert(member_ids_[jobs[i].first]);
      continue;
    }
    IdTable t = EncodeResponse(*r);
    core::AppendUnionIds(&star_tables[job_star[i]], t);
  }
  if (cancel.Cancelled()) return cancel.StatusAt("shard gather");

  // Join stars smallest-first (same heuristic as the SAPE join order).
  IdTable acc;
  if (plan.stars.empty()) {
    acc.AppendRow({});  // The unit solution: one empty binding.
  } else {
    std::vector<size_t> order(star_tables.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return star_tables[a].NumRows() < star_tables[b].NumRows();
    });
    acc = std::move(star_tables[order[0]]);
    for (size_t k = 1; k < order.size(); ++k) {
      acc = core::JoinIds(acc, star_tables[order[k]], /*left_outer=*/false);
      if (cancel.Cancelled()) return cancel.StatusAt("shard join");
    }
  }

  // Mirror the evaluator's group ordering: UNION chains, then OPTIONAL
  // blocks, then residual filters and EXISTS.
  for (const auto& chain : plan.unions) {
    IdTable unioned;
    for (const Plan& alt : chain) {
      LUSAIL_ASSIGN_OR_RETURN(IdTable alt_table,
                              EvaluatePlan(alt, cancel, ctx));
      core::AppendUnionIds(&unioned, alt_table);
    }
    acc = core::JoinIds(acc, unioned, /*left_outer=*/false);
  }
  for (const sparql::ValuesClause& vc : plan.gather_values) {
    IdTable vt;
    for (const sparql::Variable& v : vc.vars) vt.vars.push_back(v.name);
    for (const auto& row : vc.rows) {
      std::vector<rdf::TermId> ids;
      ids.reserve(row.size());
      for (const auto& cell : row) {
        ids.push_back(cell.has_value() ? dict_->Intern(*cell)
                                       : rdf::kInvalidTermId);
      }
      vt.AppendRow(ids);
    }
    acc = core::JoinIds(acc, vt, /*left_outer=*/false);
  }
  for (const Plan& opt : plan.optionals) {
    LUSAIL_ASSIGN_OR_RETURN(IdTable fragment, EvaluatePlan(opt, cancel, ctx));
    acc = core::JoinIds(acc, fragment, /*left_outer=*/true);
  }
  for (const sparql::Expr& filter : plan.residual_filters) {
    core::FilterIds(&acc, filter, *dict_);
  }
  for (const auto& [negated, sub] : plan.exists) {
    LUSAIL_ASSIGN_OR_RETURN(IdTable inner, EvaluatePlan(sub, cancel, ctx));
    SemiFilter(&acc, inner, negated);
  }
  return acc;
}

// --- Entry points ---------------------------------------------------------

Result<QueryResponse> ShardedEndpoint::QueryCancellable(
    const std::string& text, const CancelToken& cancel) {
  queries_.fetch_add(1);
  if (cancel.Cancelled()) return cancel.StatusAt("sharded endpoint request");
  LUSAIL_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(text));
  ScatterContext ctx;
  if (const obs::TraceContext* tc = obs::CurrentTraceContext()) {
    ctx.have_trace = true;
    ctx.trace = *tc;
  }
  if (query.form == sparql::QueryForm::kAsk) {
    return ExecuteAsk(query, cancel, &ctx);
  }
  return ExecuteDecomposed(query, cancel, &ctx);
}

Result<QueryResponse> ShardedEndpoint::ExecuteDecomposed(
    const sparql::Query& query, const CancelToken& cancel,
    ScatterContext* ctx) {
  Plan plan;
  if (!BuildPlan(query.where, /*top_level=*/true, &plan)) {
    return Broadcast(query, cancel, ctx);
  }
  RoutePlan(&plan);
  std::set<size_t> touched;
  CollectShards(plan, &touched);
  if (touched.size() <= 1) single_shard_queries_.fetch_add(1);

  // Single-star COUNT(*): scatter the count itself and sum per-shard
  // cardinalities through the COUNT cache tier instead of shipping rows.
  if (query.aggregate.has_value() && !query.aggregate->var.has_value() &&
      !query.aggregate->distinct && plan.stars.size() == 1 &&
      plan.residual_filters.empty() && plan.gather_values.empty() &&
      plan.optionals.empty() && plan.unions.empty() && plan.exists.empty()) {
    return ScatterCount(query, plan.stars.front(), cancel, ctx);
  }

  // LIMIT pushdown to the scatter: with a single star and no gather-side
  // row-dropping work, a shard can never contribute more than
  // offset+limit useful rows. OFFSET itself is never shipped — each
  // shard would skip rows the gather alone is positioned to discount.
  size_t star_limit = 0;
  if (query.limit.has_value() && query.order_by.empty() && !query.distinct &&
      !query.aggregate.has_value() && plan.stars.size() == 1 &&
      plan.residual_filters.empty() && plan.gather_values.empty() &&
      plan.optionals.empty() && plan.unions.empty() && plan.exists.empty()) {
    uint64_t want = query.offset.value_or(0) + *query.limit;
    star_limit = static_cast<size_t>(
        std::min<uint64_t>(want, std::numeric_limits<uint32_t>::max()));
  }

  LUSAIL_ASSIGN_OR_RETURN(IdTable acc,
                          EvaluatePlan(plan, cancel, ctx, star_limit));
  return FinishSelect(query, std::move(acc), ctx);
}

Result<QueryResponse> ShardedEndpoint::ScatterCount(
    const sparql::Query& query, const StarGroup& star,
    const CancelToken& cancel, ScatterContext* ctx) {
  sparql::Query count_query;
  count_query.form = sparql::QueryForm::kSelect;
  count_query.aggregate = query.aggregate;
  count_query.where.triples = star.triples;
  count_query.where.filters = star.filters;
  count_query.where.values = star.values;
  const std::string text = sparql::QueryToString(count_query);
  const std::string& alias = query.aggregate->alias.name;

  uint64_t total = 0;
  std::vector<std::pair<size_t, std::string>> jobs;
  for (size_t shard : star.shards) {
    if (options_.cache != nullptr) {
      auto cached = options_.cache->GetCount(
          cache::FederationCache::Key(member_ids_[shard], text));
      if (cached.has_value()) {
        total += *cached;
        continue;
      }
    }
    jobs.emplace_back(shard, text);
  }
  std::vector<Result<QueryResponse>> results = RunScatter(jobs, cancel, ctx);
  for (size_t i = 0; i < results.size(); ++i) {
    Result<QueryResponse>& r = results[i];
    if (!r.ok()) {
      if (!options_.partial_results) return r.status();
      std::lock_guard<std::mutex> lock(ctx->mu);
      ctx->degraded.insert(member_ids_[jobs[i].first]);
      continue;
    }
    std::optional<uint64_t> count = CountFromResponse(*r, alias);
    if (!count.has_value()) {
      return Status::Internal("shard " + member_ids_[jobs[i].first] +
                              " returned a malformed COUNT response");
    }
    total += *count;
    if (options_.cache != nullptr) {
      options_.cache->PutCount(
          cache::FederationCache::Key(member_ids_[jobs[i].first], text),
          member_ids_[jobs[i].first], *count);
    }
  }
  IdTable out;
  out.vars.push_back(alias);
  out.AppendRow({dict_->Intern(rdf::Term::Integer(
      static_cast<int64_t>(total)))});
  QueryResponse response = MakeResponse(ctx);
  if (!response.degraded_members.empty()) partial_queries_.fetch_add(1);
  response.ids = std::make_shared<IdTable>(std::move(out));
  response.ids_dict = dict_;
  return response;
}

Result<QueryResponse> ShardedEndpoint::ExecuteAsk(const sparql::Query& query,
                                                  const CancelToken& cancel,
                                                  ScatterContext* ctx) {
  Plan plan;
  if (!BuildPlan(query.where, /*top_level=*/true, &plan)) {
    return Broadcast(query, cancel, ctx);
  }
  RoutePlan(&plan);

  bool verdict = false;
  bool simple = plan.stars.size() == 1 && plan.residual_filters.empty() &&
                plan.gather_values.empty() && plan.optionals.empty() &&
                plan.unions.empty() && plan.exists.empty();
  if (simple) {
    const StarGroup& star = plan.stars.front();
    // Canonical probe text: single clean patterns use the exact form
    // source selection caches under, so verdicts flow both ways.
    std::string ask_text;
    if (star.triples.size() == 1 && star.filters.empty() &&
        star.values.empty()) {
      ask_text = AskTextFor(star.triples.front());
    } else {
      sparql::Query ask;
      ask.form = sparql::QueryForm::kAsk;
      ask.where.triples = star.triples;
      ask.where.filters = star.filters;
      ask.where.values = star.values;
      ask_text = sparql::QueryToString(ask);
    }
    std::vector<size_t> remaining;
    for (size_t shard : star.shards) {
      if (options_.cache != nullptr) {
        auto cached = options_.cache->GetVerdict(
            cache::FederationCache::Key(member_ids_[shard], ask_text));
        if (cached.has_value()) {
          if (*cached) verdict = true;
          continue;  // Either way, no request for this shard.
        }
      }
      remaining.push_back(shard);
    }
    if (verdict || remaining.empty()) {
      // Answered entirely from cached verdicts (or full pruning).
      ask_short_circuits_.fetch_add(1);
    } else {
      std::vector<std::pair<size_t, std::string>> jobs;
      for (size_t shard : remaining) jobs.emplace_back(shard, ask_text);
      std::vector<Result<QueryResponse>> results =
          RunScatter(jobs, cancel, ctx);
      for (size_t i = 0; i < results.size(); ++i) {
        Result<QueryResponse>& r = results[i];
        if (!r.ok()) {
          if (!options_.partial_results) return r.status();
          std::lock_guard<std::mutex> lock(ctx->mu);
          ctx->degraded.insert(member_ids_[jobs[i].first]);
          continue;
        }
        bool member_verdict = r->RowCount() > 0;
        verdict = verdict || member_verdict;
        if (options_.cache != nullptr) {
          options_.cache->PutVerdict(
              cache::FederationCache::Key(member_ids_[jobs[i].first],
                                          ask_text),
              member_ids_[jobs[i].first], member_verdict);
        }
      }
    }
  } else {
    LUSAIL_ASSIGN_OR_RETURN(IdTable acc, EvaluatePlan(plan, cancel, ctx));
    verdict = acc.NumRows() > 0;
  }

  QueryResponse response = MakeResponse(ctx);
  if (!response.degraded_members.empty()) partial_queries_.fetch_add(1);
  if (verdict) response.table.rows.push_back({});
  return response;
}

Result<QueryResponse> ShardedEndpoint::Broadcast(const sparql::Query& query,
                                                 const CancelToken& cancel,
                                                 ScatterContext* ctx) {
  broadcast_fallbacks_.fetch_add(1);
  const size_t n = NumShards();

  if (query.form == sparql::QueryForm::kAsk) {
    const std::string text = sparql::QueryToString(query);
    std::vector<std::pair<size_t, std::string>> jobs;
    for (size_t shard = 0; shard < n; ++shard) jobs.emplace_back(shard, text);
    std::vector<Result<QueryResponse>> results = RunScatter(jobs, cancel, ctx);
    bool verdict = false;
    for (size_t i = 0; i < results.size(); ++i) {
      Result<QueryResponse>& r = results[i];
      if (!r.ok()) {
        if (!options_.partial_results) return r.status();
        std::lock_guard<std::mutex> lock(ctx->mu);
        ctx->degraded.insert(member_ids_[jobs[i].first]);
        continue;
      }
      verdict = verdict || r->RowCount() > 0;
    }
    QueryResponse response = MakeResponse(ctx);
    if (!response.degraded_members.empty()) partial_queries_.fetch_add(1);
    if (verdict) response.table.rows.push_back({});
    return response;
  }

  // Ship the body (modifiers stripped; a safe LIMIT pushed when legal)
  // and re-apply aggregate / DISTINCT / ORDER BY / LIMIT at the gather.
  sparql::Query shard_query = query;
  shard_query.order_by.clear();
  shard_query.offset.reset();
  if (shard_query.aggregate.has_value()) {
    shard_query.aggregate.reset();
    shard_query.projection.clear();
    shard_query.select_all = true;
    shard_query.distinct = false;
    shard_query.limit.reset();
  } else if (query.limit.has_value() && query.order_by.empty()) {
    // Safe pushdown: each member may contribute anywhere in the first
    // offset+limit rows of the union, so LIMIT offset+limit per member
    // keeps the gather exact. OFFSET is NEVER pushed — every member would
    // skip its own first rows and the union would lose them for good.
    shard_query.limit = query.offset.value_or(0) + *query.limit;
  } else {
    shard_query.limit.reset();
  }
  if (!query.order_by.empty() && !shard_query.aggregate.has_value() &&
      !shard_query.select_all) {
    // The gather sorts, so members must ship the sort keys even when the
    // projection omits them; FinishSelect drops the extra columns after
    // windowing.
    for (const sparql::OrderKey& key : query.order_by) {
      bool present = false;
      for (const sparql::Variable& var : shard_query.projection) {
        if (var.name == key.var.name) {
          present = true;
          break;
        }
      }
      if (!present) shard_query.projection.push_back(key.var);
    }
  }
  const std::string text = sparql::QueryToString(shard_query);
  std::vector<std::pair<size_t, std::string>> jobs;
  for (size_t shard = 0; shard < n; ++shard) jobs.emplace_back(shard, text);
  std::vector<Result<QueryResponse>> results = RunScatter(jobs, cancel, ctx);
  IdTable acc;
  for (size_t i = 0; i < results.size(); ++i) {
    Result<QueryResponse>& r = results[i];
    if (!r.ok()) {
      if (!options_.partial_results) return r.status();
      std::lock_guard<std::mutex> lock(ctx->mu);
      ctx->degraded.insert(member_ids_[jobs[i].first]);
      continue;
    }
    IdTable t = EncodeResponse(*r);
    core::AppendUnionIds(&acc, t);
  }
  return FinishSelect(query, std::move(acc), ctx);
}

Result<QueryResponse> ShardedEndpoint::FinishSelect(const sparql::Query& query,
                                                    IdTable acc,
                                                    ScatterContext* ctx) {
  QueryResponse response = MakeResponse(ctx);
  if (!response.degraded_members.empty()) partial_queries_.fetch_add(1);

  if (query.aggregate.has_value()) {
    const sparql::CountAggregate& agg = *query.aggregate;
    uint64_t count = 0;
    if (!agg.var.has_value()) {
      count = agg.distinct ? core::ProjectIds(acc, acc.vars, true).NumRows()
                           : acc.NumRows();
    } else {
      int idx = acc.VarIndex(agg.var->name);
      if (idx >= 0) {
        const std::vector<rdf::TermId>& col =
            acc.Column(static_cast<size_t>(idx));
        if (agg.distinct) {
          std::unordered_set<rdf::TermId> distinct;
          for (rdf::TermId id : col) {
            if (id != rdf::kInvalidTermId) distinct.insert(id);
          }
          count = distinct.size();
        } else {
          for (rdf::TermId id : col) {
            if (id != rdf::kInvalidTermId) ++count;
          }
          if (col.empty() && acc.NumRows() > 0) count = 0;
        }
      }
    }
    IdTable out;
    out.vars.push_back(agg.alias.name);
    out.AppendRow({dict_->Intern(rdf::Term::Integer(
        static_cast<int64_t>(count)))});
    response.ids = std::make_shared<IdTable>(std::move(out));
    response.ids_dict = dict_;
    return response;
  }

  std::vector<std::string> names = ProjectionNames(query.EffectiveProjection());
  const uint64_t offset = query.offset.value_or(0);

  if (query.order_by.empty()) {
    IdTable out = core::ProjectIds(acc, names, query.distinct);
    size_t rows = out.NumRows();
    size_t begin = std::min<size_t>(offset, rows);
    size_t end = query.limit.has_value()
                     ? std::min<size_t>(begin + *query.limit, rows)
                     : rows;
    if (begin != 0 || end != rows) out = out.Slice(begin, end);
    response.ids = std::make_shared<IdTable>(std::move(out));
    response.ids_dict = dict_;
    return response;
  }

  // ORDER BY: project onto projection + sort keys, decode, sort, window,
  // then drop the extra sort-key columns.
  std::vector<std::string> extended = names;
  for (const sparql::OrderKey& key : query.order_by) {
    if (std::find(extended.begin(), extended.end(), key.var.name) ==
        extended.end()) {
      extended.push_back(key.var.name);
    }
  }
  IdTable projected = core::ProjectIds(acc, extended, query.distinct);
  sparql::ResultTable table;
  if (query.limit.has_value()) {
    // Bounded top-k: only offset+limit rows can survive the window, so
    // keep a heap of that size (ordered worst-first) and decode the
    // gathered IDs in slices. Peak decoded-string memory is one slice
    // plus the heap, not the whole gather.
    using Row = std::vector<std::optional<rdf::Term>>;
    std::vector<std::pair<size_t, bool>> keys;
    for (const sparql::OrderKey& key : query.order_by) {
      auto it = std::find(extended.begin(), extended.end(), key.var.name);
      keys.emplace_back(static_cast<size_t>(it - extended.begin()),
                        key.descending);
    }
    auto ranks_before = [&keys](const Row& a, const Row& b) {
      for (const auto& [col, desc] : keys) {
        int c = sparql::CompareForOrder(a[col], b[col]);
        if (c != 0) return desc ? c > 0 : c < 0;
      }
      return false;
    };
    const uint64_t want64 = offset + static_cast<uint64_t>(*query.limit);
    const size_t k = static_cast<size_t>(
        std::min<uint64_t>(want64, projected.NumRows()));
    std::vector<Row> heap;
    heap.reserve(k);
    constexpr size_t kSliceRows = 4096;
    const size_t total = projected.NumRows();
    for (size_t b = 0; b < total && k > 0; b += kSliceRows) {
      size_t e = std::min(b + kSliceRows, total);
      sparql::ResultTable batch =
          core::DecodeIdTable(projected.Slice(b, e), *dict_);
      for (Row& row : batch.rows) {
        if (heap.size() < k) {
          heap.push_back(std::move(row));
          std::push_heap(heap.begin(), heap.end(), ranks_before);
        } else if (ranks_before(row, heap.front())) {
          std::pop_heap(heap.begin(), heap.end(), ranks_before);
          heap.back() = std::move(row);
          std::push_heap(heap.begin(), heap.end(), ranks_before);
        }
      }
    }
    std::sort_heap(heap.begin(), heap.end(), ranks_before);
    table.vars = projected.vars;
    size_t begin = std::min<size_t>(offset, heap.size());
    table.rows.assign(std::make_move_iterator(heap.begin() + begin),
                      std::make_move_iterator(heap.end()));
  } else {
    table = core::DecodeIdTable(projected, *dict_);
    sparql::SortRows(&table, query.order_by);
    size_t rows = table.rows.size();
    size_t begin = std::min<size_t>(offset, rows);
    if (begin != 0) {
      table.rows.erase(table.rows.begin(), table.rows.begin() + begin);
    }
  }
  if (extended.size() != names.size()) {
    for (auto& row : table.rows) row.resize(names.size());
    table.vars.resize(names.size());
  }
  response.table = std::move(table);
  return response;
}

void ShardedEndpoint::CollectShards(const Plan& plan, std::set<size_t>* out) {
  for (const auto& star : plan.stars) {
    out->insert(star.shards.begin(), star.shards.end());
  }
  for (const auto& sub : plan.optionals) CollectShards(sub, out);
  for (const auto& chain : plan.unions) {
    for (const auto& sub : chain) CollectShards(sub, out);
  }
  for (const auto& [negated, sub] : plan.exists) CollectShards(sub, out);
}

}  // namespace lusail::shard
