#ifndef LUSAIL_STORE_TRIPLE_STORE_H_
#define LUSAIL_STORE_TRIPLE_STORE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"

namespace lusail::store {

/// A dictionary-encoded triple.
struct EncodedTriple {
  rdf::TermId s;
  rdf::TermId p;
  rdf::TermId o;

  bool operator==(const EncodedTriple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
};

/// Per-predicate statistics computed at Freeze() time. RDF engines keep
/// these for query optimization (Virtuoso, RDF-3X); our endpoint engine
/// uses them for BGP join ordering, and SELECT COUNT probes read them.
struct PredicateStats {
  uint64_t triples = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;
};

/// In-memory dictionary-encoded triple store with three covering sorted
/// indexes (SPO, POS, OSP). Every bound-position combination of a triple
/// pattern is a prefix of one of the three orders, so all lookups are
/// binary-search range scans with no residual filtering.
///
/// Usage: Add() triples, then Freeze() once; Match()/Count() afterwards.
class TripleStore {
 public:
  TripleStore() = default;

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;

  /// Interns the triple's terms and buffers it. Requires !frozen().
  void Add(const rdf::TermTriple& triple);

  /// Adds an already-encoded triple (ids must come from dict()).
  void AddEncoded(EncodedTriple triple);

  /// Bulk-loads an N-Triples document.
  Status LoadNTriples(std::string_view text);

  /// Bulk-loads an N-Triples file from disk.
  Status LoadNTriplesFile(const std::string& path);

  /// Sorts the three indexes, deduplicates, and computes statistics.
  /// Idempotent; Add() after Freeze() is a programming error.
  void Freeze();

  bool frozen() const { return frozen_; }

  /// Number of distinct triples (valid after Freeze()).
  size_t size() const { return spo_.size(); }

  const rdf::Dictionary& dict() const { return dict_; }
  rdf::Dictionary* mutable_dict() { return &dict_; }

  /// Returns all triples matching the pattern; std::nullopt positions are
  /// wildcards. The result is a contiguous range of one of the indexes
  /// (ordering depends on which index served the lookup). Requires
  /// frozen().
  std::span<const EncodedTriple> Match(std::optional<rdf::TermId> s,
                                       std::optional<rdf::TermId> p,
                                       std::optional<rdf::TermId> o) const;

  /// Exact cardinality of a pattern (size of the Match range).
  uint64_t Count(std::optional<rdf::TermId> s, std::optional<rdf::TermId> p,
                 std::optional<rdf::TermId> o) const {
    return Match(s, p, o).size();
  }

  /// True if at least one triple matches (the ASK fast path).
  bool Ask(std::optional<rdf::TermId> s, std::optional<rdf::TermId> p,
           std::optional<rdf::TermId> o) const {
    return !Match(s, p, o).empty();
  }

  /// Per-predicate statistics; unknown predicates report zeros.
  PredicateStats StatsFor(rdf::TermId predicate) const;

  /// All distinct predicates in the store.
  std::vector<rdf::TermId> Predicates() const;

  /// Approximate memory footprint: indexes + dictionary.
  size_t MemoryUsageBytes() const;

 private:
  rdf::Dictionary dict_;
  bool frozen_ = false;
  // Three covering permutations. spo_ is also the canonical triple list.
  std::vector<EncodedTriple> spo_;
  std::vector<EncodedTriple> pos_;
  std::vector<EncodedTriple> osp_;
  std::unordered_map<rdf::TermId, PredicateStats> predicate_stats_;
};

}  // namespace lusail::store

#endif  // LUSAIL_STORE_TRIPLE_STORE_H_
