#include "store/triple_store.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <cassert>
#include <tuple>

namespace lusail::store {

namespace {

// Lexicographic comparators for the three index permutations.
struct SpoLess {
  bool operator()(const EncodedTriple& a, const EncodedTriple& b) const {
    return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
  }
};
struct PosLess {
  bool operator()(const EncodedTriple& a, const EncodedTriple& b) const {
    return std::tie(a.p, a.o, a.s) < std::tie(b.p, b.o, b.s);
  }
};
struct OspLess {
  bool operator()(const EncodedTriple& a, const EncodedTriple& b) const {
    return std::tie(a.o, a.s, a.p) < std::tie(b.o, b.s, b.p);
  }
};

// Binary-searches `index` (sorted by `Less`) for the range whose first
// `prefix_len` key components equal those of `key`. KeyFn extracts the
// (k1, k2, k3) tuple in index order.
template <typename KeyFn>
std::span<const EncodedTriple> PrefixRange(
    const std::vector<EncodedTriple>& index, const EncodedTriple& key,
    int prefix_len, KeyFn key_fn) {
  auto cmp_prefix = [&](const EncodedTriple& a, const EncodedTriple& b) {
    auto ka = key_fn(a);
    auto kb = key_fn(b);
    for (int i = 0; i < prefix_len; ++i) {
      if (ka[i] != kb[i]) return ka[i] < kb[i];
    }
    return false;
  };
  auto lo = std::lower_bound(index.begin(), index.end(), key, cmp_prefix);
  auto hi = std::upper_bound(index.begin(), index.end(), key, cmp_prefix);
  return {index.data() + (lo - index.begin()), static_cast<size_t>(hi - lo)};
}

}  // namespace

void TripleStore::Add(const rdf::TermTriple& triple) {
  assert(!frozen_ && "Add() after Freeze()");
  EncodedTriple et{dict_.Intern(triple.subject), dict_.Intern(triple.predicate),
                   dict_.Intern(triple.object)};
  spo_.push_back(et);
}

void TripleStore::AddEncoded(EncodedTriple triple) {
  assert(!frozen_ && "AddEncoded() after Freeze()");
  spo_.push_back(triple);
}

Status TripleStore::LoadNTriplesFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open N-Triples file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadNTriples(buffer.str());
}

Status TripleStore::LoadNTriples(std::string_view text) {
  LUSAIL_ASSIGN_OR_RETURN(std::vector<rdf::TermTriple> triples,
                          rdf::ParseNTriples(text));
  for (const rdf::TermTriple& t : triples) Add(t);
  return Status::OK();
}

void TripleStore::Freeze() {
  if (frozen_) return;
  std::sort(spo_.begin(), spo_.end(), SpoLess());
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), PosLess());
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OspLess());

  // Predicate statistics from a PSO-ordered pass (pos_ is POS ordered, so
  // distinct objects are easy; distinct subjects need a set per predicate —
  // we instead count from spo_ grouped by predicate using a small map pass).
  predicate_stats_.clear();
  for (size_t i = 0; i < pos_.size();) {
    rdf::TermId p = pos_[i].p;
    PredicateStats stats;
    size_t j = i;
    rdf::TermId last_o = rdf::kInvalidTermId;
    while (j < pos_.size() && pos_[j].p == p) {
      ++stats.triples;
      if (pos_[j].o != last_o) {
        ++stats.distinct_objects;
        last_o = pos_[j].o;
      }
      ++j;
    }
    // Distinct subjects for this predicate: collect and sort.
    std::vector<rdf::TermId> subjects;
    subjects.reserve(stats.triples);
    for (size_t k = i; k < j; ++k) subjects.push_back(pos_[k].s);
    std::sort(subjects.begin(), subjects.end());
    stats.distinct_subjects =
        std::unique(subjects.begin(), subjects.end()) - subjects.begin();
    predicate_stats_.emplace(p, stats);
    i = j;
  }
  frozen_ = true;
}

std::span<const EncodedTriple> TripleStore::Match(
    std::optional<rdf::TermId> s, std::optional<rdf::TermId> p,
    std::optional<rdf::TermId> o) const {
  assert(frozen_ && "Match() before Freeze()");
  EncodedTriple key{s.value_or(0), p.value_or(0), o.value_or(0)};
  auto spo_key = [](const EncodedTriple& t) {
    return std::array<rdf::TermId, 3>{t.s, t.p, t.o};
  };
  auto pos_key = [](const EncodedTriple& t) {
    return std::array<rdf::TermId, 3>{t.p, t.o, t.s};
  };
  auto osp_key = [](const EncodedTriple& t) {
    return std::array<rdf::TermId, 3>{t.o, t.s, t.p};
  };
  if (s.has_value()) {
    if (p.has_value()) {
      return PrefixRange(spo_, key, o.has_value() ? 3 : 2, spo_key);
    }
    if (o.has_value()) {
      return PrefixRange(osp_, key, 2, osp_key);  // (o, s) prefix.
    }
    return PrefixRange(spo_, key, 1, spo_key);
  }
  if (p.has_value()) {
    return PrefixRange(pos_, key, o.has_value() ? 2 : 1, pos_key);
  }
  if (o.has_value()) {
    return PrefixRange(osp_, key, 1, osp_key);
  }
  return {spo_.data(), spo_.size()};
}

PredicateStats TripleStore::StatsFor(rdf::TermId predicate) const {
  auto it = predicate_stats_.find(predicate);
  return it == predicate_stats_.end() ? PredicateStats{} : it->second;
}

std::vector<rdf::TermId> TripleStore::Predicates() const {
  std::vector<rdf::TermId> out;
  out.reserve(predicate_stats_.size());
  for (const auto& [p, stats] : predicate_stats_) out.push_back(p);
  std::sort(out.begin(), out.end());
  return out;
}

size_t TripleStore::MemoryUsageBytes() const {
  return (spo_.capacity() + pos_.capacity() + osp_.capacity()) *
             sizeof(EncodedTriple) +
         dict_.MemoryUsageBytes();
}

}  // namespace lusail::store
