#ifndef LUSAIL_RPC_HTTP_H_
#define LUSAIL_RPC_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"

namespace lusail::rpc {

/// Parsing limits enforced while reading HTTP messages off a socket. The
/// defaults are generous for SPARQL traffic (queries are kilobytes,
/// results can be tens of megabytes) while still bounding what one
/// misbehaving peer can make us buffer.
struct HttpLimits {
  size_t max_header_bytes = 64 << 10;
  size_t max_body_bytes = 256u << 20;
};

/// A parsed HTTP/1.1 request. Header names are matched case-insensitively
/// (stored as received); bodies are Content-Length delimited — the only
/// framing this subset implements.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string version = "HTTP/1.1";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  void SetHeader(std::string name, std::string value) {
    headers.emplace_back(std::move(name), std::move(value));
  }
  /// First header with `name` (case-insensitive), or nullptr.
  const std::string* FindHeader(std::string_view name) const;

  /// True unless the peer asked for "Connection: close" (HTTP/1.1
  /// defaults to keep-alive).
  bool KeepAlive() const;

  /// Serialized request line + headers + body; Content-Length is
  /// appended automatically.
  std::string Serialize() const;
};

/// A parsed (or to-be-sent) HTTP/1.1 response.
struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  void SetHeader(std::string name, std::string value) {
    headers.emplace_back(std::move(name), std::move(value));
  }
  const std::string* FindHeader(std::string_view name) const;
  bool KeepAlive() const;
  std::string Serialize() const;

  /// Status line + headers + blank line only — no body and no automatic
  /// Content-Length. This is the head of a `Transfer-Encoding: chunked`
  /// response; the caller follows it with EncodeChunk frames and a
  /// terminal EncodeLastChunk.
  std::string SerializeHead() const;
};

/// Standard reason phrase for `status` ("OK", "Bad Request", ...).
const char* HttpReason(int status);

/// One HTTP/1.1 chunk frame: hex size, CRLF, data, CRLF. `data` must be
/// non-empty (a zero-size chunk terminates the stream; use
/// EncodeLastChunk).
std::string EncodeChunk(std::string_view data);

/// The terminal zero chunk plus optional trailer headers and the final
/// blank line.
std::string EncodeLastChunk(
    const std::vector<std::pair<std::string, std::string>>& trailers = {});

/// Percent-decodes an application/x-www-form-urlencoded value ('+' means
/// space). Fails on truncated or non-hex escapes.
Result<std::string> UrlDecode(std::string_view s);

/// Extracts field `name` from an application/x-www-form-urlencoded body
/// and percent-decodes it; kNotFound when absent.
Result<std::string> FormField(std::string_view body, std::string_view name);

// --- Deadline-aware socket I/O (POSIX fds) -------------------------------

/// Writes all of `data` to `fd`, waiting via poll() so no write blocks
/// past `deadline`. kTimeout on expiry, kUnavailable on connection errors.
Status SendAll(int fd, std::string_view data, const Deadline& deadline);

/// Buffered HTTP message reader/writer over one connected socket. Not
/// thread-safe; one connection is driven by one thread at a time. The
/// caller owns the fd (Close() is explicit, not in the destructor) so
/// pooled client connections can hand their fd back and forth.
class HttpConnection {
 public:
  explicit HttpConnection(int fd) : fd_(fd) {}

  int fd() const { return fd_; }

  /// Reads one full request. Error codes:
  ///   kUnavailable — peer closed / connection error (close it),
  ///   kTimeout     — deadline expired mid-message,
  ///   kParseError  — malformed HTTP (the server answers 400),
  ///   kInvalidArgument — a limit in `limits` was exceeded (413-worthy).
  /// A clean close *before any request bytes* sets `*clean_close` (normal
  /// end of a keep-alive connection, not an error worth logging).
  Result<HttpRequest> ReadRequest(const HttpLimits& limits,
                                  const Deadline& deadline,
                                  bool* clean_close = nullptr);

  /// Reads one full response (same error contract, minus clean_close:
  /// a close before the status line is always kUnavailable). A
  /// `Transfer-Encoding: chunked` body is de-chunked into `body` with any
  /// trailer headers appended to `headers`, so buffered callers stay
  /// oblivious to the framing.
  Result<HttpResponse> ReadResponse(const HttpLimits& limits,
                                    const Deadline& deadline);

  /// Reads only the status line + headers of a response, leaving the body
  /// on the wire — the incremental entry point for streaming consumers,
  /// who then drain it with ReadChunk (chunked) or ReadBodyBytes
  /// (Content-Length).
  Result<HttpResponse> ReadResponseHead(const HttpLimits& limits,
                                        const Deadline& deadline);

  /// Reads one chunk of a chunked body into `*data` (cleared first). On
  /// the terminal zero chunk, sets `*last`, consumes the trailer section,
  /// and appends any trailer headers to `*trailers` (when non-null).
  Status ReadChunk(const HttpLimits& limits, const Deadline& deadline,
                   std::string* data, bool* last,
                   std::vector<std::pair<std::string, std::string>>* trailers);

  /// Reads up to `max_bytes` of a Content-Length body into `*data`
  /// (cleared first; empty result means the body is exhausted after
  /// `remaining` reached zero — the caller tracks `remaining`).
  Status ReadBodyBytes(size_t max_bytes, const Deadline& deadline,
                       std::string* data);

  Status Write(const HttpRequest& request, const Deadline& deadline) {
    return SendAll(fd_, request.Serialize(), deadline);
  }
  Status Write(const HttpResponse& response, const Deadline& deadline) {
    return SendAll(fd_, response.Serialize(), deadline);
  }

  /// Bytes read since construction (wire-level, headers included).
  uint64_t bytes_read() const { return bytes_read_; }

  /// True when buffered unread bytes remain (pipelined data; a pooled
  /// client connection with leftovers is not safely reusable).
  bool HasBufferedData() const { return pos_ < buffer_.size(); }

 private:
  /// Ensures at least one more byte is buffered. Returns 0 on EOF, -1 on
  /// timeout, -2 on connection error, else 1.
  int FillBuffer(const Deadline& deadline);

  /// Reads one CRLF-terminated line (terminator stripped). Used for chunk
  /// size lines and trailer headers.
  Status ReadLine(const HttpLimits& limits, const Deadline& deadline,
                  std::string* line);

  int fd_;
  std::string buffer_;
  size_t pos_ = 0;
  uint64_t bytes_read_ = 0;
};

}  // namespace lusail::rpc

#endif  // LUSAIL_RPC_HTTP_H_
