#include "rpc/results_json.h"

#include <utility>

#include "common/stopwatch.h"

namespace lusail::rpc {

namespace {

obs::JsonValue TermToJson(const rdf::Term& term) {
  obs::JsonValue out = obs::JsonValue::Object();
  switch (term.kind()) {
    case rdf::TermKind::kIri:
      out.Set("type", "uri");
      out.Set("value", term.lexical());
      break;
    case rdf::TermKind::kBlankNode:
      out.Set("type", "bnode");
      out.Set("value", term.lexical());
      break;
    case rdf::TermKind::kLiteral:
      out.Set("type", "literal");
      out.Set("value", term.lexical());
      if (!term.lang().empty()) {
        out.Set("xml:lang", term.lang());
      } else if (!term.datatype().empty()) {
        out.Set("datatype", term.datatype());
      }
      break;
  }
  return out;
}

Result<rdf::Term> TermFromJson(const obs::JsonValue& value) {
  if (value.type() != obs::JsonValue::Type::kObject) {
    return Status::InvalidArgument("SRJ binding value is not an object");
  }
  const obs::JsonValue& type = value.Get("type");
  const obs::JsonValue& lexical = value.Get("value");
  if (type.type() != obs::JsonValue::Type::kString ||
      lexical.type() != obs::JsonValue::Type::kString) {
    return Status::InvalidArgument(
        "SRJ binding value needs string \"type\" and \"value\" members");
  }
  if (type.AsString() == "uri") {
    return rdf::Term::Iri(lexical.AsString());
  }
  if (type.AsString() == "bnode") {
    return rdf::Term::BlankNode(lexical.AsString());
  }
  if (type.AsString() == "literal" || type.AsString() == "typed-literal") {
    // Precedence (see results_json.h): a non-empty language tag wins over
    // a datatype, matching the serializer. An empty xml:lang means "no
    // language" — it used to shadow an accompanying datatype, turning
    // typed literals from lax producers into plain lang-less literals
    // with the datatype silently dropped.
    const obs::JsonValue& lang = value.Get("xml:lang");
    if (lang.type() == obs::JsonValue::Type::kString &&
        !lang.AsString().empty()) {
      return rdf::Term::LangLiteral(lexical.AsString(), lang.AsString());
    }
    const obs::JsonValue& datatype = value.Get("datatype");
    if (datatype.type() == obs::JsonValue::Type::kString) {
      return rdf::Term::TypedLiteral(lexical.AsString(), datatype.AsString());
    }
    return rdf::Term::Literal(lexical.AsString());
  }
  return Status::InvalidArgument("unknown SRJ term type \"" +
                                 type.AsString() + "\"");
}

}  // namespace

obs::JsonValue ResultTableToSrjJson(const sparql::ResultTable& table) {
  obs::JsonValue out = obs::JsonValue::Object();
  obs::JsonValue head = obs::JsonValue::Object();
  if (table.vars.empty()) {
    // ASK: zero-column table, 0 rows = false, >= 1 row = true.
    out.Set("head", std::move(head));
    out.Set("boolean", !table.rows.empty());
    return out;
  }
  obs::JsonValue vars = obs::JsonValue::Array();
  for (const std::string& v : table.vars) vars.Append(v);
  head.Set("vars", std::move(vars));
  out.Set("head", std::move(head));

  obs::JsonValue bindings = obs::JsonValue::Array();
  for (const auto& row : table.rows) {
    obs::JsonValue binding = obs::JsonValue::Object();
    for (size_t i = 0; i < table.vars.size() && i < row.size(); ++i) {
      if (!row[i].has_value()) continue;  // Unbound: omit the variable.
      binding.Set(table.vars[i], TermToJson(*row[i]));
    }
    bindings.Append(std::move(binding));
  }
  obs::JsonValue results = obs::JsonValue::Object();
  results.Set("bindings", std::move(bindings));
  out.Set("results", std::move(results));
  return out;
}

std::string ResultTableToSrj(const sparql::ResultTable& table) {
  return ResultTableToSrjJson(table).Serialize();
}

Result<sparql::ResultTable> ParseSrj(const std::string& text) {
  LUSAIL_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::JsonValue::Parse(text));
  if (doc.type() != obs::JsonValue::Type::kObject) {
    return Status::InvalidArgument("SRJ document is not a JSON object");
  }
  const obs::JsonValue& head = doc.Get("head");
  if (head.type() != obs::JsonValue::Type::kObject) {
    return Status::InvalidArgument("SRJ document has no \"head\" object");
  }

  sparql::ResultTable table;
  const obs::JsonValue& boolean = doc.Get("boolean");
  if (boolean.type() == obs::JsonValue::Type::kBool) {
    // ASK form: zero-column table with 0 or 1 rows.
    if (boolean.AsBool()) table.rows.emplace_back();
    return table;
  }

  const obs::JsonValue& vars = head.Get("vars");
  if (vars.type() != obs::JsonValue::Type::kArray) {
    return Status::InvalidArgument(
        "SRJ head has neither \"vars\" nor a boolean result");
  }
  for (const obs::JsonValue& v : vars.items()) {
    if (v.type() != obs::JsonValue::Type::kString) {
      return Status::InvalidArgument("SRJ head var is not a string");
    }
    table.vars.push_back(v.AsString());
  }

  const obs::JsonValue& results = doc.Get("results");
  if (results.type() != obs::JsonValue::Type::kObject) {
    return Status::InvalidArgument("SRJ document has no \"results\" object");
  }
  const obs::JsonValue& bindings = results.Get("bindings");
  if (bindings.type() != obs::JsonValue::Type::kArray) {
    return Status::InvalidArgument("SRJ results have no \"bindings\" array");
  }
  for (const obs::JsonValue& binding : bindings.items()) {
    if (binding.type() != obs::JsonValue::Type::kObject) {
      return Status::InvalidArgument("SRJ binding is not an object");
    }
    std::vector<std::optional<rdf::Term>> row(table.vars.size(), std::nullopt);
    for (const auto& [var, value] : binding.members()) {
      size_t col = 0;
      while (col < table.vars.size() && table.vars[col] != var) ++col;
      if (col == table.vars.size()) {
        return Status::InvalidArgument("SRJ binding references variable \"" +
                                       var + "\" absent from head");
      }
      LUSAIL_ASSIGN_OR_RETURN(row[col], TermFromJson(value));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

Result<core::IdTable> ParseSrjToIds(const std::string& text,
                                    core::TermDictionary* dict) {
  Stopwatch timer;
  LUSAIL_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::JsonValue::Parse(text));
  if (doc.type() != obs::JsonValue::Type::kObject) {
    return Status::InvalidArgument("SRJ document is not a JSON object");
  }
  const obs::JsonValue& head = doc.Get("head");
  if (head.type() != obs::JsonValue::Type::kObject) {
    return Status::InvalidArgument("SRJ document has no \"head\" object");
  }

  core::IdTable table;
  const obs::JsonValue& boolean = doc.Get("boolean");
  if (boolean.type() == obs::JsonValue::Type::kBool) {
    // ASK form: zero-column table with 0 or 1 rows.
    if (boolean.AsBool()) table.AddEmptyRows(1);
    return table;
  }

  const obs::JsonValue& vars = head.Get("vars");
  if (vars.type() != obs::JsonValue::Type::kArray) {
    return Status::InvalidArgument(
        "SRJ head has neither \"vars\" nor a boolean result");
  }
  for (const obs::JsonValue& v : vars.items()) {
    if (v.type() != obs::JsonValue::Type::kString) {
      return Status::InvalidArgument("SRJ head var is not a string");
    }
    table.vars.push_back(v.AsString());
  }

  const obs::JsonValue& results = doc.Get("results");
  if (results.type() != obs::JsonValue::Type::kObject) {
    return Status::InvalidArgument("SRJ document has no \"results\" object");
  }
  const obs::JsonValue& bindings = results.Get("bindings");
  if (bindings.type() != obs::JsonValue::Type::kArray) {
    return Status::InvalidArgument("SRJ results have no \"bindings\" array");
  }
  std::vector<rdf::TermId> row;
  uint64_t cells = 0;
  for (const obs::JsonValue& binding : bindings.items()) {
    if (binding.type() != obs::JsonValue::Type::kObject) {
      return Status::InvalidArgument("SRJ binding is not an object");
    }
    row.assign(table.vars.size(), rdf::kInvalidTermId);
    for (const auto& [var, value] : binding.members()) {
      size_t col = 0;
      while (col < table.vars.size() && table.vars[col] != var) ++col;
      if (col == table.vars.size()) {
        return Status::InvalidArgument("SRJ binding references variable \"" +
                                       var + "\" absent from head");
      }
      LUSAIL_ASSIGN_OR_RETURN(rdf::Term term, TermFromJson(value));
      row[col] = dict->Intern(term);
      ++cells;
    }
    table.AppendRow(row);
  }
  // The whole parse is the boundary encode: terms go from wire JSON to
  // ids without a federator-side string row ever existing.
  dict->AddEncodeBatch(timer.ElapsedMillis() / 1e3, cells);
  return table;
}

}  // namespace lusail::rpc
