#include "rpc/results_json.h"

#include <utility>

#include "common/stopwatch.h"

namespace lusail::rpc {

namespace {

obs::JsonValue TermToJson(const rdf::Term& term) {
  obs::JsonValue out = obs::JsonValue::Object();
  switch (term.kind()) {
    case rdf::TermKind::kIri:
      out.Set("type", "uri");
      out.Set("value", term.lexical());
      break;
    case rdf::TermKind::kBlankNode:
      out.Set("type", "bnode");
      out.Set("value", term.lexical());
      break;
    case rdf::TermKind::kLiteral:
      out.Set("type", "literal");
      out.Set("value", term.lexical());
      if (!term.lang().empty()) {
        out.Set("xml:lang", term.lang());
      } else if (!term.datatype().empty()) {
        out.Set("datatype", term.datatype());
      }
      break;
  }
  return out;
}

Result<rdf::Term> TermFromJson(const obs::JsonValue& value) {
  if (value.type() != obs::JsonValue::Type::kObject) {
    return Status::InvalidArgument("SRJ binding value is not an object");
  }
  const obs::JsonValue& type = value.Get("type");
  const obs::JsonValue& lexical = value.Get("value");
  if (type.type() != obs::JsonValue::Type::kString ||
      lexical.type() != obs::JsonValue::Type::kString) {
    return Status::InvalidArgument(
        "SRJ binding value needs string \"type\" and \"value\" members");
  }
  if (type.AsString() == "uri") {
    return rdf::Term::Iri(lexical.AsString());
  }
  if (type.AsString() == "bnode") {
    return rdf::Term::BlankNode(lexical.AsString());
  }
  if (type.AsString() == "literal" || type.AsString() == "typed-literal") {
    // Precedence (see results_json.h): a non-empty language tag wins over
    // a datatype, matching the serializer. An empty xml:lang means "no
    // language" — it used to shadow an accompanying datatype, turning
    // typed literals from lax producers into plain lang-less literals
    // with the datatype silently dropped.
    const obs::JsonValue& lang = value.Get("xml:lang");
    if (lang.type() == obs::JsonValue::Type::kString &&
        !lang.AsString().empty()) {
      return rdf::Term::LangLiteral(lexical.AsString(), lang.AsString());
    }
    const obs::JsonValue& datatype = value.Get("datatype");
    if (datatype.type() == obs::JsonValue::Type::kString) {
      return rdf::Term::TypedLiteral(lexical.AsString(), datatype.AsString());
    }
    return rdf::Term::Literal(lexical.AsString());
  }
  return Status::InvalidArgument("unknown SRJ term type \"" +
                                 type.AsString() + "\"");
}

}  // namespace

obs::JsonValue ResultTableToSrjJson(const sparql::ResultTable& table) {
  obs::JsonValue out = obs::JsonValue::Object();
  obs::JsonValue head = obs::JsonValue::Object();
  if (table.vars.empty()) {
    // ASK: zero-column table, 0 rows = false, >= 1 row = true.
    out.Set("head", std::move(head));
    out.Set("boolean", !table.rows.empty());
    return out;
  }
  obs::JsonValue vars = obs::JsonValue::Array();
  for (const std::string& v : table.vars) vars.Append(v);
  head.Set("vars", std::move(vars));
  out.Set("head", std::move(head));

  obs::JsonValue bindings = obs::JsonValue::Array();
  for (const auto& row : table.rows) {
    obs::JsonValue binding = obs::JsonValue::Object();
    for (size_t i = 0; i < table.vars.size() && i < row.size(); ++i) {
      if (!row[i].has_value()) continue;  // Unbound: omit the variable.
      binding.Set(table.vars[i], TermToJson(*row[i]));
    }
    bindings.Append(std::move(binding));
  }
  obs::JsonValue results = obs::JsonValue::Object();
  results.Set("bindings", std::move(bindings));
  out.Set("results", std::move(results));
  return out;
}

std::string ResultTableToSrj(const sparql::ResultTable& table) {
  return ResultTableToSrjJson(table).Serialize();
}

Result<sparql::ResultTable> ParseSrj(const std::string& text) {
  LUSAIL_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::JsonValue::Parse(text));
  if (doc.type() != obs::JsonValue::Type::kObject) {
    return Status::InvalidArgument("SRJ document is not a JSON object");
  }
  const obs::JsonValue& head = doc.Get("head");
  if (head.type() != obs::JsonValue::Type::kObject) {
    return Status::InvalidArgument("SRJ document has no \"head\" object");
  }

  sparql::ResultTable table;
  const obs::JsonValue& boolean = doc.Get("boolean");
  if (boolean.type() == obs::JsonValue::Type::kBool) {
    // ASK form: zero-column table with 0 or 1 rows.
    if (boolean.AsBool()) table.rows.emplace_back();
    return table;
  }

  const obs::JsonValue& vars = head.Get("vars");
  if (vars.type() != obs::JsonValue::Type::kArray) {
    return Status::InvalidArgument(
        "SRJ head has neither \"vars\" nor a boolean result");
  }
  for (const obs::JsonValue& v : vars.items()) {
    if (v.type() != obs::JsonValue::Type::kString) {
      return Status::InvalidArgument("SRJ head var is not a string");
    }
    table.vars.push_back(v.AsString());
  }

  const obs::JsonValue& results = doc.Get("results");
  if (results.type() != obs::JsonValue::Type::kObject) {
    return Status::InvalidArgument("SRJ document has no \"results\" object");
  }
  const obs::JsonValue& bindings = results.Get("bindings");
  if (bindings.type() != obs::JsonValue::Type::kArray) {
    return Status::InvalidArgument("SRJ results have no \"bindings\" array");
  }
  for (const obs::JsonValue& binding : bindings.items()) {
    if (binding.type() != obs::JsonValue::Type::kObject) {
      return Status::InvalidArgument("SRJ binding is not an object");
    }
    std::vector<std::optional<rdf::Term>> row(table.vars.size(), std::nullopt);
    for (const auto& [var, value] : binding.members()) {
      size_t col = 0;
      while (col < table.vars.size() && table.vars[col] != var) ++col;
      if (col == table.vars.size()) {
        return Status::InvalidArgument("SRJ binding references variable \"" +
                                       var + "\" absent from head");
      }
      LUSAIL_ASSIGN_OR_RETURN(row[col], TermFromJson(value));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

Result<core::IdTable> ParseSrjToIds(const std::string& text,
                                    core::TermDictionary* dict) {
  Stopwatch timer;
  LUSAIL_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::JsonValue::Parse(text));
  if (doc.type() != obs::JsonValue::Type::kObject) {
    return Status::InvalidArgument("SRJ document is not a JSON object");
  }
  const obs::JsonValue& head = doc.Get("head");
  if (head.type() != obs::JsonValue::Type::kObject) {
    return Status::InvalidArgument("SRJ document has no \"head\" object");
  }

  core::IdTable table;
  const obs::JsonValue& boolean = doc.Get("boolean");
  if (boolean.type() == obs::JsonValue::Type::kBool) {
    // ASK form: zero-column table with 0 or 1 rows.
    if (boolean.AsBool()) table.AddEmptyRows(1);
    return table;
  }

  const obs::JsonValue& vars = head.Get("vars");
  if (vars.type() != obs::JsonValue::Type::kArray) {
    return Status::InvalidArgument(
        "SRJ head has neither \"vars\" nor a boolean result");
  }
  for (const obs::JsonValue& v : vars.items()) {
    if (v.type() != obs::JsonValue::Type::kString) {
      return Status::InvalidArgument("SRJ head var is not a string");
    }
    table.vars.push_back(v.AsString());
  }

  const obs::JsonValue& results = doc.Get("results");
  if (results.type() != obs::JsonValue::Type::kObject) {
    return Status::InvalidArgument("SRJ document has no \"results\" object");
  }
  const obs::JsonValue& bindings = results.Get("bindings");
  if (bindings.type() != obs::JsonValue::Type::kArray) {
    return Status::InvalidArgument("SRJ results have no \"bindings\" array");
  }
  std::vector<rdf::TermId> row;
  uint64_t cells = 0;
  for (const obs::JsonValue& binding : bindings.items()) {
    if (binding.type() != obs::JsonValue::Type::kObject) {
      return Status::InvalidArgument("SRJ binding is not an object");
    }
    row.assign(table.vars.size(), rdf::kInvalidTermId);
    for (const auto& [var, value] : binding.members()) {
      size_t col = 0;
      while (col < table.vars.size() && table.vars[col] != var) ++col;
      if (col == table.vars.size()) {
        return Status::InvalidArgument("SRJ binding references variable \"" +
                                       var + "\" absent from head");
      }
      LUSAIL_ASSIGN_OR_RETURN(rdf::Term term, TermFromJson(value));
      row[col] = dict->Intern(term);
      ++cells;
    }
    table.AppendRow(row);
  }
  // The whole parse is the boundary encode: terms go from wire JSON to
  // ids without a federator-side string row ever existing.
  dict->AddEncodeBatch(timer.ElapsedMillis() / 1e3, cells);
  return table;
}

std::string SrjStreamPrefix(const std::vector<std::string>& vars) {
  obs::JsonValue head = obs::JsonValue::Object();
  obs::JsonValue vars_json = obs::JsonValue::Array();
  for (const std::string& v : vars) vars_json.Append(v);
  head.Set("vars", std::move(vars_json));
  obs::JsonValue root = obs::JsonValue::Object();
  root.Set("head", std::move(head));
  std::string out = root.Serialize();
  // out == {"head":{"vars":[...]}} — splice the results opening in before
  // the root's closing brace.
  out.pop_back();
  out.append(",\"results\":{\"bindings\":[");
  return out;
}

std::string SrjStreamBindings(const sparql::ResultTable& batch, bool* first) {
  std::string out;
  for (const auto& row : batch.rows) {
    obs::JsonValue binding = obs::JsonValue::Object();
    for (size_t i = 0; i < batch.vars.size() && i < row.size(); ++i) {
      if (!row[i].has_value()) continue;  // Unbound: omit the variable.
      binding.Set(batch.vars[i], TermToJson(*row[i]));
    }
    if (!*first) out.push_back(',');
    *first = false;
    out.append(binding.Serialize());
  }
  return out;
}

std::string SrjStreamSuffix() { return "]}}"; }

SrjChunkDecoder::SrjChunkDecoder(std::shared_ptr<core::TermDictionary> dict)
    : dict_(std::move(dict)) {}

size_t SrjChunkDecoder::PendingRows() const {
  return dict_ != nullptr ? pending_ids_.NumRows() : pending_table_.rows.size();
}

Status SrjChunkDecoder::Feed(std::string_view bytes) {
  if (state_ == State::kError) return error_;
  buffer_.append(bytes);
  Status processed = ProcessBuffer();
  if (!processed.ok()) {
    state_ = State::kError;
    error_ = processed;
  }
  return processed;
}

Status SrjChunkDecoder::Finish() {
  switch (state_) {
    case State::kError:
      return error_;
    case State::kTail:
    case State::kDocComplete:
      return Status::OK();
    case State::kHead:
    case State::kBindings:
      state_ = State::kError;
      error_ = Status::ParseError("truncated SRJ stream");
      return error_;
  }
  return Status::Internal("unreachable");
}

Status SrjChunkDecoder::ProcessBuffer() {
  for (;;) {
    switch (state_) {
      case State::kHead:
        LUSAIL_RETURN_NOT_OK(ScanHead());
        if (state_ == State::kHead) return Status::OK();  // Need more bytes.
        break;
      case State::kBindings:
        LUSAIL_RETURN_NOT_OK(ScanBindings());
        if (state_ == State::kBindings) return Status::OK();
        break;
      case State::kTail:
      case State::kDocComplete:
        // Everything after the structural end is framing the transport
        // already validated; drop it.
        buffer_.clear();
        scan_pos_ = 0;
        return Status::OK();
      case State::kError:
        return error_;
    }
  }
}

Status SrjChunkDecoder::ScanHead() {
  while (scan_pos_ < buffer_.size()) {
    char c = buffer_[scan_pos_];
    if (in_string_) {
      if (escape_) {
        escape_ = false;
        current_string_.push_back(c);
      } else if (c == '\\') {
        escape_ = true;
        current_string_.push_back(c);
      } else if (c == '"') {
        in_string_ = false;
        last_string_ = current_string_;
      } else {
        current_string_.push_back(c);
      }
      ++scan_pos_;
      continue;
    }
    switch (c) {
      case '"':
        in_string_ = true;
        current_string_.clear();
        break;
      case ':':
        pending_key_ = last_string_;
        break;
      case '[':
        if (depth_ == 2 && pending_key_ == "bindings" &&
            !key_stack_.empty() && key_stack_.back() == "results") {
          LUSAIL_RETURN_NOT_OK(DecodeHeadPrefix(scan_pos_));
          ++scan_pos_;
          buffer_.erase(0, scan_pos_);
          scan_pos_ = 0;
          state_ = State::kBindings;
          return Status::OK();
        }
        [[fallthrough]];
      case '{':
        key_stack_.push_back(pending_key_);
        pending_key_.clear();
        ++depth_;
        break;
      case ']':
      case '}':
        if (depth_ == 0) {
          return Status::ParseError("unbalanced SRJ document");
        }
        key_stack_.pop_back();
        --depth_;
        if (depth_ == 0) {
          // Root closed with no bindings array: the ASK form (or a
          // malformed document — DecodeCompleteDoc tells them apart).
          LUSAIL_RETURN_NOT_OK(DecodeCompleteDoc());
          state_ = State::kDocComplete;
          return Status::OK();
        }
        break;
      default:
        break;
    }
    ++scan_pos_;
  }
  return Status::OK();  // Need more bytes.
}

Status SrjChunkDecoder::ScanBindings() {
  while (scan_pos_ < buffer_.size()) {
    char c = buffer_[scan_pos_];
    if (object_depth_ == 0) {
      // Between binding objects.
      if (c == '{') {
        object_start_ = scan_pos_;
        object_depth_ = 1;
      } else if (c == ']') {
        ++scan_pos_;
        buffer_.clear();
        scan_pos_ = 0;
        state_ = State::kTail;
        return Status::OK();
      } else if (c != ',' && c != ' ' && c != '\t' && c != '\r' &&
                 c != '\n') {
        return Status::ParseError(
            std::string("unexpected character in SRJ bindings array: '") + c +
            "'");
      }
      ++scan_pos_;
      continue;
    }
    // Inside a binding object.
    if (in_string_) {
      if (escape_) {
        escape_ = false;
      } else if (c == '\\') {
        escape_ = true;
      } else if (c == '"') {
        in_string_ = false;
      }
    } else if (c == '"') {
      in_string_ = true;
    } else if (c == '{' || c == '[') {
      ++object_depth_;
    } else if (c == '}' || c == ']') {
      --object_depth_;
      if (object_depth_ == 0) {
        LUSAIL_RETURN_NOT_OK(DecodeBinding(std::string_view(buffer_).substr(
            object_start_, scan_pos_ + 1 - object_start_)));
        ++scan_pos_;
        buffer_.erase(0, scan_pos_);
        scan_pos_ = 0;
        continue;
      }
    }
    ++scan_pos_;
  }
  // Partial binding (or clean cut): keep only the unfinished bytes.
  if (object_depth_ == 0) {
    buffer_.erase(0, scan_pos_);
  } else {
    buffer_.erase(0, object_start_);
    object_start_ = 0;
  }
  scan_pos_ = buffer_.size();
  return Status::OK();
}

Status SrjChunkDecoder::DecodeHeadPrefix(size_t bindings_open) {
  // The bytes up to and including the '[' plus a synthesized empty tail
  // form a complete SRJ document; ParseSrj validates the head and yields
  // the vars. (This requires head to precede results, which every
  // serializer this repo talks to — including its own — does.)
  std::string doc = buffer_.substr(0, bindings_open + 1);
  doc.append("]}}");
  LUSAIL_ASSIGN_OR_RETURN(sparql::ResultTable parsed, ParseSrj(doc));
  vars_ = parsed.vars;
  head_done_ = true;
  pending_table_.vars = vars_;
  pending_ids_.vars = vars_;
  return Status::OK();
}

Status SrjChunkDecoder::DecodeBinding(std::string_view object_text) {
  Stopwatch timer;
  LUSAIL_ASSIGN_OR_RETURN(obs::JsonValue binding,
                          obs::JsonValue::Parse(std::string(object_text)));
  if (binding.type() != obs::JsonValue::Type::kObject) {
    return Status::InvalidArgument("SRJ binding is not an object");
  }
  if (dict_ != nullptr) {
    std::vector<rdf::TermId> row(vars_.size(), rdf::kInvalidTermId);
    for (const auto& [var, value] : binding.members()) {
      size_t col = 0;
      while (col < vars_.size() && vars_[col] != var) ++col;
      if (col == vars_.size()) {
        return Status::InvalidArgument("SRJ binding references variable \"" +
                                       var + "\" absent from head");
      }
      LUSAIL_ASSIGN_OR_RETURN(rdf::Term term, TermFromJson(value));
      row[col] = dict_->Intern(term);
      ++cells_since_take_;
    }
    pending_ids_.AppendRow(row);
  } else {
    std::vector<std::optional<rdf::Term>> row(vars_.size(), std::nullopt);
    for (const auto& [var, value] : binding.members()) {
      size_t col = 0;
      while (col < vars_.size() && vars_[col] != var) ++col;
      if (col == vars_.size()) {
        return Status::InvalidArgument("SRJ binding references variable \"" +
                                       var + "\" absent from head");
      }
      LUSAIL_ASSIGN_OR_RETURN(row[col], TermFromJson(value));
    }
    pending_table_.rows.push_back(std::move(row));
  }
  ++total_rows_;
  decode_seconds_since_take_ += timer.ElapsedMillis() / 1e3;
  return Status::OK();
}

Status SrjChunkDecoder::DecodeCompleteDoc() {
  std::string doc = buffer_.substr(0, scan_pos_ + 1);
  LUSAIL_ASSIGN_OR_RETURN(sparql::ResultTable parsed, ParseSrj(doc));
  vars_ = parsed.vars;
  head_done_ = true;
  pending_table_.vars = vars_;
  pending_ids_.vars = vars_;
  total_rows_ += parsed.rows.size();
  if (dict_ != nullptr) {
    pending_ids_ = core::EncodeResultTable(parsed, dict_.get());
  } else {
    pending_table_ = std::move(parsed);
  }
  return Status::OK();
}

sparql::ResultTable SrjChunkDecoder::TakeTable() {
  sparql::ResultTable out = std::move(pending_table_);
  pending_table_ = sparql::ResultTable();
  pending_table_.vars = vars_;
  return out;
}

core::IdTable SrjChunkDecoder::TakeIds() {
  if (dict_ != nullptr && cells_since_take_ > 0) {
    // Streamed decoding is the boundary encode, batch-timed like
    // ParseSrjToIds.
    dict_->AddEncodeBatch(decode_seconds_since_take_, cells_since_take_);
    cells_since_take_ = 0;
    decode_seconds_since_take_ = 0.0;
  }
  core::IdTable out = std::move(pending_ids_);
  pending_ids_ = core::IdTable(vars_);
  return out;
}

}  // namespace lusail::rpc
