#include "rpc/http_sparql_endpoint.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "rpc/http_server.h"
#include "rpc/results_json.h"

namespace lusail::rpc {

namespace {

// Poll slice while waiting for response bytes under a cancellable token:
// cancellation latency is bounded by this without busy-waiting.
constexpr int kCancelPollSliceMs = 10;

// After half-closing a cancelled request, how long we keep listening for
// the server's abort response (the 504 carrying its span subtree). Keeps
// hedged-loser threads from lingering until the full query deadline when
// the peer is not a Lusail server and never answers the half-close.
constexpr double kCancelResponseWaitMs = 2000.0;

// Grafts the server's span subtree (the X-Lusail-Trace response header)
// into the calling thread's active trace, parented under the span that
// issued this request. Runs for success and error responses alike — a
// cancelled or timed-out server still reports how far it got.
void MaybeGraftServerTrace(const HttpResponse& http,
                           const std::string& endpoint_id) {
  const obs::TraceContext* context = obs::CurrentTraceContext();
  if (context == nullptr || context->tracer == nullptr) return;
  const std::string* wire = http.FindHeader("X-Lusail-Trace");
  if (wire == nullptr) return;
  bool truncated = false;
  auto remote = obs::Trace::FromWireString(*wire, &truncated);
  if (!remote.ok()) return;
  obs::SpanId root = context->tracer->Graft(remote.value(), context->parent);
  if (root == 0) return;
  context->tracer->Annotate(root, "served_by", endpoint_id);
  if (truncated) context->tracer->Annotate(root, "trace.truncated", true);
}

// Dials host:port with a non-blocking connect bounded by `deadline`.
Result<int> DialTcp(const std::string& host, uint16_t port,
                    const Deadline& deadline) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(StatusCode::kUnavailable,
                  std::string("socket(): ") + std::strerror(errno));
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ::close(fd);
    return Status(StatusCode::kUnavailable,
                  std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status(StatusCode::kInvalidArgument,
                  "not an IPv4 address: " + host);
  }

  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    Status s(StatusCode::kUnavailable,
             "connect " + host + ":" + std::to_string(port) + ": " +
                 std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (rc != 0) {
    // Wait for the connect to resolve, in slices so a huge deadline still
    // reacts to expiry promptly.
    for (;;) {
      if (deadline.Expired()) {
        ::close(fd);
        return Status(StatusCode::kTimeout, "connect timed out to " + host +
                                                ":" + std::to_string(port));
      }
      double remaining = deadline.RemainingMillis();
      int wait_ms =
          static_cast<int>(std::min(remaining, 1000.0));
      if (wait_ms < 1) wait_ms = 1;
      pollfd pfd{fd, POLLOUT, 0};
      int n = ::poll(&pfd, 1, wait_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Status(StatusCode::kUnavailable,
                      std::string("poll(): ") + std::strerror(errno));
      }
      if (n == 0) continue;  // Slice elapsed; re-check the deadline.
      break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      Status s(StatusCode::kUnavailable,
               "connect " + host + ":" + std::to_string(port) + ": " +
                   std::strerror(err != 0 ? err : errno));
      ::close(fd);
      return s;
    }
  }
  return fd;
}

// True when the pooled fd is still usable: not closed by the peer and with
// no stray buffered bytes. A non-blocking recv(MSG_PEEK) distinguishes
// "open and quiet" (EAGAIN) from "peer closed" (0) / "junk waiting" (>0).
bool ConnectionLooksAlive(int fd) {
  char byte;
  ssize_t n = ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) return false;                            // Orderly close.
  if (n > 0) return false;                             // Unexpected data.
  return errno == EAGAIN || errno == EWOULDBLOCK;      // Open and idle.
}

}  // namespace

HttpSparqlEndpoint::HttpSparqlEndpoint(std::string id, std::string host,
                                       uint16_t port,
                                       HttpClientOptions options)
    : id_(std::move(id)),
      host_(std::move(host)),
      port_(port),
      options_(options) {}

HttpSparqlEndpoint::~HttpSparqlEndpoint() { CloseIdleConnections(); }

void HttpSparqlEndpoint::CloseIdleConnections() {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    fds.swap(idle_fds_);
  }
  for (int fd : fds) ::close(fd);
}

HttpClientStats HttpSparqlEndpoint::stats() const {
  HttpClientStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.connections_opened = connections_opened_.load(std::memory_order_relaxed);
  s.connections_reused = connections_reused_.load(std::memory_order_relaxed);
  s.stale_retries = stale_retries_.load(std::memory_order_relaxed);
  s.transport_errors = transport_errors_.load(std::memory_order_relaxed);
  return s;
}

void HttpSparqlEndpoint::ExportMetrics(obs::MetricsSnapshot* snapshot) const {
  HttpClientStats s = stats();
  obs::MetricLabels labels{{"endpoint", id_}};
  snapshot->AddCounter("lusail_http_client_requests_total",
                       "HTTP SPARQL requests issued by this client.", labels,
                       static_cast<double>(s.requests));
  snapshot->AddCounter("lusail_http_client_connections_opened_total",
                       "Fresh TCP connections dialed.", labels,
                       static_cast<double>(s.connections_opened));
  snapshot->AddCounter("lusail_http_client_connections_reused_total",
                       "Pooled keep-alive connections reused.", labels,
                       static_cast<double>(s.connections_reused));
  snapshot->AddCounter("lusail_http_client_stale_retries_total",
                       "Reused connections found dead and replaced.", labels,
                       static_cast<double>(s.stale_retries));
  snapshot->AddCounter("lusail_http_client_transport_errors_total",
                       "Requests that failed at the transport layer.", labels,
                       static_cast<double>(s.transport_errors));
}

Result<int> HttpSparqlEndpoint::AcquireConnection(const Deadline& deadline,
                                                  bool* reused,
                                                  double* connect_ms) {
  *reused = false;
  *connect_ms = 0.0;
  for (;;) {
    int fd = -1;
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      if (!idle_fds_.empty()) {
        fd = idle_fds_.back();
        idle_fds_.pop_back();
      }
    }
    if (fd < 0) break;
    if (ConnectionLooksAlive(fd)) {
      *reused = true;
      connections_reused_.fetch_add(1, std::memory_order_relaxed);
      return fd;
    }
    ::close(fd);  // Server closed it while pooled; try the next one.
  }

  // Fresh connection: bounded by the tighter of the caller's deadline and
  // the configured connect budget.
  Deadline connect_deadline = Deadline::AfterMillis(
      std::min(options_.connect_timeout_ms, deadline.RemainingMillis()));
  Stopwatch dial;
  LUSAIL_ASSIGN_OR_RETURN(int fd, DialTcp(host_, port_, connect_deadline));
  *connect_ms = dial.ElapsedMillis();
  connections_opened_.fetch_add(1, std::memory_order_relaxed);
  return fd;
}

void HttpSparqlEndpoint::ReleaseConnection(int fd) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (idle_fds_.size() < options_.max_idle_connections) {
      idle_fds_.push_back(fd);
      return;
    }
  }
  ::close(fd);
}

Result<net::QueryResponse> HttpSparqlEndpoint::RoundTrip(
    int fd, const std::string& query, const Deadline& deadline,
    const CancelToken* cancel, bool* got_response_bytes, bool* conn_reusable,
    uint64_t* wire_in, uint64_t* wire_out) {
  *got_response_bytes = false;
  *conn_reusable = false;
  *wire_in = 0;
  *wire_out = 0;

  HttpRequest request;
  request.method = "POST";
  request.target = "/sparql";
  request.SetHeader("Host", host_ + ":" + std::to_string(port_));
  request.SetHeader("Content-Type", "application/sparql-query");
  request.SetHeader("Accept", "application/sparql-results+json");
  // Propagate the remaining budget so the server stops evaluating when
  // this client has already given up. Every request carries one: even a
  // plain Query() runs under the default request timeout cap.
  if (deadline.has_deadline()) {
    request.SetHeader("X-Lusail-Deadline-Ms",
                      std::to_string(deadline.RemainingMillis()));
  }
  // Propagate the trace identity so the server joins this query's trace:
  // it adopts the id, parents its own spans under ours, and ships its
  // subtree back in X-Lusail-Trace.
  const obs::TraceContext* trace_context = obs::CurrentTraceContext();
  if (trace_context != nullptr && trace_context->tracer != nullptr) {
    request.SetHeader("X-Lusail-Trace-Id", trace_context->trace_id);
    request.SetHeader("X-Lusail-Parent-Span",
                      std::to_string(trace_context->parent));
  }
  request.body = query;

  std::string serialized = request.Serialize();
  *wire_out = serialized.size();
  LUSAIL_RETURN_NOT_OK(SendAll(fd, serialized, deadline));

  // With a cancellable token, wait for the first response bytes in poll
  // slices so cancellation can interrupt the wait. On cancellation we
  // half-close the connection — the server's disconnect watchdog sees
  // EOF and aborts evaluation — then keep the read side open a bounded
  // while longer for the abort response (and its span subtree).
  bool half_closed = false;
  if (cancel != nullptr && cancel->can_cancel()) {
    Deadline cancel_wait;
    for (;;) {
      if (deadline.Expired()) break;
      if (half_closed && cancel_wait.Expired()) {
        return cancel->StatusAt("cancelled endpoint request");
      }
      if (!half_closed && cancel->CancelRequested()) {
        ::shutdown(fd, SHUT_WR);
        half_closed = true;
        cancel_wait = Deadline::AfterMillis(
            std::min(kCancelResponseWaitMs, deadline.RemainingMillis()));
      }
      pollfd pfd{fd, POLLIN, 0};
      int n = ::poll(&pfd, 1, kCancelPollSliceMs);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // Let ReadResponse surface the connection error.
      }
      if (n > 0) break;  // Bytes (or EOF) ready.
    }
  }

  HttpConnection conn(fd);
  auto response = conn.ReadResponse(options_.limits, deadline);
  *wire_in = conn.bytes_read();
  *got_response_bytes = conn.bytes_read() > 0;
  if (half_closed) *conn_reusable = false;
  if (!response.ok()) {
    if (half_closed) {
      // The server closed without answering the abort (or the response
      // was cut short): report the cancellation, not the transport noise.
      return cancel->StatusAt("cancelled endpoint request");
    }
    // Normalize parse-level failures: garbage from the server is a
    // transport problem from the federator's point of view (retryable),
    // not a query problem.
    const Status& s = response.status();
    if (s.code() == StatusCode::kParseError) {
      return Status(StatusCode::kUnavailable,
                    "malformed HTTP response from " + id_ + ": " +
                        s.message());
    }
    return s;
  }
  HttpResponse& http = response.value();
  MaybeGraftServerTrace(http, id_);

  if (half_closed) {
    // The evaluation was cancelled; the response exists only to carry
    // the server's subtree (grafted above).
    return cancel->StatusAt("cancelled endpoint request");
  }

  if (http.status != 200) {
    // Recover the original StatusCode from the JSON error body when the
    // server sent one, so retryability survives the wire.
    std::string code_name;
    std::string message = http.body;
    auto parsed = obs::JsonValue::Parse(http.body);
    if (parsed.ok() &&
        parsed.value().type() == obs::JsonValue::Type::kObject) {
      const obs::JsonValue& code = parsed.value().Get("code");
      const obs::JsonValue& error = parsed.value().Get("error");
      if (code.type() == obs::JsonValue::Type::kString) {
        code_name = code.AsString();
      }
      if (error.type() == obs::JsonValue::Type::kString) {
        message = error.AsString();
      }
    }
    StatusCode code = CodeForHttpStatus(http.status, code_name);
    return Status(code, id_ + ": HTTP " + std::to_string(http.status) + ": " +
                            message);
  }

  net::QueryResponse out;
  // ID-space fast path: with a parse dictionary configured, the SRJ body
  // is decoded straight into dictionary ids — the federator never holds
  // string term rows for this response. ASK bodies (zero-column tables)
  // take the same path; consumers count rows via RowCount().
  std::shared_ptr<core::TermDictionary> parse_dict;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    parse_dict = parse_dict_;
  }
  if (parse_dict != nullptr) {
    LUSAIL_ASSIGN_OR_RETURN(core::IdTable ids,
                            ParseSrjToIds(http.body, parse_dict.get()));
    out.ids = std::make_shared<core::IdTable>(std::move(ids));
    out.ids_dict = std::move(parse_dict);
  } else {
    LUSAIL_ASSIGN_OR_RETURN(sparql::ResultTable table, ParseSrj(http.body));
    out.table = std::move(table);
  }
  out.request_bytes = query.size();
  out.response_bytes = http.body.size();
  if (const std::string* server_ms = http.FindHeader("X-Lusail-Server-Ms")) {
    out.server_ms = std::strtod(server_ms->c_str(), nullptr);
  }

  // Only a fully-read keep-alive response leaves the connection reusable.
  *conn_reusable =
      !half_closed && http.KeepAlive() && !conn.HasBufferedData();
  return out;
}

void HttpSparqlEndpoint::set_parse_dictionary(
    std::shared_ptr<core::TermDictionary> dict) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  parse_dict_ = std::move(dict);
}

Result<net::QueryResponse> HttpSparqlEndpoint::Query(
    const std::string& sparql_text) {
  return QueryWithDeadline(sparql_text, Deadline());
}

Result<net::QueryResponse> HttpSparqlEndpoint::QueryWithDeadline(
    const std::string& sparql_text, const Deadline& deadline) {
  return QueryInternal(sparql_text, deadline, nullptr);
}

Result<net::QueryResponse> HttpSparqlEndpoint::QueryCancellable(
    const std::string& sparql_text, const CancelToken& cancel) {
  if (cancel.Cancelled()) return cancel.StatusAt("endpoint request");
  return QueryInternal(sparql_text, cancel.deadline(), &cancel);
}

Result<net::QueryResponse> HttpSparqlEndpoint::QueryInternal(
    const std::string& sparql_text, const Deadline& deadline,
    const CancelToken* cancel) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  // A plain Query() call carries no deadline; cap it so a hung remote
  // server cannot hang the engine.
  Deadline effective = deadline;
  if (deadline.RemainingMillis() > options_.default_request_timeout_ms) {
    effective = Deadline::AfterMillis(options_.default_request_timeout_ms);
  }

  Stopwatch wall;
  // One transparent retry: a pooled connection can die between requests
  // (keep-alive race). Retrying is safe only when no response byte
  // arrived, so the request cannot have been executed-and-half-answered.
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool reused = false;
    double connect_ms = 0.0;
    auto acquired = AcquireConnection(effective, &reused, &connect_ms);
    if (!acquired.ok()) {
      transport_errors_.fetch_add(1, std::memory_order_relaxed);
      return acquired.status();
    }
    int fd = acquired.value();

    bool got_response_bytes = false;
    bool conn_reusable = false;
    uint64_t wire_in = 0, wire_out = 0;
    auto result = RoundTrip(fd, sparql_text, effective, cancel,
                            &got_response_bytes, &conn_reusable, &wire_in,
                            &wire_out);

    if (result.ok()) {
      if (conn_reusable) {
        ReleaseConnection(fd);
      } else {
        ::close(fd);
      }
      net::QueryResponse response = std::move(result).value();
      double elapsed = wall.ElapsedMillis();
      response.network_ms =
          std::max(0.0, elapsed - response.server_ms);
      response.transport.over_network = true;
      response.transport.reused_connection = reused;
      response.transport.connect_ms = connect_ms;
      response.transport.wire_bytes_sent = wire_out;
      response.transport.wire_bytes_received = wire_in;
      return response;
    }

    ::close(fd);
    const Status& s = result.status();
    bool retryable_stale = reused && !got_response_bytes &&
                           s.code() == StatusCode::kUnavailable &&
                           attempt == 0 && !effective.Expired() &&
                           (cancel == nullptr || !cancel->CancelRequested());
    if (retryable_stale) {
      stale_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (s.code() == StatusCode::kUnavailable ||
        s.code() == StatusCode::kTimeout) {
      transport_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    return s;
  }
  return Status(StatusCode::kInternal, "unreachable retry exit");
}

Result<net::StreamSummary> HttpSparqlEndpoint::StreamRoundTrip(
    int fd, const std::string& query, const Deadline& deadline,
    const CancelToken& cancel, const net::StreamOptions& options,
    const net::StreamSink& sink, const Stopwatch& wall,
    bool* got_response_bytes, bool* conn_reusable, uint64_t* wire_in,
    uint64_t* wire_out) {
  *got_response_bytes = false;
  *conn_reusable = false;
  *wire_in = 0;
  *wire_out = 0;

  HttpRequest request;
  request.method = "POST";
  request.target = "/sparql";
  request.SetHeader("Host", host_ + ":" + std::to_string(port_));
  request.SetHeader("Content-Type", "application/sparql-query");
  request.SetHeader("Accept", "application/sparql-results+json");
  request.SetHeader("X-Lusail-Stream", "true");
  if (deadline.has_deadline()) {
    request.SetHeader("X-Lusail-Deadline-Ms",
                      std::to_string(deadline.RemainingMillis()));
  }
  const obs::TraceContext* trace_context = obs::CurrentTraceContext();
  if (trace_context != nullptr && trace_context->tracer != nullptr) {
    request.SetHeader("X-Lusail-Trace-Id", trace_context->trace_id);
    request.SetHeader("X-Lusail-Parent-Span",
                      std::to_string(trace_context->parent));
  }
  request.body = query;

  std::string serialized = request.Serialize();
  *wire_out = serialized.size();
  LUSAIL_RETURN_NOT_OK(SendAll(fd, serialized, deadline));

  HttpConnection conn(fd);
  // Keep the wire-in counter honest on every exit path.
  auto record_wire = [&] {
    *wire_in = conn.bytes_read();
    *got_response_bytes = conn.bytes_read() > 0;
  };
  auto normalize = [&](const Status& s) {
    record_wire();
    if (s.code() == StatusCode::kParseError) {
      return Status(StatusCode::kUnavailable,
                    "malformed HTTP response from " + id_ + ": " +
                        s.message());
    }
    return s;
  };

  // Wait for the first response bytes in poll slices so cancellation can
  // interrupt the wait (same protocol as the buffered RoundTrip).
  bool half_closed = false;
  if (cancel.can_cancel()) {
    Deadline cancel_wait;
    for (;;) {
      if (deadline.Expired()) break;
      if (half_closed && cancel_wait.Expired()) {
        return cancel.StatusAt("cancelled endpoint request");
      }
      if (!half_closed && cancel.CancelRequested()) {
        ::shutdown(fd, SHUT_WR);
        half_closed = true;
        cancel_wait = Deadline::AfterMillis(
            std::min(kCancelResponseWaitMs, deadline.RemainingMillis()));
      }
      pollfd pfd{fd, POLLIN, 0};
      int n = ::poll(&pfd, 1, kCancelPollSliceMs);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (n > 0) break;
    }
  }

  auto head = conn.ReadResponseHead(options_.limits, deadline);
  if (!head.ok()) {
    if (half_closed) return cancel.StatusAt("cancelled endpoint request");
    return normalize(head.status());
  }
  record_wire();
  HttpResponse& http = head.value();

  // Reads the rest of a Content-Length body (error responses, and 200s
  // from servers that ignored X-Lusail-Stream).
  auto read_content_length_body = [&]() -> Result<std::string> {
    size_t remaining = 0;
    if (const std::string* cl = http.FindHeader("Content-Length")) {
      remaining = static_cast<size_t>(
          std::strtoull(cl->c_str(), nullptr, 10));
    }
    if (remaining > options_.limits.max_body_bytes) {
      return Status::InvalidArgument("response body exceeds limit");
    }
    std::string body;
    while (body.size() < remaining) {
      std::string piece;
      Status rc =
          conn.ReadBodyBytes(remaining - body.size(), deadline, &piece);
      if (!rc.ok()) return rc;
      if (piece.empty()) break;
      body.append(piece);
    }
    return body;
  };

  if (http.status != 200) {
    auto body = read_content_length_body();
    record_wire();
    http.body = body.ok() ? std::move(body).value() : std::string();
    MaybeGraftServerTrace(http, id_);
    if (half_closed) return cancel.StatusAt("cancelled endpoint request");
    std::string code_name;
    std::string message = http.body;
    auto parsed = obs::JsonValue::Parse(http.body);
    if (parsed.ok() &&
        parsed.value().type() == obs::JsonValue::Type::kObject) {
      const obs::JsonValue& code = parsed.value().Get("code");
      const obs::JsonValue& error = parsed.value().Get("error");
      if (code.type() == obs::JsonValue::Type::kString) {
        code_name = code.AsString();
      }
      if (error.type() == obs::JsonValue::Type::kString) {
        message = error.AsString();
      }
    }
    StatusCode code = CodeForHttpStatus(http.status, code_name);
    return Status(code, id_ + ": HTTP " + std::to_string(http.status) + ": " +
                            message);
  }
  if (half_closed) {
    MaybeGraftServerTrace(http, id_);
    return cancel.StatusAt("cancelled endpoint request");
  }

  std::shared_ptr<core::TermDictionary> parse_dict;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    parse_dict = parse_dict_;
  }
  SrjChunkDecoder decoder(parse_dict);

  net::StreamSummary summary;
  summary.response.request_bytes = query.size();
  uint64_t body_bytes = 0;
  bool delivered_any_batch = false;

  // Drains the decoder's pending rows into the sink, honoring the row
  // budget. Returns non-OK to stop the exchange; sets *budget_hit when
  // max_rows was reached (the stream should be cut, not failed).
  auto deliver = [&](bool* budget_hit) -> Status {
    *budget_hit = false;
    size_t pending = decoder.PendingRows();
    if (pending == 0) return Status::OK();
    size_t take = pending;
    if (options.max_rows > 0) {
      uint64_t left = options.max_rows - summary.rows_delivered;
      if (pending >= left) {
        take = static_cast<size_t>(left);
        *budget_hit = true;
        summary.truncated = true;
      }
    }
    if (summary.rows_delivered == 0 && take > 0 &&
        summary.response.first_row_ms == 0.0) {
      summary.response.first_row_ms = wall.ElapsedMillis();
    }
    net::StreamBatch batch;
    if (parse_dict != nullptr) {
      core::IdTable ids = decoder.TakeIds();
      if (take < ids.NumRows()) ids = ids.Slice(0, take);
      batch.ids = std::make_shared<core::IdTable>(std::move(ids));
      batch.ids_dict = parse_dict;
    } else {
      batch.table = decoder.TakeTable();
      if (take < batch.table.rows.size()) batch.table.rows.resize(take);
    }
    summary.rows_delivered += take;
    delivered_any_batch = true;
    return sink(std::move(batch));
  };

  const std::string* te = http.FindHeader("Transfer-Encoding");
  bool chunked = te != nullptr && EqualsIgnoreCase(*te, "chunked");
  bool stream_cut = false;  ///< Budget or cancel ended the stream early.
  if (chunked) {
    bool last = false;
    while (!last) {
      if (cancel.Cancelled()) {
        record_wire();
        return cancel.StatusAt("cancelled mid-stream");
      }
      std::string data;
      std::vector<std::pair<std::string, std::string>> trailers;
      Status rc =
          conn.ReadChunk(options_.limits, deadline, &data, &last, &trailers);
      if (!rc.ok()) return normalize(rc);
      for (auto& trailer : trailers) {
        http.headers.push_back(std::move(trailer));
      }
      if (!data.empty()) {
        body_bytes += data.size();
        Status fed = decoder.Feed(data);
        if (!fed.ok()) return normalize(fed);
        bool budget_hit = false;
        Status delivered = deliver(&budget_hit);
        if (!delivered.ok()) {
          record_wire();
          return delivered;
        }
        if (budget_hit) {
          // Budget met mid-stream: half-close so a Lusail server's
          // disconnect watchdog stops the evaluation, and stop reading.
          ::shutdown(fd, SHUT_WR);
          stream_cut = true;
          break;
        }
      }
    }
    if (!stream_cut) {
      Status complete = decoder.Finish();
      if (!complete.ok()) return normalize(complete);
    }
  } else {
    // The server ignored X-Lusail-Stream (foreign endpoint): the body is
    // Content-Length framed. Decode it whole, then deliver in one pass.
    auto body = read_content_length_body();
    if (!body.ok()) return normalize(body.status());
    body_bytes = body.value().size();
    Status fed = decoder.Feed(body.value());
    if (fed.ok()) fed = decoder.Finish();
    if (!fed.ok()) {
      record_wire();
      return fed;  // SRJ-level failure: same contract as ParseSrj.
    }
    bool budget_hit = false;
    Status delivered = deliver(&budget_hit);
    if (!delivered.ok()) {
      record_wire();
      return delivered;
    }
    stream_cut = budget_hit;
  }
  record_wire();
  MaybeGraftServerTrace(http, id_);

  if (!delivered_any_batch) {
    // Empty result: the sink still learns the vars (at-least-once
    // contract of StreamSink).
    net::StreamBatch batch;
    if (parse_dict != nullptr) {
      batch.ids = std::make_shared<core::IdTable>(
          core::IdTable(decoder.vars()));
      batch.ids_dict = parse_dict;
    } else {
      batch.table.vars = decoder.vars();
    }
    Status delivered = sink(std::move(batch));
    if (!delivered.ok()) return delivered;
  }

  summary.response.response_bytes = body_bytes;
  if (const std::string* server_ms = http.FindHeader("X-Lusail-Server-Ms")) {
    summary.response.server_ms = std::strtod(server_ms->c_str(), nullptr);
  }
  if (http.FindHeader("X-Lusail-Truncated") != nullptr) {
    summary.truncated = true;
  }
  *conn_reusable = !stream_cut && http.KeepAlive() && !conn.HasBufferedData();
  return summary;
}

Result<net::StreamSummary> HttpSparqlEndpoint::QueryStreaming(
    const std::string& sparql_text, const CancelToken& cancel,
    const net::StreamOptions& options, const net::StreamSink& sink) {
  if (cancel.Cancelled()) return cancel.StatusAt("endpoint request");
  requests_.fetch_add(1, std::memory_order_relaxed);
  Deadline effective = cancel.deadline();
  if (effective.RemainingMillis() > options_.default_request_timeout_ms) {
    effective = Deadline::AfterMillis(options_.default_request_timeout_ms);
  }

  Stopwatch wall;
  // Same transparent stale-connection retry as the buffered path; safe
  // because no response byte (and so no sink delivery) happened yet.
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool reused = false;
    double connect_ms = 0.0;
    auto acquired = AcquireConnection(effective, &reused, &connect_ms);
    if (!acquired.ok()) {
      transport_errors_.fetch_add(1, std::memory_order_relaxed);
      return acquired.status();
    }
    int fd = acquired.value();

    bool got_response_bytes = false;
    bool conn_reusable = false;
    uint64_t wire_in = 0, wire_out = 0;
    auto result =
        StreamRoundTrip(fd, sparql_text, effective, cancel, options, sink,
                        wall, &got_response_bytes, &conn_reusable, &wire_in,
                        &wire_out);

    if (result.ok()) {
      if (conn_reusable) {
        ReleaseConnection(fd);
      } else {
        ::close(fd);
      }
      net::StreamSummary summary = std::move(result).value();
      double elapsed = wall.ElapsedMillis();
      summary.response.network_ms =
          std::max(0.0, elapsed - summary.response.server_ms);
      summary.response.transport.over_network = true;
      summary.response.transport.reused_connection = reused;
      summary.response.transport.connect_ms = connect_ms;
      summary.response.transport.wire_bytes_sent = wire_out;
      summary.response.transport.wire_bytes_received = wire_in;
      return summary;
    }

    ::close(fd);
    const Status& s = result.status();
    bool retryable_stale = reused && !got_response_bytes &&
                           s.code() == StatusCode::kUnavailable &&
                           attempt == 0 && !effective.Expired() &&
                           !cancel.CancelRequested();
    if (retryable_stale) {
      stale_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (s.code() == StatusCode::kUnavailable ||
        s.code() == StatusCode::kTimeout) {
      transport_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    return s;
  }
  return Status(StatusCode::kInternal, "unreachable retry exit");
}

}  // namespace lusail::rpc
