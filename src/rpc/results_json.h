#ifndef LUSAIL_RPC_RESULTS_JSON_H_
#define LUSAIL_RPC_RESULTS_JSON_H_

#include <string>

#include "common/status.h"
#include "core/dictionary.h"
#include "core/id_table.h"
#include "obs/json.h"
#include "sparql/result_table.h"

namespace lusail::rpc {

/// SPARQL 1.1 Query Results JSON Format (SRJ, application/sparql-results+json)
/// serializer/parser pair. This is the wire format the rpc layer ships
/// between lusail_endpointd servers and HttpSparqlEndpoint clients, and
/// what lusail_cli emits with --format srj.
///
/// The mapping round-trips sparql::ResultTable exactly:
///   - IRIs            -> {"type":"uri","value":...}
///   - plain literals  -> {"type":"literal","value":...}
///   - typed literals  -> {"type":"literal","value":...,"datatype":...}
///   - lang literals   -> {"type":"literal","value":...,"xml:lang":...}
///   - blank nodes     -> {"type":"bnode","value":...}
///   - unbound / UNDEF -> the variable is omitted from the binding object
///
/// Annotation precedence (serializer and parser agree, locked by the
/// codec tests): a non-empty language tag wins — a literal carrying both
/// a lang tag and a datatype serializes with xml:lang only and parses
/// back as a lang literal. An xml:lang member that is present but the
/// empty string is treated as absent (no language), so a datatype
/// alongside it is honored instead of silently dropped. Empty-string
/// literal *values* ("") are ordinary literals and round-trip bound.
///
/// ASK results follow the spec's boolean form: a zero-column table (the
/// net::Endpoint contract for ASK, 0 or 1 rows) serializes as
/// {"head":{},"boolean":...} and parses back to a zero-column table.

/// The table as an SRJ document tree (compact-serialize for the wire).
obs::JsonValue ResultTableToSrjJson(const sparql::ResultTable& table);

/// The table as a compact SRJ string.
std::string ResultTableToSrj(const sparql::ResultTable& table);

/// Parses an SRJ document back into a table. Fails with kParseError on
/// malformed JSON and with kInvalidArgument on well-formed JSON that is
/// not a valid SRJ document (missing head, unknown term type, ...).
Result<sparql::ResultTable> ParseSrj(const std::string& text);

/// Parses an SRJ document straight into dictionary id space: every bound
/// term is interned into `dict` as it is parsed, so the federator-side
/// string Term rows are never materialized (the transport-level half of
/// late materialization). Same validation behavior as ParseSrj.
Result<core::IdTable> ParseSrjToIds(const std::string& text,
                                    core::TermDictionary* dict);

}  // namespace lusail::rpc

#endif  // LUSAIL_RPC_RESULTS_JSON_H_
