#ifndef LUSAIL_RPC_RESULTS_JSON_H_
#define LUSAIL_RPC_RESULTS_JSON_H_

#include <string>

#include "common/status.h"
#include "obs/json.h"
#include "sparql/result_table.h"

namespace lusail::rpc {

/// SPARQL 1.1 Query Results JSON Format (SRJ, application/sparql-results+json)
/// serializer/parser pair. This is the wire format the rpc layer ships
/// between lusail_endpointd servers and HttpSparqlEndpoint clients, and
/// what lusail_cli emits with --format srj.
///
/// The mapping round-trips sparql::ResultTable exactly:
///   - IRIs            -> {"type":"uri","value":...}
///   - plain literals  -> {"type":"literal","value":...}
///   - typed literals  -> {"type":"literal","value":...,"datatype":...}
///   - lang literals   -> {"type":"literal","value":...,"xml:lang":...}
///   - blank nodes     -> {"type":"bnode","value":...}
///   - unbound / UNDEF -> the variable is omitted from the binding object
///
/// ASK results follow the spec's boolean form: a zero-column table (the
/// net::Endpoint contract for ASK, 0 or 1 rows) serializes as
/// {"head":{},"boolean":...} and parses back to a zero-column table.

/// The table as an SRJ document tree (compact-serialize for the wire).
obs::JsonValue ResultTableToSrjJson(const sparql::ResultTable& table);

/// The table as a compact SRJ string.
std::string ResultTableToSrj(const sparql::ResultTable& table);

/// Parses an SRJ document back into a table. Fails with kParseError on
/// malformed JSON and with kInvalidArgument on well-formed JSON that is
/// not a valid SRJ document (missing head, unknown term type, ...).
Result<sparql::ResultTable> ParseSrj(const std::string& text);

}  // namespace lusail::rpc

#endif  // LUSAIL_RPC_RESULTS_JSON_H_
