#ifndef LUSAIL_RPC_RESULTS_JSON_H_
#define LUSAIL_RPC_RESULTS_JSON_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/dictionary.h"
#include "core/id_table.h"
#include "obs/json.h"
#include "sparql/result_table.h"

namespace lusail::rpc {

/// SPARQL 1.1 Query Results JSON Format (SRJ, application/sparql-results+json)
/// serializer/parser pair. This is the wire format the rpc layer ships
/// between lusail_endpointd servers and HttpSparqlEndpoint clients, and
/// what lusail_cli emits with --format srj.
///
/// The mapping round-trips sparql::ResultTable exactly:
///   - IRIs            -> {"type":"uri","value":...}
///   - plain literals  -> {"type":"literal","value":...}
///   - typed literals  -> {"type":"literal","value":...,"datatype":...}
///   - lang literals   -> {"type":"literal","value":...,"xml:lang":...}
///   - blank nodes     -> {"type":"bnode","value":...}
///   - unbound / UNDEF -> the variable is omitted from the binding object
///
/// Annotation precedence (serializer and parser agree, locked by the
/// codec tests): a non-empty language tag wins — a literal carrying both
/// a lang tag and a datatype serializes with xml:lang only and parses
/// back as a lang literal. An xml:lang member that is present but the
/// empty string is treated as absent (no language), so a datatype
/// alongside it is honored instead of silently dropped. Empty-string
/// literal *values* ("") are ordinary literals and round-trip bound.
///
/// ASK results follow the spec's boolean form: a zero-column table (the
/// net::Endpoint contract for ASK, 0 or 1 rows) serializes as
/// {"head":{},"boolean":...} and parses back to a zero-column table.

/// The table as an SRJ document tree (compact-serialize for the wire).
obs::JsonValue ResultTableToSrjJson(const sparql::ResultTable& table);

/// The table as a compact SRJ string.
std::string ResultTableToSrj(const sparql::ResultTable& table);

/// Parses an SRJ document back into a table. Fails with kParseError on
/// malformed JSON and with kInvalidArgument on well-formed JSON that is
/// not a valid SRJ document (missing head, unknown term type, ...).
Result<sparql::ResultTable> ParseSrj(const std::string& text);

/// Parses an SRJ document straight into dictionary id space: every bound
/// term is interned into `dict` as it is parsed, so the federator-side
/// string Term rows are never materialized (the transport-level half of
/// late materialization). Same validation behavior as ParseSrj.
Result<core::IdTable> ParseSrjToIds(const std::string& text,
                                    core::TermDictionary* dict);

// --- Streaming SRJ (chunked transfer) ------------------------------------
//
// A streamed SELECT response is the same SRJ document, emitted in pieces:
// SrjStreamPrefix (head + the opening of the bindings array), then any
// number of SrjStreamBindings batches, then SrjStreamSuffix. Concatenating
// the pieces yields exactly what ResultTableToSrj would have produced, so
// a buffered client that de-chunks the body parses it with ParseSrj
// unchanged.

/// `{"head":{"vars":[...]},"results":{"bindings":[` — the streamed
/// document up to the first binding.
std::string SrjStreamPrefix(const std::vector<std::string>& vars);

/// `batch`'s rows as comma-separated binding objects. `*first` says
/// whether the next binding is the first of the whole stream (no leading
/// comma); it is updated across calls.
std::string SrjStreamBindings(const sparql::ResultTable& batch, bool* first);

/// `]}}` — closes the bindings array, the results object, and the root.
std::string SrjStreamSuffix();

/// Incremental SRJ parser: feed response bytes in arbitrary slices (wire
/// chunks cut anywhere — mid-escape, mid-UTF-8 sequence, mid-binding) and
/// drain complete rows in batches as they decode. With a dictionary, rows
/// land directly in ID space through it (the streaming half of
/// ParseSrjToIds); without one they land in a wire-format ResultTable.
///
/// The head must precede the results section (both this repo's serializer
/// and the spec's examples do this). ASK responses — no bindings array —
/// are recognized when the root object completes and are surfaced as a
/// zero-variable table with 0 or 1 rows, matching ParseSrj.
class SrjChunkDecoder {
 public:
  /// `dict` null = decode to ResultTable batches; non-null = intern every
  /// bound term into it and decode to IdTable batches.
  explicit SrjChunkDecoder(std::shared_ptr<core::TermDictionary> dict = {});

  /// Consumes `bytes`; every binding object completed by them is decoded
  /// into the pending batch. Errors are sticky.
  Status Feed(std::string_view bytes);

  /// Declares end of input. Fails unless the document was structurally
  /// complete (bindings array closed, or a whole ASK document seen).
  Status Finish();

  /// True once the head has been decoded (vars known).
  bool HasHead() const { return head_done_; }
  const std::vector<std::string>& vars() const { return vars_; }

  /// Rows decoded but not yet taken.
  size_t PendingRows() const;
  /// Rows decoded in total (taken + pending).
  uint64_t TotalRows() const { return total_rows_; }

  /// Drains the pending rows. Use the variant matching the construction
  /// mode; the other representation stays empty.
  sparql::ResultTable TakeTable();
  core::IdTable TakeIds();

 private:
  enum class State { kHead, kBindings, kTail, kDocComplete, kError };

  Status ProcessBuffer();
  Status ScanHead();
  Status ScanBindings();
  Status DecodeHeadPrefix(size_t bindings_open);
  Status DecodeBinding(std::string_view object_text);
  Status DecodeCompleteDoc();

  std::shared_ptr<core::TermDictionary> dict_;
  State state_ = State::kHead;
  Status error_ = Status::OK();

  std::string buffer_;   ///< Unconsumed bytes.
  size_t scan_pos_ = 0;  ///< Scanner cursor into buffer_.

  // Structural scanner state, persistent across Feed boundaries (a wire
  // chunk can end mid-string, mid-escape, or mid-UTF-8 sequence; bytes
  // >= 0x80 never collide with '"' or '\\', so byte-wise scanning is
  // split-safe).
  bool in_string_ = false;
  bool escape_ = false;
  int depth_ = 0;
  std::string current_string_;  ///< Content of the string being scanned.
  std::string last_string_;     ///< Last completed string token.
  std::string pending_key_;     ///< Last key seen before ':'.
  std::vector<std::string> key_stack_;  ///< Key of each open container.
  size_t object_start_ = 0;     ///< Offset of the open binding object.
  int object_depth_ = 0;        ///< Brace depth inside the open binding.

  bool head_done_ = false;
  std::vector<std::string> vars_;

  // Pending rows, one representation per construction mode.
  sparql::ResultTable pending_table_;
  core::IdTable pending_ids_;
  uint64_t total_rows_ = 0;
  uint64_t cells_since_take_ = 0;
  double decode_seconds_since_take_ = 0.0;
};

}  // namespace lusail::rpc

#endif  // LUSAIL_RPC_RESULTS_JSON_H_
