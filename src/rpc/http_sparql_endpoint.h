#ifndef LUSAIL_RPC_HTTP_SPARQL_ENDPOINT_H_
#define LUSAIL_RPC_HTTP_SPARQL_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "net/endpoint.h"
#include "obs/metrics.h"
#include "rpc/http.h"

namespace lusail::rpc {

struct HttpClientOptions {
  /// TCP connect budget per new connection.
  double connect_timeout_ms = 2000.0;

  /// Request budget applied when the caller passes no deadline (a plain
  /// Query() call). A hung remote server must not hang the federator.
  double default_request_timeout_ms = 30000.0;

  /// Idle connections kept pooled for reuse; older ones are closed.
  size_t max_idle_connections = 8;

  /// Response parsing limits.
  HttpLimits limits;
};

/// Cumulative client-side transport counters of one HttpSparqlEndpoint.
struct HttpClientStats {
  uint64_t requests = 0;
  uint64_t connections_opened = 0;
  uint64_t connections_reused = 0;
  uint64_t stale_retries = 0;  ///< Reused connections found dead, replaced.
  uint64_t transport_errors = 0;
};

/// A net::Endpoint whose queries travel over the SPARQL 1.1 HTTP
/// protocol to a remote server (rpc::HttpServer / lusail_endpointd, or
/// any endpoint speaking the same subset): POST /sparql with
/// application/sparql-query, SPARQL JSON Results back.
///
/// Because this implements the same interface as the in-process
/// endpoints — including QueryWithDeadline — the entire existing client
/// stack (ResilientEndpoint, circuit breakers, FederationCache, tracer
/// spans, endpoint telemetry) composes over the network unchanged:
/// transport failures surface as kUnavailable and deadline expiry as
/// kTimeout, both retryable, exactly like the simulated fault layer.
///
/// Every request carries the remaining budget as "X-Lusail-Deadline-Ms"
/// so a Lusail server abandons evaluation once this client has given up
/// (foreign endpoints ignore the header).
///
/// Thread-safe: concurrent queries each use their own pooled connection
/// (per-host keep-alive pool, capped at max_idle_connections). A reused
/// connection that turns out to be dead before any response byte is
/// replaced by a fresh one transparently (the usual keep-alive race).
class HttpSparqlEndpoint : public net::Endpoint {
 public:
  HttpSparqlEndpoint(std::string id, std::string host, uint16_t port,
                     HttpClientOptions options = {});
  ~HttpSparqlEndpoint() override;

  HttpSparqlEndpoint(const HttpSparqlEndpoint&) = delete;
  HttpSparqlEndpoint& operator=(const HttpSparqlEndpoint&) = delete;

  const std::string& id() const override { return id_; }
  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

  Result<net::QueryResponse> Query(const std::string& sparql_text) override;
  Result<net::QueryResponse> QueryWithDeadline(
      const std::string& sparql_text, const Deadline& deadline) override;

  /// Cancellable variant used by hedged replica requests. While waiting
  /// for the response, the token is polled; on cancellation the client
  /// half-closes the connection (shutdown(SHUT_WR)) so the server's
  /// disconnect watchdog aborts evaluation, then keeps reading briefly —
  /// a Lusail server answers the abort with a 504 that still carries its
  /// span subtree, which is grafted into the active trace before the
  /// cancellation status is returned.
  Result<net::QueryResponse> QueryCancellable(const std::string& sparql_text,
                                              const CancelToken& cancel)
      override;

  /// Streaming variant: the request carries "X-Lusail-Stream", and a
  /// chunked response is decoded incrementally — each wire chunk's rows
  /// are delivered through `sink` the moment they parse (into the parse
  /// dictionary when one is configured), so neither the response body nor
  /// the result table is ever held whole on this side. A Content-Length
  /// response from a server that ignores the header degrades to
  /// read-fully-then-deliver. `options.max_rows` cuts the stream early
  /// (half-closing the connection so a Lusail server stops evaluating).
  Result<net::StreamSummary> QueryStreaming(
      const std::string& sparql_text, const CancelToken& cancel,
      const net::StreamOptions& options, const net::StreamSink& sink) override;

  HttpClientStats stats() const;

  /// Enables the ID-space fast path: responses are parsed straight into
  /// `dict` (SRJ -> IdTable, no federator-side string rows) and returned
  /// via QueryResponse::ids with ids_dict set. Pass the engine's
  /// dictionary so Federation::ExecuteEncoded consumes the ids with zero
  /// re-encoding; pass nullptr to return to string-table responses.
  /// Thread-safe; takes effect for requests issued after the call.
  void set_parse_dictionary(std::shared_ptr<core::TermDictionary> dict);

  /// Emits lusail_http_client_* counters labelled {endpoint=id}.
  void ExportMetrics(obs::MetricsSnapshot* snapshot) const;

  /// Closes every pooled idle connection (tests, endpoint restarts).
  void CloseIdleConnections();

 private:
  /// Pops a pooled connection (sets *reused) or dials a new one.
  Result<int> AcquireConnection(const Deadline& deadline, bool* reused,
                                double* connect_ms);
  void ReleaseConnection(int fd);

  /// Shared body of QueryWithDeadline / QueryCancellable; `cancel` may
  /// be null.
  Result<net::QueryResponse> QueryInternal(const std::string& sparql_text,
                                           const Deadline& deadline,
                                           const CancelToken* cancel);

  /// One request/response exchange on `fd`. `*got_response_bytes` tells
  /// the caller whether a stale-connection retry is still safe;
  /// `*conn_reusable` whether the fd may go back into the pool.
  Result<net::QueryResponse> RoundTrip(int fd, const std::string& query,
                                       const Deadline& deadline,
                                       const CancelToken* cancel,
                                       bool* got_response_bytes,
                                       bool* conn_reusable,
                                       uint64_t* wire_in, uint64_t* wire_out);

  /// Streaming exchange on `fd`: sends the request with "X-Lusail-Stream",
  /// then reads the response incrementally, feeding bytes through a
  /// SrjChunkDecoder and the sink. `wall` is the per-query clock
  /// first-row latency is measured against.
  Result<net::StreamSummary> StreamRoundTrip(
      int fd, const std::string& query, const Deadline& deadline,
      const CancelToken& cancel, const net::StreamOptions& options,
      const net::StreamSink& sink, const Stopwatch& wall,
      bool* got_response_bytes, bool* conn_reusable, uint64_t* wire_in,
      uint64_t* wire_out);

  std::string id_;
  std::string host_;
  uint16_t port_;
  HttpClientOptions options_;

  std::mutex pool_mu_;
  std::vector<int> idle_fds_;
  std::shared_ptr<core::TermDictionary> parse_dict_;  ///< Guarded by pool_mu_.

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> connections_opened_{0};
  std::atomic<uint64_t> connections_reused_{0};
  std::atomic<uint64_t> stale_retries_{0};
  std::atomic<uint64_t> transport_errors_{0};
};

}  // namespace lusail::rpc

#endif  // LUSAIL_RPC_HTTP_SPARQL_ENDPOINT_H_
