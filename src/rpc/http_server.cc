#include "rpc/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "rpc/results_json.h"

namespace lusail::rpc {

namespace {

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

HttpResponse JsonResponse(int status, obs::JsonValue body) {
  HttpResponse response;
  response.status = status;
  response.reason = HttpReason(status);
  response.SetHeader("Content-Type", "application/json");
  response.body = body.Serialize();
  return response;
}

HttpResponse ErrorResponse(int status, StatusCode code,
                           const std::string& message) {
  obs::JsonValue body = obs::JsonValue::Object();
  body.Set("code", StatusCodeToString(code));
  body.Set("error", message);
  return JsonResponse(status, std::move(body));
}

/// How long a worker waits for the next request on an idle keep-alive
/// connection before handing it back to the pool. Bounds the scheduling
/// latency a pending connection sees when every worker is probing an
/// idle one (a few slices at worst), while keeping the re-queue churn
/// of a fully idle server to ~40 task hops per connection per second.
constexpr int kIdlePollSliceMs = 25;

/// How often the watchdog probes in-flight connections for disconnect.
/// Bounds how long an abandoned evaluation can outlive its client; kept
/// well under the 150 ms abandonment budget the e2e tests assert.
constexpr int kDisconnectProbeMs = 20;

}  // namespace

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 200;
    case StatusCode::kParseError:
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kTimeout: return 504;
    case StatusCode::kUnsupported: return 501;
    case StatusCode::kUnavailable: return 503;
    case StatusCode::kInternal: return 500;
  }
  return 500;
}

StatusCode CodeForHttpStatus(int http_status, const std::string& code_name) {
  // Prefer the exact code the server put in the error body so statuses
  // survive the wire unchanged (retryability in particular).
  static constexpr StatusCode kAll[] = {
      StatusCode::kInvalidArgument, StatusCode::kNotFound,
      StatusCode::kParseError,      StatusCode::kTimeout,
      StatusCode::kUnsupported,     StatusCode::kInternal,
      StatusCode::kUnavailable,
  };
  for (StatusCode code : kAll) {
    if (code_name == StatusCodeToString(code)) return code;
  }
  switch (http_status) {
    case 400: return StatusCode::kInvalidArgument;
    case 404: return StatusCode::kNotFound;
    case 408:
    case 504: return StatusCode::kTimeout;
    case 501: return StatusCode::kUnsupported;
    case 413: return StatusCode::kInvalidArgument;
    case 429:
    case 502:
    case 503: return StatusCode::kUnavailable;
    default: return StatusCode::kInternal;
  }
}

obs::JsonValue HttpServerStats::ToJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("connections_accepted", connections_accepted);
  out.Set("requests", requests);
  out.Set("bad_requests", bad_requests);
  out.Set("failed_queries", failed_queries);
  out.Set("truncated_results", truncated_results);
  out.Set("timed_out_queries", timed_out_queries);
  out.Set("cancelled_queries", cancelled_queries);
  out.Set("bytes_in", bytes_in);
  out.Set("bytes_out", bytes_out);
  return out;
}

HttpServer::HttpServer(std::shared_ptr<net::Endpoint> endpoint,
                       HttpServerOptions options)
    : endpoint_(std::move(endpoint)), options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }
  stopping_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket() failed: ") +
                               std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address \"" +
                                   options_.bind_address + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status = Status::Unavailable(
        "bind(" + options_.bind_address + ":" +
        std::to_string(options_.port) + ") failed: " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status status = Status::Unavailable(std::string("listen() failed: ") +
                                        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  workers_ = std::make_unique<ThreadPool>(options_.num_threads);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  watchdog_thread_ = std::thread([this] { WatchLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  // Unblock accept() and stop new connections.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Graceful connection drain: shutting down the *read* side makes every
  // idle keep-alive read return EOF immediately while in-flight responses
  // still write out. Handlers then close their fds and unregister.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RD);
  }
  // Fire every in-flight evaluation's token so the drain is bounded by
  // the cancellation granularity, not by full query evaluation time.
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    for (auto& [fd, token] : in_flight_) token.Cancel();
  }
  watch_cv_.notify_all();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_drained_.wait(lock, [this] { return active_fds_.empty(); });
  }
  workers_.reset();  // Drains remaining (already-finished) tasks.
}

std::string HttpServer::url() const {
  return "http://" + options_.bind_address + ":" + std::to_string(port_) +
         "/sparql";
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  s.failed_queries = failed_queries_.load(std::memory_order_relaxed);
  s.truncated_results = truncated_results_.load(std::memory_order_relaxed);
  s.timed_out_queries = timed_out_queries_.load(std::memory_order_relaxed);
  s.cancelled_queries = cancelled_queries_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return s;
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Closed or shut down: exit. (Transient EMFILE etc. also lands
      // here; a demo server need not distinguish.)
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
        continue;
      }
      break;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    SetNonBlocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      active_fds_.insert(fd);
    }
    auto conn = std::make_shared<ConnState>(fd);
    workers_->Submit([this, conn] { ServeConnection(conn); });
  }
}

struct HttpServer::ConnState {
  explicit ConnState(int fd) : http(fd) {}
  HttpConnection http;
  /// Time since the connection was accepted or last finished a request;
  /// compared against idle_timeout_ms across re-queues.
  Stopwatch idle;
};

void HttpServer::ServeConnection(std::shared_ptr<ConnState> conn) {
  const int fd = conn->http.fd();
  while (!stopping_.load(std::memory_order_acquire)) {
    // Wait for the next request in short poll slices. If none arrives
    // within a slice, yield: re-queue this connection and free the
    // worker, so open keep-alive connections never pin more than one
    // worker each while they actually have traffic. (Pipelined bytes
    // already buffered skip the poll — poll() can't see them.)
    if (!conn->http.HasBufferedData()) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      int ready = ::poll(&pfd, 1, kIdlePollSliceMs);
      if (ready < 0 && errno == EINTR) continue;
      if (ready == 0) {
        if (conn->idle.ElapsedMillis() >= options_.idle_timeout_ms) break;
        if (stopping_.load(std::memory_order_acquire)) break;
        workers_->Submit([this, conn] { ServeConnection(conn); });
        return;  // Worker freed; the connection stays in active_fds_.
      }
      // ready > 0 (data, EOF, or error) and poll errors both fall
      // through to ReadRequest, which classifies them properly.
    }
    bool clean_close = false;
    Result<HttpRequest> request = conn->http.ReadRequest(
        options_.limits, Deadline::AfterMillis(options_.request_timeout_ms),
        &clean_close);
    if (!request.ok()) {
      if (!clean_close && (request.status().code() == StatusCode::kParseError ||
                           request.status().code() ==
                               StatusCode::kInvalidArgument)) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        int http_status =
            request.status().code() == StatusCode::kInvalidArgument ? 413
                                                                    : 400;
        HttpResponse response = ErrorResponse(
            http_status, request.status().code(), request.status().message());
        response.SetHeader("Connection", "close");
        std::string wire = response.Serialize();
        if (SendAll(fd, wire,
                    Deadline::AfterMillis(options_.request_timeout_ms))
                .ok()) {
          bytes_out_.fetch_add(wire.size(), std::memory_order_relaxed);
        }
      }
      break;  // Timeout, close, or connection error: drop the connection.
    }

    HttpResponse response = Handle(*request, fd);
    bool keep_alive = request->KeepAlive() &&
                      !stopping_.load(std::memory_order_acquire);
    if (!keep_alive) response.SetHeader("Connection", "close");
    std::string wire = response.Serialize();
    Status sent = SendAll(
        fd, wire, Deadline::AfterMillis(options_.request_timeout_ms));
    if (!sent.ok()) break;
    bytes_out_.fetch_add(wire.size(), std::memory_order_relaxed);
    if (!keep_alive) break;
    conn->idle = Stopwatch();  // Request served: restart the idle clock.
  }
  bytes_in_.fetch_add(conn->http.bytes_read(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    active_fds_.erase(fd);
    ::close(fd);
  }
  conn_drained_.notify_all();
}

void HttpServer::WatchLoop() {
  // Probe every connection with an in-flight evaluation for disconnect:
  // MSG_PEEK|MSG_DONTWAIT returns 0 on EOF (client closed or Stop()'s
  // SHUT_RD) and an error on reset — both mean nobody is waiting for the
  // response, so fire the token. Readable pipelined bytes (n > 0) and
  // EAGAIN (quiet but open) leave the evaluation alone.
  std::unique_lock<std::mutex> lock(watch_mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    for (auto& [fd, token] : in_flight_) {
      char probe;
      ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
      if (n == 0 ||
          (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
           errno != EINTR)) {
        token.Cancel();
      }
    }
    watch_cv_.wait_for(lock, std::chrono::milliseconds(kDisconnectProbeMs));
  }
}

HttpResponse HttpServer::Handle(const HttpRequest& request, int fd) {
  if (request.target == "/sparql") {
    if (request.method != "POST") {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse response = ErrorResponse(
          405, StatusCode::kInvalidArgument,
          "SPARQL protocol endpoint only accepts POST");
      response.SetHeader("Allow", "POST");
      return response;
    }
    return HandleSparql(request, fd);
  }
  if (request.target == "/health" && request.method == "GET") {
    obs::JsonValue body = obs::JsonValue::Object();
    body.Set("ok", true);
    body.Set("endpoint", endpoint_->id());
    return JsonResponse(200, std::move(body));
  }
  if (request.target == "/stats" && request.method == "GET") {
    obs::JsonValue body = obs::JsonValue::Object();
    body.Set("endpoint", endpoint_->id());
    body.Set("server", stats().ToJson());
    return JsonResponse(200, std::move(body));
  }
  bad_requests_.fetch_add(1, std::memory_order_relaxed);
  return ErrorResponse(404, StatusCode::kNotFound,
                       "no route for " + request.method + " " +
                           request.target);
}

HttpResponse HttpServer::HandleSparql(const HttpRequest& request, int fd) {
  // Extract the query text per the SPARQL 1.1 Protocol subset we speak:
  // a direct application/sparql-query body, or form-encoded query=.
  std::string query_text;
  const std::string* content_type = request.FindHeader("Content-Type");
  std::string_view media = content_type == nullptr
                               ? std::string_view("application/sparql-query")
                               : std::string_view(*content_type);
  // Drop any ";charset=..." parameter.
  size_t semi = media.find(';');
  if (semi != std::string_view::npos) {
    media = StripWhitespace(media.substr(0, semi));
  }
  if (EqualsIgnoreCase(media, "application/sparql-query")) {
    query_text = request.body;
  } else if (EqualsIgnoreCase(media, "application/x-www-form-urlencoded")) {
    Result<std::string> field = FormField(request.body, "query");
    if (!field.ok()) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(400, StatusCode::kInvalidArgument,
                           "form body carries no query= field");
    }
    query_text = std::move(field).value();
  } else {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(415, StatusCode::kInvalidArgument,
                         "unsupported media type \"" + std::string(media) +
                             "\"");
  }
  if (query_text.empty()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(400, StatusCode::kInvalidArgument, "empty query");
  }

  requests_.fetch_add(1, std::memory_order_relaxed);

  // Derive a server-local deadline from the client's remaining budget.
  // The header value is "milliseconds left at send time", so the skew is
  // one network hop — the client always gives up first, as it should.
  Deadline deadline;
  const std::string* budget = request.FindHeader("X-Lusail-Deadline-Ms");
  if (budget != nullptr) {
    char* end = nullptr;
    double ms = std::strtod(budget->c_str(), &end);
    if (end != budget->c_str() && ms >= 0.0) {
      deadline = Deadline::AfterMillis(ms);
    }
  }
  if (deadline.Expired()) {
    timed_out_queries_.fetch_add(1, std::memory_order_relaxed);
    failed_queries_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(504, StatusCode::kTimeout,
                         "deadline expired before evaluation started");
  }

  CancelToken cancel = CancelToken::Cancellable(deadline);
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    in_flight_[fd] = cancel;
  }
  watch_cv_.notify_all();

  Stopwatch server_timer;
  Result<net::QueryResponse> evaluated =
      endpoint_->QueryCancellable(query_text, cancel);
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    in_flight_.erase(fd);
  }
  if (!evaluated.ok()) {
    failed_queries_.fetch_add(1, std::memory_order_relaxed);
    // An expired propagated deadline takes precedence over a fired cancel
    // token: a client that times out also closes its connection, so the
    // watchdog often requests cancellation while the evaluation is still
    // unwinding from the deadline check — the root cause is the deadline.
    if (evaluated.status().code() == StatusCode::kTimeout &&
        cancel.deadline().Expired()) {
      timed_out_queries_.fetch_add(1, std::memory_order_relaxed);
    } else if (cancel.CancelRequested()) {
      cancelled_queries_.fetch_add(1, std::memory_order_relaxed);
    }
    return ErrorResponse(HttpStatusForCode(evaluated.status().code()),
                         evaluated.status().code(),
                         evaluated.status().message());
  }

  sparql::ResultTable* table = &evaluated->table;
  bool truncated = false;
  if (options_.max_result_rows > 0 &&
      table->rows.size() > options_.max_result_rows) {
    table->rows.resize(options_.max_result_rows);
    truncated = true;
    truncated_results_.fetch_add(1, std::memory_order_relaxed);
  }

  HttpResponse response;
  response.status = 200;
  response.reason = "OK";
  response.SetHeader("Content-Type", "application/sparql-results+json");
  // Endpoint-side time (evaluation plus any simulated latency charge),
  // so clients can split wall time into server vs. network shares.
  response.SetHeader("X-Lusail-Server-Ms",
                     std::to_string(server_timer.ElapsedMillis()));
  if (truncated) response.SetHeader("X-Lusail-Truncated", "true");
  response.body = ResultTableToSrj(*table);
  return response;
}

}  // namespace lusail::rpc
