#include "rpc/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <utility>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/id_table.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "rpc/results_json.h"

namespace lusail::rpc {

namespace {

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

HttpResponse JsonResponse(int status, obs::JsonValue body) {
  HttpResponse response;
  response.status = status;
  response.reason = HttpReason(status);
  response.SetHeader("Content-Type", "application/json");
  response.body = body.Serialize();
  return response;
}

HttpResponse ErrorResponse(int status, StatusCode code,
                           const std::string& message) {
  obs::JsonValue body = obs::JsonValue::Object();
  body.Set("code", StatusCodeToString(code));
  body.Set("error", message);
  return JsonResponse(status, std::move(body));
}

/// How long a worker waits for the next request on an idle keep-alive
/// connection before handing it back to the pool. Bounds the scheduling
/// latency a pending connection sees when every worker is probing an
/// idle one (a few slices at worst), while keeping the re-queue churn
/// of a fully idle server to ~40 task hops per connection per second.
constexpr int kIdlePollSliceMs = 25;

/// How often the watchdog probes in-flight connections for disconnect.
/// Bounds how long an abandoned evaluation can outlive its client; kept
/// well under the 150 ms abandonment budget the e2e tests assert.
constexpr int kDisconnectProbeMs = 20;

}  // namespace

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 200;
    case StatusCode::kParseError:
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kTimeout: return 504;
    case StatusCode::kUnsupported: return 501;
    case StatusCode::kUnavailable: return 503;
    case StatusCode::kInternal: return 500;
  }
  return 500;
}

StatusCode CodeForHttpStatus(int http_status, const std::string& code_name) {
  // Prefer the exact code the server put in the error body so statuses
  // survive the wire unchanged (retryability in particular).
  static constexpr StatusCode kAll[] = {
      StatusCode::kInvalidArgument, StatusCode::kNotFound,
      StatusCode::kParseError,      StatusCode::kTimeout,
      StatusCode::kUnsupported,     StatusCode::kInternal,
      StatusCode::kUnavailable,
  };
  for (StatusCode code : kAll) {
    if (code_name == StatusCodeToString(code)) return code;
  }
  switch (http_status) {
    case 400: return StatusCode::kInvalidArgument;
    case 404: return StatusCode::kNotFound;
    case 408:
    case 504: return StatusCode::kTimeout;
    case 501: return StatusCode::kUnsupported;
    case 413: return StatusCode::kInvalidArgument;
    case 429:
    case 502:
    case 503: return StatusCode::kUnavailable;
    default: return StatusCode::kInternal;
  }
}

obs::JsonValue HttpServerStats::ToJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("connections_accepted", connections_accepted);
  out.Set("requests", requests);
  out.Set("bad_requests", bad_requests);
  out.Set("failed_queries", failed_queries);
  out.Set("truncated_results", truncated_results);
  out.Set("timed_out_queries", timed_out_queries);
  out.Set("cancelled_queries", cancelled_queries);
  out.Set("streamed_requests", streamed_requests);
  out.Set("stream_aborts", stream_aborts);
  out.Set("bytes_in", bytes_in);
  out.Set("bytes_out", bytes_out);
  return out;
}

HttpServer::HttpServer(std::shared_ptr<net::Endpoint> endpoint,
                       HttpServerOptions options)
    : endpoint_(std::move(endpoint)), options_(std::move(options)) {
  if (options_.server_name.empty()) {
    options_.server_name = endpoint_ != nullptr ? endpoint_->id() : "server";
  }
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }
  stopping_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket() failed: ") +
                               std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address \"" +
                                   options_.bind_address + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status = Status::Unavailable(
        "bind(" + options_.bind_address + ":" +
        std::to_string(options_.port) + ") failed: " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status status = Status::Unavailable(std::string("listen() failed: ") +
                                        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  workers_ = std::make_unique<ThreadPool>(options_.num_threads);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  watchdog_thread_ = std::thread([this] { WatchLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  // Unblock accept() and stop new connections.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Graceful connection drain: shutting down the *read* side makes every
  // idle keep-alive read return EOF immediately while in-flight responses
  // still write out. Handlers then close their fds and unregister.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RD);
  }
  // Fire every in-flight evaluation's token so the drain is bounded by
  // the cancellation granularity, not by full query evaluation time.
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    for (auto& [fd, token] : in_flight_) token.Cancel();
  }
  watch_cv_.notify_all();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_drained_.wait(lock, [this] { return active_fds_.empty(); });
  }
  workers_.reset();  // Drains remaining (already-finished) tasks.
}

std::string HttpServer::url() const {
  return "http://" + options_.bind_address + ":" + std::to_string(port_) +
         "/sparql";
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  s.failed_queries = failed_queries_.load(std::memory_order_relaxed);
  s.truncated_results = truncated_results_.load(std::memory_order_relaxed);
  s.timed_out_queries = timed_out_queries_.load(std::memory_order_relaxed);
  s.cancelled_queries = cancelled_queries_.load(std::memory_order_relaxed);
  s.streamed_requests = streamed_requests_.load(std::memory_order_relaxed);
  s.stream_aborts = stream_aborts_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return s;
}

void HttpServer::ExportMetrics(obs::MetricsSnapshot* snapshot) const {
  HttpServerStats s = stats();
  obs::MetricLabels labels{{"server", options_.server_name}};
  snapshot->AddCounter("lusail_rpc_connections_accepted_total",
                       "TCP connections accepted.", labels,
                       static_cast<double>(s.connections_accepted));
  snapshot->AddCounter("lusail_rpc_requests_total",
                       "Well-formed SPARQL requests handled.", labels,
                       static_cast<double>(s.requests));
  snapshot->AddCounter("lusail_rpc_bad_requests_total",
                       "Requests answered 4xx (malformed, wrong route).",
                       labels, static_cast<double>(s.bad_requests));
  snapshot->AddCounter("lusail_rpc_failed_queries_total",
                       "Endpoint evaluations that failed.", labels,
                       static_cast<double>(s.failed_queries));
  snapshot->AddCounter("lusail_rpc_truncated_results_total",
                       "Responses cut at the row cap.", labels,
                       static_cast<double>(s.truncated_results));
  snapshot->AddCounter("lusail_rpc_timed_out_queries_total",
                       "Evaluations abandoned on deadline expiry.", labels,
                       static_cast<double>(s.timed_out_queries));
  snapshot->AddCounter("lusail_rpc_cancelled_queries_total",
                       "Evaluations cancelled (disconnect or shutdown).",
                       labels, static_cast<double>(s.cancelled_queries));
  snapshot->AddCounter("lusail_rpc_streamed_requests_total",
                       "Responses sent with chunked transfer encoding.",
                       labels, static_cast<double>(s.streamed_requests));
  snapshot->AddCounter("lusail_rpc_stream_aborts_total",
                       "Streams cut after the response head was sent.",
                       labels, static_cast<double>(s.stream_aborts));
  {
    std::lock_guard<std::mutex> lock(first_row_mu_);
    snapshot->AddHistogram("lusail_rpc_first_row_ms",
                           "Latency to the first streamed result row.",
                           labels, first_row_ms_);
  }
  snapshot->AddCounter("lusail_rpc_bytes_in_total",
                       "Wire bytes read, headers included.", labels,
                       static_cast<double>(s.bytes_in));
  snapshot->AddCounter("lusail_rpc_bytes_out_total",
                       "Wire bytes written, headers included.", labels,
                       static_cast<double>(s.bytes_out));
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Closed or shut down: exit. (Transient EMFILE etc. also lands
      // here; a demo server need not distinguish.)
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
        continue;
      }
      break;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    SetNonBlocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      active_fds_.insert(fd);
    }
    auto conn = std::make_shared<ConnState>(fd);
    workers_->Submit([this, conn] { ServeConnection(conn); });
  }
}

struct HttpServer::ConnState {
  explicit ConnState(int fd) : http(fd) {}
  HttpConnection http;
  /// Time since the connection was accepted or last finished a request;
  /// compared against idle_timeout_ms across re-queues.
  Stopwatch idle;
};

void HttpServer::ServeConnection(std::shared_ptr<ConnState> conn) {
  const int fd = conn->http.fd();
  while (!stopping_.load(std::memory_order_acquire)) {
    // Wait for the next request in short poll slices. If none arrives
    // within a slice, yield: re-queue this connection and free the
    // worker, so open keep-alive connections never pin more than one
    // worker each while they actually have traffic. (Pipelined bytes
    // already buffered skip the poll — poll() can't see them.)
    if (!conn->http.HasBufferedData()) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      int ready = ::poll(&pfd, 1, kIdlePollSliceMs);
      if (ready < 0 && errno == EINTR) continue;
      if (ready == 0) {
        if (conn->idle.ElapsedMillis() >= options_.idle_timeout_ms) break;
        if (stopping_.load(std::memory_order_acquire)) break;
        workers_->Submit([this, conn] { ServeConnection(conn); });
        return;  // Worker freed; the connection stays in active_fds_.
      }
      // ready > 0 (data, EOF, or error) and poll errors both fall
      // through to ReadRequest, which classifies them properly.
    }
    bool clean_close = false;
    Result<HttpRequest> request = conn->http.ReadRequest(
        options_.limits, Deadline::AfterMillis(options_.request_timeout_ms),
        &clean_close);
    if (!request.ok()) {
      if (!clean_close && (request.status().code() == StatusCode::kParseError ||
                           request.status().code() ==
                               StatusCode::kInvalidArgument)) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        int http_status =
            request.status().code() == StatusCode::kInvalidArgument ? 413
                                                                    : 400;
        HttpResponse response = ErrorResponse(
            http_status, request.status().code(), request.status().message());
        response.SetHeader("Connection", "close");
        std::string wire = response.Serialize();
        if (SendAll(fd, wire,
                    Deadline::AfterMillis(options_.request_timeout_ms))
                .ok()) {
          bytes_out_.fetch_add(wire.size(), std::memory_order_relaxed);
        }
      }
      break;  // Timeout, close, or connection error: drop the connection.
    }

    StreamOutcome stream;
    HttpResponse response = Handle(*request, fd, &stream);
    bool keep_alive = request->KeepAlive() &&
                      !stopping_.load(std::memory_order_acquire);
    if (stream.streamed) {
      // The handler wrote the response itself (chunked streaming) and
      // accounted its own bytes_out. A cleanly finished stream keeps the
      // connection; an aborted one is closed so the client sees the
      // missing terminal chunk as truncation.
      if (!stream.keep_alive_ok || !keep_alive) break;
      conn->idle = Stopwatch();
      continue;
    }
    if (!keep_alive) response.SetHeader("Connection", "close");
    std::string wire = response.Serialize();
    Status sent = SendAll(
        fd, wire, Deadline::AfterMillis(options_.request_timeout_ms));
    if (!sent.ok()) break;
    bytes_out_.fetch_add(wire.size(), std::memory_order_relaxed);
    if (!keep_alive) break;
    conn->idle = Stopwatch();  // Request served: restart the idle clock.
  }
  bytes_in_.fetch_add(conn->http.bytes_read(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    active_fds_.erase(fd);
    ::close(fd);
  }
  conn_drained_.notify_all();
}

void HttpServer::WatchLoop() {
  // Probe every connection with an in-flight evaluation for disconnect:
  // MSG_PEEK|MSG_DONTWAIT returns 0 on EOF (client closed or Stop()'s
  // SHUT_RD) and an error on reset — both mean nobody is waiting for the
  // response, so fire the token. Readable pipelined bytes (n > 0) and
  // EAGAIN (quiet but open) leave the evaluation alone.
  std::unique_lock<std::mutex> lock(watch_mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    for (auto& [fd, token] : in_flight_) {
      char probe;
      ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
      if (n == 0 ||
          (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
           errno != EINTR)) {
        token.Cancel();
      }
    }
    watch_cv_.wait_for(lock, std::chrono::milliseconds(kDisconnectProbeMs));
  }
}

HttpResponse HttpServer::Handle(const HttpRequest& request, int fd,
                                StreamOutcome* stream) {
  // Split "?n=..." style query strings off the route.
  std::string_view target(request.target);
  std::string_view query_string;
  size_t qmark = target.find('?');
  if (qmark != std::string_view::npos) {
    query_string = target.substr(qmark + 1);
    target = target.substr(0, qmark);
  }
  if (target == "/sparql") {
    if (request.method != "POST") {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse response = ErrorResponse(
          405, StatusCode::kInvalidArgument,
          "SPARQL protocol endpoint only accepts POST");
      response.SetHeader("Allow", "POST");
      return response;
    }
    if (endpoint_ == nullptr) {
      failed_queries_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(503, StatusCode::kUnavailable,
                           "no endpoint behind this listener");
    }
    return HandleSparql(request, fd, stream);
  }
  if (target == "/health" && request.method == "GET") {
    obs::JsonValue body = obs::JsonValue::Object();
    bool healthy = true;
    if (options_.health_probe) {
      healthy = options_.health_probe(&body);
    }
    body.Set("ok", healthy);
    body.Set("endpoint", endpoint_id());
    return JsonResponse(healthy ? 200 : 503, std::move(body));
  }
  if (target == "/stats" && request.method == "GET") {
    obs::JsonValue body = obs::JsonValue::Object();
    body.Set("endpoint", endpoint_id());
    body.Set("server", stats().ToJson());
    return JsonResponse(200, std::move(body));
  }
  if (target == "/metrics" && request.method == "GET") {
    obs::MetricsSnapshot snapshot;
    ExportMetrics(&snapshot);
    if (options_.metrics != nullptr) {
      options_.metrics->CollectInto(&snapshot);
    }
    HttpResponse response;
    response.status = 200;
    response.reason = "OK";
    response.SetHeader("Content-Type",
                       "text/plain; version=0.0.4; charset=utf-8");
    response.body = snapshot.RenderPrometheus();
    return response;
  }
  if (target == "/debug/queries" && request.method == "GET") {
    if (options_.flight_recorder == nullptr) {
      return ErrorResponse(404, StatusCode::kNotFound,
                           "no flight recorder on this server");
    }
    size_t n = 0;  // 0 = everything buffered.
    size_t npos = query_string.find("n=");
    if (npos != std::string_view::npos &&
        (npos == 0 || query_string[npos - 1] == '&')) {
      n = static_cast<size_t>(
          std::strtoull(std::string(query_string.substr(npos + 2)).c_str(),
                        nullptr, 10));
    }
    return JsonResponse(200, options_.flight_recorder->ToJson(n));
  }
  bad_requests_.fetch_add(1, std::memory_order_relaxed);
  return ErrorResponse(404, StatusCode::kNotFound,
                       "no route for " + request.method + " " +
                           request.target);
}

HttpResponse HttpServer::HandleSparql(const HttpRequest& request, int fd,
                                      StreamOutcome* stream) {
  // Extract the query text per the SPARQL 1.1 Protocol subset we speak:
  // a direct application/sparql-query body, or form-encoded query=.
  std::string query_text;
  const std::string* content_type = request.FindHeader("Content-Type");
  std::string_view media = content_type == nullptr
                               ? std::string_view("application/sparql-query")
                               : std::string_view(*content_type);
  // Drop any ";charset=..." parameter.
  size_t semi = media.find(';');
  if (semi != std::string_view::npos) {
    media = StripWhitespace(media.substr(0, semi));
  }
  if (EqualsIgnoreCase(media, "application/sparql-query")) {
    query_text = request.body;
  } else if (EqualsIgnoreCase(media, "application/x-www-form-urlencoded")) {
    Result<std::string> field = FormField(request.body, "query");
    if (!field.ok()) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(400, StatusCode::kInvalidArgument,
                           "form body carries no query= field");
    }
    query_text = std::move(field).value();
  } else {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(415, StatusCode::kInvalidArgument,
                         "unsupported media type \"" + std::string(media) +
                             "\"");
  }
  if (query_text.empty()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(400, StatusCode::kInvalidArgument, "empty query");
  }

  requests_.fetch_add(1, std::memory_order_relaxed);

  // Adopt the client's trace identity: a request carrying either trace
  // header gets a per-request tracer whose span subtree ships back in
  // X-Lusail-Trace, letting the federator merge both processes into one
  // trace. A malformed trace id falls back to a locally generated one so
  // the server subtree is still internally consistent.
  std::shared_ptr<obs::Tracer> tracer;
  std::string trace_id;
  obs::SpanId serve_span = 0;
  const std::string* trace_id_header = request.FindHeader("X-Lusail-Trace-Id");
  const std::string* parent_header = request.FindHeader("X-Lusail-Parent-Span");
  if (trace_id_header != nullptr || parent_header != nullptr) {
    trace_id =
        trace_id_header != nullptr && obs::IsValidTraceId(*trace_id_header)
            ? *trace_id_header
            : obs::GenerateTraceId();
    tracer = std::make_shared<obs::Tracer>();
    tracer->set_trace_id(trace_id);
    tracer->RegisterProcess(static_cast<uint64_t>(::getpid()),
                            "endpointd/" + options_.server_name);
    serve_span = tracer->StartSpan("serve " + options_.server_name, "server");
    tracer->Annotate(serve_span, "trace_id", trace_id);
    if (parent_header != nullptr) {
      // The parent span id lives in the *client's* id space; recorded as
      // an annotation for debugging. Graft() on the client side does the
      // actual re-parenting.
      tracer->Annotate(serve_span, "client_parent_span", *parent_header);
    }
  }

  Stopwatch request_timer;

  // Common exit: closes the serve span, attaches the (size-capped) span
  // subtree to success and error responses alike, and files the flight
  // record.
  auto finish = [&](HttpResponse response, const std::string& status_name,
                    uint64_t rows, bool truncated, bool cancelled_flag) {
    double total_ms = request_timer.ElapsedMillis();
    if (tracer != nullptr) {
      tracer->Annotate(serve_span, "status", status_name);
      if (cancelled_flag) tracer->Annotate(serve_span, "cancelled", true);
      tracer->EndSpan(serve_span);
      response.SetHeader(
          "X-Lusail-Trace",
          tracer->Snapshot().ToWireString(options_.max_trace_header_bytes));
    }
    if (options_.flight_recorder != nullptr) {
      obs::FlightRecord record;
      record.query_hash = obs::QueryHashHex(query_text);
      record.trace_id = trace_id;
      record.status = status_name;
      record.cancelled = cancelled_flag;
      record.truncated = truncated;
      record.rows = rows;
      record.total_ms = total_ms;
      record.execution_ms = total_ms;
      options_.flight_recorder->Record(std::move(record));
    }
    return response;
  };

  // Derive a server-local deadline from the client's remaining budget.
  // The header value is "milliseconds left at send time", so the skew is
  // one network hop — the client always gives up first, as it should.
  Deadline deadline;
  const std::string* budget = request.FindHeader("X-Lusail-Deadline-Ms");
  if (budget != nullptr) {
    char* end = nullptr;
    double ms = std::strtod(budget->c_str(), &end);
    if (end != budget->c_str() && ms >= 0.0) {
      deadline = Deadline::AfterMillis(ms);
    }
  }
  if (deadline.Expired()) {
    timed_out_queries_.fetch_add(1, std::memory_order_relaxed);
    failed_queries_.fetch_add(1, std::memory_order_relaxed);
    return finish(
        ErrorResponse(504, StatusCode::kTimeout,
                      "deadline expired before evaluation started"),
        StatusCodeToString(StatusCode::kTimeout), 0, false, false);
  }

  CancelToken cancel = CancelToken::Cancellable(deadline);
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    in_flight_[fd] = cancel;
  }
  watch_cv_.notify_all();

  Stopwatch server_timer;

  if (stream != nullptr && request.FindHeader("X-Lusail-Stream") != nullptr) {
    // Streamed response: evaluate through QueryStreaming and write each
    // row batch as one chunked-transfer frame the moment it is produced.
    // End-of-stream metadata (server time, first-row latency, truncation,
    // trace subtree) rides in the trailer section, since none of it is
    // known when the head goes out.
    net::StreamOptions stream_options;
    stream_options.batch_rows = options_.stream_batch_rows;
    stream_options.max_rows = options_.max_result_rows;

    obs::SpanId eval_span = 0;
    std::optional<obs::TraceContextScope> trace_scope;
    if (tracer != nullptr) {
      eval_span = tracer->StartSpan("evaluate", "server", serve_span);
      obs::TraceContext context;
      context.tracer = tracer;
      context.trace_id = trace_id;
      context.parent = eval_span;
      trace_scope.emplace(std::move(context));
    }

    const bool keep_alive = request.KeepAlive() &&
                            !stopping_.load(std::memory_order_acquire);
    bool head_sent = false;
    bool first_binding = true;
    auto send_head = [&](const std::vector<std::string>& vars) {
      HttpResponse head;
      head.status = 200;
      head.reason = "OK";
      head.SetHeader("Content-Type", "application/sparql-results+json");
      head.SetHeader("Transfer-Encoding", "chunked");
      head.SetHeader("Trailer",
                     "X-Lusail-Server-Ms, X-Lusail-First-Row-Ms, "
                     "X-Lusail-Truncated, X-Lusail-Trace");
      if (!keep_alive) head.SetHeader("Connection", "close");
      return head.SerializeHead() + EncodeChunk(SrjStreamPrefix(vars));
    };
    // Every write gets the request timeout: a consumer that stalls longer
    // blocks here, the sink fails, and QueryStreaming unwinds — the slow
    // client back-pressures the evaluator instead of growing a buffer.
    auto sink = [&](net::StreamBatch&& batch) -> Status {
      sparql::ResultTable batch_table;
      if (batch.ids != nullptr) {
        batch_table = core::DecodeIdTable(*batch.ids, *batch.ids_dict);
      } else {
        batch_table = std::move(batch.table);
      }
      std::string wire;
      if (!head_sent) {
        wire = send_head(batch_table.vars);
        head_sent = true;
      }
      if (!batch_table.rows.empty()) {
        wire += EncodeChunk(SrjStreamBindings(batch_table, &first_binding));
      }
      if (wire.empty()) return Status::OK();
      Status sent = SendAll(
          fd, wire, Deadline::AfterMillis(options_.request_timeout_ms));
      if (!sent.ok()) return sent;
      bytes_out_.fetch_add(wire.size(), std::memory_order_relaxed);
      return Status::OK();
    };

    Result<net::StreamSummary> summary =
        endpoint_->QueryStreaming(query_text, cancel, stream_options, sink);
    trace_scope.reset();
    if (eval_span != 0) {
      tracer->Annotate(eval_span, "ok", summary.ok());
      if (summary.ok()) {
        tracer->Annotate(eval_span, "rows", summary->rows_delivered);
      }
      tracer->EndSpan(eval_span);
    }
    {
      std::lock_guard<std::mutex> lock(watch_mu_);
      in_flight_.erase(fd);
    }

    bool cancelled_flag = false;
    if (!summary.ok()) {
      failed_queries_.fetch_add(1, std::memory_order_relaxed);
      if (summary.status().code() == StatusCode::kTimeout &&
          cancel.deadline().Expired()) {
        timed_out_queries_.fetch_add(1, std::memory_order_relaxed);
      } else if (cancel.CancelRequested()) {
        cancelled_queries_.fetch_add(1, std::memory_order_relaxed);
        cancelled_flag = true;
      }
    }
    if (!summary.ok() && !head_sent) {
      // Nothing on the wire yet: fail exactly like a buffered request.
      return finish(
          ErrorResponse(HttpStatusForCode(summary.status().code()),
                        summary.status().code(), summary.status().message()),
          StatusCodeToString(summary.status().code()), 0, false,
          cancelled_flag);
    }

    stream->streamed = true;
    streamed_requests_.fetch_add(1, std::memory_order_relaxed);

    uint64_t rows = 0;
    bool truncated = false;
    std::string status_name;
    if (!summary.ok()) {
      // Mid-stream failure: the terminal chunk never goes out, and the
      // connection is dropped — the client's incremental parser sees a
      // structurally truncated document instead of a silently short one.
      stream_aborts_.fetch_add(1, std::memory_order_relaxed);
      status_name = StatusCodeToString(summary.status().code());
      if (tracer != nullptr) {
        tracer->Annotate(serve_span, "status", status_name);
        if (cancelled_flag) tracer->Annotate(serve_span, "cancelled", true);
        tracer->EndSpan(serve_span);
      }
    } else {
      rows = summary->rows_delivered;
      truncated = summary->truncated;
      status_name = "ok";
      if (truncated) {
        truncated_results_.fetch_add(1, std::memory_order_relaxed);
      }
      double first_row = summary->response.first_row_ms;
      if (first_row > 0.0) {
        std::lock_guard<std::mutex> lock(first_row_mu_);
        first_row_ms_.Record(first_row);
      }
      std::string tail;
      if (!head_sent) {
        // A QueryStreaming override that skipped the sink on an empty
        // result; emit the (empty) document head now.
        tail = send_head(summary->response.table.vars);
      }
      std::vector<std::pair<std::string, std::string>> trailers;
      trailers.emplace_back("X-Lusail-Server-Ms",
                            std::to_string(server_timer.ElapsedMillis()));
      if (first_row > 0.0) {
        trailers.emplace_back("X-Lusail-First-Row-Ms",
                              std::to_string(first_row));
      }
      if (truncated) trailers.emplace_back("X-Lusail-Truncated", "true");
      if (tracer != nullptr) {
        tracer->Annotate(serve_span, "status", "ok");
        tracer->Annotate(serve_span, "rows", rows);
        tracer->EndSpan(serve_span);
        trailers.emplace_back(
            "X-Lusail-Trace",
            tracer->Snapshot().ToWireString(options_.max_trace_header_bytes));
      }
      tail += EncodeChunk(SrjStreamSuffix());
      tail += EncodeLastChunk(trailers);
      Status sent = SendAll(
          fd, tail, Deadline::AfterMillis(options_.request_timeout_ms));
      if (sent.ok()) {
        bytes_out_.fetch_add(tail.size(), std::memory_order_relaxed);
        stream->keep_alive_ok = true;
      } else {
        stream_aborts_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    if (options_.flight_recorder != nullptr) {
      obs::FlightRecord record;
      record.query_hash = obs::QueryHashHex(query_text);
      record.trace_id = trace_id;
      record.status = status_name;
      record.cancelled = cancelled_flag;
      record.truncated = truncated;
      record.rows = rows;
      record.total_ms = request_timer.ElapsedMillis();
      record.execution_ms = record.total_ms;
      options_.flight_recorder->Record(std::move(record));
    }
    return HttpResponse{};  // Ignored: the bytes are already on the wire.
  }

  Result<net::QueryResponse> evaluated = Status::Internal("unreachable");
  {
    obs::SpanId eval_span = 0;
    std::optional<obs::TraceContextScope> trace_scope;
    if (tracer != nullptr) {
      eval_span = tracer->StartSpan("evaluate", "server", serve_span);
      // Install the context so a nested federating endpoint (multi-hop
      // topologies) propagates the same trace one level further down.
      obs::TraceContext context;
      context.tracer = tracer;
      context.trace_id = trace_id;
      context.parent = eval_span;
      trace_scope.emplace(std::move(context));
    }
    evaluated = endpoint_->QueryCancellable(query_text, cancel);
    trace_scope.reset();
    if (eval_span != 0) {
      tracer->Annotate(eval_span, "ok", evaluated.ok());
      if (evaluated.ok()) {
        tracer->Annotate(eval_span, "rows",
                         static_cast<uint64_t>(evaluated->table.NumRows()));
      }
      tracer->EndSpan(eval_span);
    }
  }
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    in_flight_.erase(fd);
  }
  if (!evaluated.ok()) {
    failed_queries_.fetch_add(1, std::memory_order_relaxed);
    // An expired propagated deadline takes precedence over a fired cancel
    // token: a client that times out also closes its connection, so the
    // watchdog often requests cancellation while the evaluation is still
    // unwinding from the deadline check — the root cause is the deadline.
    bool cancelled_flag = false;
    if (evaluated.status().code() == StatusCode::kTimeout &&
        cancel.deadline().Expired()) {
      timed_out_queries_.fetch_add(1, std::memory_order_relaxed);
    } else if (cancel.CancelRequested()) {
      cancelled_queries_.fetch_add(1, std::memory_order_relaxed);
      cancelled_flag = true;
    }
    return finish(
        ErrorResponse(HttpStatusForCode(evaluated.status().code()),
                      evaluated.status().code(), evaluated.status().message()),
        StatusCodeToString(evaluated.status().code()), 0, false,
        cancelled_flag);
  }

  // An ID-space response (a fronted ShardedEndpoint in encoded mode keeps
  // its rows in ids, table empty) must be decoded before serialization —
  // serializing evaluated->table unconditionally would ship zero rows.
  sparql::ResultTable decoded;
  sparql::ResultTable* table = &evaluated->table;
  if (evaluated->ids != nullptr && evaluated->ids_dict != nullptr &&
      evaluated->table.NumRows() == 0 && evaluated->ids->NumRows() > 0) {
    decoded = core::DecodeIdTable(*evaluated->ids, *evaluated->ids_dict);
    table = &decoded;
  }
  bool truncated = false;
  if (options_.max_result_rows > 0 &&
      table->rows.size() > options_.max_result_rows) {
    table->rows.resize(options_.max_result_rows);
    truncated = true;
    truncated_results_.fetch_add(1, std::memory_order_relaxed);
  }

  HttpResponse response;
  response.status = 200;
  response.reason = "OK";
  response.SetHeader("Content-Type", "application/sparql-results+json");
  // Endpoint-side time (evaluation plus any simulated latency charge),
  // so clients can split wall time into server vs. network shares.
  response.SetHeader("X-Lusail-Server-Ms",
                     std::to_string(server_timer.ElapsedMillis()));
  if (truncated) response.SetHeader("X-Lusail-Truncated", "true");
  response.body = ResultTableToSrj(*table);
  return finish(std::move(response), "ok",
                static_cast<uint64_t>(table->rows.size()), truncated, false);
}

}  // namespace lusail::rpc
