#ifndef LUSAIL_RPC_HTTP_SERVER_H_
#define LUSAIL_RPC_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/cancel.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "net/endpoint.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "rpc/http.h"

namespace lusail::rpc {

struct HttpServerOptions {
  /// Address to bind; loopback by default (the demo federation runs on
  /// one machine, and nothing here authenticates).
  std::string bind_address = "127.0.0.1";

  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;

  /// Worker threads handling connections; 0 = hardware concurrency.
  size_t num_threads = 4;

  /// Listen backlog.
  int backlog = 64;

  /// Reading one request (header + body) must finish within this long of
  /// its first byte; writing a response within this long of its start.
  double request_timeout_ms = 30000.0;

  /// How long a keep-alive connection may sit idle between requests.
  double idle_timeout_ms = 30000.0;

  /// Header/body size limits.
  HttpLimits limits;

  /// Cap on rows serialized into one response; 0 = unlimited. Mirrors the
  /// result-size caps of public Fuseki/Virtuoso deployments (the FedX
  /// experience report's truncation hazard): when a result is cut, the
  /// response carries "X-Lusail-Truncated: true". The cap counts the rows
  /// that would actually ship — after the query's own OFFSET/LIMIT have
  /// been applied by the evaluator — so an explicit LIMIT k with k <= cap
  /// is never reported as truncated.
  size_t max_result_rows = 0;

  /// Rows per chunk on streamed responses (requests carrying
  /// "X-Lusail-Stream"). Each batch is serialized and written as one
  /// chunked-transfer frame as the evaluator produces it.
  size_t stream_batch_rows = 512;

  /// Display name for this server in metrics labels and traces; defaults
  /// to the fronted endpoint's id (or "server" on a stats-only listener).
  std::string server_name;

  /// Extra metric collectors rendered into GET /metrics alongside the
  /// server's own counters. Non-owning; may be null.
  obs::MetricsRegistry* metrics = nullptr;

  /// When set, every completed /sparql request is recorded here and
  /// GET /debug/queries serves the ring. Non-owning; may be null.
  obs::FlightRecorder* flight_recorder = nullptr;

  /// Health probe behind GET /health: fill `body` with component state
  /// and return overall health (true -> 200, false -> 503). When unset,
  /// /health always answers 200 {"ok":true}.
  std::function<bool(obs::JsonValue* body)> health_probe;

  /// Size cap on the X-Lusail-Trace response header carrying this
  /// server's span subtree back to the federator. Oversized subtrees are
  /// truncated span-by-span (the root always survives), never dropped.
  size_t max_trace_header_bytes = 8192;
};

/// Cumulative server-side counters (atomic reads, no lock).
struct HttpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t requests = 0;        ///< Well-formed SPARQL requests handled.
  uint64_t bad_requests = 0;    ///< 4xx answers (malformed, wrong route).
  uint64_t failed_queries = 0;  ///< Endpoint evaluation failures (5xx/4xx).
  uint64_t truncated_results = 0;
  uint64_t timed_out_queries = 0;  ///< 504s: client deadline expired mid-eval.
  uint64_t cancelled_queries = 0;  ///< Evaluations cancelled (disconnect/stop).
  uint64_t streamed_requests = 0;  ///< Responses sent with chunked transfer.
  uint64_t stream_aborts = 0;   ///< Streams cut after the head was sent.
  uint64_t bytes_in = 0;        ///< Wire bytes read (headers included).
  uint64_t bytes_out = 0;       ///< Wire bytes written.

  obs::JsonValue ToJson() const;
};

/// A dependency-free, multi-threaded HTTP/1.1 server (POSIX sockets) that
/// fronts one net::Endpoint as a SPARQL 1.1 Protocol endpoint:
///
///   POST /sparql   application/sparql-query body, or
///                  application/x-www-form-urlencoded with query=...
///                  -> 200 application/sparql-results+json (SRJ; ASK
///                     queries use the spec's boolean form)
///   GET  /health   -> {"ok":true,"endpoint":<id>}
///   GET  /stats    -> server + endpoint counters as JSON
///
/// Endpoint failures map onto HTTP statuses (parse error 400, unsupported
/// 501, timeout 504, unavailable 503, internal 500) with an
/// application/json body {"code":<StatusCode name>,"error":<message>}
/// that HttpSparqlEndpoint turns back into the original Status, so a
/// remote federation degrades exactly like an in-process one.
///
/// Deadline propagation: a request may carry "X-Lusail-Deadline-Ms" (the
/// client's remaining budget in milliseconds at send time); the server
/// derives a local Deadline from it and threads a CancelToken through the
/// fronted endpoint via QueryCancellable, so evaluation is abandoned
/// cooperatively once the budget runs out and the client gets 504 with a
/// kTimeout body (retry classification survives the wire). A watchdog
/// thread probes connections with in-flight evaluations for client
/// disconnect (EOF/error on a MSG_PEEK read) and fires the same token,
/// so a client that hangs up never keeps a server core busy; Stop() also
/// fires every in-flight token for a fast graceful drain.
///
/// Connections are keep-alive (HTTP/1.1 semantics). A worker thread
/// drives a connection only while a request is pending; between requests
/// the connection is re-queued onto the pool, so any number of open
/// keep-alive connections share num_threads workers without starving the
/// accept queue (a thread-per-connection loop deadlocks the moment
/// concurrent connections exceed workers: parked workers wait out the
/// idle timeout while queued connections wait for a worker). Reads and
/// writes are bounded by the request/idle deadlines in the options.
/// Stop() is graceful: it stops accepting, shuts down the read side of
/// every open connection, and waits for in-flight requests to finish
/// writing their responses.
class HttpServer {
 public:
  /// Serves `endpoint` (shared; several servers may front one endpoint).
  /// A null endpoint makes a stats-only listener: /metrics, /health,
  /// /stats, and /debug/queries work; /sparql answers 503. This is what
  /// backs the federator-side `lusail_cli --metrics-port` listener.
  HttpServer(std::shared_ptr<net::Endpoint> endpoint,
             HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept thread. Fails with
  /// kUnavailable when the port cannot be bound.
  Status Start();

  /// Graceful shutdown; idempotent. Returns once every connection has
  /// drained and the accept thread has joined.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound TCP port (the ephemeral pick when options.port was 0).
  uint16_t port() const { return port_; }

  /// "http://<bind_address>:<port>/sparql".
  std::string url() const;

  const std::string& endpoint_id() const {
    return endpoint_ != nullptr ? endpoint_->id() : options_.server_name;
  }

  HttpServerStats stats() const;

  /// Emits the server's own lusail_rpc_* counters, labelled
  /// {server=<server_name>}.
  void ExportMetrics(obs::MetricsSnapshot* snapshot) const;

 private:
  /// Per-connection state that outlives any single worker task: the
  /// buffered reader (possibly holding pipelined bytes) and the idle
  /// clock. Shared between re-queued servicing tasks.
  struct ConnState;

  void AcceptLoop();
  void ServeConnection(std::shared_ptr<ConnState> conn);
  void WatchLoop();

  /// Set by a handler that wrote its response to the socket itself
  /// (chunked streaming); ServeConnection then skips the normal write.
  struct StreamOutcome {
    bool streamed = false;      ///< Response bytes already on the wire.
    bool keep_alive_ok = false; ///< Stream ended cleanly; fd reusable.
  };

  /// Routes one request to a response (never throws, never closes fd).
  /// `fd` identifies the connection the response will go out on, so the
  /// disconnect watchdog can tie an in-flight evaluation to its socket.
  HttpResponse Handle(const HttpRequest& request, int fd,
                      StreamOutcome* stream);
  HttpResponse HandleSparql(const HttpRequest& request, int fd,
                            StreamOutcome* stream);

  std::shared_ptr<net::Endpoint> endpoint_;
  HttpServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> workers_;

  std::mutex conn_mu_;
  std::condition_variable conn_drained_;
  std::set<int> active_fds_;

  /// Connections with an evaluation in flight, keyed by fd; the watchdog
  /// probes these for disconnect and Cancel()s the token. Entries live
  /// only for the duration of one HandleSparql call.
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  std::unordered_map<int, CancelToken> in_flight_;
  std::thread watchdog_thread_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> bad_requests_{0};
  std::atomic<uint64_t> failed_queries_{0};
  std::atomic<uint64_t> truncated_results_{0};
  std::atomic<uint64_t> timed_out_queries_{0};
  std::atomic<uint64_t> cancelled_queries_{0};
  std::atomic<uint64_t> streamed_requests_{0};
  std::atomic<uint64_t> stream_aborts_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};

  /// First-row latency on streamed responses (exported as the
  /// lusail_rpc_first_row_ms histogram). LatencyHistogram is not
  /// thread-safe; first_row_mu_ guards it.
  mutable std::mutex first_row_mu_;
  obs::LatencyHistogram first_row_ms_;
};

/// Maps a Status onto the HTTP status code the server answers with.
int HttpStatusForCode(StatusCode code);

/// Reverses HttpStatusForCode on the client side using the error body's
/// "code" member when present, else a default per HTTP status.
StatusCode CodeForHttpStatus(int http_status, const std::string& code_name);

}  // namespace lusail::rpc

#endif  // LUSAIL_RPC_HTTP_SERVER_H_
