#include "rpc/http.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace lusail::rpc {

namespace {

constexpr std::string_view kCrlf = "\r\n";

const std::string* FindIn(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

bool KeepAliveOf(const std::vector<std::pair<std::string, std::string>>& headers) {
  const std::string* connection = FindIn(headers, "Connection");
  return connection == nullptr || !EqualsIgnoreCase(*connection, "close");
}

void AppendHeaders(
    std::string* out,
    const std::vector<std::pair<std::string, std::string>>& headers,
    size_t body_size) {
  for (const auto& [key, value] : headers) {
    out->append(key);
    out->append(": ");
    out->append(value);
    out->append(kCrlf);
  }
  if (FindIn(headers, "Content-Length") == nullptr) {
    out->append("Content-Length: ");
    out->append(std::to_string(body_size));
    out->append(kCrlf);
  }
  out->append(kCrlf);
}

/// Polls `fd` for `events` without sleeping past `deadline`. Returns 1
/// when ready, -1 on deadline expiry, -2 on poll error/hangup-with-error.
int PollFd(int fd, short events, const Deadline& deadline) {
  for (;;) {
    double remaining = deadline.RemainingMillis();
    if (remaining <= 0.0) return -1;
    // Wake at least every second so an infinite deadline still notices a
    // locally shutdown() fd promptly on platforms that don't signal it.
    int timeout_ms = std::isinf(remaining)
                         ? 1000
                         : static_cast<int>(std::min(remaining, 1000.0)) + 1;
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -2;
    }
    if (rc == 0) {
      if (deadline.Expired()) return -1;
      continue;
    }
    if (pfd.revents & (POLLERR | POLLNVAL)) return -2;
    return 1;  // Readable/writable (POLLHUP still delivers buffered data).
  }
}

/// Shared header-section reader: returns the raw bytes up to and
/// including the blank line via `*head`. Uses HttpConnection's buffer.
struct ParsedStartLine {
  std::string first, second, third;
};

Result<ParsedStartLine> SplitStartLine(std::string_view line) {
  size_t a = line.find(' ');
  if (a == std::string_view::npos) {
    return Status::ParseError("malformed HTTP start line");
  }
  size_t b = line.find(' ', a + 1);
  if (b == std::string_view::npos) {
    return Status::ParseError("malformed HTTP start line");
  }
  ParsedStartLine out;
  out.first = std::string(line.substr(0, a));
  out.second = std::string(line.substr(a + 1, b - a - 1));
  out.third = std::string(line.substr(b + 1));
  if (out.first.empty() || out.second.empty() || out.third.empty()) {
    return Status::ParseError("malformed HTTP start line");
  }
  return out;
}

Status ParseHeaderLines(
    std::string_view head,
    std::vector<std::pair<std::string, std::string>>* headers) {
  size_t pos = 0;
  while (pos < head.size()) {
    size_t eol = head.find(kCrlf, pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    pos = eol + kCrlf.size();
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::ParseError("malformed HTTP header line");
    }
    std::string name(StripWhitespace(line.substr(0, colon)));
    std::string value(StripWhitespace(line.substr(colon + 1)));
    if (name.empty()) return Status::ParseError("empty HTTP header name");
    headers->emplace_back(std::move(name), std::move(value));
  }
  return Status::OK();
}

Result<size_t> ContentLengthOf(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const HttpLimits& limits) {
  const std::string* value = FindIn(headers, "Content-Length");
  if (value == nullptr) return size_t{0};
  char* end = nullptr;
  errno = 0;
  unsigned long long n = std::strtoull(value->c_str(), &end, 10);
  if (errno != 0 || end == value->c_str() || *end != '\0') {
    return Status::ParseError("malformed Content-Length \"" + *value + "\"");
  }
  if (n > limits.max_body_bytes) {
    return Status::InvalidArgument("HTTP body of " + *value +
                                   " bytes exceeds the limit of " +
                                   std::to_string(limits.max_body_bytes));
  }
  return static_cast<size_t>(n);
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  return FindIn(headers, name);
}

bool HttpRequest::KeepAlive() const { return KeepAliveOf(headers); }

std::string HttpRequest::Serialize() const {
  std::string out;
  out.reserve(128 + body.size());
  out.append(method);
  out.push_back(' ');
  out.append(target);
  out.push_back(' ');
  out.append(version);
  out.append(kCrlf);
  AppendHeaders(&out, headers, body.size());
  out.append(body);
  return out;
}

const std::string* HttpResponse::FindHeader(std::string_view name) const {
  return FindIn(headers, name);
}

bool HttpResponse::KeepAlive() const { return KeepAliveOf(headers); }

std::string HttpResponse::Serialize() const {
  std::string out;
  out.reserve(128 + body.size());
  out.append("HTTP/1.1 ");
  out.append(std::to_string(status));
  out.push_back(' ');
  out.append(reason.empty() ? HttpReason(status) : reason.c_str());
  out.append(kCrlf);
  AppendHeaders(&out, headers, body.size());
  out.append(body);
  return out;
}

std::string HttpResponse::SerializeHead() const {
  std::string out;
  out.reserve(256);
  out.append("HTTP/1.1 ");
  out.append(std::to_string(status));
  out.push_back(' ');
  out.append(reason.empty() ? HttpReason(status) : reason.c_str());
  out.append(kCrlf);
  for (const auto& [key, value] : headers) {
    out.append(key);
    out.append(": ");
    out.append(value);
    out.append(kCrlf);
  }
  out.append(kCrlf);
  return out;
}

std::string EncodeChunk(std::string_view data) {
  char size_hex[24];
  int n = std::snprintf(size_hex, sizeof(size_hex), "%zx",
                        static_cast<size_t>(data.size()));
  std::string out;
  out.reserve(data.size() + static_cast<size_t>(n) + 4);
  out.append(size_hex, static_cast<size_t>(n));
  out.append(kCrlf);
  out.append(data);
  out.append(kCrlf);
  return out;
}

std::string EncodeLastChunk(
    const std::vector<std::pair<std::string, std::string>>& trailers) {
  std::string out = "0\r\n";
  for (const auto& [key, value] : trailers) {
    out.append(key);
    out.append(": ");
    out.append(value);
    out.append(kCrlf);
  }
  out.append(kCrlf);
  return out;
}

const char* HttpReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 415: return "Unsupported Media Type";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

Result<std::string> UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%') {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      if (i + 2 >= s.size()) {
        return Status::ParseError("truncated percent escape");
      }
      int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi < 0 || lo < 0) {
        return Status::ParseError("non-hex percent escape");
      }
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Result<std::string> FormField(std::string_view body, std::string_view name) {
  size_t pos = 0;
  while (pos <= body.size()) {
    size_t amp = body.find('&', pos);
    if (amp == std::string_view::npos) amp = body.size();
    std::string_view field = body.substr(pos, amp - pos);
    size_t eq = field.find('=');
    std::string_view key = eq == std::string_view::npos ? field
                                                        : field.substr(0, eq);
    if (key == name) {
      std::string_view raw =
          eq == std::string_view::npos ? std::string_view() : field.substr(eq + 1);
      return UrlDecode(raw);
    }
    pos = amp + 1;
  }
  return Status::NotFound("form field \"" + std::string(name) + "\" absent");
}

Status SendAll(int fd, std::string_view data, const Deadline& deadline) {
  size_t sent = 0;
  while (sent < data.size()) {
    int ready = PollFd(fd, POLLOUT, deadline);
    if (ready == -1) return Status::Timeout("HTTP write deadline expired");
    if (ready == -2) return Status::Unavailable("HTTP connection error");
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(std::string("HTTP send failed: ") +
                                 std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

int HttpConnection::FillBuffer(const Deadline& deadline) {
  if (pos_ < buffer_.size()) return 1;
  buffer_.clear();
  pos_ = 0;
  for (;;) {
    int ready = PollFd(fd_, POLLIN, deadline);
    if (ready < 0) return ready;
    char chunk[16384];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return -2;
    }
    if (n == 0) return 0;  // EOF.
    buffer_.assign(chunk, static_cast<size_t>(n));
    bytes_read_ += static_cast<uint64_t>(n);
    return 1;
  }
}

Result<HttpRequest> HttpConnection::ReadRequest(const HttpLimits& limits,
                                                const Deadline& deadline,
                                                bool* clean_close) {
  if (clean_close != nullptr) *clean_close = false;

  // Accumulate the header section.
  std::string head;
  while (true) {
    int rc = FillBuffer(deadline);
    if (rc == 0) {
      if (head.empty() && clean_close != nullptr) *clean_close = true;
      return Status::Unavailable("connection closed");
    }
    if (rc == -1) return Status::Timeout("HTTP read deadline expired");
    if (rc == -2) return Status::Unavailable("HTTP connection error");
    head.append(buffer_, pos_, buffer_.size() - pos_);
    pos_ = buffer_.size();
    size_t end = head.find("\r\n\r\n");
    // The limit applies to the header section itself, so it must be
    // checked even when the terminator already arrived (an oversized
    // header can land complete in one read).
    if ((end == std::string::npos ? head.size() : end) >
        limits.max_header_bytes) {
      return Status::InvalidArgument("HTTP header section exceeds " +
                                     std::to_string(limits.max_header_bytes) +
                                     " bytes");
    }
    if (end != std::string::npos) {
      // Push bytes past the header section back for the body read.
      std::string rest = head.substr(end + 4);
      head.resize(end);
      buffer_ = std::move(rest);
      pos_ = 0;
      break;
    }
  }

  HttpRequest request;
  size_t eol = head.find("\r\n");
  std::string_view start_line =
      std::string_view(head).substr(0, eol == std::string::npos ? head.size()
                                                                : eol);
  LUSAIL_ASSIGN_OR_RETURN(ParsedStartLine parts, SplitStartLine(start_line));
  request.method = std::move(parts.first);
  request.target = std::move(parts.second);
  request.version = std::move(parts.third);
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    return Status::ParseError("unsupported HTTP version \"" +
                              request.version + "\"");
  }
  if (eol != std::string::npos) {
    LUSAIL_RETURN_NOT_OK(ParseHeaderLines(
        std::string_view(head).substr(eol + 2), &request.headers));
  }

  LUSAIL_ASSIGN_OR_RETURN(size_t body_size,
                          ContentLengthOf(request.headers, limits));
  request.body.reserve(body_size);
  while (request.body.size() < body_size) {
    int rc = FillBuffer(deadline);
    if (rc == 0) return Status::Unavailable("connection closed mid-body");
    if (rc == -1) return Status::Timeout("HTTP read deadline expired");
    if (rc == -2) return Status::Unavailable("HTTP connection error");
    size_t want = body_size - request.body.size();
    size_t have = std::min(want, buffer_.size() - pos_);
    request.body.append(buffer_, pos_, have);
    pos_ += have;
  }
  return request;
}

Status HttpConnection::ReadLine(const HttpLimits& limits,
                                const Deadline& deadline, std::string* line) {
  line->clear();
  for (;;) {
    while (pos_ < buffer_.size()) {
      line->push_back(buffer_[pos_++]);
      if (line->size() >= 2 && (*line)[line->size() - 2] == '\r' &&
          line->back() == '\n') {
        line->resize(line->size() - 2);
        return Status::OK();
      }
      if (line->size() > limits.max_header_bytes) {
        return Status::ParseError("HTTP chunk/trailer line exceeds " +
                                  std::to_string(limits.max_header_bytes) +
                                  " bytes");
      }
    }
    int rc = FillBuffer(deadline);
    if (rc == 0) return Status::Unavailable("connection closed mid-body");
    if (rc == -1) return Status::Timeout("HTTP read deadline expired");
    if (rc == -2) return Status::Unavailable("HTTP connection error");
  }
}

Status HttpConnection::ReadChunk(
    const HttpLimits& limits, const Deadline& deadline, std::string* data,
    bool* last,
    std::vector<std::pair<std::string, std::string>>* trailers) {
  *last = false;
  data->clear();
  std::string line;
  LUSAIL_RETURN_NOT_OK(ReadLine(limits, deadline, &line));
  size_t semi = line.find(';');  // Chunk extensions are ignored.
  std::string size_text =
      line.substr(0, semi == std::string::npos ? line.size() : semi);
  char* end = nullptr;
  errno = 0;
  unsigned long long size = std::strtoull(size_text.c_str(), &end, 16);
  if (size_text.empty() || errno != 0 || end == size_text.c_str() ||
      *end != '\0') {
    return Status::ParseError("malformed HTTP chunk size \"" + line + "\"");
  }
  if (size > limits.max_body_bytes) {
    return Status::InvalidArgument("HTTP chunk of " + size_text +
                                   " bytes exceeds the limit of " +
                                   std::to_string(limits.max_body_bytes));
  }
  if (size == 0) {
    *last = true;
    // Trailer section: header lines until the final blank line.
    for (;;) {
      LUSAIL_RETURN_NOT_OK(ReadLine(limits, deadline, &line));
      if (line.empty()) break;
      std::vector<std::pair<std::string, std::string>> parsed;
      LUSAIL_RETURN_NOT_OK(ParseHeaderLines(line, &parsed));
      if (trailers != nullptr) {
        for (auto& header : parsed) trailers->push_back(std::move(header));
      }
    }
    return Status::OK();
  }
  data->reserve(static_cast<size_t>(size));
  while (data->size() < size) {
    int rc = FillBuffer(deadline);
    if (rc == 0) return Status::Unavailable("connection closed mid-body");
    if (rc == -1) return Status::Timeout("HTTP read deadline expired");
    if (rc == -2) return Status::Unavailable("HTTP connection error");
    size_t want = static_cast<size_t>(size) - data->size();
    size_t have = std::min(want, buffer_.size() - pos_);
    data->append(buffer_, pos_, have);
    pos_ += have;
  }
  LUSAIL_RETURN_NOT_OK(ReadLine(limits, deadline, &line));
  if (!line.empty()) {
    return Status::ParseError("HTTP chunk data not CRLF-terminated");
  }
  return Status::OK();
}

Status HttpConnection::ReadBodyBytes(size_t max_bytes, const Deadline& deadline,
                                     std::string* data) {
  data->clear();
  if (max_bytes == 0) return Status::OK();
  int rc = FillBuffer(deadline);
  if (rc == 0) return Status::Unavailable("connection closed mid-body");
  if (rc == -1) return Status::Timeout("HTTP read deadline expired");
  if (rc == -2) return Status::Unavailable("HTTP connection error");
  size_t have = std::min(max_bytes, buffer_.size() - pos_);
  data->append(buffer_, pos_, have);
  pos_ += have;
  return Status::OK();
}

Result<HttpResponse> HttpConnection::ReadResponse(const HttpLimits& limits,
                                                  const Deadline& deadline) {
  LUSAIL_ASSIGN_OR_RETURN(HttpResponse response,
                          ReadResponseHead(limits, deadline));
  const std::string* te = response.FindHeader("Transfer-Encoding");
  if (te != nullptr && EqualsIgnoreCase(*te, "chunked")) {
    // De-chunk for buffered callers; trailers become ordinary headers.
    bool last = false;
    std::string chunk;
    while (!last) {
      LUSAIL_RETURN_NOT_OK(
          ReadChunk(limits, deadline, &chunk, &last, &response.headers));
      if (response.body.size() + chunk.size() > limits.max_body_bytes) {
        return Status::InvalidArgument(
            "HTTP body exceeds the limit of " +
            std::to_string(limits.max_body_bytes) + " bytes");
      }
      response.body.append(chunk);
    }
    return response;
  }

  LUSAIL_ASSIGN_OR_RETURN(size_t body_size,
                          ContentLengthOf(response.headers, limits));
  response.body.reserve(body_size);
  while (response.body.size() < body_size) {
    int rc = FillBuffer(deadline);
    if (rc == 0) return Status::Unavailable("connection closed mid-body");
    if (rc == -1) return Status::Timeout("HTTP read deadline expired");
    if (rc == -2) return Status::Unavailable("HTTP connection error");
    size_t want = body_size - response.body.size();
    size_t have = std::min(want, buffer_.size() - pos_);
    response.body.append(buffer_, pos_, have);
    pos_ += have;
  }
  return response;
}

Result<HttpResponse> HttpConnection::ReadResponseHead(
    const HttpLimits& limits, const Deadline& deadline) {
  std::string head;
  while (true) {
    int rc = FillBuffer(deadline);
    if (rc == 0) return Status::Unavailable("connection closed");
    if (rc == -1) return Status::Timeout("HTTP read deadline expired");
    if (rc == -2) return Status::Unavailable("HTTP connection error");
    head.append(buffer_, pos_, buffer_.size() - pos_);
    pos_ = buffer_.size();
    size_t end = head.find("\r\n\r\n");
    if ((end == std::string::npos ? head.size() : end) >
        limits.max_header_bytes) {
      return Status::InvalidArgument("HTTP header section exceeds " +
                                     std::to_string(limits.max_header_bytes) +
                                     " bytes");
    }
    if (end != std::string::npos) {
      std::string rest = head.substr(end + 4);
      head.resize(end);
      buffer_ = std::move(rest);
      pos_ = 0;
      break;
    }
  }

  HttpResponse response;
  size_t eol = head.find("\r\n");
  std::string_view start_line =
      std::string_view(head).substr(0, eol == std::string::npos ? head.size()
                                                                : eol);
  LUSAIL_ASSIGN_OR_RETURN(ParsedStartLine parts, SplitStartLine(start_line));
  if (!StartsWith(parts.first, "HTTP/")) {
    return Status::ParseError("malformed HTTP status line");
  }
  char* end = nullptr;
  long code = std::strtol(parts.second.c_str(), &end, 10);
  if (end == parts.second.c_str() || *end != '\0' || code < 100 ||
      code > 599) {
    return Status::ParseError("malformed HTTP status code \"" +
                              parts.second + "\"");
  }
  response.status = static_cast<int>(code);
  response.reason = std::move(parts.third);
  if (eol != std::string::npos) {
    LUSAIL_RETURN_NOT_OK(ParseHeaderLines(
        std::string_view(head).substr(eol + 2), &response.headers));
  }
  return response;
}

}  // namespace lusail::rpc
