#include "obs/trace.h"

#include <cstdio>
#include <functional>
#include <thread>

namespace lusail::obs {

namespace {

uint64_t CurrentThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

std::string FormatDouble(double d) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", d);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------

std::vector<const Span*> Trace::ByCategory(const std::string& category) const {
  std::vector<const Span*> out;
  for (const Span& s : spans) {
    if (s.category == category) out.push_back(&s);
  }
  return out;
}

const Span* Trace::Find(SpanId id) const {
  // Span ids are 1-based indices into the creation-ordered vector.
  if (id == 0 || id > spans.size()) return nullptr;
  return &spans[id - 1];
}

std::vector<const Span*> Trace::ChildrenOf(SpanId parent) const {
  std::vector<const Span*> out;
  for (const Span& s : spans) {
    if (s.parent == parent) out.push_back(&s);
  }
  return out;
}

JsonValue Trace::ToChromeJson() const {
  JsonValue events = JsonValue::Array();
  for (const Span& s : spans) {
    JsonValue event = JsonValue::Object();
    event.Set("name", s.name);
    event.Set("cat", s.category);
    event.Set("ph", "X");
    event.Set("ts", s.start_us);
    event.Set("dur", s.duration_us < 0.0 ? 0.0 : s.duration_us);
    event.Set("pid", uint64_t{1});
    // Compress the hashed thread id into something Perfetto renders as a
    // small track number while keeping distinct threads distinct.
    event.Set("tid", s.thread_id % 1000000);
    JsonValue args = JsonValue::Object();
    args.Set("span_id", s.id);
    args.Set("parent", s.parent);
    for (const SpanAnnotation& a : s.annotations) {
      args.Set(a.key, a.value);
    }
    event.Set("args", std::move(args));
    events.Append(std::move(event));
  }
  JsonValue doc = JsonValue::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  return doc;
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

double Tracer::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

SpanId Tracer::StartSpan(std::string name, std::string category,
                         SpanId parent) {
  double now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = std::move(name);
  span.category = std::move(category);
  span.start_us = now;
  span.thread_id = CurrentThreadId();
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(SpanId id) {
  double now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (span.duration_us < 0.0) {
    span.duration_us = now - span.start_us;
  }
}

void Tracer::Annotate(SpanId id, std::string key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].annotations.push_back({std::move(key), std::move(value)});
}

void Tracer::Annotate(SpanId id, std::string key, uint64_t value) {
  Annotate(id, std::move(key), std::to_string(value));
}

void Tracer::Annotate(SpanId id, std::string key, int64_t value) {
  Annotate(id, std::move(key), std::to_string(value));
}

void Tracer::Annotate(SpanId id, std::string key, double value) {
  Annotate(id, std::move(key), FormatDouble(value));
}

void Tracer::Annotate(SpanId id, std::string key, bool value) {
  Annotate(id, std::move(key), std::string(value ? "true" : "false"));
}

size_t Tracer::NumSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

Trace Tracer::Snapshot() const {
  double now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  Trace trace;
  trace.spans = spans_;
  for (Span& s : trace.spans) {
    if (s.duration_us < 0.0) s.duration_us = now - s.start_us;
  }
  return trace;
}

}  // namespace lusail::obs
