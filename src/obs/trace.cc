#include "obs/trace.h"

#include <unistd.h>

#include <cstdio>
#include <functional>
#include <thread>
#include <unordered_map>

namespace lusail::obs {

namespace {

uint64_t CurrentThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

std::string FormatDouble(double d) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", d);
  return buf;
}

JsonValue SpanToWireJson(const Span& s) {
  JsonValue out = JsonValue::Object();
  out.Set("id", s.id);
  out.Set("parent", s.parent);
  out.Set("name", s.name);
  out.Set("cat", s.category);
  out.Set("start_us", s.start_us);
  out.Set("dur_us", s.duration_us);
  out.Set("tid", s.thread_id % 1000000);
  if (!s.annotations.empty()) {
    JsonValue ann = JsonValue::Array();
    for (const SpanAnnotation& a : s.annotations) {
      JsonValue pair = JsonValue::Array();
      pair.Append(a.key);
      pair.Append(a.value);
      ann.Append(std::move(pair));
    }
    out.Set("ann", std::move(ann));
  }
  return out;
}

double NumberOr(const JsonValue& value, double fallback) {
  return value.type() == JsonValue::Type::kNumber ? value.AsDouble()
                                                  : fallback;
}

}  // namespace

// ---------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------

std::vector<const Span*> Trace::ByCategory(const std::string& category) const {
  std::vector<const Span*> out;
  for (const Span& s : spans) {
    if (s.category == category) out.push_back(&s);
  }
  return out;
}

const Span* Trace::Find(SpanId id) const {
  // Span ids are 1-based indices into the creation-ordered vector.
  if (id == 0 || id > spans.size()) return nullptr;
  return &spans[id - 1];
}

std::vector<const Span*> Trace::ChildrenOf(SpanId parent) const {
  std::vector<const Span*> out;
  for (const Span& s : spans) {
    if (s.parent == parent) out.push_back(&s);
  }
  return out;
}

JsonValue Trace::ToChromeJson() const {
  // Spans recorded locally (process_id 0) render under the local pid;
  // grafted remote subtrees keep their server's pid, so Chrome/Perfetto
  // lays each process of a merged trace out on its own track group.
  uint64_t local_pid = local_process_id != 0 ? local_process_id : 1;
  JsonValue events = JsonValue::Array();
  for (const auto& [pid, name] : processes) {
    JsonValue meta = JsonValue::Object();
    meta.Set("name", "process_name");
    meta.Set("ph", "M");
    meta.Set("pid", pid != 0 ? pid : local_pid);
    JsonValue args = JsonValue::Object();
    args.Set("name", name);
    meta.Set("args", std::move(args));
    events.Append(std::move(meta));
  }
  for (const Span& s : spans) {
    JsonValue event = JsonValue::Object();
    event.Set("name", s.name);
    event.Set("cat", s.category);
    event.Set("ph", "X");
    event.Set("ts", s.start_us);
    event.Set("dur", s.duration_us < 0.0 ? 0.0 : s.duration_us);
    event.Set("pid", s.process_id != 0 ? s.process_id : local_pid);
    // Compress the hashed thread id into something Perfetto renders as a
    // small track number while keeping distinct threads distinct.
    event.Set("tid", s.thread_id % 1000000);
    JsonValue args = JsonValue::Object();
    args.Set("span_id", s.id);
    args.Set("parent", s.parent);
    for (const SpanAnnotation& a : s.annotations) {
      args.Set(a.key, a.value);
    }
    event.Set("args", std::move(args));
    events.Append(std::move(event));
  }
  JsonValue doc = JsonValue::Object();
  if (!trace_id.empty()) doc.Set("traceId", trace_id);
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  return doc;
}

std::string Trace::ToWireString(size_t max_bytes, bool* truncated) const {
  if (truncated != nullptr) *truncated = false;
  uint64_t pid = local_process_id;
  std::string process_name;
  for (const auto& [p, name] : processes) {
    if (p == pid || p == 0) process_name = name;
  }
  std::string head = "{\"trace_id\":\"" + JsonEscape(trace_id) +
                     "\",\"process_id\":" + std::to_string(pid) +
                     ",\"process\":\"" + JsonEscape(process_name) + "\"";
  // Budget the span list: spans serialize in creation order (a span's
  // parent always precedes it), so keeping a prefix keeps a well-formed
  // tree. The root always ships even when it alone busts the cap.
  const std::string tail = ",\"truncated\":false,\"spans\":[]}";
  size_t used = head.size() + tail.size();
  std::vector<std::string> parts;
  bool cut = false;
  for (const Span& s : spans) {
    std::string part = SpanToWireJson(s).Serialize();
    if (!parts.empty() && used + part.size() + 1 > max_bytes) {
      cut = true;
      break;
    }
    used += part.size() + (parts.empty() ? 0 : 1);
    parts.push_back(std::move(part));
  }
  if (truncated != nullptr) *truncated = cut;
  std::string out = std::move(head);
  out += ",\"truncated\":";
  out += cut ? "true" : "false";
  out += ",\"spans\":[";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ',';
    out += parts[i];
  }
  out += "]}";
  return out;
}

Result<Trace> Trace::FromWireString(const std::string& text,
                                    bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  LUSAIL_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(text));
  if (doc.type() != JsonValue::Type::kObject) {
    return Status::ParseError("trace wire payload is not a JSON object");
  }
  Trace trace;
  if (doc.Get("trace_id").type() == JsonValue::Type::kString) {
    trace.trace_id = doc.Get("trace_id").AsString();
  }
  uint64_t pid = static_cast<uint64_t>(NumberOr(doc.Get("process_id"), 0.0));
  std::string process_name;
  if (doc.Get("process").type() == JsonValue::Type::kString) {
    process_name = doc.Get("process").AsString();
  }
  if (pid != 0) trace.processes.emplace_back(pid, process_name);
  if (doc.Get("truncated").type() == JsonValue::Type::kBool &&
      doc.Get("truncated").AsBool() && truncated != nullptr) {
    *truncated = true;
  }
  const JsonValue& spans = doc.Get("spans");
  if (spans.type() != JsonValue::Type::kArray) {
    return Status::ParseError("trace wire payload has no spans array");
  }
  for (const JsonValue& item : spans.items()) {
    if (item.type() != JsonValue::Type::kObject) {
      return Status::ParseError("trace wire span is not an object");
    }
    Span span;
    span.id = static_cast<SpanId>(NumberOr(item.Get("id"), 0.0));
    span.parent = static_cast<SpanId>(NumberOr(item.Get("parent"), 0.0));
    if (item.Get("name").type() == JsonValue::Type::kString) {
      span.name = item.Get("name").AsString();
    }
    if (item.Get("cat").type() == JsonValue::Type::kString) {
      span.category = item.Get("cat").AsString();
    }
    span.start_us = NumberOr(item.Get("start_us"), 0.0);
    span.duration_us = NumberOr(item.Get("dur_us"), 0.0);
    span.thread_id = static_cast<uint64_t>(NumberOr(item.Get("tid"), 0.0));
    span.process_id = pid;
    const JsonValue& ann = item.Get("ann");
    if (ann.type() == JsonValue::Type::kArray) {
      for (const JsonValue& pair : ann.items()) {
        if (pair.type() == JsonValue::Type::kArray && pair.size() == 2 &&
            pair[0].type() == JsonValue::Type::kString &&
            pair[1].type() == JsonValue::Type::kString) {
          span.annotations.push_back({pair[0].AsString(), pair[1].AsString()});
        }
      }
    }
    if (span.id == 0) {
      return Status::ParseError("trace wire span has no id");
    }
    trace.spans.push_back(std::move(span));
  }
  return trace;
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

double Tracer::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

SpanId Tracer::StartSpan(std::string name, std::string category,
                         SpanId parent) {
  double now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = std::move(name);
  span.category = std::move(category);
  span.start_us = now;
  span.thread_id = CurrentThreadId();
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(SpanId id) {
  double now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (span.duration_us < 0.0) {
    span.duration_us = now - span.start_us;
  }
}

void Tracer::Annotate(SpanId id, std::string key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].annotations.push_back({std::move(key), std::move(value)});
}

void Tracer::Annotate(SpanId id, std::string key, uint64_t value) {
  Annotate(id, std::move(key), std::to_string(value));
}

void Tracer::Annotate(SpanId id, std::string key, int64_t value) {
  Annotate(id, std::move(key), std::to_string(value));
}

void Tracer::Annotate(SpanId id, std::string key, double value) {
  Annotate(id, std::move(key), FormatDouble(value));
}

void Tracer::Annotate(SpanId id, std::string key, bool value) {
  Annotate(id, std::move(key), std::string(value ? "true" : "false"));
}

size_t Tracer::NumSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void Tracer::set_trace_id(std::string trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_id_ = std::move(trace_id);
}

std::string Tracer::trace_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_id_;
}

void Tracer::RegisterProcess(uint64_t pid, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [p, n] : processes_) {
    if (p == pid) {
      n = std::move(name);
      return;
    }
  }
  processes_.emplace_back(pid, std::move(name));
}

SpanId Tracer::Graft(const Trace& remote, SpanId attach_under) {
  if (remote.spans.empty()) return 0;
  double now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [pid, name] : remote.processes) {
    bool known = false;
    for (auto& [p, n] : processes_) {
      if (p == pid) {
        n = name;
        known = true;
        break;
      }
    }
    if (!known) processes_.emplace_back(pid, name);
  }
  // Remote timestamps are relative to the remote tracer's epoch. Shift
  // them so the remote root *ends* now — the response just arrived — and
  // thus nests inside the still-open client-side request span. (The
  // return-path network latency shows as the gap after the server span.)
  const Span& remote_root = remote.spans.front();
  double root_duration =
      remote_root.duration_us < 0.0 ? 0.0 : remote_root.duration_us;
  double offset = now - (remote_root.start_us + root_duration);
  std::unordered_map<SpanId, SpanId> remap;
  SpanId grafted_root = 0;
  for (const Span& rs : remote.spans) {
    Span span = rs;
    SpanId remote_id = span.id;
    span.id = spans_.size() + 1;
    auto mapped = remap.find(span.parent);
    span.parent = mapped != remap.end() ? mapped->second : attach_under;
    span.start_us += offset;
    if (span.duration_us < 0.0) span.duration_us = 0.0;
    remap[remote_id] = span.id;
    if (grafted_root == 0) grafted_root = span.id;
    spans_.push_back(std::move(span));
  }
  return grafted_root;
}

Trace Tracer::Snapshot() const {
  double now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  Trace trace;
  trace.trace_id = trace_id_;
  trace.local_process_id = static_cast<uint64_t>(::getpid());
  trace.processes = processes_;
  trace.spans = spans_;
  for (Span& s : trace.spans) {
    if (s.duration_us < 0.0) s.duration_us = now - s.start_us;
  }
  return trace;
}

}  // namespace lusail::obs
