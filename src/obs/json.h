#ifndef LUSAIL_OBS_JSON_H_
#define LUSAIL_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace lusail::obs {

/// A minimal JSON document tree used by the observability layer: the
/// Chrome trace exporter, EXPLAIN's machine-readable form, the endpoint
/// statistics reports, and the bench metric dumps. Objects preserve
/// insertion order so serialized output is deterministic; numbers are
/// doubles serialized with enough digits to round-trip exactly.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}
  JsonValue(int i) : type_(Type::kNumber), number_(i) {}
  JsonValue(int64_t i) : type_(Type::kNumber),
                         number_(static_cast<double>(i)) {}
  JsonValue(uint64_t u) : type_(Type::kNumber),
                          number_(static_cast<double>(u)) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  uint64_t AsUint() const { return static_cast<uint64_t>(number_); }
  const std::string& AsString() const { return string_; }

  // --- Array access ---
  void Append(JsonValue v) { array_.push_back(std::move(v)); }
  size_t size() const {
    return type_ == Type::kObject ? members_.size() : array_.size();
  }
  const JsonValue& operator[](size_t i) const { return array_[i]; }
  const std::vector<JsonValue>& items() const { return array_; }

  // --- Object access ---
  void Set(std::string key, JsonValue v) {
    members_.emplace_back(std::move(key), std::move(v));
  }
  /// Null reference when the key is absent.
  const JsonValue& Get(const std::string& key) const;
  bool Has(const std::string& key) const { return !Get(key).is_null(); }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Compact serialization (no whitespace).
  std::string Serialize() const;

  /// Indented serialization for humans.
  std::string Pretty() const;

  /// Parses a JSON document. Numbers become doubles; objects keep the
  /// source key order.
  static Result<JsonValue> Parse(const std::string& text);

  bool operator==(const JsonValue& other) const;

 private:
  void SerializeTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escapes `s` as a JSON string literal body (no surrounding quotes).
std::string JsonEscape(const std::string& s);

}  // namespace lusail::obs

#endif  // LUSAIL_OBS_JSON_H_
