#include "obs/flight_recorder.h"

#include <chrono>
#include <utility>

namespace lusail::obs {

uint64_t HashQueryText(const std::string& text) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a 64 offset basis.
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string QueryHashHex(const std::string& text) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(HashQueryText(text)));
  return buf;
}

JsonValue FlightRecord::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("sequence", sequence);
  out.Set("unix_ms", unix_ms);
  out.Set("query_hash", query_hash);
  if (!trace_id.empty()) out.Set("trace_id", trace_id);
  out.Set("status", status);
  if (!served_by.empty()) out.Set("served_by", served_by);
  out.Set("hedged", hedged);
  out.Set("cancelled", cancelled);
  out.Set("partial", partial);
  out.Set("truncated", truncated);
  out.Set("slow", slow);
  out.Set("rows", rows);
  out.Set("requests", requests);
  out.Set("cache_hits", cache_hits);
  out.Set("total_ms", total_ms);
  out.Set("source_selection_ms", source_selection_ms);
  out.Set("analysis_ms", analysis_ms);
  out.Set("execution_ms", execution_ms);
  out.Set("network_ms", network_ms);
  return out;
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
}

void FlightRecorder::Record(FlightRecord record) {
  if (record.unix_ms == 0.0) {
    record.unix_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  }
  record.slow = options_.slow_threshold_ms > 0.0 &&
                record.total_ms >= options_.slow_threshold_ms;
  bool emit_query_line = options_.log_json;
  bool emit_slow_line = record.slow && !options_.log_json;
  std::string line;
  {
    std::lock_guard<std::mutex> lock(mu_);
    record.sequence = ++total_;
    if (record.slow) ++slow_;
    ring_.push_back(record);
    while (ring_.size() > options_.capacity) ring_.pop_front();
  }
  if (emit_query_line || emit_slow_line) {
    JsonValue body = record.ToJson();
    JsonValue entry = JsonValue::Object();
    entry.Set("event", emit_query_line ? "query" : "slow_query");
    for (const auto& [key, value] : body.members()) {
      entry.Set(key, value);
    }
    line = entry.Serialize();
    std::FILE* stream = options_.stream != nullptr ? options_.stream : stderr;
    std::fprintf(stream, "%s\n", line.c_str());
    std::fflush(stream);
  }
}

std::vector<FlightRecord> FlightRecorder::Recent(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t take = (n == 0 || n > ring_.size()) ? ring_.size() : n;
  std::vector<FlightRecord> out;
  out.reserve(take);
  for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < take;
       ++it) {
    out.push_back(*it);
  }
  return out;
}

uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t FlightRecorder::slow_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_;
}

JsonValue FlightRecorder::ToJson(size_t n) const {
  JsonValue out = JsonValue::Object();
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.Set("total", total_);
    out.Set("slow", slow_);
  }
  JsonValue queries = JsonValue::Array();
  for (const FlightRecord& record : Recent(n)) {
    queries.Append(record.ToJson());
  }
  out.Set("queries", std::move(queries));
  return out;
}

}  // namespace lusail::obs
