#include "obs/endpoint_stats.h"

#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace lusail::obs {

namespace {

uint64_t MicrosFromMillis(double ms) {
  if (ms <= 0.0) return 0;
  return static_cast<uint64_t>(std::llround(ms * 1000.0));
}

size_t BucketFor(uint64_t us) {
  if (us == 0) return 0;
  // Bucket b covers [2^(b-1), 2^b): 1us -> bucket 1, 2-3us -> 2, ...
  return static_cast<size_t>(std::bit_width(us));
}

/// Geometric mean of a bucket's bounds, in microseconds.
double BucketRepresentative(size_t bucket) {
  if (bucket == 0) return 0.5;
  double lo = std::ldexp(1.0, static_cast<int>(bucket) - 1);
  return lo * std::sqrt(2.0);
}

}  // namespace

// ---------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------

void LatencyHistogram::Record(double latency_ms) {
  uint64_t us = MicrosFromMillis(latency_ms);
  size_t bucket = std::min(BucketFor(us), kBuckets - 1);
  ++buckets_[bucket];
  if (count_ == 0 || us < min_us_) min_us_ = us;
  if (us > max_us_) max_us_ = us;
  ++count_;
  total_us_ += us;
}

double LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the requested quantile (1-based, nearest-rank method).
  uint64_t rank = static_cast<uint64_t>(std::ceil(p * count_));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      // Clamping to the exact extremes pins the outermost buckets to the
      // true min/max instead of the bucket midpoint.
      double us = std::clamp(BucketRepresentative(b),
                             static_cast<double>(min_us_),
                             static_cast<double>(max_us_));
      return us / 1000.0;
    }
  }
  return static_cast<double>(max_us_) / 1000.0;
}

double LatencyHistogram::MeanMs() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(total_us_) / static_cast<double>(count_) /
         1000.0;
}

double LatencyHistogram::MinMs() const {
  return static_cast<double>(min_us_) / 1000.0;
}

double LatencyHistogram::MaxMs() const {
  return static_cast<double>(max_us_) / 1000.0;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  if (count_ == 0 || other.min_us_ < min_us_) min_us_ = other.min_us_;
  max_us_ = std::max(max_us_, other.max_us_);
  count_ += other.count_;
  total_us_ += other.total_us_;
}

JsonValue LatencyHistogram::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("count", count_);
  out.Set("mean_ms", MeanMs());
  out.Set("min_ms", MinMs());
  out.Set("p50_ms", P50());
  out.Set("p95_ms", P95());
  out.Set("p99_ms", P99());
  out.Set("max_ms", MaxMs());
  return out;
}

// ---------------------------------------------------------------------
// EndpointStats
// ---------------------------------------------------------------------

void EndpointStats::Merge(const EndpointStats& other) {
  requests += other.requests;
  successes += other.successes;
  errors += other.errors;
  timeouts += other.timeouts;
  retries += other.retries;
  breaker_rejections += other.breaker_rejections;
  breaker_trips += other.breaker_trips;
  bytes_sent += other.bytes_sent;
  bytes_received += other.bytes_received;
  rows_received += other.rows_received;
  network_requests += other.network_requests;
  connections_opened += other.connections_opened;
  connections_reused += other.connections_reused;
  wire_bytes_sent += other.wire_bytes_sent;
  wire_bytes_received += other.wire_bytes_received;
  latency.Merge(other.latency);
}

JsonValue EndpointStats::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("requests", requests);
  out.Set("successes", successes);
  out.Set("errors", errors);
  out.Set("timeouts", timeouts);
  out.Set("retries", retries);
  out.Set("breaker_rejections", breaker_rejections);
  out.Set("breaker_trips", breaker_trips);
  out.Set("bytes_sent", bytes_sent);
  out.Set("bytes_received", bytes_received);
  out.Set("rows_received", rows_received);
  if (network_requests > 0) {
    JsonValue transport = JsonValue::Object();
    transport.Set("network_requests", network_requests);
    transport.Set("connections_opened", connections_opened);
    transport.Set("connections_reused", connections_reused);
    transport.Set("wire_bytes_sent", wire_bytes_sent);
    transport.Set("wire_bytes_received", wire_bytes_received);
    out.Set("transport", std::move(transport));
  }
  out.Set("latency", latency.ToJson());
  return out;
}

// ---------------------------------------------------------------------
// EndpointStatsRegistry
// ---------------------------------------------------------------------

void EndpointStatsRegistry::RecordExchange(const std::string& endpoint_id,
                                           const EndpointExchange& exchange) {
  std::lock_guard<std::mutex> lock(mu_);
  EndpointStats& s = stats_[endpoint_id];
  ++s.requests;
  if (exchange.success) {
    ++s.successes;
    s.bytes_sent += exchange.bytes_sent;
    s.bytes_received += exchange.bytes_received;
    s.rows_received += exchange.rows;
    s.latency.Record(exchange.latency_ms);
  } else if (exchange.timeout) {
    ++s.timeouts;
  } else {
    ++s.errors;
  }
  s.retries += exchange.retries;
  s.breaker_rejections += exchange.breaker_rejections;
  s.breaker_trips += exchange.breaker_trips;
  if (exchange.network) {
    ++s.network_requests;
    if (exchange.reused_connection) {
      ++s.connections_reused;
    } else {
      ++s.connections_opened;
    }
    s.wire_bytes_sent += exchange.wire_bytes_sent;
    s.wire_bytes_received += exchange.wire_bytes_received;
  }
}

void EndpointStatsRegistry::RecordSuccess(const std::string& endpoint_id,
                                          double latency_ms,
                                          uint64_t bytes_sent,
                                          uint64_t bytes_received,
                                          uint64_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  EndpointStats& s = stats_[endpoint_id];
  ++s.requests;
  ++s.successes;
  s.bytes_sent += bytes_sent;
  s.bytes_received += bytes_received;
  s.rows_received += rows;
  s.latency.Record(latency_ms);
}

void EndpointStatsRegistry::RecordFailure(const std::string& endpoint_id,
                                          bool timeout) {
  std::lock_guard<std::mutex> lock(mu_);
  EndpointStats& s = stats_[endpoint_id];
  ++s.requests;
  if (timeout) {
    ++s.timeouts;
  } else {
    ++s.errors;
  }
}

void EndpointStatsRegistry::RecordResilience(const std::string& endpoint_id,
                                             uint64_t retries,
                                             uint64_t breaker_rejections,
                                             uint64_t breaker_trips) {
  if (retries == 0 && breaker_rejections == 0 && breaker_trips == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  EndpointStats& s = stats_[endpoint_id];
  s.retries += retries;
  s.breaker_rejections += breaker_rejections;
  s.breaker_trips += breaker_trips;
}

void EndpointStatsRegistry::RecordTransport(const std::string& endpoint_id,
                                            bool reused_connection,
                                            uint64_t wire_bytes_sent,
                                            uint64_t wire_bytes_received) {
  std::lock_guard<std::mutex> lock(mu_);
  EndpointStats& s = stats_[endpoint_id];
  ++s.network_requests;
  if (reused_connection) {
    ++s.connections_reused;
  } else {
    ++s.connections_opened;
  }
  s.wire_bytes_sent += wire_bytes_sent;
  s.wire_bytes_received += wire_bytes_received;
}

EndpointStats EndpointStatsRegistry::Get(
    const std::string& endpoint_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(endpoint_id);
  return it == stats_.end() ? EndpointStats() : it->second;
}

std::vector<std::pair<std::string, EndpointStats>> EndpointStatsRegistry::All()
    const {
  std::vector<std::pair<std::string, EndpointStats>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.assign(stats_.begin(), stats_.end());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

size_t EndpointStatsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.size();
}

void EndpointStatsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
}

void EndpointStatsRegistry::Merge(const EndpointStatsRegistry& other) {
  std::vector<std::pair<std::string, EndpointStats>> theirs = other.All();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, stats] : theirs) {
    stats_[id].Merge(stats);
  }
}

JsonValue EndpointStatsRegistry::ToJson() const {
  JsonValue endpoints = JsonValue::Object();
  for (const auto& [id, stats] : All()) {
    endpoints.Set(id, stats.ToJson());
  }
  JsonValue out = JsonValue::Object();
  out.Set("endpoints", std::move(endpoints));
  return out;
}

void EndpointStatsRegistry::ExportMetrics(MetricsSnapshot* snapshot) const {
  for (const auto& [id, stats] : All()) {
    MetricLabels labels = {{"endpoint", id}};
    snapshot->AddCounter("lusail_endpoint_requests_total",
                         "Completed requests (success + failure).", labels,
                         static_cast<double>(stats.requests));
    snapshot->AddCounter("lusail_endpoint_successes_total",
                         "Requests that returned a result.", labels,
                         static_cast<double>(stats.successes));
    snapshot->AddCounter("lusail_endpoint_errors_total",
                         "Non-timeout failures.", labels,
                         static_cast<double>(stats.errors));
    snapshot->AddCounter("lusail_endpoint_timeouts_total",
                         "Requests that timed out.", labels,
                         static_cast<double>(stats.timeouts));
    snapshot->AddCounter("lusail_endpoint_retries_total",
                         "Requests retried after a retryable failure.",
                         labels, static_cast<double>(stats.retries));
    snapshot->AddCounter("lusail_endpoint_breaker_rejections_total",
                         "Requests refused by an open circuit breaker.",
                         labels, static_cast<double>(stats.breaker_rejections));
    snapshot->AddCounter("lusail_endpoint_breaker_trips_total",
                         "Circuit-breaker transitions to open.", labels,
                         static_cast<double>(stats.breaker_trips));
    snapshot->AddCounter("lusail_endpoint_bytes_sent_total",
                         "Query text bytes shipped to the endpoint.", labels,
                         static_cast<double>(stats.bytes_sent));
    snapshot->AddCounter("lusail_endpoint_bytes_received_total",
                         "Serialized result bytes received.", labels,
                         static_cast<double>(stats.bytes_received));
    snapshot->AddCounter("lusail_endpoint_rows_received_total",
                         "Binding rows received.", labels,
                         static_cast<double>(stats.rows_received));
    snapshot->AddHistogram("lusail_endpoint_latency_seconds",
                           "Successful-request latency.", labels,
                           stats.latency);
  }
}

std::string EndpointStatsRegistry::ToText() const {
  std::string out =
      "endpoint                 reqs    ok   err    to  retry  brk  "
      "p50ms    p95ms    p99ms\n";
  for (const auto& [id, s] : All()) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-22s %6llu %5llu %5llu %5llu %6llu %4llu %8.3f %8.3f "
                  "%8.3f\n",
                  id.c_str(),
                  static_cast<unsigned long long>(s.requests),
                  static_cast<unsigned long long>(s.successes),
                  static_cast<unsigned long long>(s.errors),
                  static_cast<unsigned long long>(s.timeouts),
                  static_cast<unsigned long long>(s.retries),
                  static_cast<unsigned long long>(s.breaker_trips),
                  s.latency.P50(), s.latency.P95(), s.latency.P99());
    out += line;
  }
  return out;
}

}  // namespace lusail::obs
