#ifndef LUSAIL_OBS_TRACE_CONTEXT_H_
#define LUSAIL_OBS_TRACE_CONTEXT_H_

#include <memory>
#include <string>

#include "obs/trace.h"

namespace lusail::obs {

/// Ambient per-thread trace context: which tracer the current query is
/// recording into, the query's 128-bit trace id, and the span any
/// transport-level work on this thread should parent itself to.
///
/// The context is how trace identity crosses layers that share no
/// interface: fed::Federation installs it around the endpoint call, and
/// rpc::HttpSparqlEndpoint — several decorators below, behind the plain
/// net::Endpoint vtable — reads it to stamp X-Lusail-Trace-Id /
/// X-Lusail-Parent-Span onto the outgoing request and to graft the
/// server's returned span subtree under the right parent. Holding the
/// tracer by shared_ptr keeps it alive for detached hedge losers that
/// outlive the engine's Execute frame.
struct TraceContext {
  std::shared_ptr<Tracer> tracer;  ///< Null when tracing is off.
  std::string trace_id;            ///< 32 lowercase hex characters.
  SpanId parent = 0;               ///< Span requests should parent to.
};

/// The context installed on this thread, or nullptr. The pointer is only
/// valid while the installing TraceContextScope is alive; callers that
/// hand work to another thread must copy the value.
const TraceContext* CurrentTraceContext();

/// RAII installer for a TraceContext on the current thread. Scopes nest:
/// destruction restores whatever was installed before. The default
/// constructor installs nothing (a no-op scope), so call sites can stay
/// unconditional.
class TraceContextScope {
 public:
  TraceContextScope() = default;
  explicit TraceContextScope(TraceContext context);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  bool installed_ = false;
  TraceContext context_;
  const TraceContext* previous_ = nullptr;
};

/// A fresh 128-bit trace id as 32 lowercase hex characters. Seeded from
/// the clock, the thread id, and a process-wide counter, so concurrent
/// queries in one process and queries from different processes both get
/// distinct ids without any shared entropy source.
std::string GenerateTraceId();

/// True iff `id` is a well-formed trace id (exactly 32 lowercase-hex
/// characters, not all zero). Servers fall back to a fresh id when a
/// client sends something else.
bool IsValidTraceId(const std::string& id);

}  // namespace lusail::obs

#endif  // LUSAIL_OBS_TRACE_CONTEXT_H_
