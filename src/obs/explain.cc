#include "obs/explain.h"

#include <algorithm>
#include <cstdio>

#include "core/lusail_engine.h"

namespace lusail::obs {

namespace {

const char* DelayThresholdName(core::DelayThreshold threshold) {
  switch (threshold) {
    case core::DelayThreshold::kMu:
      return "mu";
    case core::DelayThreshold::kMuSigma:
      return "mu+sigma";
    case core::DelayThreshold::kMu2Sigma:
      return "mu+2sigma";
    case core::DelayThreshold::kOutliersOnly:
      return "outliers-only";
  }
  return "unknown";
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const char* sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

JsonValue StringsToJson(const std::vector<std::string>& strings) {
  JsonValue out = JsonValue::Array();
  for (const std::string& s : strings) out.Append(s);
  return out;
}

JsonValue IntsToJson(const std::vector<int>& ints) {
  JsonValue out = JsonValue::Array();
  for (int i : ints) out.Append(static_cast<int64_t>(i));
  return out;
}

Status ExpectType(const JsonValue& v, JsonValue::Type type,
                  const char* what) {
  if (v.type() != type) {
    return Status::InvalidArgument(std::string("explain JSON: field '") +
                                   what + "' missing or of wrong type");
  }
  return Status::OK();
}

Result<std::vector<std::string>> ParseStrings(const JsonValue& v,
                                              const char* what) {
  LUSAIL_RETURN_NOT_OK(ExpectType(v, JsonValue::Type::kArray, what));
  std::vector<std::string> out;
  for (const JsonValue& item : v.items()) {
    LUSAIL_RETURN_NOT_OK(ExpectType(item, JsonValue::Type::kString, what));
    out.push_back(item.AsString());
  }
  return out;
}

Result<std::vector<int>> ParseInts(const JsonValue& v, const char* what) {
  LUSAIL_RETURN_NOT_OK(ExpectType(v, JsonValue::Type::kArray, what));
  std::vector<int> out;
  for (const JsonValue& item : v.items()) {
    LUSAIL_RETURN_NOT_OK(ExpectType(item, JsonValue::Type::kNumber, what));
    out.push_back(static_cast<int>(item.AsInt()));
  }
  return out;
}

}  // namespace

std::string ExplainReport::ToText() const {
  std::string out = "EXPLAIN (" + engine + ")\n";
  out += "  global join variables: " +
         (gjvs.empty() ? std::string("(none)") : JoinStrings(gjvs, ", ")) +
         "\n";
  out += "  delay threshold: " + delay_threshold + "\n";
  out += "  optionals: " + std::to_string(pushed_optionals) +
         " pushed into subqueries, " + std::to_string(unpushed_optionals) +
         " left-joined at the federator\n";
  out += "  subqueries: " + std::to_string(subqueries.size()) + "\n";
  for (size_t i = 0; i < subqueries.size(); ++i) {
    const ExplainSubquery& sq = subqueries[i];
    char card[32];
    std::snprintf(card, sizeof(card), "%.0f", sq.estimated_cardinality);
    out += "  subquery " + std::to_string(i);
    if (sq.delayed) out += " [delayed]";
    if (sq.outlier) out += " [outlier]";
    out += " (est. " + std::string(card) + " rows @ " +
           (sq.endpoints.empty() ? std::string("no endpoint")
                                 : JoinStrings(sq.endpoints, ", ")) +
           ")\n";
    for (const std::string& p : sq.patterns) {
      out += "    " + p + " .\n";
    }
    if (sq.pushed_optionals > 0) {
      out += "    + " + std::to_string(sq.pushed_optionals) +
             " pushed OPTIONAL block" +
             (sq.pushed_optionals == 1 ? "" : "s") + "\n";
    }
    out += "    project: " + JoinStrings(sq.projection, " ") + "\n";
  }
  out += "  estimated join order: ";
  for (size_t i = 0; i < join_order.size(); ++i) {
    if (i > 0) out += " -> ";
    out += std::to_string(join_order[i]);
  }
  out += "\n";
  return out;
}

JsonValue ExplainReport::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("engine", engine);
  out.Set("query", query);
  out.Set("gjvs", StringsToJson(gjvs));
  out.Set("delay_threshold", delay_threshold);
  JsonValue sqs = JsonValue::Array();
  for (const ExplainSubquery& sq : subqueries) {
    JsonValue j = JsonValue::Object();
    j.Set("triple_indices", IntsToJson(sq.triple_indices));
    j.Set("patterns", StringsToJson(sq.patterns));
    j.Set("endpoints", StringsToJson(sq.endpoints));
    j.Set("projection", StringsToJson(sq.projection));
    j.Set("estimated_cardinality", sq.estimated_cardinality);
    j.Set("delayed", sq.delayed);
    j.Set("outlier", sq.outlier);
    j.Set("pushed_optionals", sq.pushed_optionals);
    sqs.Append(std::move(j));
  }
  out.Set("subqueries", std::move(sqs));
  out.Set("join_order", IntsToJson(join_order));
  out.Set("pushed_optionals", pushed_optionals);
  out.Set("unpushed_optionals", unpushed_optionals);
  return out;
}

Result<ExplainReport> ExplainReport::FromJson(const JsonValue& json) {
  LUSAIL_RETURN_NOT_OK(
      ExpectType(json, JsonValue::Type::kObject, "(root)"));
  ExplainReport report;
  LUSAIL_RETURN_NOT_OK(
      ExpectType(json.Get("engine"), JsonValue::Type::kString, "engine"));
  report.engine = json.Get("engine").AsString();
  LUSAIL_RETURN_NOT_OK(
      ExpectType(json.Get("query"), JsonValue::Type::kString, "query"));
  report.query = json.Get("query").AsString();
  LUSAIL_ASSIGN_OR_RETURN(report.gjvs,
                          ParseStrings(json.Get("gjvs"), "gjvs"));
  LUSAIL_RETURN_NOT_OK(ExpectType(json.Get("delay_threshold"),
                                  JsonValue::Type::kString,
                                  "delay_threshold"));
  report.delay_threshold = json.Get("delay_threshold").AsString();
  LUSAIL_RETURN_NOT_OK(ExpectType(json.Get("subqueries"),
                                  JsonValue::Type::kArray, "subqueries"));
  for (const JsonValue& j : json.Get("subqueries").items()) {
    LUSAIL_RETURN_NOT_OK(
        ExpectType(j, JsonValue::Type::kObject, "subqueries[]"));
    ExplainSubquery sq;
    LUSAIL_ASSIGN_OR_RETURN(
        sq.triple_indices,
        ParseInts(j.Get("triple_indices"), "triple_indices"));
    LUSAIL_ASSIGN_OR_RETURN(sq.patterns,
                            ParseStrings(j.Get("patterns"), "patterns"));
    LUSAIL_ASSIGN_OR_RETURN(sq.endpoints,
                            ParseStrings(j.Get("endpoints"), "endpoints"));
    LUSAIL_ASSIGN_OR_RETURN(
        sq.projection, ParseStrings(j.Get("projection"), "projection"));
    LUSAIL_RETURN_NOT_OK(ExpectType(j.Get("estimated_cardinality"),
                                    JsonValue::Type::kNumber,
                                    "estimated_cardinality"));
    sq.estimated_cardinality = j.Get("estimated_cardinality").AsDouble();
    LUSAIL_RETURN_NOT_OK(
        ExpectType(j.Get("delayed"), JsonValue::Type::kBool, "delayed"));
    sq.delayed = j.Get("delayed").AsBool();
    LUSAIL_RETURN_NOT_OK(
        ExpectType(j.Get("outlier"), JsonValue::Type::kBool, "outlier"));
    sq.outlier = j.Get("outlier").AsBool();
    LUSAIL_RETURN_NOT_OK(ExpectType(j.Get("pushed_optionals"),
                                    JsonValue::Type::kNumber,
                                    "pushed_optionals"));
    sq.pushed_optionals = j.Get("pushed_optionals").AsUint();
    report.subqueries.push_back(std::move(sq));
  }
  LUSAIL_ASSIGN_OR_RETURN(report.join_order,
                          ParseInts(json.Get("join_order"), "join_order"));
  LUSAIL_RETURN_NOT_OK(ExpectType(json.Get("pushed_optionals"),
                                  JsonValue::Type::kNumber,
                                  "pushed_optionals"));
  report.pushed_optionals = json.Get("pushed_optionals").AsUint();
  LUSAIL_RETURN_NOT_OK(ExpectType(json.Get("unpushed_optionals"),
                                  JsonValue::Type::kNumber,
                                  "unpushed_optionals"));
  report.unpushed_optionals = json.Get("unpushed_optionals").AsUint();
  return report;
}

Result<ExplainReport> Explain(core::LusailEngine& engine,
                              const std::string& query_text) {
  LUSAIL_ASSIGN_OR_RETURN(core::AnalyzedQuery analyzed,
                          engine.Analyze(query_text));
  const fed::Federation* federation = engine.federation();
  const std::vector<sparql::TriplePattern>& triples =
      analyzed.query.where.triples;

  ExplainReport report;
  report.engine = engine.name();
  report.query = query_text;
  for (const std::string& v : analyzed.gjvs.GjvNames()) {
    report.gjvs.push_back("?" + v);
  }
  report.delay_threshold =
      DelayThresholdName(engine.options().delay_threshold);
  for (size_t i = 0; i < analyzed.decomposition.subqueries.size(); ++i) {
    const core::Subquery& sq = analyzed.decomposition.subqueries[i];
    ExplainSubquery out;
    out.triple_indices = sq.triple_indices;
    for (int ti : sq.triple_indices) {
      out.patterns.push_back(triples[ti].ToString());
    }
    for (int ep : sq.sources) {
      out.endpoints.push_back(federation->id(static_cast<size_t>(ep)));
    }
    out.projection = sq.projection;
    out.estimated_cardinality = sq.estimated_cardinality;
    out.delayed = sq.delayed;
    out.outlier =
        i < analyzed.outliers.size() ? analyzed.outliers[i] : false;
    out.pushed_optionals = sq.optionals.size();
    report.subqueries.push_back(std::move(out));
  }
  report.join_order = analyzed.join_order;
  report.pushed_optionals = analyzed.pushed_optionals;
  report.unpushed_optionals = analyzed.unpushed_optionals;
  return report;
}

}  // namespace lusail::obs
