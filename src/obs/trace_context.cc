#include "obs/trace_context.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

#include "common/rng.h"

namespace lusail::obs {

namespace {

thread_local const TraceContext* g_current_context = nullptr;

}  // namespace

const TraceContext* CurrentTraceContext() { return g_current_context; }

TraceContextScope::TraceContextScope(TraceContext context)
    : installed_(true),
      context_(std::move(context)),
      previous_(g_current_context) {
  g_current_context = &context_;
}

TraceContextScope::~TraceContextScope() {
  if (installed_) g_current_context = previous_;
}

std::string GenerateTraceId() {
  static std::atomic<uint64_t> counter{0};
  uint64_t seed =
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()) ^
      (std::hash<std::thread::id>{}(std::this_thread::get_id()) << 1) ^
      (counter.fetch_add(1, std::memory_order_relaxed) * 0x9e3779b97f4a7c15ULL);
  Rng rng(seed);
  uint64_t hi = rng.Next();
  uint64_t lo = rng.Next();
  if (hi == 0 && lo == 0) lo = 1;  // All-zero ids are reserved as invalid.
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

bool IsValidTraceId(const std::string& id) {
  if (id.size() != 32) return false;
  bool nonzero = false;
  for (char c : id) {
    bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
    if (c != '0') nonzero = true;
  }
  return nonzero;
}

}  // namespace lusail::obs
