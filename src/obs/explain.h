#ifndef LUSAIL_OBS_EXPLAIN_H_
#define LUSAIL_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace lusail::core {
class LusailEngine;
}  // namespace lusail::core

namespace lusail::obs {

/// One subquery of an EXPLAIN report: what LADE decided to ship to the
/// endpoints as a unit, and how SAPE plans to schedule it.
struct ExplainSubquery {
  std::vector<int> triple_indices;      ///< Into the query's BGP.
  std::vector<std::string> patterns;    ///< Rendered "s p o" texts.
  std::vector<std::string> endpoints;   ///< Relevant endpoint ids.
  std::vector<std::string> projection;
  double estimated_cardinality = 0.0;   ///< COUNT-probe estimate.
  bool delayed = false;                 ///< Bound-join phase (SAPE).
  bool outlier = false;                 ///< Chauvenet-rejected estimate.
  uint64_t pushed_optionals = 0;        ///< OPTIONAL blocks pushed in.

  bool operator==(const ExplainSubquery& other) const = default;
};

/// The full plan Lusail would execute for a query, rendered without
/// running it: LADE's decomposition (subqueries, GJVs, OPTIONAL
/// placement) and SAPE's schedule (delay decisions, outliers, estimated
/// join order). Round-trips through JSON: FromJson(ToJson()) == *this.
struct ExplainReport {
  std::string engine;
  std::string query;                    ///< Original query text.
  std::vector<std::string> gjvs;        ///< Global join variables.
  std::string delay_threshold;          ///< "mu", "mu+sigma", ...
  std::vector<ExplainSubquery> subqueries;
  std::vector<int> join_order;          ///< Left-deep, subquery indices.
  uint64_t pushed_optionals = 0;        ///< Pushed into subqueries.
  uint64_t unpushed_optionals = 0;      ///< Left-joined at the federator.

  bool operator==(const ExplainReport& other) const = default;

  /// Human-readable multi-line rendering.
  std::string ToText() const;

  /// Machine-readable form; FromJson inverts it exactly.
  JsonValue ToJson() const;
  static Result<ExplainReport> FromJson(const JsonValue& json);
};

/// Runs source selection + LADE + SAPE planning for `query_text` on
/// `engine` (no execution) and renders the resulting plan.
Result<ExplainReport> Explain(core::LusailEngine& engine,
                              const std::string& query_text);

}  // namespace lusail::obs

#endif  // LUSAIL_OBS_EXPLAIN_H_
