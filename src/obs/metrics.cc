#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lusail::obs {

namespace {

/// Label values need the exposition-format escapes (backslash, quote,
/// newline); names are expected to be clean identifiers already.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// HELP text uses a different escape set than label values (exposition
/// format 0.0.4): backslash and newline are escaped, quotes are NOT —
/// they are legal verbatim outside a quoted position. An unescaped
/// newline here would split the comment mid-line and make the next
/// fragment parse as a sample.
std::string EscapeHelpText(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

/// `labels` plus one extra label, for the histogram `le` series.
std::string RenderLabelsWith(const MetricLabels& labels,
                             const std::string& key,
                             const std::string& value) {
  MetricLabels extended = labels;
  extended.emplace_back(key, value);
  return RenderLabels(extended);
}

std::string FormatNumber(double value) {
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

/// Upper bound of log-2 bucket `b` in seconds: 2^b microseconds.
double BucketBoundSeconds(size_t b) {
  return std::ldexp(1.0, static_cast<int>(b)) / 1e6;
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

MetricFamily* MetricsSnapshot::Family(const std::string& name,
                                      const std::string& help,
                                      MetricType type) {
  auto it = index_.find(name);
  if (it != index_.end()) return &families_[it->second];
  index_.emplace(name, families_.size());
  MetricFamily family;
  family.name = name;
  family.help = help;
  family.type = type;
  families_.push_back(std::move(family));
  return &families_.back();
}

void MetricsSnapshot::AddCounter(const std::string& name,
                                 const std::string& help, MetricLabels labels,
                                 double value) {
  MetricSample sample;
  sample.labels = std::move(labels);
  sample.value = value;
  Family(name, help, MetricType::kCounter)->samples.push_back(
      std::move(sample));
}

void MetricsSnapshot::AddGauge(const std::string& name,
                               const std::string& help, MetricLabels labels,
                               double value) {
  MetricSample sample;
  sample.labels = std::move(labels);
  sample.value = value;
  Family(name, help, MetricType::kGauge)->samples.push_back(
      std::move(sample));
}

void MetricsSnapshot::AddHistogram(const std::string& name,
                                   const std::string& help,
                                   MetricLabels labels,
                                   const LatencyHistogram& histogram) {
  MetricSample sample;
  sample.labels = std::move(labels);
  sample.buckets = histogram.buckets();
  sample.count = histogram.count();
  // MeanMs * count recovers the sum the histogram accumulated in µs.
  sample.sum_seconds = histogram.MeanMs() * histogram.count() / 1e3;
  Family(name, help, MetricType::kHistogram)->samples.push_back(
      std::move(sample));
}

std::string MetricsSnapshot::RenderPrometheus() const {
  std::string out;
  for (const MetricFamily& family : families_) {
    out += "# HELP " + family.name + " " + EscapeHelpText(family.help) + "\n";
    out += "# TYPE " + family.name + " " + std::string(TypeName(family.type)) +
           "\n";
    for (const MetricSample& sample : family.samples) {
      if (family.type != MetricType::kHistogram) {
        out += family.name + RenderLabels(sample.labels) + " " +
               FormatNumber(sample.value) + "\n";
        continue;
      }
      // Cumulative buckets up to the highest non-empty one; +Inf always.
      size_t highest = 0;
      for (size_t b = 0; b < sample.buckets.size(); ++b) {
        if (sample.buckets[b] > 0) highest = b + 1;
      }
      uint64_t cumulative = 0;
      for (size_t b = 0; b < highest; ++b) {
        cumulative += sample.buckets[b];
        out += family.name + "_bucket" +
               RenderLabelsWith(sample.labels, "le",
                                FormatNumber(BucketBoundSeconds(b))) +
               " " + std::to_string(cumulative) + "\n";
      }
      out += family.name + "_bucket" +
             RenderLabelsWith(sample.labels, "le", "+Inf") + " " +
             std::to_string(sample.count) + "\n";
      out += family.name + "_sum" + RenderLabels(sample.labels) + " " +
             FormatNumber(sample.sum_seconds) + "\n";
      out += family.name + "_count" + RenderLabels(sample.labels) + " " +
             std::to_string(sample.count) + "\n";
    }
  }
  return out;
}

JsonValue MetricsSnapshot::ToJson() const {
  JsonValue out = JsonValue::Object();
  for (const MetricFamily& family : families_) {
    JsonValue samples = JsonValue::Array();
    for (const MetricSample& sample : family.samples) {
      JsonValue entry = JsonValue::Object();
      JsonValue labels = JsonValue::Object();
      for (const auto& [key, value] : sample.labels) {
        labels.Set(key, value);
      }
      entry.Set("labels", std::move(labels));
      if (family.type == MetricType::kHistogram) {
        entry.Set("count", sample.count);
        entry.Set("sum_seconds", sample.sum_seconds);
      } else {
        entry.Set("value", sample.value);
      }
      samples.Append(std::move(entry));
    }
    JsonValue body = JsonValue::Object();
    body.Set("type", TypeName(family.type));
    body.Set("samples", std::move(samples));
    out.Set(family.name, std::move(body));
  }
  return out;
}

uint64_t MetricsRegistry::AddCollector(Collector collector) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t handle = next_handle_++;
  collectors_.emplace_back(handle, std::move(collector));
  return handle;
}

void MetricsRegistry::RemoveCollector(uint64_t handle) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(
      std::remove_if(collectors_.begin(), collectors_.end(),
                     [handle](const auto& entry) {
                       return entry.first == handle;
                     }),
      collectors_.end());
}

size_t MetricsRegistry::NumCollectors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return collectors_.size();
}

MetricsSnapshot MetricsRegistry::Collect() const {
  MetricsSnapshot snapshot;
  CollectInto(&snapshot);
  return snapshot;
}

void MetricsRegistry::CollectInto(MetricsSnapshot* snapshot) const {
  // Copy the callbacks out so a slow collector never holds the registry
  // lock (collectors may themselves take component locks).
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    collectors.reserve(collectors_.size());
    for (const auto& [handle, fn] : collectors_) collectors.push_back(fn);
  }
  for (const Collector& fn : collectors) fn(snapshot);
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace lusail::obs
