#ifndef LUSAIL_OBS_METRICS_H_
#define LUSAIL_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/endpoint_stats.h"
#include "obs/json.h"

namespace lusail::obs {

/// Prometheus-style label set ({endpoint="EP1",replica="EP1#0",...}).
/// Order is preserved in the exposition output.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

/// One labelled time series inside a family. Counters and gauges carry
/// `value`; histograms carry the log-2 bucket array (the same bucketing
/// as LatencyHistogram: bucket b holds samples in [2^(b-1), 2^b) µs)
/// plus count and sum.
struct MetricSample {
  MetricLabels labels;
  double value = 0.0;
  std::array<uint64_t, LatencyHistogram::kBuckets> buckets{};
  uint64_t count = 0;
  double sum_seconds = 0.0;
};

/// All samples of one metric name, with its help text and type.
struct MetricFamily {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<MetricSample> samples;
};

/// One scrape's worth of metrics, built by component ExportMetrics
/// methods at collection time. Components call the typed Add* methods;
/// samples with the same metric name group into one family, so the
/// rendered exposition is valid Prometheus text format.
///
/// Metric naming convention (documented in DESIGN.md): every metric is
/// `lusail_<subsystem>_<name>` with `_total` on counters and `_seconds`
/// on duration histograms, labelled with {endpoint=...}, {replica=...},
/// {tier=...} as applicable.
class MetricsSnapshot {
 public:
  void AddCounter(const std::string& name, const std::string& help,
                  MetricLabels labels, double value);
  void AddGauge(const std::string& name, const std::string& help,
                MetricLabels labels, double value);
  void AddHistogram(const std::string& name, const std::string& help,
                    MetricLabels labels, const LatencyHistogram& histogram);

  const std::vector<MetricFamily>& families() const { return families_; }

  /// Prometheus text exposition format (version 0.0.4): # HELP / # TYPE
  /// lines per family, histogram buckets as cumulative `_bucket{le=...}`
  /// series (in seconds) up to the highest non-empty bucket plus +Inf,
  /// with `_sum` and `_count`.
  std::string RenderPrometheus() const;

  /// The same data as a JSON object keyed by metric name, for the bench
  /// dump files.
  JsonValue ToJson() const;

 private:
  MetricFamily* Family(const std::string& name, const std::string& help,
                       MetricType type);

  std::vector<MetricFamily> families_;
  std::unordered_map<std::string, size_t> index_;
};

/// Scrape-time metrics registry: components register a collector callback
/// once, and every Collect() (a /metrics scrape, a bench dump) invokes
/// the callbacks against a fresh MetricsSnapshot. Nothing touches the
/// registry on a query hot path — components keep their existing atomic
/// counters and only read them when scraped — which is what keeps the
/// registry lock-cheap: one short mutex hold per scrape, zero per query.
class MetricsRegistry {
 public:
  using Collector = std::function<void(MetricsSnapshot*)>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers a collector; returns a handle for RemoveCollector. The
  /// callback must stay valid until removed.
  uint64_t AddCollector(Collector collector);
  void RemoveCollector(uint64_t handle);
  size_t NumCollectors() const;

  /// Runs every collector against a fresh snapshot.
  MetricsSnapshot Collect() const;

  /// Runs every collector against an existing snapshot (lets a caller
  /// merge its own samples with the registry's in one exposition).
  void CollectInto(MetricsSnapshot* snapshot) const;

  std::string RenderPrometheus() const { return Collect().RenderPrometheus(); }

  /// Process-wide default registry (benches and example binaries share
  /// it so one /metrics listener sees every component).
  static MetricsRegistry* Default();

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<uint64_t, Collector>> collectors_;
  uint64_t next_handle_ = 1;
};

/// RAII collector registration: removes itself from the registry on
/// destruction, so a component's collector can never outlive it. Movable.
class ScopedCollector {
 public:
  ScopedCollector() = default;
  ScopedCollector(MetricsRegistry* registry, MetricsRegistry::Collector fn)
      : registry_(registry), handle_(registry->AddCollector(std::move(fn))) {}
  ScopedCollector(ScopedCollector&& other) noexcept
      : registry_(other.registry_), handle_(other.handle_) {
    other.registry_ = nullptr;
    other.handle_ = 0;
  }
  ScopedCollector& operator=(ScopedCollector&& other) noexcept {
    if (this != &other) {
      Release();
      registry_ = other.registry_;
      handle_ = other.handle_;
      other.registry_ = nullptr;
      other.handle_ = 0;
    }
    return *this;
  }
  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;
  ~ScopedCollector() { Release(); }

  void Release() {
    if (registry_ != nullptr) registry_->RemoveCollector(handle_);
    registry_ = nullptr;
    handle_ = 0;
  }

 private:
  MetricsRegistry* registry_ = nullptr;
  uint64_t handle_ = 0;
};

}  // namespace lusail::obs

#endif  // LUSAIL_OBS_METRICS_H_
