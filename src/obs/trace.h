#ifndef LUSAIL_OBS_TRACE_H_
#define LUSAIL_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace lusail::obs {

/// Identifier of a span within one Tracer. 0 means "no span" everywhere a
/// span id is optional (parent links, disabled tracing).
using SpanId = uint64_t;

/// One key/value annotation attached to a span. Values are strings; the
/// Annotate overloads format numbers on the way in.
struct SpanAnnotation {
  std::string key;
  std::string value;
};

/// One timed operation in a query's execution. Spans form a tree via
/// `parent`: query -> phase -> subquery -> endpoint request -> retry
/// attempt. Timestamps are steady-clock microseconds relative to the
/// tracer's construction, so a trace is self-consistent regardless of
/// wall-clock adjustments.
struct Span {
  SpanId id = 0;
  SpanId parent = 0;  ///< 0 = root.
  std::string name;
  std::string category;  ///< "query", "phase", "subquery", "request", ...
  double start_us = 0.0;
  double duration_us = -1.0;  ///< -1 while the span is open.
  uint64_t thread_id = 0;     ///< Hashed std::thread::id of the opener.
  /// OS pid of the process that recorded the span; 0 = the tracer's own
  /// process. Grafted remote subtrees carry their server's pid, so a
  /// merged Chrome trace renders each process on its own track.
  uint64_t process_id = 0;
  std::vector<SpanAnnotation> annotations;
};

/// A finished (or snapshotted) collection of spans.
struct Trace {
  /// 128-bit trace id (32 lowercase hex chars); empty for traces that
  /// never crossed a process boundary.
  std::string trace_id;

  /// The pid of the process that recorded spans with process_id == 0.
  uint64_t local_process_id = 0;

  /// Display names of every process that contributed spans, keyed by pid
  /// ("federator/lusail", "endpointd/EP1", ...).
  std::vector<std::pair<uint64_t, std::string>> processes;

  std::vector<Span> spans;

  /// Spans matching `category`, in creation order.
  std::vector<const Span*> ByCategory(const std::string& category) const;

  /// The span with `id`, or nullptr.
  const Span* Find(SpanId id) const;

  /// Direct children of `parent`, in creation order.
  std::vector<const Span*> ChildrenOf(SpanId parent) const;

  /// Chrome trace-event JSON (the `{"traceEvents": [...]}` form) loadable
  /// in chrome://tracing and Perfetto. Every span becomes one complete
  /// ("ph":"X") event carrying its category, ids, and annotations in
  /// `args`.
  JsonValue ToChromeJson() const;
  std::string ToChromeJsonString() const { return ToChromeJson().Serialize(); }

  /// Compact single-line JSON of this trace for the X-Lusail-Trace
  /// response header: trace id, process identity, and the spans in
  /// creation order. When the serialization would exceed `max_bytes`,
  /// trailing spans are dropped (the root always survives) and the
  /// output carries "truncated":true — a partial subtree beats none.
  std::string ToWireString(size_t max_bytes, bool* truncated = nullptr) const;

  /// Parses a ToWireString payload back into a Trace. `*truncated` is
  /// set when the sender marked the subtree as cut. Fails with
  /// kParseError on malformed input.
  static Result<Trace> FromWireString(const std::string& text,
                                      bool* truncated = nullptr);
};

/// Thread-safe hierarchical span collector for one query execution.
/// Cheap enough to leave compiled in: engines allocate a Tracer only when
/// LusailOptions::trace (or the baseline equivalent) is set, and every
/// emission site checks for a null tracer first, so disabled tracing
/// costs one pointer test and allocates nothing.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span; `parent` 0 makes it a root.
  SpanId StartSpan(std::string name, std::string category, SpanId parent = 0);

  /// Closes the span. Closing an unknown or already-closed id is a no-op.
  void EndSpan(SpanId id);

  void Annotate(SpanId id, std::string key, std::string value);
  void Annotate(SpanId id, std::string key, const char* value) {
    Annotate(id, std::move(key), std::string(value));
  }
  void Annotate(SpanId id, std::string key, uint64_t value);
  void Annotate(SpanId id, std::string key, int64_t value);
  void Annotate(SpanId id, std::string key, double value);
  void Annotate(SpanId id, std::string key, bool value);

  size_t NumSpans() const;

  /// The 128-bit trace id this tracer's spans belong to (empty until a
  /// query-admission layer assigns one).
  void set_trace_id(std::string trace_id);
  std::string trace_id() const;

  /// Registers a display name for `pid` in Chrome exports ("federator",
  /// "endpointd/EP1"). Re-registering a pid overwrites its name.
  void RegisterProcess(uint64_t pid, std::string name);

  /// Splices a remote process's span subtree (a FromWireString result)
  /// into this tracer under `attach_under`: span ids are remapped into
  /// this tracer's id space, remote-root spans are re-parented to
  /// `attach_under`, and timestamps are shifted so the remote root ends
  /// "now" — i.e. inside the client-side request span that is still open
  /// when the response arrives. Returns the local id of the grafted root
  /// (0 when `remote` has no spans). Thread-safe like every other method.
  SpanId Graft(const Trace& remote, SpanId attach_under);

  /// Copies all spans out; spans still open are reported with their
  /// duration so far (a well-formed execution closes everything first).
  Trace Snapshot() const;

 private:
  double NowMicros() const;

  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::string trace_id_;
  std::vector<std::pair<uint64_t, std::string>> processes_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII guard for a span on a possibly-null tracer: no-op when the tracer
/// is null, so call sites stay branch-free. Movable, not copyable.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, std::string name, std::string category,
             SpanId parent = 0)
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      id_ = tracer_->StartSpan(std::move(name), std::move(category), parent);
    }
  }
  ScopedSpan(ScopedSpan&& other) noexcept
      : tracer_(other.tracer_), id_(other.id_) {
    other.tracer_ = nullptr;
    other.id_ = 0;
  }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      End();
      tracer_ = other.tracer_;
      id_ = other.id_;
      other.tracer_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { End(); }

  void End() {
    if (tracer_ != nullptr && id_ != 0) tracer_->EndSpan(id_);
    tracer_ = nullptr;
    id_ = 0;
  }

  template <typename V>
  void Annotate(std::string key, V value) {
    if (tracer_ != nullptr && id_ != 0) {
      tracer_->Annotate(id_, std::move(key), value);
    }
  }

  SpanId id() const { return id_; }
  Tracer* tracer() const { return tracer_; }

 private:
  Tracer* tracer_ = nullptr;
  SpanId id_ = 0;
};

}  // namespace lusail::obs

#endif  // LUSAIL_OBS_TRACE_H_
