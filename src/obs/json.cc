#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lusail::obs {

namespace {

const JsonValue& NullValue() {
  static const JsonValue null;
  return null;
}

/// Shortest decimal form that parses back to exactly the same double;
/// integers within the exact range print without an exponent or fraction.
std::string NumberToString(double d) {
  if (!std::isfinite(d)) return "0";
  double integral;
  if (std::modf(d, &integral) == 0.0 && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    return buf;
  }
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

const JsonValue& JsonValue::Get(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return v;
  }
  return NullValue();
}

void JsonValue::SerializeTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent <= 0) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      *out += NumberToString(number_);
      break;
    case Type::kString:
      out->push_back('"');
      *out += JsonEscape(string_);
      out->push_back('"');
      break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        array_[i].SerializeTo(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        out->push_back('"');
        *out += JsonEscape(members_[i].first);
        *out += indent > 0 ? "\": " : "\":";
        members_[i].second.SerializeTo(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(&out, 0, 0);
  return out;
}

std::string JsonValue::Pretty() const {
  std::string out;
  SerializeTo(&out, 2, 0);
  return out;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return members_ == other.members_;
  }
  return false;
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    LUSAIL_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      LUSAIL_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue(true);
    if (ConsumeWord("false")) return JsonValue(false);
    if (ConsumeWord("null")) return JsonValue();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      LUSAIL_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      LUSAIL_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      obj.Set(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      LUSAIL_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      arr.Append(std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad hex digit in \\u escape");
          }
          // UTF-8 encode (no surrogate-pair handling; the observability
          // layer never emits non-BMP escapes).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_]))) digits = true;
      ++pos_;
    }
    if (!digits) return Error("invalid number");
    return JsonValue(std::strtod(text_.substr(start, pos_ - start).c_str(),
                                 nullptr));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace lusail::obs
