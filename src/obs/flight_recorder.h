#ifndef LUSAIL_OBS_FLIGHT_RECORDER_H_
#define LUSAIL_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace lusail::obs {

/// One completed query's black-box record. Both sides of the wire fill
/// the subset that applies to them: the federator records phase timings
/// and profile counters, an endpointd records evaluation time, rows, and
/// truncation. Unused fields stay at their defaults and still serialize,
/// so the /debug/queries schema is uniform.
struct FlightRecord {
  uint64_t sequence = 0;    ///< Monotonic per recorder; assigned on Record.
  double unix_ms = 0.0;     ///< Wall-clock completion time (assigned if 0).
  std::string query_hash;   ///< 16 hex chars (FNV-1a 64 of the query text).
  std::string trace_id;     ///< Empty when the query was not traced.
  std::string status = "ok";  ///< "ok" or the StatusCode name.
  std::string served_by;    ///< Winning replica id, when replicated.
  bool hedged = false;
  bool cancelled = false;   ///< Explicit cancellation (not deadline expiry).
  bool partial = false;     ///< Degraded: some endpoint contribution lost.
  bool truncated = false;   ///< Result rows were cut at a server cap.
  bool slow = false;        ///< Crossed the recorder's slow threshold.
  uint64_t rows = 0;
  uint64_t requests = 0;    ///< Endpoint requests issued (federator side).
  uint64_t cache_hits = 0;  ///< Federation-cache hits for this query.
  double total_ms = 0.0;
  double source_selection_ms = 0.0;
  double analysis_ms = 0.0;
  double execution_ms = 0.0;
  double network_ms = 0.0;

  JsonValue ToJson() const;
};

/// FNV-1a 64 of the query text — the stable, log-greppable identity of a
/// query shape without reproducing (possibly huge) query text in logs.
uint64_t HashQueryText(const std::string& text);

/// HashQueryText as 16 lowercase hex characters.
std::string QueryHashHex(const std::string& text);

struct FlightRecorderOptions {
  /// Ring size: the last `capacity` completed queries stay inspectable.
  size_t capacity = 128;

  /// Queries at or above this total time are flagged slow and logged
  /// even without log_json; 0 disables the slow-query log.
  double slow_threshold_ms = 0.0;

  /// Emit one JSON line per completed query (--log-json).
  bool log_json = false;

  /// Where log lines go; nullptr = stderr.
  std::FILE* stream = nullptr;
};

/// Fixed-size ring buffer of the last K completed query records, with a
/// threshold-based slow-query log and structured one-line JSON logging.
/// Record() is one short mutex hold plus (when logging is on) one stdio
/// write; readers copy records out, so a /debug/queries scrape never
/// blocks query completion for long. Thread-safe.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Stamps sequence (and unix_ms when unset), classifies slow, pushes
  /// into the ring, and emits the configured log lines.
  void Record(FlightRecord record);

  /// The most recent `n` records, newest first (all of them when n == 0
  /// or n exceeds what's buffered).
  std::vector<FlightRecord> Recent(size_t n = 0) const;

  uint64_t total_recorded() const;
  uint64_t slow_queries() const;

  /// {"total":N,"slow":M,"queries":[...newest first...]} — the body of
  /// GET /debug/queries?n=.
  JsonValue ToJson(size_t n = 0) const;

  const FlightRecorderOptions& options() const { return options_; }

 private:
  FlightRecorderOptions options_;
  mutable std::mutex mu_;
  std::deque<FlightRecord> ring_;
  uint64_t total_ = 0;
  uint64_t slow_ = 0;
};

}  // namespace lusail::obs

#endif  // LUSAIL_OBS_FLIGHT_RECORDER_H_
