#ifndef LUSAIL_OBS_ENDPOINT_STATS_H_
#define LUSAIL_OBS_ENDPOINT_STATS_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace lusail::obs {

class MetricsSnapshot;  // metrics.h includes this header; declared here
                        // to break the cycle.

/// Mergeable log-bucketed latency histogram. Bucket b holds samples whose
/// latency in microseconds lies in [2^(b-1), 2^b) (bucket 0 holds < 1 us),
/// so the whole dynamic range from sub-microsecond to hours fits in 64
/// buckets with bounded relative error (each bucket spans a factor of 2,
/// so a percentile estimate is off by at most ~41% — the geometric mean
/// of the bucket bounds is reported).
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(double latency_ms);

  /// The `p`-quantile estimate (p in [0, 1]) in milliseconds, 0 when
  /// empty. Exact min/max are used for the extreme quantiles.
  double Percentile(double p) const;

  double P50() const { return Percentile(0.50); }
  double P95() const { return Percentile(0.95); }
  double P99() const { return Percentile(0.99); }

  uint64_t count() const { return count_; }
  double MeanMs() const;
  double MinMs() const;
  double MaxMs() const;

  void Merge(const LatencyHistogram& other);

  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

  JsonValue ToJson() const;

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t total_us_ = 0;
  uint64_t min_us_ = 0;
  uint64_t max_us_ = 0;
};

/// Cross-query counters for one endpoint, accumulated by the federation's
/// request path. `latency` covers successful requests only; failures are
/// classified into errors vs. timeouts.
struct EndpointStats {
  uint64_t requests = 0;  ///< Completed requests (success + failure).
  uint64_t successes = 0;
  uint64_t errors = 0;    ///< Non-timeout failures.
  uint64_t timeouts = 0;
  uint64_t retries = 0;
  uint64_t breaker_rejections = 0;
  uint64_t breaker_trips = 0;  ///< Breaker transitions to open.
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t rows_received = 0;
  // Transport counters, filled only for endpoints reached over a real
  // socket (rpc::HttpSparqlEndpoint); in-process endpoints leave them 0.
  uint64_t network_requests = 0;     ///< Requests that crossed a socket.
  uint64_t connections_opened = 0;   ///< Fresh TCP connects.
  uint64_t connections_reused = 0;   ///< Pooled keep-alive reuses.
  uint64_t wire_bytes_sent = 0;      ///< Bytes written incl. HTTP framing.
  uint64_t wire_bytes_received = 0;  ///< Bytes read incl. HTTP framing.
  LatencyHistogram latency;

  void Merge(const EndpointStats& other);
  JsonValue ToJson() const;
};

/// Everything one completed endpoint exchange contributes to the stats,
/// applied under a single registry lock so a concurrent scrape can never
/// observe the resilience counters ahead of the request counter.
struct EndpointExchange {
  bool success = false;
  bool timeout = false;       ///< Classifies a failure; ignored on success.
  double latency_ms = 0.0;    ///< Recorded only on success.
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t rows = 0;
  uint64_t retries = 0;
  uint64_t breaker_rejections = 0;
  uint64_t breaker_trips = 0;
  bool network = false;       ///< The request crossed a real socket.
  bool reused_connection = false;
  uint64_t wire_bytes_sent = 0;
  uint64_t wire_bytes_received = 0;
};

/// Thread-safe registry of per-endpoint statistics spanning queries and
/// engines. Attach one to a Federation (set_stats_registry) and every
/// request any engine issues through that federation is accounted here;
/// registries from different federations (or processes) merge.
class EndpointStatsRegistry {
 public:
  EndpointStatsRegistry() = default;
  EndpointStatsRegistry(const EndpointStatsRegistry&) = delete;
  EndpointStatsRegistry& operator=(const EndpointStatsRegistry&) = delete;

  /// Applies a whole exchange (outcome + resilience + transport) in one
  /// lock acquisition. Preferred over the piecemeal Record* methods for
  /// per-request accounting: cheaper, and atomic with respect to All().
  void RecordExchange(const std::string& endpoint_id,
                      const EndpointExchange& exchange);

  void RecordSuccess(const std::string& endpoint_id, double latency_ms,
                     uint64_t bytes_sent, uint64_t bytes_received,
                     uint64_t rows);
  void RecordFailure(const std::string& endpoint_id, bool timeout);
  void RecordResilience(const std::string& endpoint_id, uint64_t retries,
                        uint64_t breaker_rejections, uint64_t breaker_trips);
  /// Transport accounting for a request that crossed a real socket.
  void RecordTransport(const std::string& endpoint_id, bool reused_connection,
                       uint64_t wire_bytes_sent, uint64_t wire_bytes_received);

  /// Copy of one endpoint's stats (default-constructed when unknown).
  EndpointStats Get(const std::string& endpoint_id) const;

  /// All endpoints, sorted by id for deterministic reports.
  std::vector<std::pair<std::string, EndpointStats>> All() const;

  size_t size() const;
  void Clear();

  /// Folds another registry into this one (per-endpoint counter sums and
  /// histogram merges).
  void Merge(const EndpointStatsRegistry& other);

  /// {"endpoints": {"<id>": {...counters, latency percentiles...}}}
  JsonValue ToJson() const;

  /// Fixed-width table for terminal output.
  std::string ToText() const;

  /// Emits lusail_endpoint_* counters and the success-latency histogram,
  /// one sample per endpoint labelled {endpoint=<id>}.
  void ExportMetrics(MetricsSnapshot* snapshot) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, EndpointStats> stats_;
};

}  // namespace lusail::obs

#endif  // LUSAIL_OBS_ENDPOINT_STATS_H_
