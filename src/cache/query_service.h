#ifndef LUSAIL_CACHE_QUERY_SERVICE_H_
#define LUSAIL_CACHE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/cancel.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/lusail_engine.h"
#include "core/options.h"
#include "federation/federation.h"
#include "obs/endpoint_stats.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace lusail::cache {

struct QueryServiceOptions {
  /// Queries executed concurrently; 0 falls back to 4.
  size_t max_concurrent = 4;
  /// Admission cap: Submit rejects with kUnavailable once this many
  /// queries are in flight (running + queued). 0 means unbounded.
  size_t max_pending = 0;
  /// Engine configuration shared by every query this service runs.
  core::LusailOptions engine;
  /// When non-null, every finished query (success or failure) is filed
  /// into this recorder with its phase timings and request counters.
  /// Non-owning; must outlive the service.
  obs::FlightRecorder* flight_recorder = nullptr;
};

/// Cumulative Submit/completion counters. `in_flight` is the current
/// admission-cap occupancy, split into `queued` (accepted, waiting for a
/// worker) and `running` (executing on a worker). `wait` is the queue
/// wait-time distribution — admission to execution start — the signal
/// that tells an operator the service is saturated before rejections do.
struct QueryServiceStats {
  uint64_t accepted = 0;
  uint64_t rejected = 0;   ///< Turned away by the admission cap.
  uint64_t completed = 0;  ///< Finished with an OK status.
  uint64_t failed = 0;     ///< Finished with a non-OK status.
  uint64_t in_flight = 0;  ///< queued + running.
  uint64_t queued = 0;
  uint64_t running = 0;
  /// Queries whose deadline had already expired when they dequeued; they
  /// fail fast with kTimeout instead of executing. A rising count means
  /// clients give the service less budget than its queue wait.
  uint64_t expired_in_queue = 0;
  uint64_t cancelled = 0;  ///< Cancel(id) calls that matched a live query.
  obs::LatencyHistogram wait;  ///< Queue wait, p50/p95/p99 via ToJson.

  obs::JsonValue ToJson() const;
};

/// Handle returned by SubmitCancellable: the service-assigned query id
/// (usable with Cancel) plus the result future.
struct SubmittedQuery {
  uint64_t id = 0;
  std::future<Result<fed::FederatedResult>> future;
};

/// Multi-query serving layer: runs up to `max_concurrent` federated
/// queries at once against one shared Federation, engine thread pool,
/// cross-query FederationCache, and endpoint stats registry. Submit is
/// non-blocking — it either enqueues the query onto the service's worker
/// pool and returns a future, or rejects immediately when the admission
/// cap is reached. All engine state touched by concurrent queries (ASK /
/// check caches, the shared FederationCache, endpoint stats) is
/// internally synchronized, so N in-flight queries return exactly the
/// rows sequential execution would.
class QueryService {
 public:
  QueryService(const fed::Federation* federation,
               QueryServiceOptions options = {});
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Schedules `sparql_text`; the future resolves to the query result or
  /// to the engine's error. Returns kUnavailable without scheduling when
  /// `max_pending` queries are already in flight. A query that waited in
  /// the queue past its deadline fails fast with kTimeout on dequeue
  /// (counted as `expired_in_queue`), never executing.
  Result<std::future<Result<fed::FederatedResult>>> Submit(
      std::string sparql_text, Deadline deadline = Deadline());

  /// Like Submit, but also returns the query id so the caller can
  /// Cancel() it while it is queued or running.
  Result<SubmittedQuery> SubmitCancellable(std::string sparql_text,
                                           Deadline deadline = Deadline());

  /// Requests cooperative cancellation of a queued or running query.
  /// Returns true when `query_id` named a live query (its future will
  /// resolve to kTimeout within one work chunk); false when the query
  /// already finished or never existed.
  bool Cancel(uint64_t query_id);

  /// Blocks until every accepted query has finished.
  void Drain();

  QueryServiceStats Stats() const;

  /// The Stats() counters plus an "endpoints" section with each
  /// endpoint's circuit-breaker state and — for replica groups and
  /// resilient wrappers — failover/hedge counters and per-replica
  /// health, and a "cache" section when a FederationCache is attached.
  obs::JsonValue StatsJson() const;

  /// Emits lusail_service_* counters, the queue-wait histogram, and the
  /// nested exports of every endpoint wrapper plus the federation cache
  /// — everything /metrics needs from the serving layer in one call.
  void ExportMetrics(obs::MetricsSnapshot* snapshot) const;

  /// Warm-loads the federation's shared FederationCache from a
  /// SaveCacheSnapshot file (verdict + COUNT tiers), so a restarted
  /// service answers source-selection probes without a cold ASK
  /// stampede. Returns the number of entries restored; kNotFound when no
  /// snapshot exists (a cold start, not an error worth dying for).
  Result<uint64_t> WarmLoadCache(const std::string& path);

  /// Persists the federation's shared FederationCache (see
  /// FederationCache::SaveToDisk). Call at shutdown, after Drain().
  Status SaveCacheSnapshot(const std::string& path) const;

  core::LusailEngine* engine() { return &engine_; }
  const QueryServiceOptions& options() const { return options_; }

 private:
  QueryServiceOptions options_;
  core::LusailEngine engine_;
  ThreadPool workers_;

  mutable std::mutex mu_;
  std::condition_variable drained_;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t in_flight_ = 0;
  uint64_t running_ = 0;  ///< in_flight_ - running_ queries are queued.
  uint64_t expired_in_queue_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t next_id_ = 1;
  /// Cancellation tokens of queued + running queries, by query id.
  std::unordered_map<uint64_t, CancelToken> active_;
  obs::LatencyHistogram wait_;
};

}  // namespace lusail::cache

#endif  // LUSAIL_CACHE_QUERY_SERVICE_H_
