#include "cache/query_service.h"

#include <utility>

#include "cache/federation_cache.h"
#include "net/replica.h"
#include "net/resilience.h"

namespace lusail::cache {

obs::JsonValue QueryServiceStats::ToJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("accepted", accepted);
  out.Set("rejected", rejected);
  out.Set("completed", completed);
  out.Set("failed", failed);
  out.Set("in_flight", in_flight);
  out.Set("queued", queued);
  out.Set("running", running);
  out.Set("expired_in_queue", expired_in_queue);
  out.Set("cancelled", cancelled);
  out.Set("wait", wait.ToJson());
  return out;
}

QueryService::QueryService(const fed::Federation* federation,
                           QueryServiceOptions options)
    : options_(std::move(options)),
      engine_(federation, options_.engine),
      workers_(options_.max_concurrent == 0 ? 4 : options_.max_concurrent) {}

Result<std::future<Result<fed::FederatedResult>>> QueryService::Submit(
    std::string sparql_text, Deadline deadline) {
  LUSAIL_ASSIGN_OR_RETURN(SubmittedQuery submitted,
                          SubmitCancellable(std::move(sparql_text), deadline));
  return std::move(submitted.future);
}

Result<SubmittedQuery> QueryService::SubmitCancellable(std::string sparql_text,
                                                       Deadline deadline) {
  CancelToken token = CancelToken::Cancellable(deadline);
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.max_pending > 0 && in_flight_ >= options_.max_pending) {
      ++rejected_;
      return Status::Unavailable("query service at admission cap (" +
                                 std::to_string(options_.max_pending) +
                                 " in flight)");
    }
    ++accepted_;
    ++in_flight_;
    id = next_id_++;
    active_.emplace(id, token);
  }
  SubmittedQuery submitted;
  submitted.id = id;
  submitted.future = workers_.Submit(
      [this, id, token, text = std::move(sparql_text),
       queued_at = Stopwatch()]() {
        bool expired_queued = false;
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++running_;
          wait_.Record(queued_at.ElapsedMillis());
          // A query that waited past its deadline (or was cancelled while
          // queued) must not execute at all: the client gave up before a
          // worker ever picked it up.
          if (token.Cancelled()) {
            expired_queued = !token.CancelRequested();
            if (expired_queued) ++expired_in_queue_;
          }
        }
        Result<fed::FederatedResult> result =
            token.Cancelled() ? Result<fed::FederatedResult>(
                                    token.StatusAt("queue wait"))
                              : engine_.Execute(text, token);
        {
          std::lock_guard<std::mutex> lock(mu_);
          --in_flight_;
          --running_;
          active_.erase(id);
          if (result.ok()) {
            ++completed_;
          } else {
            ++failed_;
          }
        }
        drained_.notify_all();
        if (options_.flight_recorder != nullptr) {
          obs::FlightRecord record;
          record.query_hash = obs::QueryHashHex(text);
          record.total_ms = queued_at.ElapsedMillis();
          if (result.ok()) {
            const fed::ExecutionProfile& profile = result.value().profile;
            record.rows = result.value().table.NumRows();
            record.requests = profile.requests;
            record.hedged = profile.hedged_requests > 0;
            record.partial = profile.partial;
            record.total_ms = profile.total_ms;
            record.source_selection_ms = profile.source_selection_ms;
            record.analysis_ms = profile.analysis_ms;
            record.execution_ms = profile.execution_ms;
            record.network_ms = profile.network_ms;
            if (profile.trace != nullptr) {
              record.trace_id = profile.trace->trace_id;
            }
          } else {
            record.status = StatusCodeToString(result.status().code());
            record.cancelled = token.CancelRequested();
          }
          options_.flight_recorder->Record(std::move(record));
        }
        return result;
      });
  return submitted;
}

bool QueryService::Cancel(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(query_id);
  if (it == active_.end()) return false;
  it->second.Cancel();
  ++cancelled_;
  return true;
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] { return in_flight_ == 0; });
}

QueryServiceStats QueryService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryServiceStats s;
  s.accepted = accepted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.failed = failed_;
  s.in_flight = in_flight_;
  s.running = running_;
  s.queued = in_flight_ - running_;
  s.expired_in_queue = expired_in_queue_;
  s.cancelled = cancelled_;
  s.wait.Merge(wait_);
  return s;
}

obs::JsonValue QueryService::StatsJson() const {
  obs::JsonValue out = Stats().ToJson();
  const fed::Federation* federation = engine_.federation();
  if (federation == nullptr) return out;
  obs::JsonValue endpoints = obs::JsonValue::Array();
  for (size_t i = 0; i < federation->size(); ++i) {
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("id", federation->id(i));
    entry.Set("breaker_state",
              std::string(net::CircuitBreaker::StateName(
                  federation->breaker(i)->state())));
    entry.Set("breaker_trips", federation->breaker(i)->trips());
    net::Endpoint* endpoint = federation->endpoint(i);
    if (auto* resilient = dynamic_cast<net::ResilientEndpoint*>(endpoint)) {
      // Includes a nested "replica_group" when the wrapper sits over one.
      entry.Set("resilience", resilient->StatsJson());
    } else if (auto* group = dynamic_cast<net::ReplicaGroup*>(endpoint)) {
      entry.Set("replica_group", group->StatsJson());
    }
    endpoints.Append(std::move(entry));
  }
  out.Set("endpoints", std::move(endpoints));
  if (FederationCache* cache = federation->query_cache()) {
    out.Set("cache", cache->ToJson());
  }
  return out;
}

void QueryService::ExportMetrics(obs::MetricsSnapshot* snapshot) const {
  QueryServiceStats s = Stats();
  obs::MetricLabels none;
  snapshot->AddCounter("lusail_service_accepted_total",
                       "Queries admitted by the service.", none,
                       static_cast<double>(s.accepted));
  snapshot->AddCounter("lusail_service_rejected_total",
                       "Queries turned away by the admission cap.", none,
                       static_cast<double>(s.rejected));
  snapshot->AddCounter("lusail_service_completed_total",
                       "Queries that finished with an OK status.", none,
                       static_cast<double>(s.completed));
  snapshot->AddCounter("lusail_service_failed_total",
                       "Queries that finished with a non-OK status.", none,
                       static_cast<double>(s.failed));
  snapshot->AddCounter("lusail_service_expired_in_queue_total",
                       "Queries whose deadline expired before execution.",
                       none, static_cast<double>(s.expired_in_queue));
  snapshot->AddCounter("lusail_service_cancelled_total",
                       "Cancel() calls that matched a live query.", none,
                       static_cast<double>(s.cancelled));
  snapshot->AddGauge("lusail_service_in_flight",
                     "Queries currently queued or running.", none,
                     static_cast<double>(s.in_flight));
  snapshot->AddGauge("lusail_service_running",
                     "Queries currently executing on a worker.", none,
                     static_cast<double>(s.running));
  snapshot->AddHistogram("lusail_service_queue_wait_seconds",
                         "Admission-to-execution queue wait.", none, s.wait);
  // lusail_engine_dictionary_* — the id space the service executes in.
  engine_.ExportMetrics(snapshot);

  const fed::Federation* federation = engine_.federation();
  if (federation == nullptr) return;
  for (size_t i = 0; i < federation->size(); ++i) {
    net::Endpoint* endpoint = federation->endpoint(i);
    if (auto* resilient = dynamic_cast<net::ResilientEndpoint*>(endpoint)) {
      resilient->ExportMetrics(snapshot);  // Includes a wrapped group.
    } else if (auto* group = dynamic_cast<net::ReplicaGroup*>(endpoint)) {
      group->ExportMetrics(snapshot);
    }
  }
  if (FederationCache* cache = federation->query_cache()) {
    cache->ExportMetrics(snapshot);
  }
}

Result<uint64_t> QueryService::WarmLoadCache(const std::string& path) {
  const fed::Federation* federation = engine_.federation();
  FederationCache* cache =
      federation != nullptr ? federation->query_cache() : nullptr;
  if (cache == nullptr) {
    return Status::InvalidArgument(
        "query service has no federation cache attached");
  }
  return cache->LoadFromDisk(path);
}

Status QueryService::SaveCacheSnapshot(const std::string& path) const {
  const fed::Federation* federation = engine_.federation();
  FederationCache* cache =
      federation != nullptr ? federation->query_cache() : nullptr;
  if (cache == nullptr) {
    return Status::InvalidArgument(
        "query service has no federation cache attached");
  }
  return cache->SaveToDisk(path);
}

}  // namespace lusail::cache
