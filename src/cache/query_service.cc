#include "cache/query_service.h"

#include <utility>

namespace lusail::cache {

obs::JsonValue QueryServiceStats::ToJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("accepted", accepted);
  out.Set("rejected", rejected);
  out.Set("completed", completed);
  out.Set("failed", failed);
  out.Set("in_flight", in_flight);
  out.Set("queued", queued);
  out.Set("running", running);
  out.Set("wait", wait.ToJson());
  return out;
}

QueryService::QueryService(const fed::Federation* federation,
                           QueryServiceOptions options)
    : options_(std::move(options)),
      engine_(federation, options_.engine),
      workers_(options_.max_concurrent == 0 ? 4 : options_.max_concurrent) {}

Result<std::future<Result<fed::FederatedResult>>> QueryService::Submit(
    std::string sparql_text, Deadline deadline) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.max_pending > 0 && in_flight_ >= options_.max_pending) {
      ++rejected_;
      return Status::Unavailable("query service at admission cap (" +
                                 std::to_string(options_.max_pending) +
                                 " in flight)");
    }
    ++accepted_;
    ++in_flight_;
  }
  return workers_.Submit(
      [this, text = std::move(sparql_text), deadline,
       queued_at = Stopwatch()]() {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++running_;
          wait_.Record(queued_at.ElapsedMillis());
        }
        Result<fed::FederatedResult> result = engine_.Execute(text, deadline);
        {
          std::lock_guard<std::mutex> lock(mu_);
          --in_flight_;
          --running_;
          if (result.ok()) {
            ++completed_;
          } else {
            ++failed_;
          }
        }
        drained_.notify_all();
        return result;
      });
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] { return in_flight_ == 0; });
}

QueryServiceStats QueryService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryServiceStats s;
  s.accepted = accepted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.failed = failed_;
  s.in_flight = in_flight_;
  s.running = running_;
  s.queued = in_flight_ - running_;
  s.wait.Merge(wait_);
  return s;
}

}  // namespace lusail::cache
