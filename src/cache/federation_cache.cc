#include "cache/federation_cache.h"

namespace lusail::cache {

obs::JsonValue TierStats::ToJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("hits", hits);
  out.Set("misses", misses);
  out.Set("hit_rate", HitRate());
  out.Set("insertions", insertions);
  out.Set("evictions", evictions);
  out.Set("invalidations", invalidations);
  out.Set("expired", expired);
  out.Set("entries", entries);
  out.Set("bytes", bytes);
  return out;
}

FederationCache::FederationCache(FederationCacheOptions options)
    : verdicts_(options.verdict_capacity, 0, options.verdict_max_age_ms),
      counts_(options.count_capacity, 0, options.count_max_age_ms),
      results_(options.result_capacity, options.result_byte_budget,
               options.result_max_age_ms) {}

std::string FederationCache::Key(const std::string& endpoint_id,
                                 const std::string& query_text) {
  return endpoint_id + "|" + query_text;
}

uint64_t FederationCache::ApproxTableBytes(const sparql::ResultTable& table) {
  // Heap footprint estimate: per-cell Term strings plus vector/optional
  // overhead. The exact constant matters less than being monotone in the
  // real footprint, so the byte budget bounds memory proportionally.
  uint64_t bytes = sizeof(sparql::ResultTable);
  for (const std::string& v : table.vars) bytes += v.size() + 32;
  for (const auto& row : table.rows) {
    bytes += 24;  // Row vector header.
    for (const auto& cell : row) {
      bytes += sizeof(std::optional<rdf::Term>);
      if (cell.has_value()) {
        bytes += cell->lexical().size() + cell->datatype().size() +
                 cell->lang().size();
      }
    }
  }
  return bytes;
}

std::optional<bool> FederationCache::GetVerdict(const std::string& key) {
  return verdicts_.Get(key);
}

void FederationCache::PutVerdict(const std::string& key,
                                 const std::string& endpoint_id,
                                 bool verdict) {
  verdicts_.Put(key, endpoint_id, verdict, sizeof(bool));
}

std::optional<uint64_t> FederationCache::GetCount(const std::string& key) {
  return counts_.Get(key);
}

void FederationCache::PutCount(const std::string& key,
                               const std::string& endpoint_id,
                               uint64_t count) {
  counts_.Put(key, endpoint_id, count, sizeof(uint64_t));
}

std::optional<sparql::ResultTable> FederationCache::GetResult(
    const std::string& endpoint_id, const std::string& query_text) {
  return results_.Get(Key(endpoint_id, query_text));
}

void FederationCache::PutResult(const std::string& endpoint_id,
                                const std::string& query_text,
                                const sparql::ResultTable& table) {
  results_.Put(Key(endpoint_id, query_text), endpoint_id, table,
               ApproxTableBytes(table));
}

void FederationCache::Invalidate(const std::string& endpoint_id) {
  verdicts_.InvalidateEndpoint(endpoint_id);
  counts_.InvalidateEndpoint(endpoint_id);
  results_.InvalidateEndpoint(endpoint_id);
}

void FederationCache::AdvanceTimeForTesting(double ms) {
  verdicts_.AdvanceTimeForTesting(ms);
  counts_.AdvanceTimeForTesting(ms);
  results_.AdvanceTimeForTesting(ms);
}

void FederationCache::Clear() {
  verdicts_.Clear();
  counts_.Clear();
  results_.Clear();
}

obs::JsonValue FederationCache::ToJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("verdicts", VerdictStats().ToJson());
  out.Set("counts", CountStats().ToJson());
  out.Set("results", ResultStats().ToJson());
  return out;
}

}  // namespace lusail::cache
