#include "cache/federation_cache.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

namespace lusail::cache {

// ---------------------------------------------------------------------
// Snapshot wire format (all integers little-endian):
//
//   8 bytes  magic "LUSCACHE"
//   u32      version (currently 1)
//   2 tier blocks (verdicts, then counts), each:
//     u64    number of generation records
//       { u64 id length, id bytes, u64 generation } ...
//     u64    number of entries (MRU first)
//       { u64 key length, key bytes,
//         u64 endpoint-id length, endpoint-id bytes,
//         u64 generation, u64 value } ...
//   u64      FNV-1a 64 checksum of everything above
// ---------------------------------------------------------------------

namespace {

constexpr char kMagic[8] = {'L', 'U', 'S', 'C', 'A', 'C', 'H', 'E'};
constexpr uint32_t kSnapshotVersion = 1;

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendString(std::string* out, const std::string& s) {
  AppendU64(out, s.size());
  out->append(s);
}

uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t hash = 1469598103934665603ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Bounds-checked little-endian reader over the snapshot bytes. Every
/// accessor degrades to "ok() == false" instead of reading out of
/// bounds, so a truncated or bit-flipped file that somehow passes the
/// checksum still cannot crash the loader.
class SnapshotReader {
 public:
  SnapshotReader(const std::string& data, size_t pos, size_t end)
      : data_(data), pos_(pos), end_(end) {}

  uint32_t U32() {
    if (!Require(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  uint64_t U64() {
    if (!Require(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::string Str() {
    uint64_t length = U64();
    if (!ok_ || !Require(length)) {
      ok_ = false;
      return std::string();
    }
    std::string s = data_.substr(pos_, length);
    pos_ += length;
    return s;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == end_; }

 private:
  bool Require(uint64_t bytes) {
    if (!ok_ || bytes > end_ - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::string& data_;
  size_t pos_;
  size_t end_;
  bool ok_ = true;
};

template <typename V, typename ToU64>
void AppendTier(std::string* out, const PersistedTier<V>& tier,
                ToU64 to_u64) {
  AppendU64(out, tier.generations.size());
  for (const auto& [endpoint_id, generation] : tier.generations) {
    AppendString(out, endpoint_id);
    AppendU64(out, generation);
  }
  AppendU64(out, tier.entries.size());
  for (const PersistedEntry<V>& entry : tier.entries) {
    AppendString(out, entry.key);
    AppendString(out, entry.endpoint_id);
    AppendU64(out, entry.generation);
    AppendU64(out, to_u64(entry.value));
  }
}

template <typename V, typename FromU64>
PersistedTier<V> ReadTier(SnapshotReader* reader, FromU64 from_u64) {
  PersistedTier<V> tier;
  uint64_t n_generations = reader->U64();
  for (uint64_t i = 0; reader->ok() && i < n_generations; ++i) {
    std::string endpoint_id = reader->Str();
    uint64_t generation = reader->U64();
    tier.generations.emplace_back(std::move(endpoint_id), generation);
  }
  uint64_t n_entries = reader->U64();
  for (uint64_t i = 0; reader->ok() && i < n_entries; ++i) {
    PersistedEntry<V> entry;
    entry.key = reader->Str();
    entry.endpoint_id = reader->Str();
    entry.generation = reader->U64();
    entry.value = from_u64(reader->U64());
    tier.entries.push_back(std::move(entry));
  }
  return tier;
}

}  // namespace

obs::JsonValue TierStats::ToJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("hits", hits);
  out.Set("misses", misses);
  out.Set("hit_rate", HitRate());
  out.Set("insertions", insertions);
  out.Set("evictions", evictions);
  out.Set("invalidations", invalidations);
  out.Set("expired", expired);
  out.Set("entries", entries);
  out.Set("bytes", bytes);
  return out;
}

FederationCache::FederationCache(FederationCacheOptions options)
    : verdicts_(options.verdict_capacity, 0, options.verdict_max_age_ms),
      counts_(options.count_capacity, 0, options.count_max_age_ms),
      results_(options.result_capacity, options.result_byte_budget,
               options.result_max_age_ms) {}

std::string FederationCache::Key(const std::string& endpoint_id,
                                 const std::string& query_text) {
  return endpoint_id + "|" + query_text;
}

uint64_t FederationCache::ApproxTableBytes(const sparql::ResultTable& table) {
  // Heap footprint estimate: per-cell Term strings plus vector/optional
  // overhead. The exact constant matters less than being monotone in the
  // real footprint, so the byte budget bounds memory proportionally.
  uint64_t bytes = sizeof(sparql::ResultTable);
  for (const std::string& v : table.vars) bytes += v.size() + 32;
  for (const auto& row : table.rows) {
    bytes += 24;  // Row vector header.
    for (const auto& cell : row) {
      bytes += sizeof(std::optional<rdf::Term>);
      if (cell.has_value()) {
        bytes += cell->lexical().size() + cell->datatype().size() +
                 cell->lang().size();
      }
    }
  }
  return bytes;
}

std::optional<bool> FederationCache::GetVerdict(const std::string& key) {
  return verdicts_.Get(key);
}

void FederationCache::PutVerdict(const std::string& key,
                                 const std::string& endpoint_id,
                                 bool verdict) {
  verdicts_.Put(key, endpoint_id, verdict, sizeof(bool));
}

std::optional<uint64_t> FederationCache::GetCount(const std::string& key) {
  return counts_.Get(key);
}

void FederationCache::PutCount(const std::string& key,
                               const std::string& endpoint_id,
                               uint64_t count) {
  counts_.Put(key, endpoint_id, count, sizeof(uint64_t));
}

std::optional<sparql::ResultTable> FederationCache::GetResult(
    const std::string& endpoint_id, const std::string& query_text) {
  return results_.Get(Key(endpoint_id, query_text));
}

void FederationCache::PutResult(const std::string& endpoint_id,
                                const std::string& query_text,
                                const sparql::ResultTable& table) {
  results_.Put(Key(endpoint_id, query_text), endpoint_id, table,
               ApproxTableBytes(table));
}

void FederationCache::Invalidate(const std::string& endpoint_id) {
  verdicts_.InvalidateEndpoint(endpoint_id);
  counts_.InvalidateEndpoint(endpoint_id);
  results_.InvalidateEndpoint(endpoint_id);
  // Logical endpoints fan out to their registered constituents: shard
  // members and replicas key cache entries by their own member ids, and
  // those entries describe the same underlying data.
  std::vector<std::string> members;
  {
    std::lock_guard<std::mutex> lock(members_mu_);
    auto it = members_.find(endpoint_id);
    if (it != members_.end()) members = it->second;
  }
  for (const std::string& member : members) {
    verdicts_.InvalidateEndpoint(member);
    counts_.InvalidateEndpoint(member);
    results_.InvalidateEndpoint(member);
  }
}

void FederationCache::RegisterMemberIds(
    const std::string& logical_id,
    const std::vector<std::string>& member_ids) {
  std::lock_guard<std::mutex> lock(members_mu_);
  std::vector<std::string>& list = members_[logical_id];
  for (const std::string& member : member_ids) {
    if (member == logical_id) continue;  // Self-registration would recurse.
    if (std::find(list.begin(), list.end(), member) == list.end()) {
      list.push_back(member);
    }
  }
}

void FederationCache::AdvanceTimeForTesting(double ms) {
  verdicts_.AdvanceTimeForTesting(ms);
  counts_.AdvanceTimeForTesting(ms);
  results_.AdvanceTimeForTesting(ms);
}

void FederationCache::Clear() {
  verdicts_.Clear();
  counts_.Clear();
  results_.Clear();
}

Status FederationCache::SaveToDisk(const std::string& path) const {
  std::string buf;
  buf.append(kMagic, sizeof(kMagic));
  AppendU32(&buf, kSnapshotVersion);
  AppendTier(&buf, verdicts_.SnapshotForPersist(),
             [](bool v) -> uint64_t { return v ? 1 : 0; });
  AppendTier(&buf, counts_.SnapshotForPersist(),
             [](uint64_t v) { return v; });
  AppendU64(&buf, Fnv1a64(buf.data(), buf.size()));

  // Write-then-rename so a crash mid-save leaves the previous snapshot
  // (or no snapshot) intact, never a torn file.
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot write cache snapshot " + tmp);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    out.flush();
    if (!out) return Status::Internal("short write to cache snapshot " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot move cache snapshot into place: " + path);
  }
  return Status::OK();
}

Result<uint64_t> FederationCache::LoadFromDisk(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no cache snapshot at " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  constexpr size_t kHeaderBytes = sizeof(kMagic) + 4;
  constexpr size_t kFooterBytes = 8;
  if (data.size() < kHeaderBytes + kFooterBytes) {
    return Status::InvalidArgument("cache snapshot truncated: " + path);
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a cache snapshot: " + path);
  }
  size_t body_end = data.size() - kFooterBytes;
  SnapshotReader footer(data, body_end, data.size());
  uint64_t stored_checksum = footer.U64();
  if (Fnv1a64(data.data(), body_end) != stored_checksum) {
    return Status::InvalidArgument("cache snapshot checksum mismatch: " +
                                   path);
  }
  SnapshotReader reader(data, sizeof(kMagic), body_end);
  uint32_t version = reader.U32();
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("unsupported cache snapshot version " +
                                   std::to_string(version) + ": " + path);
  }
  PersistedTier<bool> verdict_tier =
      ReadTier<bool>(&reader, [](uint64_t v) { return v != 0; });
  PersistedTier<uint64_t> count_tier =
      ReadTier<uint64_t>(&reader, [](uint64_t v) { return v; });
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("malformed cache snapshot: " + path);
  }
  uint64_t restored = verdicts_.RestorePersisted(verdict_tier, sizeof(bool));
  restored += counts_.RestorePersisted(count_tier, sizeof(uint64_t));
  return restored;
}

obs::JsonValue FederationCache::ToJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("verdicts", VerdictStats().ToJson());
  out.Set("counts", CountStats().ToJson());
  out.Set("results", ResultStats().ToJson());
  return out;
}

void FederationCache::ExportMetrics(obs::MetricsSnapshot* snapshot) const {
  struct Tier {
    const char* name;
    TierStats stats;
  };
  const Tier tiers[] = {{"verdicts", VerdictStats()},
                        {"counts", CountStats()},
                        {"results", ResultStats()}};
  for (const Tier& tier : tiers) {
    obs::MetricLabels labels = {{"tier", tier.name}};
    snapshot->AddCounter("lusail_cache_hits_total",
                         "Cache lookups served from this tier.", labels,
                         static_cast<double>(tier.stats.hits));
    snapshot->AddCounter("lusail_cache_misses_total",
                         "Cache lookups that missed this tier.", labels,
                         static_cast<double>(tier.stats.misses));
    snapshot->AddCounter("lusail_cache_insertions_total",
                         "Entries inserted into this tier.", labels,
                         static_cast<double>(tier.stats.insertions));
    snapshot->AddCounter("lusail_cache_evictions_total",
                         "Entries evicted to stay within capacity.", labels,
                         static_cast<double>(tier.stats.evictions));
    snapshot->AddCounter("lusail_cache_invalidations_total",
                         "Entries dropped by endpoint invalidation.", labels,
                         static_cast<double>(tier.stats.invalidations));
    snapshot->AddCounter("lusail_cache_expired_total",
                         "Entries dropped after outliving their TTL.", labels,
                         static_cast<double>(tier.stats.expired));
    snapshot->AddGauge("lusail_cache_entries",
                       "Entries currently resident in this tier.", labels,
                       static_cast<double>(tier.stats.entries));
    snapshot->AddGauge("lusail_cache_bytes",
                       "Approximate bytes currently resident in this tier.",
                       labels, static_cast<double>(tier.stats.bytes));
  }
}

}  // namespace lusail::cache
