#ifndef LUSAIL_CACHE_CACHED_ENDPOINT_H_
#define LUSAIL_CACHE_CACHED_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "cache/federation_cache.h"
#include "net/endpoint.h"
#include "obs/json.h"

namespace lusail::cache {

/// Decorator memoizing ASK-query verdicts in a FederationCache's verdict
/// tier. This is the *server-side* counterpart of the federator's shared
/// verdict cache: a lusail_endpointd wraps its store endpoint in one, so
/// the source-selection ASK stampede a restarting federator fleet causes
/// is absorbed from memory — and, because the backing cache can
/// SaveToDisk/LoadFromDisk, from a warm-loaded snapshot after the server
/// itself restarts.
///
/// Only ASK queries are intercepted; everything else passes through
/// untouched. Correctness note: the backing cache's generation stamps
/// apply — call cache->Invalidate(id()) when the underlying store
/// mutates.
class CachedAskEndpoint : public net::Endpoint {
 public:
  /// `cache` is non-owning and must outlive this endpoint.
  CachedAskEndpoint(std::shared_ptr<net::Endpoint> inner,
                    FederationCache* cache)
      : inner_(std::move(inner)), cache_(cache) {}

  const std::string& id() const override { return inner_->id(); }

  Result<net::QueryResponse> Query(const std::string& text) override {
    return QueryCancellable(text, CancelToken());
  }

  Result<net::QueryResponse> QueryWithDeadline(
      const std::string& text, const Deadline& deadline) override {
    return QueryCancellable(text, CancelToken(deadline));
  }

  Result<net::QueryResponse> QueryCancellable(
      const std::string& text, const CancelToken& cancel) override;

  /// ASK queries answered from the verdict tier.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

  /// ASK queries that had to be evaluated by the inner endpoint (cold
  /// probes).
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// {"ask_hits": ..., "ask_misses": ...}
  obs::JsonValue StatsJson() const;

  /// Emits lusail_ask_cache_{hits,misses}_total{endpoint=<id>}.
  void ExportMetrics(obs::MetricsSnapshot* snapshot) const {
    obs::MetricLabels labels = {{"endpoint", id()}};
    snapshot->AddCounter("lusail_ask_cache_hits_total",
                         "ASK queries answered from the verdict tier.",
                         labels, static_cast<double>(hits()));
    snapshot->AddCounter("lusail_ask_cache_misses_total",
                         "ASK queries evaluated by the inner endpoint.",
                         labels, static_cast<double>(misses()));
  }

 private:
  std::shared_ptr<net::Endpoint> inner_;
  FederationCache* cache_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace lusail::cache

#endif  // LUSAIL_CACHE_CACHED_ENDPOINT_H_
