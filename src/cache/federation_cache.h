#ifndef LUSAIL_CACHE_FEDERATION_CACHE_H_
#define LUSAIL_CACHE_FEDERATION_CACHE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "sparql/result_table.h"

namespace lusail::cache {

/// Counters of one cache tier. `entries`/`bytes` are the current
/// occupancy; the rest are cumulative since construction (or Clear).
struct TierStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;      ///< Dropped to stay within capacity.
  uint64_t invalidations = 0;  ///< Dropped because Invalidate(endpoint)
                               ///< outdated them (counted lazily, on Get).
  uint64_t expired = 0;        ///< Dropped because they outlived max_age.
  uint64_t entries = 0;
  uint64_t bytes = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }

  obs::JsonValue ToJson() const;
};

/// One cache entry in its persistable form (no LRU links, no absolute
/// timestamps — steady_clock instants cannot survive a restart, so
/// restored entries get a fresh TTL clock).
template <typename V>
struct PersistedEntry {
  std::string key;
  std::string endpoint_id;
  uint64_t generation;
  V value;
};

/// A tier's persistable state: live entries (most recently used first)
/// plus the per-endpoint generation counters, so invalidations issued
/// before a save stay effective after a load.
template <typename V>
struct PersistedTier {
  std::vector<PersistedEntry<V>> entries;
  std::vector<std::pair<std::string, uint64_t>> generations;
};

/// Bounded, thread-safe LRU map with per-endpoint invalidation and
/// optional TTL expiry — the building block of every FederationCache
/// tier. Capacity is enforced both as an entry count and (when
/// `max_bytes` > 0) as a byte budget; the least recently used entries
/// are evicted first.
///
/// Staleness is handled lazily, so both mechanisms stay O(1):
///  - Each entry is stamped with its producing endpoint's *generation*.
///    InvalidateEndpoint bumps the generation (no sweep); a Get that
///    lands on an entry from an older generation drops it and misses.
///    Consequently Stats().entries may briefly count invalidated
///    entries until Gets (or capacity eviction) wash them out.
///  - With `max_age_ms` > 0, a Get that lands on an entry older than
///    the TTL drops it and misses (counted in `expired`).
template <typename V>
class LruTier {
 public:
  LruTier(size_t max_entries, uint64_t max_bytes, double max_age_ms = 0.0)
      : max_entries_(max_entries),
        max_bytes_(max_bytes),
        max_age_ms_(max_age_ms) {}
  LruTier(const LruTier&) = delete;
  LruTier& operator=(const LruTier&) = delete;

  std::optional<V> Get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    if (it->second->generation != GenerationLocked(it->second->endpoint_id)) {
      RemoveLocked(it);
      ++invalidations_;
      ++misses_;
      return std::nullopt;
    }
    if (max_age_ms_ > 0.0 &&
        NowMsLocked() - it->second->inserted_ms > max_age_ms_) {
      RemoveLocked(it);
      ++expired_;
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // Most recently used.
    return it->second->value;
  }

  void Put(const std::string& key, const std::string& endpoint_id, V value,
           uint64_t value_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t entry_bytes = value_bytes + key.size() + endpoint_id.size();
    uint64_t generation = GenerationLocked(endpoint_id);
    double now_ms = NowMsLocked();
    auto it = index_.find(key);
    if (it != index_.end()) {
      bytes_ -= it->second->bytes;
      it->second->value = std::move(value);
      it->second->endpoint_id = endpoint_id;
      it->second->bytes = entry_bytes;
      it->second->generation = generation;
      it->second->inserted_ms = now_ms;
      bytes_ += entry_bytes;
      lru_.splice(lru_.begin(), lru_, it->second);
    } else {
      lru_.push_front(Entry{key, endpoint_id, std::move(value), entry_bytes,
                            generation, now_ms});
      index_.emplace(key, lru_.begin());
      bytes_ += entry_bytes;
      ++insertions_;
    }
    EvictToCapacityLocked();
  }

  /// Outdates every entry produced by `endpoint_id` in O(1) by bumping
  /// its generation; the entries themselves are dropped lazily by Get.
  void InvalidateEndpoint(const std::string& endpoint_id) {
    std::lock_guard<std::mutex> lock(mu_);
    ++generations_[endpoint_id];
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
    generations_.clear();
    bytes_ = 0;
    hits_ = misses_ = insertions_ = evictions_ = invalidations_ = 0;
    expired_ = 0;
  }

  TierStats Stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    TierStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.insertions = insertions_;
    s.evictions = evictions_;
    s.invalidations = invalidations_;
    s.expired = expired_;
    s.entries = index_.size();
    s.bytes = bytes_;
    return s;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
  }

  /// Shifts this tier's notion of "now" forward, so TTL expiry is
  /// testable without sleeping.
  void AdvanceTimeForTesting(double ms) {
    std::lock_guard<std::mutex> lock(mu_);
    time_offset_ms_ += ms;
  }

  /// The tier's live state for persistence: entries in MRU-first order
  /// with stale (outdated generation) and TTL-expired entries already
  /// filtered out, plus the generation counters (sorted by endpoint id
  /// for deterministic snapshots).
  PersistedTier<V> SnapshotForPersist() const {
    std::lock_guard<std::mutex> lock(mu_);
    PersistedTier<V> out;
    out.generations.assign(generations_.begin(), generations_.end());
    std::sort(out.generations.begin(), out.generations.end());
    double now_ms = NowMsLocked();
    for (const Entry& entry : lru_) {
      if (entry.generation != GenerationLocked(entry.endpoint_id)) continue;
      if (max_age_ms_ > 0.0 && now_ms - entry.inserted_ms > max_age_ms_) {
        continue;
      }
      out.entries.push_back(PersistedEntry<V>{entry.key, entry.endpoint_id,
                                              entry.generation, entry.value});
    }
    return out;
  }

  /// Merges a persisted tier back in. Entries already live win over
  /// snapshot entries; generation counters take the max of live and
  /// persisted, so an entry invalidated before the save stays dead.
  /// `value_bytes` is the per-value byte charge (the caller knows V's
  /// footprint; this template does not). Returns how many entries were
  /// actually inserted (live entries and outdated generations are
  /// skipped).
  uint64_t RestorePersisted(const PersistedTier<V>& tier,
                            uint64_t value_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [endpoint_id, generation] : tier.generations) {
      uint64_t& current = generations_[endpoint_id];
      current = std::max(current, generation);
    }
    double now_ms = NowMsLocked();
    uint64_t restored = 0;
    // Reverse order: the snapshot is MRU-first and push_front reverses,
    // so iterating back-to-front lands the MRU entry at the front again.
    for (auto it = tier.entries.rbegin(); it != tier.entries.rend(); ++it) {
      if (index_.find(it->key) != index_.end()) continue;
      if (it->generation != GenerationLocked(it->endpoint_id)) continue;
      uint64_t entry_bytes =
          value_bytes + it->key.size() + it->endpoint_id.size();
      lru_.push_front(Entry{it->key, it->endpoint_id, it->value, entry_bytes,
                            it->generation, now_ms});
      index_.emplace(it->key, lru_.begin());
      bytes_ += entry_bytes;
      ++insertions_;
      ++restored;
    }
    EvictToCapacityLocked();
    return restored;
  }

 private:
  struct Entry {
    std::string key;
    std::string endpoint_id;
    V value;
    uint64_t bytes;
    uint64_t generation;
    double inserted_ms;
  };
  using EntryIt = typename std::list<Entry>::iterator;

  double NowMsLocked() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
               .count() +
           time_offset_ms_;
  }

  uint64_t GenerationLocked(const std::string& endpoint_id) const {
    auto it = generations_.find(endpoint_id);
    return it == generations_.end() ? 0 : it->second;
  }

  void RemoveLocked(
      typename std::unordered_map<std::string, EntryIt>::iterator it) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }

  void EvictToCapacityLocked() {
    while (!lru_.empty() &&
           (index_.size() > max_entries_ ||
            (max_bytes_ > 0 && bytes_ > max_bytes_))) {
      const Entry& victim = lru_.back();
      bytes_ -= victim.bytes;
      index_.erase(victim.key);
      lru_.pop_back();
      ++evictions_;
    }
  }

  mutable std::mutex mu_;
  const size_t max_entries_;
  const uint64_t max_bytes_;   ///< 0 = no byte budget.
  const double max_age_ms_;    ///< 0 = entries never expire.
  std::list<Entry> lru_;       ///< Front = most recently used.
  std::unordered_map<std::string, EntryIt> index_;
  std::unordered_map<std::string, uint64_t> generations_;
  double time_offset_ms_ = 0.0;
  uint64_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
  uint64_t invalidations_ = 0;
  uint64_t expired_ = 0;
};

/// Capacity knobs of the three tiers. Defaults are sized for a serving
/// process that handles many concurrent federated queries.
struct FederationCacheOptions {
  size_t verdict_capacity = 1 << 16;  ///< ASK + locality-check verdicts.
  size_t count_capacity = 1 << 16;    ///< COUNT-probe cardinalities.
  size_t result_capacity = 1 << 12;   ///< Subquery result tables.
  uint64_t result_byte_budget = 64ull << 20;  ///< Byte cap on tier 3.

  // Per-tier TTLs bounding how stale a hit can be when endpoints mutate
  // without telling us (0 = entries never expire, matching the original
  // behavior). Verdicts/counts age slower than whole result tables since
  // schema-level facts change less often than data.
  double verdict_max_age_ms = 0.0;
  double count_max_age_ms = 0.0;
  double result_max_age_ms = 0.0;
};

/// Federation-level cross-query cache. Attach one to a fed::Federation
/// (set_query_cache) and every engine running against that federation
/// shares three tiers:
///
///   1. *Verdicts* — boolean answers of ASK source-selection probes and
///      GJV locality check queries, keyed by (endpoint id, query text).
///   2. *Counts* — COUNT-probe cardinalities, same key shape.
///   3. *Results* — whole subquery result tables (opt-in per engine via
///      LusailOptions::result_cache), byte-budgeted.
///
/// All tiers are bounded LRU with hit/miss/eviction counters (ToJson).
/// Stores that mutate call Invalidate(endpoint_id) to evict exactly that
/// endpoint's entries from every tier. Unlike the per-engine AskCache,
/// this registry is shared by all engines and queries on the federation —
/// it is what makes a warm serving process issue a fraction of a cold
/// one's endpoint requests.
class FederationCache {
 public:
  explicit FederationCache(FederationCacheOptions options = {});
  FederationCache(const FederationCache&) = delete;
  FederationCache& operator=(const FederationCache&) = delete;

  /// Canonical "<endpoint id>|<query text>" key.
  static std::string Key(const std::string& endpoint_id,
                         const std::string& query_text);

  /// Approximate in-memory footprint of a result table (terms + row
  /// vectors), used against the tier-3 byte budget.
  static uint64_t ApproxTableBytes(const sparql::ResultTable& table);

  // --- Tier 1: boolean verdicts (ASK probes, locality checks) ---
  std::optional<bool> GetVerdict(const std::string& key);
  void PutVerdict(const std::string& key, const std::string& endpoint_id,
                  bool verdict);

  // --- Tier 2: COUNT-probe cardinalities ---
  std::optional<uint64_t> GetCount(const std::string& key);
  void PutCount(const std::string& key, const std::string& endpoint_id,
                uint64_t count);

  // --- Tier 3: subquery result tables ---
  std::optional<sparql::ResultTable> GetResult(const std::string& endpoint_id,
                                               const std::string& query_text);
  void PutResult(const std::string& endpoint_id,
                 const std::string& query_text,
                 const sparql::ResultTable& table);

  /// Outdates every tier's entries derived from `endpoint_id` (call when
  /// the endpoint's store mutates). O(1): bumps the endpoint's
  /// generation; outdated entries are dropped lazily as Gets touch them.
  /// When `endpoint_id` is a logical endpoint with registered members
  /// (shard members, replicas), every member's generation is bumped too —
  /// cached per-member verdicts must not outlive the logical endpoint's
  /// data.
  void Invalidate(const std::string& endpoint_id);

  /// Declares that `member_ids` are constituents of logical endpoint
  /// `logical_id` (shard members, replica ids), so Invalidate(logical_id)
  /// reaches entries keyed by any member id. Members accumulate across
  /// calls; registering is idempotent.
  void RegisterMemberIds(const std::string& logical_id,
                         const std::vector<std::string>& member_ids);

  /// Shifts all tiers' clocks forward (deterministic TTL tests).
  void AdvanceTimeForTesting(double ms);

  /// Drops everything and resets all counters.
  void Clear();

  // --- Crash-safe persistence (verdict + count tiers only) ---

  /// Writes a versioned, checksummed binary snapshot of the verdict and
  /// COUNT tiers to `path` (atomically: tmp file + rename). Result
  /// tables are deliberately not persisted — they are byte-heavy and
  /// cheap to recompute relative to the ASK-probe stampede a cold
  /// verdict tier causes. Stale/expired entries are skipped and
  /// per-endpoint generation stamps are included, so invalidations that
  /// happened before the save stay effective after a load.
  Status SaveToDisk(const std::string& path) const;

  /// Restores a SaveToDisk snapshot into the verdict and COUNT tiers.
  /// Unknown magic, unsupported versions, truncation, and checksum
  /// mismatches are rejected without touching the cache. Entries already
  /// live win over snapshot entries. Returns the number of entries
  /// restored.
  Result<uint64_t> LoadFromDisk(const std::string& path);

  TierStats VerdictStats() const { return verdicts_.Stats(); }
  TierStats CountStats() const { return counts_.Stats(); }
  TierStats ResultStats() const { return results_.Stats(); }

  /// {"verdicts": {...}, "counts": {...}, "results": {...}} with the
  /// hit/miss/eviction/occupancy counters of each tier.
  obs::JsonValue ToJson() const;

  /// Emits lusail_cache_* counters and occupancy gauges, one sample per
  /// tier labelled {tier="verdicts"|"counts"|"results"}.
  void ExportMetrics(obs::MetricsSnapshot* snapshot) const;

 private:
  LruTier<bool> verdicts_;
  LruTier<uint64_t> counts_;
  LruTier<sparql::ResultTable> results_;

  mutable std::mutex members_mu_;
  std::unordered_map<std::string, std::vector<std::string>> members_;
};

}  // namespace lusail::cache

#endif  // LUSAIL_CACHE_FEDERATION_CACHE_H_
