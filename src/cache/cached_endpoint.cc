#include "cache/cached_endpoint.h"

#include "common/string_util.h"

namespace lusail::cache {

Result<net::QueryResponse> CachedAskEndpoint::QueryCancellable(
    const std::string& text, const CancelToken& cancel) {
  if (!LooksLikeAskQuery(text)) {
    return inner_->QueryCancellable(text, cancel);
  }
  std::string key = FederationCache::Key(id(), text);
  if (std::optional<bool> verdict = cache_->GetVerdict(key)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    net::QueryResponse response;
    // ASK wire shape: zero columns, one row for true, none for false.
    if (*verdict) response.table.rows.emplace_back();
    response.request_bytes = text.size();
    response.response_bytes = response.table.SerializedBytes();
    return response;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Result<net::QueryResponse> response = inner_->QueryCancellable(text, cancel);
  if (response.ok()) {
    // RowCount, not table.rows: an inner endpoint on the parse-to-ids
    // path reports its ASK row via QueryResponse::ids.
    cache_->PutVerdict(key, id(), response->RowCount() > 0);
  }
  return response;
}

obs::JsonValue CachedAskEndpoint::StatsJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("ask_hits", hits());
  out.Set("ask_misses", misses());
  return out;
}

}  // namespace lusail::cache
