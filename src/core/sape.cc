#include "core/sape.h"

#include <algorithm>
#include <future>
#include <map>
#include <set>
#include <unordered_set>

#include "cache/federation_cache.h"
#include "core/hash_join.h"
#include "core/join_optimizer.h"

namespace lusail::core {

namespace {

using fed::BindingTable;
using sparql::TriplePattern;

/// Distinct bound values of a column (one contiguous scan — this is the
/// columnar layout's home turf).
std::vector<rdf::TermId> DistinctColumn(const BindingTable& table,
                                        const std::string& var) {
  std::vector<rdf::TermId> out;
  int idx = table.VarIndex(var);
  if (idx < 0) return out;
  std::unordered_set<rdf::TermId> seen;
  for (rdf::TermId id : table.Column(static_cast<size_t>(idx))) {
    if (id != rdf::kInvalidTermId && seen.insert(id).second) {
      out.push_back(id);
    }
  }
  return out;
}

/// The engine's retry policy, or null when retries are disabled (the
/// federation then uses the plain fail-stop request path).
const net::RetryPolicy* RetryOf(const LusailOptions* options) {
  return options->retry_policy.enabled() ? &options->retry_policy : nullptr;
}

/// One failed endpoint request: which endpoint, and why.
struct EndpointFailure {
  int endpoint;
  Status status;
};

/// Builds one Status describing *all* endpoint failures of a phase, not
/// just the first: count, the distinct endpoint ids, and up to four
/// per-endpoint messages. Debugging a multi-endpoint outage needs the
/// full picture, not a single truncated message.
Status AggregateFailures(const fed::Federation* federation, const char* phase,
                         const std::vector<EndpointFailure>& failures,
                         size_t total_requests) {
  std::vector<std::string> ids;
  for (const EndpointFailure& f : failures) {
    std::string id = federation->id(static_cast<size_t>(f.endpoint));
    if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
      ids.push_back(std::move(id));
    }
  }
  std::string msg = std::to_string(failures.size()) + " of " +
                    std::to_string(total_requests) +
                    " endpoint requests failed in " + phase +
                    " (endpoints: ";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) msg += ", ";
    msg += ids[i];
  }
  msg += ")";
  const size_t kMaxDetailed = 4;
  for (size_t i = 0; i < failures.size() && i < kMaxDetailed; ++i) {
    msg += "; " +
           federation->id(static_cast<size_t>(failures[i].endpoint)) + ": " +
           failures[i].status.ToString();
  }
  if (failures.size() > kMaxDetailed) msg += "; ...";
  return Status(failures.front().status.code(), std::move(msg));
}

/// Joins every group of tables that (transitively) share variables into
/// one table per group, ordering each group's joins with the DP join
/// optimizer; disjoint groups remain separate (the delayed phase refines
/// against them, and only the final cartesian step may merge them).
std::vector<BindingTable> JoinConnected(std::vector<BindingTable> tables,
                                        ThreadPool* pool, size_t partitions,
                                        const CancelToken* cancel = nullptr) {
  if (tables.size() <= 1) return tables;

  // Connected components of the shares-a-variable graph (BFS).
  std::vector<int> component(tables.size(), -1);
  int num_components = 0;
  for (size_t seed = 0; seed < tables.size(); ++seed) {
    if (component[seed] >= 0) continue;
    std::vector<size_t> frontier{seed};
    component[seed] = num_components;
    while (!frontier.empty()) {
      size_t i = frontier.back();
      frontier.pop_back();
      for (size_t j = 0; j < tables.size(); ++j) {
        if (component[j] >= 0) continue;
        if (BindingTable::SharedVars(tables[i], tables[j]).empty()) continue;
        component[j] = num_components;
        frontier.push_back(j);
      }
    }
    ++num_components;
  }

  std::vector<BindingTable> out;
  out.reserve(static_cast<size_t>(num_components));
  for (int c = 0; c < num_components; ++c) {
    std::vector<size_t> members;
    for (size_t i = 0; i < tables.size(); ++i) {
      if (component[i] == c) members.push_back(i);
    }
    if (members.size() == 1) {
      out.push_back(std::move(tables[members[0]]));
      continue;
    }
    // DP join order over the group's true cardinalities, then a
    // left-deep chain of parallel partitioned hash joins.
    std::vector<double> sizes;
    std::vector<std::set<std::string>> vars;
    for (size_t i : members) {
      sizes.push_back(static_cast<double>(tables[i].NumRows()));
      vars.emplace_back(tables[i].vars.begin(), tables[i].vars.end());
    }
    std::vector<int> order =
        JoinOptimizer::OptimalOrder(sizes, vars, std::max<size_t>(1,
                                                                  partitions));
    BindingTable joined = std::move(tables[members[order[0]]]);
    for (size_t k = 1; k < order.size(); ++k) {
      if (cancel != nullptr && cancel->Cancelled()) break;
      joined = ParallelHashJoin(joined, tables[members[order[k]]], pool,
                                partitions, cancel);
    }
    out.push_back(std::move(joined));
  }
  return out;
}

}  // namespace

Result<BindingTable> SapeExecutor::FetchEndpoint(
    int ep, const std::string& text, const std::string& cache_key,
    bool cacheable, fed::SharedDictionary* dict,
    fed::MetricsCollector* metrics, const CancelToken& cancel,
    const net::RetryPolicy* retry, obs::SpanId trace_parent) {
  // Queued fetches whose token already fired bail before touching the
  // wire — crucial when many (subquery, endpoint) tasks are backed up
  // behind a cancelled query in the pool.
  if (cancel.Cancelled()) return cancel.StatusAt("endpoint fetch");
  cache::FederationCache* shared =
      (cacheable && options_->use_cache && options_->result_cache)
          ? federation_->query_cache()
          : nullptr;
  std::string endpoint_id;
  if (shared != nullptr) {
    endpoint_id = federation_->id(static_cast<size_t>(ep));
    std::optional<sparql::ResultTable> hit =
        shared->GetResult(endpoint_id, cache_key);
    if (hit.has_value()) {
      obs::Tracer* tracer = metrics != nullptr ? metrics->tracer() : nullptr;
      if (tracer != nullptr) {
        obs::SpanId span =
            tracer->StartSpan("cache hit " + endpoint_id, "cache",
                              trace_parent);
        tracer->Annotate(span, "rows",
                         static_cast<uint64_t>(hit->rows.size()));
        tracer->EndSpan(span);
      }
      // The shared cache stores wire-format string rows (it outlives any
      // one dictionary), so a hit re-interns here.
      return fed::InternTable(*hit, dict);
    }
  }
  // The string form of the response rides along exactly when the wire
  // path produced one anyway; the pure id path (parse-to-ids transport)
  // decodes only if a cache store actually needs it.
  std::optional<sparql::ResultTable> wire;
  Result<BindingTable> ids = federation_->ExecuteEncoded(
      static_cast<size_t>(ep), text, dict, metrics, cancel.deadline(), retry,
      trace_parent, shared != nullptr ? &wire : nullptr);
  if (shared != nullptr && ids.ok()) {
    if (wire.has_value()) {
      shared->PutResult(endpoint_id, cache_key, *wire);
    } else {
      shared->PutResult(endpoint_id, cache_key, fed::DecodeTable(*ids, *dict));
    }
  }
  return ids;
}

Result<BindingTable> SapeExecutor::RunEverywhere(
    const Subquery& sq, const std::vector<TriplePattern>& triples,
    const sparql::ValuesClause* values,
    const std::vector<rdf::TermId>* bound_ids, fed::SharedDictionary* dict,
    fed::MetricsCollector* metrics, const CancelToken& cancel,
    obs::SpanId trace_parent, size_t row_limit) {
  std::string text = sq.ToSparql(triples, values);
  // The LIMIT rides inside the text, so the shared result cache keys a
  // limited fetch separately from the unlimited one — a capped answer
  // never masquerades as the full result on a later warm run.
  if (row_limit > 0) text += "\nLIMIT " + std::to_string(row_limit);
  const net::RetryPolicy* retry = RetryOf(options_);
  // Unbound texts key the shared result cache directly. Bound (VALUES)
  // fetches are keyed as base text + an id-space fingerprint of the
  // binding block (one precomputed 8-byte content hash mixed per binding
  // instead of serializing the block; content hashes keep the key stable
  // across engines sharing the cache), so re-running a query in a warm
  // serving process skips its bound joins too while giant VALUES
  // serializations stay out of the cache index.
  std::string cache_key = text;
  bool cacheable = true;
  if (values != nullptr) {
    if (bound_ids == nullptr || values->vars.empty()) {
      // No id-space identity for the block: skip the cache rather than
      // risk keying different blocks identically.
      cacheable = false;
    } else {
      cache_key = sq.ToSparql(triples, nullptr) + "\n#values-block:" +
                  FingerprintIdBindings(values->vars[0].name, *dict,
                                        bound_ids->data(), bound_ids->size());
    }
  }
  // Row budget: fired once the union already holds `row_limit` rows.
  // Fetches still queued behind the satisfied point skip the wire and
  // return empty — a budget hit is a cutoff, never a failure.
  CancelToken budget =
      row_limit > 0 ? CancelToken::Cancellable() : CancelToken();
  std::vector<std::future<Result<BindingTable>>> futures;
  futures.reserve(sq.sources.size());
  for (int ep : sq.sources) {
    futures.push_back(pool_->Submit(
        [this, ep, text, cache_key, cacheable, dict, metrics, cancel, retry,
         trace_parent, budget, projection = sq.projection]() {
          if (budget.CancelRequested()) {
            BindingTable skipped;
            skipped.vars = projection;
            return Result<BindingTable>(std::move(skipped));
          }
          return FetchEndpoint(ep, text, cache_key, cacheable, dict, metrics,
                               cancel, retry, trace_parent);
        }));
  }
  BindingTable merged;
  merged.vars = sq.projection;
  std::vector<EndpointFailure> failures;
  size_t successes = 0;
  for (size_t k = 0; k < futures.size(); ++k) {
    Result<BindingTable> table = futures[k].get();
    if (!table.ok()) {
      failures.push_back({sq.sources[k], table.status()});
      continue;
    }
    ++successes;
    fed::AppendUnion(&merged, *table);
    if (row_limit > 0 && merged.NumRows() >= row_limit) budget.Cancel();
  }
  if (!failures.empty()) {
    if (!options_->partial_results) {
      return AggregateFailures(federation_, "subquery evaluation", failures,
                               futures.size());
    }
    // Graceful degradation: each per-endpoint result is one branch of the
    // subquery's UNION — dropping a branch yields a subset of the exact
    // answer, which is exactly what partial_results promises.
    if (metrics != nullptr) {
      for (const EndpointFailure& f : failures) {
        metrics->RecordEndpointDropped(
            federation_->id(static_cast<size_t>(f.endpoint)));
      }
      if (successes == 0) metrics->RecordSubqueryDropped();
    }
  }
  return merged;
}

Result<BindingTable> SapeExecutor::Execute(
    std::vector<Subquery> subqueries,
    const std::vector<TriplePattern>& triples, fed::SharedDictionary* dict,
    fed::MetricsCollector* metrics, const CancelToken& cancel,
    fed::ExecutionProfile* profile, size_t row_limit) {
  auto track_peak = [profile](const std::vector<BindingTable>& tables) {
    if (profile == nullptr) return;
    uint64_t total = 0;
    for (const BindingTable& t : tables) total += t.NumRows();
    profile->peak_intermediate_rows =
        std::max(profile->peak_intermediate_rows, total);
  };
  if (subqueries.empty()) {
    return Status::InvalidArgument("no subqueries to execute");
  }

  obs::Tracer* tracer = metrics != nullptr ? metrics->tracer() : nullptr;
  // Opens a "subquery" span under the current phase span. Spans are
  // created on this thread and handed to pool tasks as explicit request
  // parents, so concurrent subqueries nest their requests correctly.
  auto start_sq_span = [&](size_t i, const char* mode) -> obs::SpanId {
    if (tracer == nullptr) return 0;
    obs::SpanId span = tracer->StartSpan("subquery " + std::to_string(i),
                                         "subquery", metrics->trace_parent());
    tracer->Annotate(span, "mode", mode);
    tracer->Annotate(span, "endpoints",
                     static_cast<uint64_t>(subqueries[i].sources.size()));
    tracer->Annotate(span, "estimated_cardinality",
                     subqueries[i].estimated_cardinality);
    return span;
  };

  // Single subquery: evaluate the whole query at every relevant endpoint
  // independently and union (Algorithm 3, lines 2-4).
  if (subqueries.size() == 1) {
    obs::SpanId span = start_sq_span(0, "whole query");
    if (tracer != nullptr && row_limit > 0) {
      tracer->Annotate(span, "limit_pushdown",
                       static_cast<uint64_t>(row_limit));
    }
    Result<BindingTable> table =
        RunEverywhere(subqueries[0], triples, nullptr, nullptr, dict, metrics,
                      cancel, span, row_limit);
    if (tracer != nullptr) tracer->EndSpan(span);
    if (table.ok() && cancel.Cancelled()) {
      return cancel.StatusAt("subquery evaluation");
    }
    return table;
  }

  // Delay decision (skipped entirely when SAPE is disabled).
  if (options_->enable_sape) {
    std::vector<double> cards, eps;
    for (const Subquery& sq : subqueries) {
      cards.push_back(sq.estimated_cardinality);
      eps.push_back(static_cast<double>(sq.sources.size()));
    }
    std::vector<bool> delayed =
        DecideDelayed(cards, eps, options_->delay_threshold);
    for (size_t i = 0; i < subqueries.size(); ++i) {
      subqueries[i].delayed = delayed[i];
    }
  } else {
    for (Subquery& sq : subqueries) sq.delayed = false;
  }

  // ---- Phase 1: non-delayed subqueries, all concurrent. ----
  // Every (subquery, endpoint) request is one flat pool task (no nested
  // waits inside workers — the pool can be as small as two threads), so
  // all non-delayed subqueries are in flight at once, non-blocking, as in
  // Algorithm 3 lines 6-7.
  struct Fetch {
    size_t sq_index;
    int endpoint;
    std::future<Result<BindingTable>> result;
  };
  const net::RetryPolicy* retry = RetryOf(options_);
  std::vector<Fetch> fetches;
  std::vector<size_t> phase1_order;
  std::map<size_t, BindingTable> phase1_tables;
  std::map<size_t, size_t> phase1_successes;
  std::map<size_t, obs::SpanId> phase1_spans;
  std::map<size_t, size_t> phase1_pending;
  for (size_t i = 0; i < subqueries.size(); ++i) {
    if (subqueries[i].delayed) continue;
    phase1_order.push_back(i);
    BindingTable empty;
    empty.vars = subqueries[i].projection;
    phase1_tables.emplace(i, std::move(empty));
    phase1_successes.emplace(i, 0);
    obs::SpanId span = start_sq_span(i, "concurrent");
    phase1_spans.emplace(i, span);
    phase1_pending.emplace(i, subqueries[i].sources.size());
    std::string text = subqueries[i].ToSparql(triples, nullptr);
    for (int ep : subqueries[i].sources) {
      Fetch fetch;
      fetch.sq_index = i;
      fetch.endpoint = ep;
      fetch.result = pool_->Submit(
          [this, ep, text, dict, metrics, cancel, retry, span]() {
            return FetchEndpoint(ep, text, /*cache_key=*/text,
                                 /*cacheable=*/true, dict, metrics, cancel,
                                 retry, span);
          });
      fetches.push_back(std::move(fetch));
    }
  }
  std::vector<EndpointFailure> phase1_failures;
  std::set<size_t> phase1_failed_sqs;
  for (Fetch& fetch : fetches) {
    Result<BindingTable> part = fetch.result.get();
    if (!part.ok()) {
      phase1_failures.push_back({fetch.endpoint, part.status()});
      phase1_failed_sqs.insert(fetch.sq_index);
    } else {
      ++phase1_successes[fetch.sq_index];
      fed::AppendUnion(&phase1_tables[fetch.sq_index], *part);
    }
    // The subquery span closes when its last endpoint result lands.
    if (tracer != nullptr && --phase1_pending[fetch.sq_index] == 0) {
      obs::SpanId span = phase1_spans[fetch.sq_index];
      tracer->Annotate(
          span, "rows",
          static_cast<uint64_t>(phase1_tables[fetch.sq_index].NumRows()));
      tracer->EndSpan(span);
    }
  }
  if (!phase1_failures.empty()) {
    if (!options_->partial_results) {
      return AggregateFailures(federation_, "SAPE phase 1 (concurrent "
                               "subqueries)", phase1_failures,
                               fetches.size());
    }
    if (metrics != nullptr) {
      for (const EndpointFailure& f : phase1_failures) {
        metrics->RecordEndpointDropped(
            federation_->id(static_cast<size_t>(f.endpoint)));
      }
      for (size_t sq_index : phase1_failed_sqs) {
        if (phase1_successes[sq_index] == 0) metrics->RecordSubqueryDropped();
      }
    }
  }
  std::vector<BindingTable> tables;
  for (size_t i : phase1_order) {
    tables.push_back(std::move(phase1_tables[i]));
  }

  // Eagerly join connected non-delayed results; this shrinks the found
  // bindings the delayed subqueries will be probed with.
  if (cancel.Cancelled()) return cancel.StatusAt("SAPE phase 1");
  track_peak(tables);
  tables = JoinConnected(std::move(tables), pool_, options_->join_partitions,
                         &cancel);
  if (cancel.Cancelled()) return cancel.StatusAt("SAPE phase 1 join");
  track_peak(tables);

  // ---- Phase 2: delayed subqueries via bound joins. ----
  std::vector<size_t> delayed_left;
  for (size_t i = 0; i < subqueries.size(); ++i) {
    if (subqueries[i].delayed) delayed_left.push_back(i);
  }

  auto found_bindings_for = [&](const Subquery& sq)
      -> std::pair<std::string, std::vector<rdf::TermId>> {
    // The shared variable with the fewest distinct found bindings.
    std::string best_var;
    std::vector<rdf::TermId> best;
    for (const std::string& v : sq.projection) {
      for (const BindingTable& t : tables) {
        if (t.VarIndex(v) < 0) continue;
        std::vector<rdf::TermId> vals = DistinctColumn(t, v);
        if (vals.empty()) continue;
        if (best_var.empty() || vals.size() < best.size()) {
          best_var = v;
          best = std::move(vals);
        }
      }
    }
    return {best_var, best};
  };

  while (!delayed_left.empty()) {
    if (cancel.Cancelled()) return cancel.StatusAt("delayed phase");
    // Most selective next: smallest refined cardinality, where the
    // refinement caps the estimate by the found bindings it can join on.
    size_t pick = 0;
    double pick_cost = std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < delayed_left.size(); ++k) {
      const Subquery& sq = subqueries[delayed_left[k]];
      double refined = sq.estimated_cardinality;
      auto [var, bindings] = found_bindings_for(sq);
      if (!var.empty()) {
        refined = std::min(refined, static_cast<double>(bindings.size()));
      }
      if (refined < pick_cost) {
        pick_cost = refined;
        pick = k;
      }
    }
    size_t sq_index = delayed_left[pick];
    delayed_left.erase(delayed_left.begin() + pick);
    Subquery& sq = subqueries[sq_index];

    obs::SpanId sq_span = start_sq_span(sq_index, "delayed");
    auto end_sq_span = [&](size_t result_rows) {
      if (tracer == nullptr) return;
      tracer->Annotate(sq_span, "rows",
                       static_cast<uint64_t>(result_rows));
      tracer->EndSpan(sq_span);
    };

    // Empty-partner short-circuit: a join partner (a table sharing one of
    // this subquery's variables) with zero rows makes the inner join
    // empty no matter what the subquery returns. Without this check such
    // a subquery falls through found_bindings_for (no distinct bindings)
    // and is fetched unbound from every endpoint for nothing. Zero *rows*
    // is the test — a non-empty partner whose shared column is all
    // unbound still joins compatibly and must not short-circuit.
    bool empty_partner = false;
    for (const BindingTable& t : tables) {
      if (t.NumRows() != 0) continue;
      for (const std::string& v : sq.projection) {
        if (t.VarIndex(v) >= 0) {
          empty_partner = true;
          break;
        }
      }
      if (empty_partner) break;
    }
    if (empty_partner) {
      if (tracer != nullptr) {
        tracer->Annotate(sq_span, "empty_partner", true);
      }
      BindingTable empty;
      empty.vars = sq.projection;
      end_sq_span(0);
      tables.push_back(std::move(empty));
      tables = JoinConnected(std::move(tables), pool_,
                             options_->join_partitions, &cancel);
      continue;
    }

    auto [bind_var, bindings] = found_bindings_for(sq);
    if (bind_var.empty()) {
      // Nothing to bind with: evaluate unbound like phase 1.
      Result<BindingTable> t = RunEverywhere(sq, triples, nullptr, nullptr,
                                             dict, metrics, cancel, sq_span);
      if (!t.ok()) {
        end_sq_span(0);
        return t.status();
      }
      end_sq_span(t->NumRows());
      tables.push_back(std::move(t).value());
      tables = JoinConnected(std::move(tables), pool_,
                             options_->join_partitions, &cancel);
      continue;
    }
    if (tracer != nullptr) {
      tracer->Annotate(sq_span, "bind_var", bind_var);
      tracer->Annotate(sq_span, "bindings",
                       static_cast<uint64_t>(bindings.size()));
    }

    // Source refinement (Algorithm 3, line 13): for generic subqueries
    // (single pattern, >= 2 variables) probe each endpoint with a sampled
    // VALUES block and drop endpoints that answer no sample.
    std::vector<int> sources = sq.sources;
    if (sq.triple_indices.size() == 1 &&
        triples[sq.triple_indices[0]].VariableCount() >= 2 &&
        sources.size() > 1 && !bindings.empty()) {
      sparql::ValuesClause sample;
      sample.vars.push_back(sparql::Variable{bind_var});
      size_t n = std::min(options_->source_refinement_sample, bindings.size());
      for (size_t i = 0; i < n; ++i) {
        sample.rows.push_back({dict->term(bindings[i])});
      }
      sparql::Query ask;
      ask.form = sparql::QueryForm::kAsk;
      ask.where.triples.push_back(triples[sq.triple_indices[0]]);
      ask.where.values.push_back(sample);
      std::string ask_text = sparql::QueryToString(ask);
      cache::FederationCache* shared =
          options_->use_cache ? federation_->query_cache() : nullptr;
      std::vector<std::future<Result<bool>>> probes;
      for (int ep : sources) {
        probes.push_back(pool_->Submit([this, ep, ask_text, metrics,
                                        cancel, retry, sq_span, shared]() {
          if (cancel.Cancelled()) {
            return Result<bool>(cancel.StatusAt("source refinement"));
          }
          std::string endpoint_id;
          std::string key;
          if (shared != nullptr) {
            endpoint_id = federation_->id(static_cast<size_t>(ep));
            key = cache::FederationCache::Key(endpoint_id, ask_text);
            std::optional<bool> cached = shared->GetVerdict(key);
            if (cached.has_value()) return Result<bool>(*cached);
          }
          Result<bool> answer = federation_->Ask(
              static_cast<size_t>(ep), ask_text, metrics, cancel.deadline(),
              retry, sq_span);
          if (shared != nullptr && answer.ok()) {
            shared->PutVerdict(key, endpoint_id, *answer);
          }
          return answer;
        }));
      }
      std::vector<int> kept;
      for (size_t i = 0; i < probes.size(); ++i) {
        Result<bool> has = probes[i].get();
        // On sampling-probe failure, keep the endpoint (conservative).
        if (!has.ok() || *has) kept.push_back(sources[i]);
      }
      if (!kept.empty()) sources = std::move(kept);
    }

    // Bound join: ship the found bindings in VALUES blocks.
    Subquery bound_sq = sq;
    bound_sq.sources = sources;
    if (std::find(bound_sq.projection.begin(), bound_sq.projection.end(),
                  bind_var) == bound_sq.projection.end()) {
      bound_sq.projection.push_back(bind_var);
    }
    BindingTable merged;
    merged.vars = bound_sq.projection;
    const size_t block = std::max<size_t>(1, options_->bound_join_block_size);
    size_t values_blocks = 0;
    for (size_t start = 0; start < bindings.size(); start += block) {
      // Re-check per chunk: a bound join with many binding blocks must
      // stop at the first block past the deadline/cancel, not overshoot
      // by the full remaining chunk count.
      if (cancel.Cancelled()) {
        end_sq_span(merged.NumRows());
        return cancel.StatusAt("bound join");
      }
      sparql::ValuesClause values;
      values.vars.push_back(sparql::Variable{bind_var});
      size_t end = std::min(bindings.size(), start + block);
      std::vector<rdf::TermId> chunk_ids(bindings.begin() + start,
                                         bindings.begin() + end);
      for (rdf::TermId id : chunk_ids) {
        values.rows.push_back({dict->term(id)});
      }
      ++values_blocks;
      Result<BindingTable> part =
          RunEverywhere(bound_sq, triples, &values, &chunk_ids, dict, metrics,
                        cancel, sq_span);
      if (!part.ok()) {
        end_sq_span(merged.NumRows());
        return part.status();
      }
      fed::AppendUnion(&merged, *part);
    }
    if (tracer != nullptr) {
      tracer->Annotate(sq_span, "values_blocks",
                       static_cast<uint64_t>(values_blocks));
    }
    end_sq_span(merged.NumRows());
    tables.push_back(std::move(merged));
    track_peak(tables);
    tables = JoinConnected(std::move(tables), pool_,
                           options_->join_partitions, &cancel);
    track_peak(tables);
  }

  // ---- Global join of whatever is left (disjoint groups: cartesian). ----
  tables = JoinConnected(std::move(tables), pool_, options_->join_partitions,
                         &cancel);
  while (tables.size() > 1) {
    if (cancel.Cancelled()) return cancel.StatusAt("global join");
    // Cartesian products, smallest first to bound growth; the parallel
    // join partitions the product across the pool when it is large.
    std::sort(tables.begin(), tables.end(),
              [](const BindingTable& a, const BindingTable& b) {
                return a.NumRows() < b.NumRows();
              });
    BindingTable joined =
        ParallelHashJoin(tables[0], tables[1], pool_,
                         options_->join_partitions, &cancel);
    tables.erase(tables.begin(), tables.begin() + 2);
    tables.insert(tables.begin(), std::move(joined));
  }
  if (cancel.Cancelled()) return cancel.StatusAt("global join");
  return std::move(tables[0]);
}

}  // namespace lusail::core
