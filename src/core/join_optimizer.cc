#include "core/join_optimizer.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace lusail::core {

namespace {

bool Connected(const std::set<std::string>& a, const std::set<std::string>& b) {
  for (const std::string& v : a) {
    if (b.count(v)) return true;
  }
  return false;
}

}  // namespace

std::vector<int> JoinOptimizer::OptimalOrder(
    const std::vector<double>& sizes,
    const std::vector<std::set<std::string>>& vars, size_t threads) {
  const size_t n = sizes.size();
  if (n == 0) return {};
  if (n == 1) return {0};
  const double t = static_cast<double>(std::max<size_t>(1, threads));

  if (n > kDpLimit) {
    // Greedy: start from the smallest relation, repeatedly take the
    // smallest connected relation (cartesian only as a last resort).
    std::vector<int> order;
    std::vector<bool> used(n, false);
    int first = 0;
    for (size_t i = 1; i < n; ++i) {
      if (sizes[i] < sizes[first]) first = static_cast<int>(i);
    }
    order.push_back(first);
    used[first] = true;
    std::set<std::string> bound = vars[first];
    for (size_t step = 1; step < n; ++step) {
      int best = -1;
      bool best_connected = false;
      for (size_t i = 0; i < n; ++i) {
        if (used[i]) continue;
        bool conn = Connected(bound, vars[i]);
        if (best < 0 || (conn && !best_connected) ||
            (conn == best_connected && sizes[i] < sizes[best])) {
          best = static_cast<int>(i);
          best_connected = conn;
        }
      }
      order.push_back(best);
      used[best] = true;
      bound.insert(vars[best].begin(), vars[best].end());
    }
    return order;
  }

  // Exact DP over subsets.
  const size_t num_states = 1ULL << n;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(num_states, kInf);
  std::vector<double> size_est(num_states, 0.0);
  std::vector<int> last(num_states, -1);
  std::vector<int> prev(num_states, 0);

  for (size_t i = 0; i < n; ++i) {
    size_t s = 1ULL << i;
    cost[s] = 0.0;  // A single relation incurs no join cost yet.
    size_est[s] = sizes[i];
    last[s] = static_cast<int>(i);
  }

  for (size_t state = 1; state < num_states; ++state) {
    if (cost[state] == kInf) continue;
    // Collect the bound variables of this state.
    std::set<std::string> bound;
    for (size_t i = 0; i < n; ++i) {
      if (state & (1ULL << i)) bound.insert(vars[i].begin(), vars[i].end());
    }
    bool has_connected = false;
    for (size_t r = 0; r < n; ++r) {
      if (!(state & (1ULL << r)) && Connected(bound, vars[r])) {
        has_connected = true;
        break;
      }
    }
    for (size_t r = 0; r < n; ++r) {
      if (state & (1ULL << r)) continue;
      bool conn = Connected(bound, vars[r]);
      if (has_connected && !conn) continue;  // Defer cartesian products.
      size_t next = state | (1ULL << r);
      double hashing = std::min(size_est[state], sizes[r]) / t;
      double probing = std::max(size_est[state], sizes[r]) / t;
      double step_cost = hashing + probing;
      double total = cost[state] + step_cost;
      if (total < cost[next]) {
        cost[next] = total;
        last[next] = static_cast<int>(r);
        prev[next] = static_cast<int>(state);
        size_est[next] = conn ? std::max(size_est[state], sizes[r])
                              : size_est[state] * std::max(1.0, sizes[r]);
      }
    }
  }

  std::vector<int> order;
  size_t state = num_states - 1;
  while (state != 0) {
    int r = last[state];
    order.push_back(r);
    state &= ~(1ULL << r);  // prev[state] by construction.
  }
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace lusail::core
