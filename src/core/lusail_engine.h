#ifndef LUSAIL_CORE_LUSAIL_ENGINE_H_
#define LUSAIL_CORE_LUSAIL_ENGINE_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/cost_model.h"
#include "core/decomposer.h"
#include "core/gjv_detector.h"
#include "core/options.h"
#include "core/sape.h"
#include "federation/federation.h"
#include "federation/source_selection.h"
#include "sparql/parser.h"

namespace lusail::core {

/// Analysis output exposed for tests, examples, the profiling bench, and
/// EXPLAIN: the per-pattern relevant sources, the GJV analysis, the
/// chosen decomposition of the query's main basic graph pattern (with
/// pushable OPTIONAL blocks already pushed into their host subqueries and
/// `delayed` set per SAPE's decision), plus the planning artifacts SAPE
/// would act on.
struct AnalyzedQuery {
  sparql::Query query;
  /// Relevant endpoints per *mandatory* triple pattern (candidate
  /// OPTIONAL patterns are probed too but not reported here, keeping the
  /// indices aligned with query.where.triples).
  std::vector<std::vector<int>> sources;
  GjvResult gjvs;
  Decomposition decomposition;

  /// Chauvenet-rejected cardinality outliers, per subquery. These are
  /// excluded from the delay-threshold statistics (and delayed).
  std::vector<bool> outliers;

  /// Estimated left-deep join order over the subquery results (indices
  /// into decomposition.subqueries), from the DP optimizer seeded with
  /// the COUNT-probe estimates.
  std::vector<int> join_order;

  /// OPTIONAL blocks of the top-level group pushed into subqueries vs.
  /// left for the federator-level left join.
  uint64_t pushed_optionals = 0;
  uint64_t unpushed_optionals = 0;
};

/// Lusail: the paper's federated SPARQL engine. Pipeline per query:
///   1. Source selection — parallel ASK probes per triple pattern (cached).
///   2. LADE — instance-level GJV detection (check queries, cached) and
///      locality-aware decomposition into independent subqueries.
///   3. SAPE — cost-model-driven scheduling: concurrent non-delayed
///      subqueries, bound joins for delayed ones, parallel hash join.
/// OPTIONAL blocks and UNION chains are decomposed recursively and
/// combined at the federator (left-outer join / union); FILTERs are pushed
/// into covering subqueries and the rest evaluated globally. LIMIT is
/// applied on the complete result (the paper notes this costs Lusail the
/// C4 query against FedX's early termination).
class LusailEngine : public fed::FederatedEngine {
 public:
  explicit LusailEngine(const fed::Federation* federation,
                        LusailOptions options = LusailOptions());

  std::string name() const override;

  Result<fed::FederatedResult> Execute(const std::string& sparql_text,
                                       const Deadline& deadline) override;
  using fed::FederatedEngine::Execute;

  /// Cancellable execution: the token (deadline and/or explicit cancel
  /// flag) is threaded through source selection, SAPE's fetch/bound-join
  /// loops, and every parallel join, so evaluation unwinds with kTimeout
  /// within one work chunk of the token firing. The deadline-only
  /// Execute above wraps its deadline in a token and calls this.
  Result<fed::FederatedResult> Execute(const std::string& sparql_text,
                                       const CancelToken& cancel);

  /// Runs source selection + LADE only (no execution); for inspection.
  Result<AnalyzedQuery> Analyze(const std::string& sparql_text);

  /// Drops the ASK and check-query caches (Figure 12's cold-cache runs).
  /// The term dictionary is deliberately *not* cleared: interned ids stay
  /// valid for the endpoints that parse straight into it, and re-warming
  /// it would only repeat work — it is an id space, not a result cache.
  void ClearCaches();

  /// The engine's term dictionary: the id space every query executes in.
  /// Shared so transports can parse responses straight into it
  /// (HttpSparqlEndpoint::set_parse_dictionary) and results arrive as ids
  /// with zero federator-side string rows.
  const std::shared_ptr<fed::SharedDictionary>& dictionary() const {
    return dict_;
  }

  /// Emits lusail_engine_dictionary_* gauges/counters (term count, bytes,
  /// encode/decode cell and time totals).
  void ExportMetrics(obs::MetricsSnapshot* snapshot) const {
    dict_->ExportMetrics(snapshot, "engine");
  }

  const LusailOptions& options() const { return options_; }
  LusailOptions* mutable_options() { return &options_; }

  /// The federation this engine runs against (EXPLAIN uses it to render
  /// endpoint ids).
  const fed::Federation* federation() const { return federation_; }

 private:
  /// Full pipeline for one conjunctive pattern (triples + filters).
  /// `candidate_optionals` are this group's OPTIONAL blocks; those whose
  /// locality analysis allows endpoint-side evaluation are pushed into
  /// subqueries, the rest are returned via `unpushed_optionals` for the
  /// federator-level left join. `outside_vars` are variables referenced
  /// by the rest of the query (other blocks, residual filters) — an
  /// optional may only be pushed when its overlap with them stays inside
  /// its host subquery. Appends phase timings/counters to `profile`.
  Result<fed::BindingTable> ExecuteBgp(
      const std::vector<sparql::TriplePattern>& triples,
      const std::vector<sparql::Expr>& filters,
      const std::vector<const sparql::GraphPattern*>& candidate_optionals,
      const std::set<std::string>& outside_vars,
      const std::set<std::string>& needed_vars, fed::SharedDictionary* dict,
      fed::MetricsCollector* metrics, const CancelToken& cancel,
      fed::ExecutionProfile* profile,
      std::vector<const sparql::GraphPattern*>* unpushed_optionals,
      size_t row_limit = 0);

  /// Recursive group evaluation: BGP, then UNION chains (inner join),
  /// OPTIONAL blocks (left-outer join), VALUES, residual filters.
  /// `row_limit` > 0 means any `row_limit` rows of this pattern satisfy
  /// the caller (a top-level LIMIT without ORDER BY/DISTINCT): it is
  /// forwarded to the BGP only when nothing at this level — UNION joins,
  /// VALUES joins, residual filters — can discard rows afterwards.
  Result<fed::BindingTable> ExecutePattern(
      const sparql::GraphPattern& pattern,
      const std::set<std::string>& needed_vars, fed::SharedDictionary* dict,
      fed::MetricsCollector* metrics, const CancelToken& cancel,
      fed::ExecutionProfile* profile, size_t row_limit = 0);

  const fed::Federation* federation_;
  LusailOptions options_;
  ThreadPool pool_;
  fed::AskCache ask_cache_;
  fed::AskCache check_cache_;
  std::shared_ptr<fed::SharedDictionary> dict_;
};

}  // namespace lusail::core

#endif  // LUSAIL_CORE_LUSAIL_ENGINE_H_
