#include "core/id_table.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "common/stopwatch.h"
#include "sparql/expr_eval.h"

namespace lusail::core {

namespace {

/// FNV-style hash of a join-key id vector.
struct IdRowHash {
  size_t operator()(const std::vector<rdf::TermId>& row) const {
    size_t h = 1469598103934665603ULL;
    for (rdf::TermId id : row) {
      h ^= id + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

const std::vector<rdf::TermId>& EmptyColumn() {
  static const std::vector<rdf::TermId> empty;
  return empty;
}

}  // namespace

int IdTable::VarIndex(const std::string& var) const {
  for (size_t i = 0; i < vars.size(); ++i) {
    if (vars[i] == var) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> IdTable::SharedVars(const IdTable& a,
                                             const IdTable& b) {
  std::vector<std::string> shared;
  for (const std::string& v : a.vars) {
    if (b.VarIndex(v) >= 0) shared.push_back(v);
  }
  return shared;
}

void IdTable::SyncColumns() {
  while (cols_.size() < vars.size()) {
    cols_.emplace_back(num_rows_, rdf::kInvalidTermId);
  }
}

void IdTable::Set(size_t row, size_t col, rdf::TermId id) {
  SyncColumns();
  cols_[col][row] = id;
}

void IdTable::AppendRow(const std::vector<rdf::TermId>& row) {
  SyncColumns();
  for (size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].push_back(c < row.size() ? row[c] : rdf::kInvalidTermId);
  }
  ++num_rows_;
}

void IdTable::AddEmptyRows(size_t n) {
  SyncColumns();
  for (auto& col : cols_) col.resize(num_rows_ + n, rdf::kInvalidTermId);
  num_rows_ += n;
}

std::vector<rdf::TermId> IdTable::Row(size_t row) const {
  std::vector<rdf::TermId> out(vars.size(), rdf::kInvalidTermId);
  for (size_t c = 0; c < cols_.size() && c < out.size(); ++c) {
    out[c] = cols_[c][row];
  }
  return out;
}

const std::vector<rdf::TermId>& IdTable::Column(size_t col) const {
  return col < cols_.size() ? cols_[col] : EmptyColumn();
}

std::vector<rdf::TermId>* IdTable::MutableColumn(size_t col) {
  SyncColumns();
  return &cols_[col];
}

void IdTable::Reserve(size_t rows) {
  SyncColumns();
  for (auto& col : cols_) col.reserve(rows);
}

void IdTable::Clear() {
  for (auto& col : cols_) col.clear();
  num_rows_ = 0;
}

IdTable IdTable::SelectRows(const std::vector<uint32_t>& rows) const {
  std::vector<std::vector<rdf::TermId>> cols(vars.size());
  for (size_t c = 0; c < vars.size(); ++c) {
    if (c >= cols_.size()) continue;  // Missing column: all-unbound.
    const std::vector<rdf::TermId>& src = cols_[c];
    std::vector<rdf::TermId>& dst = cols[c];
    dst.resize(rows.size());
    for (size_t k = 0; k < rows.size(); ++k) dst[k] = src[rows[k]];
  }
  return FromColumns(vars, std::move(cols), rows.size());
}

IdTable IdTable::Slice(size_t begin, size_t end) const {
  begin = std::min(begin, num_rows_);
  end = std::min(std::max(end, begin), num_rows_);
  std::vector<std::vector<rdf::TermId>> cols(vars.size());
  for (size_t c = 0; c < vars.size(); ++c) {
    if (c >= cols_.size()) continue;
    cols[c].assign(cols_[c].begin() + begin, cols_[c].begin() + end);
  }
  return FromColumns(vars, std::move(cols), end - begin);
}

void IdTable::Append(const IdTable& other) {
  SyncColumns();
  for (size_t c = 0; c < cols_.size(); ++c) {
    const std::vector<rdf::TermId>& src = other.Column(c);
    if (src.empty()) {
      cols_[c].resize(num_rows_ + other.num_rows_, rdf::kInvalidTermId);
    } else {
      cols_[c].insert(cols_[c].end(), src.begin(), src.end());
    }
  }
  num_rows_ += other.num_rows_;
}

IdTable IdTable::FromColumns(std::vector<std::string> names,
                             std::vector<std::vector<rdf::TermId>> cols,
                             size_t num_rows) {
  IdTable out(std::move(names));
  cols.resize(out.vars.size());
  for (auto& col : cols) {
    if (col.empty() && num_rows > 0) col.assign(num_rows, rdf::kInvalidTermId);
  }
  out.cols_ = std::move(cols);
  out.num_rows_ = num_rows;
  return out;
}

IdTable JoinIds(const IdTable& left, const IdTable& right, bool left_outer) {
  std::vector<std::string> shared = IdTable::SharedVars(left, right);
  std::vector<int> shared_left, shared_right, right_only;
  std::vector<std::string> out_vars = left.vars;
  for (const std::string& v : shared) {
    shared_left.push_back(left.VarIndex(v));
    shared_right.push_back(right.VarIndex(v));
  }
  for (size_t i = 0; i < right.vars.size(); ++i) {
    if (std::find(shared.begin(), shared.end(), right.vars[i]) ==
        shared.end()) {
      right_only.push_back(static_cast<int>(i));
      out_vars.push_back(right.vars[i]);
    }
  }
  const size_t ln = left.NumRows();
  const size_t rn = right.NumRows();

  // Which right shared column backfills left column `c` when the left
  // cell is unbound (compatibility-join output prefers the bound side).
  std::vector<int> backfill(left.NumVars(), -1);
  for (size_t i = 0; i < shared_left.size(); ++i) {
    backfill[shared_left[i]] = shared_right[i];
  }

  auto compatible = [&](size_t l, size_t r) {
    for (size_t i = 0; i < shared_left.size(); ++i) {
      rdf::TermId a = left.At(l, shared_left[i]);
      rdf::TermId b = right.At(r, shared_right[i]);
      if (a != rdf::kInvalidTermId && b != rdf::kInvalidTermId && a != b) {
        return false;
      }
    }
    return true;
  };

  // Pass 1: find the (left, right) match pairs and the unmatched left
  // rows. Only key columns are touched here; the non-key payload columns
  // are never read until the gather pass below.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  std::vector<uint32_t> unmatched;
  if (ln != 0 && (rn != 0 || left_outer)) {
    std::unordered_map<std::vector<rdf::TermId>, std::vector<uint32_t>,
                       IdRowHash>
        hash_index;
    std::vector<uint32_t> right_wildcards;
    std::vector<rdf::TermId> key;
    for (size_t r = 0; r < rn; ++r) {
      key.clear();
      bool keyed = true;
      for (int idx : shared_right) {
        rdf::TermId id = right.At(r, idx);
        if (id == rdf::kInvalidTermId) {
          keyed = false;
          break;
        }
        key.push_back(id);
      }
      if (keyed) {
        hash_index[key].push_back(static_cast<uint32_t>(r));
      } else {
        right_wildcards.push_back(static_cast<uint32_t>(r));
      }
    }
    for (size_t l = 0; l < ln; ++l) {
      bool matched = false;
      key.clear();
      bool keyed = true;
      for (int idx : shared_left) {
        rdf::TermId id = left.At(l, idx);
        if (id == rdf::kInvalidTermId) {
          keyed = false;
          break;
        }
        key.push_back(id);
      }
      if (keyed) {
        auto it = hash_index.find(key);
        if (it != hash_index.end()) {
          for (uint32_t r : it->second) {
            pairs.emplace_back(static_cast<uint32_t>(l), r);
          }
          matched = true;
        }
        for (uint32_t r : right_wildcards) {
          if (compatible(l, r)) {
            pairs.emplace_back(static_cast<uint32_t>(l), r);
            matched = true;
          }
        }
      } else {
        // Left row has an unbound shared var: scan everything.
        for (size_t r = 0; r < rn; ++r) {
          if (compatible(l, r)) {
            pairs.emplace_back(static_cast<uint32_t>(l),
                               static_cast<uint32_t>(r));
            matched = true;
          }
        }
      }
      if (left_outer && !matched) unmatched.push_back(static_cast<uint32_t>(l));
    }
  }

  // Pass 2: materialize with one gather per output column. Matched rows
  // first, then (for OPTIONAL) the unmatched lefts padded unbound.
  const size_t total = pairs.size() + unmatched.size();
  std::vector<std::vector<rdf::TermId>> cols(out_vars.size());
  for (size_t c = 0; c < left.NumVars(); ++c) {
    std::vector<rdf::TermId>& dst = cols[c];
    dst.resize(total);
    const std::vector<rdf::TermId>& lc = left.Column(c);
    const int br = backfill[c];
    const std::vector<rdf::TermId>& rc =
        br >= 0 ? right.Column(br) : EmptyColumn();
    for (size_t k = 0; k < pairs.size(); ++k) {
      rdf::TermId v =
          lc.empty() ? rdf::kInvalidTermId : lc[pairs[k].first];
      if (v == rdf::kInvalidTermId && !rc.empty()) v = rc[pairs[k].second];
      dst[k] = v;
    }
    for (size_t k = 0; k < unmatched.size(); ++k) {
      dst[pairs.size() + k] =
          lc.empty() ? rdf::kInvalidTermId : lc[unmatched[k]];
    }
  }
  for (size_t m = 0; m < right_only.size(); ++m) {
    std::vector<rdf::TermId>& dst = cols[left.NumVars() + m];
    dst.resize(total, rdf::kInvalidTermId);
    const std::vector<rdf::TermId>& rc = right.Column(right_only[m]);
    if (!rc.empty()) {
      for (size_t k = 0; k < pairs.size(); ++k) dst[k] = rc[pairs[k].second];
    }
  }
  return IdTable::FromColumns(std::move(out_vars), std::move(cols), total);
}

void AppendUnionIds(IdTable* dst, const IdTable& src) {
  if (dst->NumVars() == 0 && dst->NumRows() == 0) {
    *dst = src;
    return;
  }
  const size_t old_rows = dst->NumRows();
  dst->AddEmptyRows(src.NumRows());
  for (size_t i = 0; i < src.NumVars(); ++i) {
    int idx = dst->VarIndex(src.vars[i]);
    if (idx < 0) {
      idx = static_cast<int>(dst->vars.size());
      dst->vars.push_back(src.vars[i]);
    }
    const std::vector<rdf::TermId>& sc = src.Column(i);
    if (sc.empty()) continue;  // All-unbound: the padding already says so.
    std::vector<rdf::TermId>* dc = dst->MutableColumn(idx);
    std::copy(sc.begin(), sc.end(), dc->begin() + old_rows);
  }
}

IdTable ProjectIds(const IdTable& table, const std::vector<std::string>& vars,
                   bool distinct) {
  std::vector<int> idx;
  idx.reserve(vars.size());
  for (const std::string& v : vars) idx.push_back(table.VarIndex(v));
  const size_t n = table.NumRows();
  if (!distinct) {
    std::vector<std::vector<rdf::TermId>> cols(vars.size());
    for (size_t c = 0; c < idx.size(); ++c) {
      if (idx[c] < 0) continue;
      const std::vector<rdf::TermId>& src = table.Column(idx[c]);
      if (!src.empty()) cols[c] = src;
    }
    return IdTable::FromColumns(vars, std::move(cols), n);
  }
  std::unordered_set<std::vector<rdf::TermId>, IdRowHash> seen;
  std::vector<uint32_t> kept;
  std::vector<rdf::TermId> key(vars.size());
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < idx.size(); ++c) {
      key[c] = idx[c] >= 0 ? table.At(r, idx[c]) : rdf::kInvalidTermId;
    }
    if (seen.insert(key).second) kept.push_back(static_cast<uint32_t>(r));
  }
  std::vector<std::vector<rdf::TermId>> cols(vars.size());
  for (size_t c = 0; c < idx.size(); ++c) {
    if (idx[c] < 0) continue;
    const std::vector<rdf::TermId>& src = table.Column(idx[c]);
    if (src.empty()) continue;
    cols[c].resize(kept.size());
    for (size_t k = 0; k < kept.size(); ++k) cols[c][k] = src[kept[k]];
  }
  return IdTable::FromColumns(vars, std::move(cols), kept.size());
}

void FilterIds(IdTable* table, const sparql::Expr& filter,
               const TermDictionary& dict) {
  std::vector<uint32_t> kept;
  kept.reserve(table->NumRows());
  for (size_t r = 0; r < table->NumRows(); ++r) {
    // Dictionary references are stable, so the lookup hands out the
    // interned term directly — no per-row decode copies.
    auto lookup = [&](const std::string& name) -> const rdf::Term* {
      int idx = table->VarIndex(name);
      if (idx < 0) return nullptr;
      rdf::TermId id = table->At(r, idx);
      if (id == rdf::kInvalidTermId) return nullptr;
      return &dict.term(id);
    };
    if (sparql::EvalFilter(filter, lookup)) {
      kept.push_back(static_cast<uint32_t>(r));
    }
  }
  if (kept.size() != table->NumRows()) *table = table->SelectRows(kept);
}

IdTable EncodeResultTable(const sparql::ResultTable& table,
                          TermDictionary* dict) {
  Stopwatch timer;
  const size_t n = table.rows.size();
  std::vector<std::vector<rdf::TermId>> cols(
      table.vars.size(), std::vector<rdf::TermId>(n, rdf::kInvalidTermId));
  for (size_t r = 0; r < n; ++r) {
    const auto& row = table.rows[r];
    for (size_t c = 0; c < cols.size() && c < row.size(); ++c) {
      if (row[c].has_value()) cols[c][r] = dict->Intern(*row[c]);
    }
  }
  dict->AddEncodeBatch(timer.ElapsedMillis() / 1e3,
                       static_cast<uint64_t>(n * table.vars.size()));
  return IdTable::FromColumns(table.vars, std::move(cols), n);
}

sparql::ResultTable DecodeIdTable(const IdTable& table,
                                  const TermDictionary& dict) {
  Stopwatch timer;
  sparql::ResultTable out;
  out.vars = table.vars;
  out.rows.reserve(table.NumRows());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    std::vector<std::optional<rdf::Term>> cells;
    cells.reserve(table.NumVars());
    for (size_t c = 0; c < table.NumVars(); ++c) {
      rdf::TermId id = table.At(r, c);
      if (id == rdf::kInvalidTermId) {
        cells.push_back(std::nullopt);
      } else {
        cells.push_back(dict.term(id));
      }
    }
    out.rows.push_back(std::move(cells));
  }
  dict.AddDecodeBatch(
      timer.ElapsedMillis() / 1e3,
      static_cast<uint64_t>(table.NumRows() * table.NumVars()));
  return out;
}

std::string FingerprintIdBindings(const std::string& var,
                                  const TermDictionary& dict,
                                  const rdf::TermId* ids, size_t count) {
  // 128 bits of FNV-1a (two independent offset bases): collisions would
  // silently serve wrong cached rows, so 64 bits is not enough.
  uint64_t h1 = 14695981039346656037ull;
  uint64_t h2 = 10650232656628343401ull;
  auto mix = [&](const unsigned char* bytes, size_t len) {
    for (size_t i = 0; i < len; ++i) {
      h1 = (h1 ^ bytes[i]) * 1099511628211ull;
      h2 = (h2 ^ bytes[i]) * 1099511628211ull;
    }
  };
  mix(reinterpret_cast<const unsigned char*>(var.data()), var.size());
  for (size_t i = 0; i < count; ++i) {
    uint64_t content = dict.content_hash(ids[i]);
    mix(reinterpret_cast<const unsigned char*>(&content), sizeof(content));
  }
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(h1),
                static_cast<unsigned long long>(h2));
  return std::string(buf);
}

}  // namespace lusail::core
