#ifndef LUSAIL_CORE_JOIN_OPTIMIZER_H_
#define LUSAIL_CORE_JOIN_OPTIMIZER_H_

#include <set>
#include <string>
#include <vector>

namespace lusail::core {

/// Cost-based join-order enumeration for the global join phase
/// (Section 4.2, "Join Evaluation").
///
/// Each subquery result is a relation with a known true cardinality,
/// partitioned across worker threads. The optimizer runs the classic
/// dynamic-programming enumeration: states are subsets of relations, and
/// expanding state S with relation R costs
///   JoinCost(S, R) = |S| / S.threads  (hashing the smaller side)
///                  + C(R)  / R.threads (probing)
/// with each state keeping the minimum cost over all orders reaching it.
/// Cartesian expansions are considered only when no connected expansion
/// exists. Falls back to a greedy size order beyond `kDpLimit` relations.
class JoinOptimizer {
 public:
  /// Returns the join order as relation indices (left-deep). `sizes` are
  /// true relation cardinalities; `vars` are each relation's variables;
  /// `threads` is the per-relation partition count.
  static std::vector<int> OptimalOrder(
      const std::vector<double>& sizes,
      const std::vector<std::set<std::string>>& vars, size_t threads);

  /// Maximum relation count for exact DP enumeration.
  static constexpr size_t kDpLimit = 14;
};

}  // namespace lusail::core

#endif  // LUSAIL_CORE_JOIN_OPTIMIZER_H_
