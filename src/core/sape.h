#ifndef LUSAIL_CORE_SAPE_H_
#define LUSAIL_CORE_SAPE_H_

#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/cost_model.h"
#include "core/options.h"
#include "core/subquery.h"
#include "federation/binding_table.h"
#include "federation/federation.h"

namespace lusail::core {

/// Selectivity-Aware Planning and parallel Execution (paper Section 4,
/// Algorithm 3).
///
/// Phase 1 submits every non-delayed subquery to all of its relevant
/// endpoints concurrently (one task per endpoint through the Elastic
/// Request Handler pool), unions each subquery's per-endpoint results,
/// and eagerly joins connected results. Phase 2 evaluates the delayed
/// subqueries in increasing refined-cardinality order as bound joins:
/// the already-found bindings of a shared variable are shipped in VALUES
/// blocks; generic single-pattern subqueries first refine their relevant
/// sources with sampled ASK probes. The global join runs as a parallel
/// partitioned hash join in the order chosen by the DP join optimizer.
class SapeExecutor {
 public:
  SapeExecutor(const fed::Federation* federation, ThreadPool* pool,
               const LusailOptions* options)
      : federation_(federation), pool_(pool), options_(options) {}

  /// Executes `subqueries` over `triples` and returns the joined binding
  /// table (all subquery projections merged). With options.enable_sape
  /// false, every subquery runs concurrently (no delaying) and results
  /// are joined at the federator — the paper's "LADE only" mode.
  /// The token is checked before every endpoint fetch, between VALUES
  /// chunks of a bound join, and around every global-join step, so
  /// execution unwinds with kTimeout within one chunk of it firing.
  ///
  /// `row_limit` > 0 is a pushdown hint: the caller needs any `row_limit`
  /// rows (top-level LIMIT, no ORDER BY/DISTINCT, nothing downstream that
  /// filters rows). It applies only in whole-query mode (one subquery):
  /// the generated subquery gets a LIMIT clause and a row budget cancels
  /// the not-yet-started endpoint fetches once the union is satisfied.
  /// Multi-subquery plans ignore the hint — a join can discard rows, so
  /// no per-subquery limit is provably safe there.
  Result<fed::BindingTable> Execute(
      std::vector<Subquery> subqueries,
      const std::vector<sparql::TriplePattern>& triples,
      fed::SharedDictionary* dict, fed::MetricsCollector* metrics,
      const CancelToken& cancel, fed::ExecutionProfile* profile = nullptr,
      size_t row_limit = 0);

 private:
  /// Runs one subquery (optionally with a VALUES block) at all of its
  /// relevant endpoints concurrently and unions the results in `dict`'s
  /// id space. When `values` is set, `bound_ids` must carry the block's
  /// binding ids — they key the shared result cache via an id-space
  /// fingerprint instead of hashing the serialized block. Requests are
  /// traced as children of `trace_parent` (the subquery's span) — an
  /// explicit parent, because requests run on pool threads while the
  /// collector's default parent tracks the caller's current phase.
  /// `row_limit` > 0 appends a LIMIT clause to the generated text (any
  /// `row_limit` rows satisfy the caller) and arms a row budget: once the
  /// running union holds that many rows, a budget token fires and every
  /// fetch still queued behind it returns an empty table instead of
  /// touching the wire. In-flight requests are not interrupted — the
  /// budget is a cutoff for upstream work, not a failure.
  Result<fed::BindingTable> RunEverywhere(const Subquery& sq,
                                          const std::vector<sparql::TriplePattern>& triples,
                                          const sparql::ValuesClause* values,
                                          const std::vector<rdf::TermId>* bound_ids,
                                          fed::SharedDictionary* dict,
                                          fed::MetricsCollector* metrics,
                                          const CancelToken& cancel,
                                          obs::SpanId trace_parent = 0,
                                          size_t row_limit = 0);

  /// One endpoint request in id space, routed through the federation's
  /// shared result cache when this engine opted in (options.result_cache)
  /// and `cacheable` holds. `cache_key` identifies the fetch in the
  /// shared cache: the query text itself for unbound subqueries, or the
  /// base subquery text plus an id-space fingerprint of the VALUES
  /// binding block for bound (delayed-phase) fetches — so a warm serving
  /// process skips repeated bound joins too. A hit is recorded as a
  /// "cache" span instead of a request span, issues no request, and is
  /// re-encoded from the cache's string rows into `dict`. A miss goes
  /// through Federation::ExecuteEncoded, so an endpoint parsing straight
  /// into `dict` hands back ids untouched.
  Result<fed::BindingTable> FetchEndpoint(int ep, const std::string& text,
                                          const std::string& cache_key,
                                          bool cacheable,
                                          fed::SharedDictionary* dict,
                                          fed::MetricsCollector* metrics,
                                          const CancelToken& cancel,
                                          const net::RetryPolicy* retry,
                                          obs::SpanId trace_parent);

  const fed::Federation* federation_;
  ThreadPool* pool_;
  const LusailOptions* options_;
};

}  // namespace lusail::core

#endif  // LUSAIL_CORE_SAPE_H_
