#ifndef LUSAIL_CORE_SUBQUERY_H_
#define LUSAIL_CORE_SUBQUERY_H_

#include <string>
#include <vector>

#include "sparql/ast.h"
#include "sparql/serializer.h"

namespace lusail::core {

/// An OPTIONAL block pushed into a subquery: locality analysis proved the
/// endpoints can evaluate the left-outer join themselves.
struct PushedOptional {
  std::vector<sparql::TriplePattern> triples;
  std::vector<sparql::Expr> filters;
};

/// One independent subquery produced by LADE: a set of triple patterns
/// that every relevant endpoint can answer as a unit, plus the filters
/// and OPTIONAL blocks pushed into it and the variables it must project
/// (join variables and final-answer variables).
struct Subquery {
  std::vector<int> triple_indices;  ///< Into the query's BGP.
  std::vector<int> sources;         ///< Relevant endpoint indices.
  std::vector<std::string> projection;
  std::vector<sparql::Expr> filters;
  std::vector<PushedOptional> optionals;
  bool optional = false;  ///< Left-outer-joined at the federator.

  /// Filled by the cost model / SAPE.
  double estimated_cardinality = 0.0;
  bool delayed = false;

  /// Variables appearing in this subquery's patterns.
  std::vector<std::string> Variables(
      const std::vector<sparql::TriplePattern>& triples) const {
    std::vector<std::string> out;
    for (int ti : triple_indices) {
      for (const std::string& v : triples[ti].VariableNames()) {
        if (std::find(out.begin(), out.end(), v) == out.end()) {
          out.push_back(v);
        }
      }
    }
    return out;
  }

  /// Renders the subquery as SPARQL text, optionally prefixed with a
  /// VALUES data block (bound joins of delayed subqueries).
  std::string ToSparql(const std::vector<sparql::TriplePattern>& triples,
                       const sparql::ValuesClause* values = nullptr) const {
    sparql::Query q;
    q.form = sparql::QueryForm::kSelect;
    for (const std::string& v : projection) {
      q.projection.push_back(sparql::Variable{v});
    }
    if (q.projection.empty()) q.select_all = true;
    for (int ti : triple_indices) q.where.triples.push_back(triples[ti]);
    q.where.filters = filters;
    for (const PushedOptional& opt : optionals) {
      sparql::GraphPattern block;
      block.triples = opt.triples;
      block.filters = opt.filters;
      q.where.optionals.push_back(std::move(block));
    }
    if (values != nullptr) q.where.values.push_back(*values);
    return sparql::QueryToString(q);
  }
};

}  // namespace lusail::core

#endif  // LUSAIL_CORE_SUBQUERY_H_
