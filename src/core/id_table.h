#ifndef LUSAIL_CORE_ID_TABLE_H_
#define LUSAIL_CORE_ID_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dictionary.h"
#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "sparql/result_table.h"

namespace lusail::core {

/// Columnar binding table: one contiguous std::vector<TermId> per
/// variable, kInvalidTermId marking an unbound cell. This is the internal
/// currency of federated execution — endpoint responses are encoded into
/// an IdTable at the boundary, every join/union/dedup runs on these
/// fixed-width columns, and only the final projected window is decoded
/// back to the row-major string ResultTable (the wire/compat format).
///
/// The column layout is what makes the join hot path fast: a hash join
/// touches only its key columns while probing (cache-dense sequential
/// u64 reads) and materializes output with per-column gathers instead of
/// per-row vector allocations.
///
/// `vars` is a public member on purpose — construction sites assign or
/// push variable names directly, exactly like the old row-major table.
/// Column storage follows lazily: the next mutating call (AppendRow,
/// Set, AddEmptyRows, ...) grows the column array to match, padding new
/// columns with unbound cells for existing rows. Const accessors treat a
/// var with no column yet as an all-unbound column (At returns
/// kInvalidTermId; Column returns an empty span), so reads between a
/// vars.push_back and the next mutation are safe, if trivial.
class IdTable {
 public:
  std::vector<std::string> vars;

  IdTable() = default;
  explicit IdTable(std::vector<std::string> names) : vars(std::move(names)) {}

  size_t NumRows() const { return num_rows_; }
  size_t NumVars() const { return vars.size(); }

  /// Index of `var` in vars, or -1.
  int VarIndex(const std::string& var) const;

  /// Variables present in both tables, in `a`'s order.
  static std::vector<std::string> SharedVars(const IdTable& a,
                                             const IdTable& b);

  /// Cell accessors. At() on a var whose column does not exist yet (vars
  /// grown since the last mutation) reads as unbound.
  rdf::TermId At(size_t row, size_t col) const {
    return col < cols_.size() ? cols_[col][row] : rdf::kInvalidTermId;
  }
  void Set(size_t row, size_t col, rdf::TermId id);

  /// Appends one row given in vars order; cells beyond row.size() are
  /// unbound. (A zero-length row appends an all-unbound row — ASK tables
  /// with zero vars still count rows.)
  void AppendRow(const std::vector<rdf::TermId>& row);

  /// Appends `n` all-unbound rows.
  void AddEmptyRows(size_t n);

  /// Materializes one row (slow path: per-row vector allocation).
  std::vector<rdf::TermId> Row(size_t row) const;

  /// Column storage. Column() of a var with no column yet returns an
  /// empty vector (see class comment); MutableColumn materializes it.
  const std::vector<rdf::TermId>& Column(size_t col) const;
  std::vector<rdf::TermId>* MutableColumn(size_t col);

  void Reserve(size_t rows);
  void Clear();

  /// New table with the same vars holding the given rows, in order.
  IdTable SelectRows(const std::vector<uint32_t>& rows) const;

  /// Rows [begin, end) as a new table (LIMIT/OFFSET windowing).
  IdTable Slice(size_t begin, size_t end) const;

  /// Appends `other`'s rows; requires identical vars (join partitions
  /// produced by the same routine). AppendUnionIds aligns by name.
  void Append(const IdTable& other);

  /// Bulk constructor for operators that materialize whole columns: each
  /// column must hold `num_rows` cells, or be empty to mean all-unbound.
  static IdTable FromColumns(std::vector<std::string> names,
                             std::vector<std::vector<rdf::TermId>> cols,
                             size_t num_rows);

 private:
  /// Grows cols_ to vars.size(), padding new columns with unbound cells.
  void SyncColumns();

  std::vector<std::vector<rdf::TermId>> cols_;
  size_t num_rows_ = 0;
};

/// Natural inner (or left-outer) join on all shared variables, SPARQL
/// compatibility semantics: an unbound shared cell is compatible with any
/// value; shared output columns prefer the bound side. Output layout is
/// deterministic: left.vars then right-only vars. With no shared
/// variables this degenerates to the cartesian product.
IdTable JoinIds(const IdTable& left, const IdTable& right, bool left_outer);

/// Appends src's rows to dst, aligning columns by name; variables missing
/// from src become unbound (UNION at the federator).
void AppendUnionIds(IdTable* dst, const IdTable& src);

/// Projects onto `vars` (missing variables become unbound columns);
/// optionally deduplicates rows.
IdTable ProjectIds(const IdTable& table, const std::vector<std::string>& vars,
                   bool distinct);

/// Keeps the rows satisfying `filter`, decoding cells through `dict`.
void FilterIds(IdTable* table, const sparql::Expr& filter,
               const TermDictionary& dict);

/// Encodes a wire ResultTable into ids (boundary encoder; batch-timed
/// into the dictionary's encode counters).
IdTable EncodeResultTable(const sparql::ResultTable& table,
                          TermDictionary* dict);

/// Decodes back to the wire format (late materialization; batch-timed
/// into the dictionary's decode counters).
sparql::ResultTable DecodeIdTable(const IdTable& table,
                                  const TermDictionary& dict);

/// 128 bits of FNV-1a over a VALUES binding block in id space — the
/// bind variable plus each binding's dictionary content hash — rendered
/// as hex. Keys bound-join fetches in the shared result cache: mixing a
/// precomputed 8-byte hash per binding replaces serializing and
/// re-hashing the block's N-Triples text. Content hashes (not raw ids)
/// make the key stable across dictionary instances, so a warm engine
/// with a fresh dictionary still hits entries a previous engine stored.
std::string FingerprintIdBindings(const std::string& var,
                                  const TermDictionary& dict,
                                  const rdf::TermId* ids, size_t count);

}  // namespace lusail::core

#endif  // LUSAIL_CORE_ID_TABLE_H_
