#include "core/lusail_engine.h"

#include "sparql/expr_eval.h"

#include <algorithm>

#include "core/hash_join.h"
#include "core/join_optimizer.h"

namespace lusail::core {

namespace {

using fed::BindingTable;

std::set<std::string> NeededVars(const sparql::Query& query) {
  std::set<std::string> needed;
  for (const sparql::Variable& v : query.EffectiveProjection()) {
    needed.insert(v.name);
  }
  if (query.aggregate.has_value() && query.aggregate->var.has_value()) {
    needed.insert(query.aggregate->var->name);
  }
  return needed;
}

/// True when an OPTIONAL block is a plain conjunctive pattern (the only
/// shape eligible for endpoint push-down).
bool IsPlainOptional(const sparql::GraphPattern& gp) {
  return !gp.triples.empty() && gp.exists_filters.empty() &&
         gp.optionals.empty() && gp.unions.empty() && gp.values.empty();
}

std::set<std::string> PatternVars(
    const std::vector<sparql::TriplePattern>& triples) {
  std::set<std::string> vars;
  for (const sparql::TriplePattern& tp : triples) {
    for (const std::string& v : tp.VariableNames()) vars.insert(v);
  }
  return vars;
}

/// OPTIONAL push-down (Section 3: "Lusail determines where to add the
/// FILTER and OPTIONAL clauses during query decomposition"). A plain
/// optional block is pushed into a host subquery when the endpoints can
/// evaluate the left-outer join themselves:
///   1. every optional pattern has the host's exact source list,
///   2. no causing pair crosses the optional boundary or lies inside it
///      (instance-level locality holds),
///   3. the optional's overlap with the mandatory BGP and with the rest
///      of the query stays inside the host subquery, so the local left
///      join commutes with the global joins.
///
/// `optional_ranges[k]` is the index range of plain_optionals[k]'s
/// patterns in the combined pattern list `sources`/`gjvs` were computed
/// over. Returns the number of blocks pushed; the rest are appended to
/// `unpushed` (when non-null). Shared by execution and EXPLAIN so both
/// report the same plan.
size_t PushPlainOptionals(
    const std::vector<const sparql::GraphPattern*>& plain_optionals,
    const std::vector<std::pair<size_t, size_t>>& optional_ranges,
    const std::vector<sparql::TriplePattern>& triples,
    const std::vector<std::vector<int>>& sources, const GjvResult& gjvs,
    const std::set<std::string>& outside_vars,
    const std::set<std::string>& needed_vars, Decomposition* decomposition,
    std::vector<const sparql::GraphPattern*>* unpushed) {
  size_t pushed_count = 0;
  for (size_t k = 0; k < plain_optionals.size(); ++k) {
    const sparql::GraphPattern* opt = plain_optionals[k];
    auto [begin, end] = optional_ranges[k];
    std::set<std::string> opt_vars;
    opt->CollectVariables(&opt_vars);
    // Variables visible outside this optional: the caller-provided set
    // plus the other optional candidates of this group.
    std::set<std::string> extern_vars = outside_vars;
    for (size_t j = 0; j < plain_optionals.size(); ++j) {
      if (j != k) plain_optionals[j]->CollectVariables(&extern_vars);
    }

    Subquery* host = nullptr;
    for (Subquery& sq : decomposition->subqueries) {
      bool sources_match = true;
      for (size_t oi = begin; oi < end && sources_match; ++oi) {
        if (sources[oi] != sq.sources) sources_match = false;
      }
      if (!sources_match) continue;
      bool causes = false;
      for (size_t oi = begin; oi < end && !causes; ++oi) {
        for (int ti : sq.triple_indices) {
          if (gjvs.IsCausingPair(static_cast<int>(oi), ti)) causes = true;
        }
        for (size_t oj = begin; oj < end; ++oj) {
          if (oi != oj &&
              gjvs.IsCausingPair(static_cast<int>(oi),
                                 static_cast<int>(oj))) {
            causes = true;
          }
        }
      }
      if (causes) continue;
      std::vector<std::string> host_vars = sq.Variables(triples);
      auto inside_host = [&](const std::string& v) {
        return std::find(host_vars.begin(), host_vars.end(), v) !=
               host_vars.end();
      };
      std::set<std::string> bgp_vars = PatternVars(triples);
      bool shares_with_host = false;
      bool contained = true;
      for (const std::string& v : opt_vars) {
        bool host_has = inside_host(v);
        if (host_has) shares_with_host = true;
        if ((bgp_vars.count(v) || extern_vars.count(v)) && !host_has) {
          contained = false;
          break;
        }
      }
      if (!shares_with_host || !contained) continue;
      host = &sq;
      break;
    }
    if (host == nullptr) {
      if (unpushed != nullptr) unpushed->push_back(opt);
      continue;
    }
    PushedOptional pushed;
    pushed.triples = opt->triples;
    pushed.filters = opt->filters;
    host->optionals.push_back(std::move(pushed));
    ++pushed_count;
    // Project the optional's externally visible variables.
    for (const std::string& v : opt_vars) {
      if ((needed_vars.count(v) || extern_vars.count(v)) &&
          std::find(host->projection.begin(), host->projection.end(), v) ==
              host->projection.end()) {
        host->projection.push_back(v);
      }
    }
  }
  return pushed_count;
}

}  // namespace

LusailEngine::LusailEngine(const fed::Federation* federation,
                           LusailOptions options)
    : federation_(federation),
      options_(options),
      pool_(options.num_threads),
      dict_(std::make_shared<fed::SharedDictionary>()) {}

std::string LusailEngine::name() const {
  return options_.enable_sape ? "Lusail" : "Lusail-LADE";
}

void LusailEngine::ClearCaches() {
  ask_cache_.Clear();
  check_cache_.Clear();
}

Result<AnalyzedQuery> LusailEngine::Analyze(const std::string& sparql_text) {
  LUSAIL_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(sparql_text));
  AnalyzedQuery out;
  out.query = query;
  fed::MetricsCollector metrics;
  Deadline deadline;
  const net::RetryPolicy* retry =
      options_.retry_policy.enabled() ? &options_.retry_policy : nullptr;
  const bool tolerate = options_.partial_results;

  // Combined pattern list: the mandatory triples plus the top-level plain
  // OPTIONAL candidates, exactly as ExecuteBgp probes them — EXPLAIN must
  // show the plan execution would use.
  std::vector<sparql::TriplePattern> combined = query.where.triples;
  std::vector<std::pair<size_t, size_t>> optional_ranges;
  std::vector<const sparql::GraphPattern*> plain_optionals;
  if (options_.enable_optional_pushdown) {
    for (const sparql::GraphPattern& opt : query.where.optionals) {
      if (!IsPlainOptional(opt)) continue;
      optional_ranges.emplace_back(combined.size(),
                                   combined.size() + opt.triples.size());
      combined.insert(combined.end(), opt.triples.begin(),
                      opt.triples.end());
      plain_optionals.push_back(&opt);
    }
  }

  fed::SourceSelector selector(federation_, &ask_cache_, &pool_);
  LUSAIL_ASSIGN_OR_RETURN(
      std::vector<std::vector<int>> sources,
      selector.SelectSources(combined, &metrics, deadline,
                             options_.use_cache, retry, tolerate));
  out.sources.assign(sources.begin(),
                     sources.begin() + query.where.triples.size());

  GjvDetector detector(federation_, &check_cache_, &pool_);
  LUSAIL_ASSIGN_OR_RETURN(
      out.gjvs, detector.Detect(combined, sources, &metrics, deadline,
                                options_.use_cache, retry, tolerate));

  CostModel cost_model(federation_, &pool_);
  LUSAIL_RETURN_NOT_OK(cost_model.CollectStatistics(
      query.where.triples, out.sources, query.where.filters, &metrics,
      deadline, retry, tolerate, options_.use_cache));
  Decomposer decomposer(&cost_model);
  std::set<std::string> needed = NeededVars(query);
  out.decomposition =
      decomposer.Decompose(query.where.triples, out.sources, out.gjvs,
                           query.where.filters, needed);

  // OPTIONAL push-down over the top-level group, mirroring
  // ExecutePattern's variable-visibility setup.
  std::set<std::string> outside_vars;
  for (const auto& chain : query.where.unions) {
    for (const auto& alt : chain) alt.CollectVariables(&outside_vars);
  }
  std::set<std::string> analysis_needed = needed;
  analysis_needed.insert(outside_vars.begin(), outside_vars.end());
  for (const auto& opt : query.where.optionals) {
    opt.CollectVariables(&analysis_needed);
  }
  for (const sparql::Expr& f : query.where.filters) {
    f.CollectVariables(&analysis_needed);
  }
  out.pushed_optionals = PushPlainOptionals(
      plain_optionals, optional_ranges, query.where.triples, sources,
      out.gjvs, outside_vars, analysis_needed, &out.decomposition, nullptr);
  out.unpushed_optionals =
      query.where.optionals.size() - out.pushed_optionals;

  // SAPE planning artifacts: outlier rejection, delay decision, and the
  // estimated join order (the DP optimizer seeded with the COUNT-probe
  // estimates instead of the true cardinalities it sees at run time).
  std::vector<Subquery>& subqueries = out.decomposition.subqueries;
  std::vector<double> cards, eps;
  for (const Subquery& sq : subqueries) {
    cards.push_back(sq.estimated_cardinality);
    eps.push_back(static_cast<double>(sq.sources.size()));
  }
  out.outliers = ChauvenetOutliers(cards);
  if (options_.enable_sape && subqueries.size() > 1) {
    std::vector<bool> delayed =
        DecideDelayed(cards, eps, options_.delay_threshold);
    for (size_t i = 0; i < subqueries.size(); ++i) {
      subqueries[i].delayed = delayed[i];
    }
  } else {
    for (Subquery& sq : subqueries) sq.delayed = false;
  }
  std::vector<std::set<std::string>> sq_vars;
  for (const Subquery& sq : subqueries) {
    std::vector<std::string> v = sq.Variables(query.where.triples);
    sq_vars.emplace_back(v.begin(), v.end());
  }
  out.join_order = JoinOptimizer::OptimalOrder(
      cards, sq_vars, std::max<size_t>(1, options_.join_partitions));
  return out;
}

Result<BindingTable> LusailEngine::ExecuteBgp(
    const std::vector<sparql::TriplePattern>& triples,
    const std::vector<sparql::Expr>& filters,
    const std::vector<const sparql::GraphPattern*>& candidate_optionals,
    const std::set<std::string>& outside_vars,
    const std::set<std::string>& needed_vars, fed::SharedDictionary* dict,
    fed::MetricsCollector* metrics, const CancelToken& cancel,
    fed::ExecutionProfile* profile,
    std::vector<const sparql::GraphPattern*>* unpushed_optionals,
    size_t row_limit) {
  const Deadline& deadline = cancel.deadline();
  // Phase A: source selection — for the mandatory patterns and for the
  // push-down candidates' patterns (needed by the locality analysis).
  Stopwatch timer;
  fed::PhaseSpan source_span(metrics, "source selection");
  std::vector<sparql::TriplePattern> combined = triples;
  std::vector<std::pair<size_t, size_t>> optional_ranges;
  for (const sparql::GraphPattern* opt : candidate_optionals) {
    if (!options_.enable_optional_pushdown || !IsPlainOptional(*opt)) {
      unpushed_optionals->push_back(opt);
      continue;
    }
    optional_ranges.emplace_back(combined.size(),
                                 combined.size() + opt->triples.size());
    combined.insert(combined.end(), opt->triples.begin(),
                    opt->triples.end());
  }
  std::vector<const sparql::GraphPattern*> plain_optionals;
  if (options_.enable_optional_pushdown) {
    for (const sparql::GraphPattern* opt : candidate_optionals) {
      if (IsPlainOptional(*opt)) plain_optionals.push_back(opt);
    }
  }

  const net::RetryPolicy* retry =
      options_.retry_policy.enabled() ? &options_.retry_policy : nullptr;
  const bool tolerate = options_.partial_results;
  fed::SourceSelector selector(federation_, &ask_cache_, &pool_);
  LUSAIL_ASSIGN_OR_RETURN(
      std::vector<std::vector<int>> sources,
      selector.SelectSources(combined, metrics, deadline, options_.use_cache,
                             retry, tolerate));
  source_span.Annotate("patterns", static_cast<uint64_t>(combined.size()));
  source_span.End();
  profile->source_selection_ms += timer.ElapsedMillis();
  if (cancel.Cancelled()) return cancel.StatusAt("source selection");

  // Mandatory patterns with no relevant source: the query has no answers.
  for (size_t i = 0; i < triples.size(); ++i) {
    if (sources[i].empty()) {
      BindingTable empty;
      std::set<std::string> vars = PatternVars(triples);
      empty.vars.assign(vars.begin(), vars.end());
      // Optionals cannot resurrect rows; nothing more to push.
      for (const sparql::GraphPattern* opt : plain_optionals) {
        unpushed_optionals->push_back(opt);
      }
      return empty;
    }
  }

  // Phase B: LADE — GJV detection (over mandatory + candidate-optional
  // patterns so causing pairs across the OPTIONAL boundary are known),
  // statistics, and decomposition of the mandatory BGP.
  timer.Restart();
  fed::PhaseSpan lade_span(metrics, "LADE analysis");
  GjvDetector detector(federation_, &check_cache_, &pool_);
  Decomposition decomposition;
  GjvResult gjvs;
  {
    fed::PhaseSpan gjv_span(metrics, "gjv detection");
    LUSAIL_ASSIGN_OR_RETURN(gjvs,
                            detector.Detect(combined, sources, metrics,
                                            deadline, options_.use_cache,
                                            retry, tolerate));
  }
  CostModel cost_model(federation_, &pool_);
  {
    fed::PhaseSpan stats_span(metrics, "statistics");
    LUSAIL_RETURN_NOT_OK(cost_model.CollectStatistics(
        triples, sources, filters, metrics, deadline, retry, tolerate,
        options_.use_cache));
  }
  {
    fed::PhaseSpan decomp_span(metrics, "decomposition");
    Decomposer decomposer(&cost_model);
    decomposition =
        decomposer.Decompose(triples, sources, gjvs, filters, needed_vars);
    profile->pushed_optionals += PushPlainOptionals(
        plain_optionals, optional_ranges, triples, sources, gjvs,
        outside_vars, needed_vars, &decomposition, unpushed_optionals);
    decomp_span.Annotate(
        "subqueries",
        static_cast<uint64_t>(decomposition.subqueries.size()));
  }
  lade_span.Annotate(
      "subqueries", static_cast<uint64_t>(decomposition.subqueries.size()));
  lade_span.Annotate("pushed_optionals", profile->pushed_optionals);
  lade_span.End();
  profile->analysis_ms += timer.ElapsedMillis();
  if (cancel.Cancelled()) return cancel.StatusAt("LADE analysis");

  // Phase C: SAPE execution. The LIMIT hint survives only when no global
  // filter runs after the subqueries — a filter could discard rows a
  // capped fetch never over-delivered.
  timer.Restart();
  fed::PhaseSpan sape_span(metrics, "SAPE execution");
  SapeExecutor sape(federation_, &pool_, &options_);
  size_t sape_limit = decomposition.global_filters.empty() ? row_limit : 0;
  Result<BindingTable> table =
      sape.Execute(std::move(decomposition.subqueries), triples, dict,
                   metrics, cancel, profile, sape_limit);
  if (!table.ok()) return table.status();

  BindingTable result = std::move(table).value();
  for (const sparql::Expr& f : decomposition.global_filters) {
    fed::FilterRows(&result, f, *dict);
  }
  profile->execution_ms += timer.ElapsedMillis();
  return result;
}

Result<BindingTable> LusailEngine::ExecutePattern(
    const sparql::GraphPattern& pattern,
    const std::set<std::string>& needed_vars, fed::SharedDictionary* dict,
    fed::MetricsCollector* metrics, const CancelToken& cancel,
    fed::ExecutionProfile* profile, size_t row_limit) {
  if (!pattern.exists_filters.empty()) {
    return Status::Unsupported(
        "FILTER [NOT] EXISTS is not supported in federated queries (it is "
        "used internally by Lusail's locality checks)");
  }

  // Needed vars for the BGP include everything nested blocks join on.
  std::set<std::string> bgp_needed = needed_vars;
  std::set<std::string> nested_vars;
  for (const auto& chain : pattern.unions) {
    for (const auto& alt : chain) alt.CollectVariables(&nested_vars);
  }
  for (const auto& opt : pattern.optionals) {
    opt.CollectVariables(&nested_vars);
  }
  bgp_needed.insert(nested_vars.begin(), nested_vars.end());
  // Filters that nested blocks do not cover must survive the BGP.
  std::set<std::string> filter_vars;
  for (const sparql::Expr& f : pattern.filters) {
    f.CollectVariables(&filter_vars);
  }
  bgp_needed.insert(filter_vars.begin(), filter_vars.end());

  BindingTable table;
  bool have_table = false;

  if (!pattern.triples.empty()) {
    // Filters whose variables are fully inside the BGP go down the LADE
    // pipeline; the rest are applied after nested blocks join in.
    std::set<std::string> bgp_vars;
    for (const sparql::TriplePattern& tp : pattern.triples) {
      for (const std::string& v : tp.VariableNames()) bgp_vars.insert(v);
    }
    std::vector<sparql::Expr> bgp_filters, residual_filters;
    for (const sparql::Expr& f : pattern.filters) {
      std::set<std::string> fv;
      f.CollectVariables(&fv);
      bool inside = std::all_of(fv.begin(), fv.end(), [&](const auto& v) {
        return bgp_vars.count(v) > 0;
      });
      (inside ? bgp_filters : residual_filters).push_back(f);
    }

    // Variables that other *join blocks* of this group observe: an
    // OPTIONAL push-down must keep its overlap with these inside its host
    // subquery, or the local left join would not commute with the global
    // joins. (Projection-only and residual-filter variables do not block
    // the push-down — the host simply projects them.)
    std::set<std::string> outside_vars;
    for (const auto& chain : pattern.unions) {
      for (const auto& alt : chain) alt.CollectVariables(&outside_vars);
    }

    std::vector<const sparql::GraphPattern*> candidates;
    candidates.reserve(pattern.optionals.size());
    for (const sparql::GraphPattern& opt : pattern.optionals) {
      candidates.push_back(&opt);
    }
    std::vector<const sparql::GraphPattern*> unpushed;
    // The LIMIT hint may cross the BGP only when nothing at this level
    // can discard rows afterwards: UNION chains and VALUES blocks join
    // (can drop rows), residual filters drop rows. Unpushed OPTIONALs are
    // harmless — a left join keeps every left row.
    size_t bgp_limit = (row_limit > 0 && pattern.unions.empty() &&
                        pattern.values.empty() && residual_filters.empty())
                           ? row_limit
                           : 0;
    LUSAIL_ASSIGN_OR_RETURN(
        table, ExecuteBgp(pattern.triples, bgp_filters, candidates,
                          outside_vars, bgp_needed, dict, metrics, cancel,
                          profile, &unpushed, bgp_limit));
    have_table = true;

    // UNION chains and the OPTIONAL blocks that could not be pushed down
    // join/extend the BGP result at the federator.
    for (const auto& chain : pattern.unions) {
      BindingTable unioned;
      for (const sparql::GraphPattern& alt : chain) {
        LUSAIL_ASSIGN_OR_RETURN(
            BindingTable branch,
            ExecutePattern(alt, bgp_needed, dict, metrics, cancel, profile));
        fed::AppendUnion(&unioned, branch);
      }
      table = ParallelHashJoin(table, unioned, &pool_,
                               options_.join_partitions, &cancel);
      if (cancel.Cancelled()) return cancel.StatusAt("union join");
    }
    for (const sparql::GraphPattern* opt : unpushed) {
      LUSAIL_ASSIGN_OR_RETURN(
          BindingTable right,
          ExecutePattern(*opt, bgp_needed, dict, metrics, cancel, profile));
      table = fed::LeftOuterJoin(table, right);
    }
    Stopwatch filter_timer;
    for (const sparql::Expr& f : residual_filters) {
      fed::FilterRows(&table, f, *dict);
    }
    profile->execution_ms += filter_timer.ElapsedMillis();
  } else {
    // No BGP at this level: pure UNION / OPTIONAL / VALUES group.
    for (const auto& chain : pattern.unions) {
      BindingTable unioned;
      for (const sparql::GraphPattern& alt : chain) {
        LUSAIL_ASSIGN_OR_RETURN(
            BindingTable branch,
            ExecutePattern(alt, bgp_needed, dict, metrics, cancel, profile));
        fed::AppendUnion(&unioned, branch);
      }
      if (!have_table) {
        table = std::move(unioned);
        have_table = true;
      } else {
        table = ParallelHashJoin(table, unioned, &pool_,
                                 options_.join_partitions, &cancel);
        if (cancel.Cancelled()) return cancel.StatusAt("union join");
      }
    }
    if (!have_table) {
      return Status::InvalidArgument("empty graph pattern");
    }
    for (const sparql::GraphPattern& opt : pattern.optionals) {
      LUSAIL_ASSIGN_OR_RETURN(
          BindingTable right,
          ExecutePattern(opt, bgp_needed, dict, metrics, cancel, profile));
      table = fed::LeftOuterJoin(table, right);
    }
    for (const sparql::Expr& f : pattern.filters) {
      fed::FilterRows(&table, f, *dict);
    }
  }

  // VALUES data blocks: intern and join.
  for (const sparql::ValuesClause& vc : pattern.values) {
    BindingTable values_table;
    for (const sparql::Variable& v : vc.vars) values_table.vars.push_back(v.name);
    std::vector<rdf::TermId> ids;
    for (const auto& row : vc.rows) {
      ids.clear();
      for (const auto& cell : row) {
        ids.push_back(cell.has_value() ? dict->Intern(*cell)
                                       : rdf::kInvalidTermId);
      }
      values_table.AppendRow(ids);
    }
    table = fed::HashJoin(table, values_table);
  }
  return table;
}

Result<fed::FederatedResult> LusailEngine::Execute(
    const std::string& sparql_text, const Deadline& deadline) {
  return Execute(sparql_text, CancelToken(deadline));
}

Result<fed::FederatedResult> LusailEngine::Execute(
    const std::string& sparql_text, const CancelToken& cancel) {
  Stopwatch total_timer;
  LUSAIL_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(sparql_text));

  fed::FederatedResult result;
  fed::MetricsCollector metrics;
  fed::QueryTrace trace(options_.trace, name(), &metrics);
  // The engine-lifetime dictionary: ids persist across queries, so the
  // transports' parse dictionaries (set once at wiring time) keep
  // matching and every response arrives pre-encoded.
  fed::SharedDictionary& dict = *dict_;

  std::set<std::string> needed = NeededVars(query);
  // LIMIT pushdown hint: with no ORDER BY, no DISTINCT and no aggregate,
  // any offset+limit rows of the pattern are a correct answer, so
  // upstream operators may stop producing once they have that many.
  // OFFSET itself is never pushed — it is applied once, here, after the
  // gather (a pushed OFFSET would skip rows per endpoint and lose them).
  size_t push_limit = 0;
  if (query.form == sparql::QueryForm::kSelect && !query.distinct &&
      !query.aggregate.has_value() && query.order_by.empty() &&
      query.limit.has_value()) {
    push_limit = static_cast<size_t>(
        std::min<uint64_t>(query.offset.value_or(0) +
                               static_cast<uint64_t>(*query.limit),
                           std::numeric_limits<uint32_t>::max()));
  }
  Result<BindingTable> table_or =
      ExecutePattern(query.where, needed, &dict, &metrics, cancel,
                     &result.profile, push_limit);
  if (!table_or.ok()) {
    metrics.FillCounters(&result.profile);
    trace.Attach(&result.profile);
    return table_or.status();
  }
  BindingTable table = std::move(table_or).value();

  Stopwatch finish_timer;
  if (query.form == sparql::QueryForm::kAsk) {
    if (table.NumRows() > 0) result.table.rows.push_back({});
  } else if (query.aggregate.has_value()) {
    // COUNT runs entirely in id space: one contiguous column scan, no
    // term is ever decoded (the count itself is the only output).
    const sparql::CountAggregate& agg = *query.aggregate;
    uint64_t count = 0;
    if (!agg.var.has_value()) {
      count = table.NumRows();
    } else {
      int idx = table.VarIndex(agg.var->name);
      if (idx >= 0) {
        const std::vector<rdf::TermId>& col =
            table.Column(static_cast<size_t>(idx));
        if (agg.distinct) {
          std::set<rdf::TermId> seen;
          for (rdf::TermId id : col) {
            if (id != rdf::kInvalidTermId) seen.insert(id);
          }
          count = seen.size();
        } else {
          for (rdf::TermId id : col) {
            if (id != rdf::kInvalidTermId) ++count;
          }
        }
      }
    }
    result.table.vars.push_back(agg.alias.name);
    result.table.rows.push_back(
        {rdf::Term::Integer(static_cast<int64_t>(count))});
  } else {
    std::vector<std::string> projection;
    for (const sparql::Variable& v : query.EffectiveProjection()) {
      projection.push_back(v.name);
    }
    BindingTable projected = fed::Project(table, projection, query.distinct);
    if (!query.order_by.empty()) {
      // Sort the decoded full result, then cut the LIMIT/OFFSET window.
      // ORDER BY is the one consumer that must materialize everything:
      // the sort compares lexical forms, not ids.
      result.table = fed::DecodeTable(projected, dict);
      sparql::SortRows(&result.table, query.order_by);
      size_t begin = std::min<size_t>(query.offset.value_or(0),
                                      result.table.rows.size());
      size_t end = result.table.rows.size();
      if (query.limit.has_value()) end = std::min(end, begin + *query.limit);
      result.table.rows.assign(result.table.rows.begin() + begin,
                               result.table.rows.begin() + end);
    } else {
      // Late materialization pays off here: only the LIMIT/OFFSET window
      // is decoded to strings, everything outside it stays ids.
      size_t begin =
          std::min<size_t>(query.offset.value_or(0), projected.NumRows());
      size_t end = projected.NumRows();
      if (query.limit.has_value()) end = std::min(end, begin + *query.limit);
      result.table = fed::DecodeTable(projected.Slice(begin, end), dict);
    }
  }
  result.profile.execution_ms += finish_timer.ElapsedMillis();

  metrics.FillCounters(&result.profile);
  result.profile.total_ms = total_timer.ElapsedMillis();
  trace.Attach(&result.profile);
  return result;
}

}  // namespace lusail::core
