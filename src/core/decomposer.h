#ifndef LUSAIL_CORE_DECOMPOSER_H_
#define LUSAIL_CORE_DECOMPOSER_H_

#include <set>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/gjv_detector.h"
#include "core/subquery.h"
#include "sparql/ast.h"

namespace lusail::core {

/// Result of LADE query decomposition.
struct Decomposition {
  std::vector<Subquery> subqueries;
  /// Filters that no single subquery covers; applied at the federator
  /// after the global join.
  std::vector<sparql::Expr> global_filters;
  std::set<std::string> gjvs;
  double cost = 0.0;  ///< Cost-model estimate of the chosen decomposition.
};

/// Locality-aware query decomposition (paper Section 3.2, Algorithm 2).
///
/// Per connected component of the query graph: if the component has no
/// causing pairs it becomes a single subquery; otherwise each of its GJVs
/// is tried as the root of a depth-first branching pass that grows
/// subqueries along edges (a pattern joins a subquery iff it has the same
/// relevant sources and does not complete a causing pair), followed by a
/// merging pass, and the decomposition with the smallest estimated
/// intermediate-result cost wins.
class Decomposer {
 public:
  explicit Decomposer(const CostModel* cost_model) : cost_model_(cost_model) {}

  /// Decomposes the BGP `triples` (per-pattern `sources`, GJV analysis
  /// `gjvs`). `filters` are pushed into covering subqueries; `needed_vars`
  /// are the variables the final answer requires (drives subquery
  /// projections).
  Decomposition Decompose(const std::vector<sparql::TriplePattern>& triples,
                          const std::vector<std::vector<int>>& sources,
                          const GjvResult& gjvs,
                          const std::vector<sparql::Expr>& filters,
                          const std::set<std::string>& needed_vars) const;

 private:
  const CostModel* cost_model_;
};

}  // namespace lusail::core

#endif  // LUSAIL_CORE_DECOMPOSER_H_
