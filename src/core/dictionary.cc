#include "core/dictionary.h"

namespace lusail::core {

namespace {

/// Global epoch source: one tag per dictionary instance, process-wide.
std::atomic<uint64_t>& EpochCounter() {
  static std::atomic<uint64_t> counter{1};
  return counter;
}

/// Approximate resident cost of one interned term: string payloads plus
/// the deque slot and the hash-table entry it occupies.
size_t TermBytes(const rdf::Term& term) {
  return term.lexical().size() + term.datatype().size() +
         term.lang().size() + 2 * sizeof(rdf::Term) +
         sizeof(rdf::TermId) + 32;
}

/// Stable FNV-1a over the term's full identity. Field separators (bytes
/// that cannot appear unescaped inside the components) keep e.g.
/// ("ab","c") and ("a","bc") from hashing equally across fields.
uint64_t HashTermContent(const rdf::Term& term) {
  uint64_t h = 14695981039346656037ull;
  auto mix = [&](const void* data, size_t len) {
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) h = (h ^ bytes[i]) * 1099511628211ull;
  };
  unsigned char kind = static_cast<unsigned char>(term.kind());
  mix(&kind, 1);
  mix(term.lexical().data(), term.lexical().size());
  mix("\x1f", 1);
  mix(term.datatype().data(), term.datatype().size());
  mix("\x1f", 1);
  mix(term.lang().data(), term.lang().size());
  return h;
}

}  // namespace

TermDictionary::TermDictionary()
    : epoch_(EpochCounter().fetch_add(1, std::memory_order_relaxed)) {}

rdf::TermId TermDictionary::Intern(const rdf::Term& term) {
  size_t s = ShardOf(term);
  Shard& shard = shards_[s];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.ids.find(term);
  if (it != shard.ids.end()) return it->second;
  rdf::TermId id = (static_cast<rdf::TermId>(shard.terms.size()) << 4) |
                   static_cast<rdf::TermId>(s);
  shard.terms.push_back(term);
  shard.hashes.push_back(HashTermContent(term));
  shard.ids.emplace(term, id);
  shard.bytes += TermBytes(term);
  return id;
}

uint64_t TermDictionary::content_hash(rdf::TermId id) const {
  const Shard& shard = shards_[id & kShardMask];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.hashes[id >> 4];
}

rdf::TermId TermDictionary::Lookup(const rdf::Term& term) const {
  const Shard& shard = shards_[ShardOf(term)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.ids.find(term);
  return it != shard.ids.end() ? it->second : rdf::kInvalidTermId;
}

const rdf::Term& TermDictionary::term(rdf::TermId id) const {
  const Shard& shard = shards_[id & kShardMask];
  // The lock covers the deque's block bookkeeping (a concurrent Intern
  // may grow it); the returned reference itself is stable because
  // elements are never moved or erased.
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.terms[id >> 4];
}

size_t TermDictionary::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.terms.size();
  }
  return total;
}

void TermDictionary::AddEncodeBatch(double seconds, uint64_t cells) const {
  encode_ns_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
  encode_cells_.fetch_add(cells, std::memory_order_relaxed);
}

void TermDictionary::AddDecodeBatch(double seconds, uint64_t cells) const {
  decode_ns_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
  decode_cells_.fetch_add(cells, std::memory_order_relaxed);
}

DictionaryStats TermDictionary::GetStats() const {
  DictionaryStats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.terms += shard.terms.size();
    stats.bytes += shard.bytes;
  }
  stats.encode_terms = encode_cells_.load(std::memory_order_relaxed);
  stats.decode_terms = decode_cells_.load(std::memory_order_relaxed);
  stats.encode_seconds =
      static_cast<double>(encode_ns_.load(std::memory_order_relaxed)) / 1e9;
  stats.decode_seconds =
      static_cast<double>(decode_ns_.load(std::memory_order_relaxed)) / 1e9;
  return stats;
}

void TermDictionary::ExportMetrics(obs::MetricsSnapshot* snapshot,
                                   const std::string& subsystem) const {
  DictionaryStats stats = GetStats();
  const std::string prefix = "lusail_" + subsystem + "_dictionary_";
  snapshot->AddGauge(prefix + "terms",
                     "Distinct terms interned in the dictionary", {},
                     static_cast<double>(stats.terms));
  snapshot->AddGauge(prefix + "bytes",
                     "Approximate resident bytes of the dictionary", {},
                     static_cast<double>(stats.bytes));
  snapshot->AddCounter(prefix + "encode_cells_total",
                       "Cells encoded from terms to ids", {},
                       static_cast<double>(stats.encode_terms));
  snapshot->AddCounter(prefix + "decode_cells_total",
                       "Cells decoded from ids back to terms", {},
                       static_cast<double>(stats.decode_terms));
  snapshot->AddCounter(prefix + "encode_seconds_total",
                       "Wall time spent encoding terms to ids", {},
                       stats.encode_seconds);
  snapshot->AddCounter(prefix + "decode_seconds_total",
                       "Wall time spent decoding ids to terms", {},
                       stats.decode_seconds);
}

}  // namespace lusail::core
