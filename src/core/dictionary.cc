#include "core/dictionary.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <vector>

namespace lusail::core {

namespace {

/// Global epoch source: one tag per dictionary instance, process-wide.
std::atomic<uint64_t>& EpochCounter() {
  static std::atomic<uint64_t> counter{1};
  return counter;
}

/// Approximate resident cost of one interned term: string payloads plus
/// the deque slot and the hash-table entry it occupies.
size_t TermBytes(const rdf::Term& term) {
  return term.lexical().size() + term.datatype().size() +
         term.lang().size() + 2 * sizeof(rdf::Term) +
         sizeof(rdf::TermId) + 32;
}

/// Stable FNV-1a over the term's full identity. Field separators (bytes
/// that cannot appear unescaped inside the components) keep e.g.
/// ("ab","c") and ("a","bc") from hashing equally across fields.
uint64_t HashTermContent(const rdf::Term& term) {
  uint64_t h = 14695981039346656037ull;
  auto mix = [&](const void* data, size_t len) {
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) h = (h ^ bytes[i]) * 1099511628211ull;
  };
  unsigned char kind = static_cast<unsigned char>(term.kind());
  mix(&kind, 1);
  mix(term.lexical().data(), term.lexical().size());
  mix("\x1f", 1);
  mix(term.datatype().data(), term.datatype().size());
  mix("\x1f", 1);
  mix(term.lang().data(), term.lang().size());
  return h;
}

}  // namespace

// ---------------------------------------------------------------------
// Snapshot wire format (all integers little-endian):
//
//   8 bytes  magic "LUSDICTS"
//   u32      version (currently 1)
//   u64      shard count (must equal kShards)
//   per shard:
//     u64    number of terms, in insertion (id) order
//       { u8 kind, u64 lexical length, lexical bytes,
//         u64 datatype length, datatype bytes,
//         u64 lang length, lang bytes } ...
//   u64      FNV-1a 64 checksum of everything above
// ---------------------------------------------------------------------

constexpr char kDictMagic[8] = {'L', 'U', 'S', 'D', 'I', 'C', 'T', 'S'};
constexpr uint32_t kDictSnapshotVersion = 1;

namespace {

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendString(std::string* out, const std::string& s) {
  AppendU64(out, s.size());
  out->append(s);
}

uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t hash = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Bounds-checked little-endian reader (degrades to ok() == false rather
/// than reading out of bounds).
class DictReader {
 public:
  DictReader(const std::string& data, size_t pos, size_t end)
      : data_(data), pos_(pos), end_(end) {}

  uint8_t U8() {
    if (!Require(1)) return 0;
    return static_cast<unsigned char>(data_[pos_++]);
  }

  uint32_t U32() {
    if (!Require(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  uint64_t U64() {
    if (!Require(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::string Str() {
    uint64_t length = U64();
    if (!ok_ || !Require(length)) {
      ok_ = false;
      return std::string();
    }
    std::string s = data_.substr(pos_, length);
    pos_ += length;
    return s;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == end_; }

 private:
  bool Require(uint64_t bytes) {
    if (!ok_ || bytes > end_ - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::string& data_;
  size_t pos_;
  size_t end_;
  bool ok_ = true;
};

rdf::Term TermFromFields(uint8_t kind, std::string lexical,
                         std::string datatype, std::string lang) {
  switch (static_cast<rdf::TermKind>(kind)) {
    case rdf::TermKind::kIri:
      return rdf::Term::Iri(std::move(lexical));
    case rdf::TermKind::kBlankNode:
      return rdf::Term::BlankNode(std::move(lexical));
    case rdf::TermKind::kLiteral:
      if (!lang.empty()) {
        return rdf::Term::LangLiteral(std::move(lexical), std::move(lang));
      }
      if (!datatype.empty()) {
        return rdf::Term::TypedLiteral(std::move(lexical),
                                       std::move(datatype));
      }
      return rdf::Term::Literal(std::move(lexical));
  }
  return rdf::Term();
}

}  // namespace

Status TermDictionary::SaveToDisk(const std::string& path) const {
  std::string buf;
  buf.append(kDictMagic, sizeof(kDictMagic));
  AppendU32(&buf, kDictSnapshotVersion);
  AppendU64(&buf, kShards);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    AppendU64(&buf, shard.terms.size());
    for (const rdf::Term& term : shard.terms) {
      buf.push_back(static_cast<char>(term.kind()));
      AppendString(&buf, term.lexical());
      AppendString(&buf, term.datatype());
      AppendString(&buf, term.lang());
    }
  }
  AppendU64(&buf, Fnv1a64(buf.data(), buf.size()));

  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot write dictionary snapshot " + tmp);
    }
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    out.flush();
    if (!out) {
      return Status::Internal("short write to dictionary snapshot " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot move dictionary snapshot into place: " +
                            path);
  }
  return Status::OK();
}

Result<uint64_t> TermDictionary::LoadFromDisk(const std::string& path) {
  if (size() != 0) {
    return Status::InvalidArgument(
        "dictionary snapshot must load into an empty dictionary (ids are "
        "only reproducible from a clean slate)");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no dictionary snapshot at " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  constexpr size_t kHeaderBytes = sizeof(kDictMagic) + 4;
  constexpr size_t kFooterBytes = 8;
  if (data.size() < kHeaderBytes + kFooterBytes) {
    return Status::InvalidArgument("dictionary snapshot truncated: " + path);
  }
  if (std::memcmp(data.data(), kDictMagic, sizeof(kDictMagic)) != 0) {
    return Status::InvalidArgument("not a dictionary snapshot: " + path);
  }
  size_t body_end = data.size() - kFooterBytes;
  DictReader footer(data, body_end, data.size());
  if (Fnv1a64(data.data(), body_end) != footer.U64()) {
    return Status::InvalidArgument("dictionary snapshot checksum mismatch: " +
                                   path);
  }
  DictReader reader(data, sizeof(kDictMagic), body_end);
  uint32_t version = reader.U32();
  if (version != kDictSnapshotVersion) {
    return Status::InvalidArgument(
        "unsupported dictionary snapshot version " + std::to_string(version) +
        ": " + path);
  }
  if (reader.U64() != kShards) {
    return Status::InvalidArgument(
        "dictionary snapshot has an incompatible shard count: " + path);
  }

  // Parse and validate everything before touching the dictionary, so a
  // malformed snapshot leaves it untouched (and still loadable later).
  std::vector<std::vector<rdf::Term>> parsed(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    uint64_t n = reader.U64();
    parsed[s].reserve(reader.ok() ? n : 0);
    for (uint64_t i = 0; reader.ok() && i < n; ++i) {
      uint8_t kind = reader.U8();
      std::string lexical = reader.Str();
      std::string datatype = reader.Str();
      std::string lang = reader.Str();
      if (!reader.ok()) break;
      if (kind > static_cast<uint8_t>(rdf::TermKind::kBlankNode)) {
        return Status::InvalidArgument(
            "dictionary snapshot has an unknown term kind: " + path);
      }
      rdf::Term term = TermFromFields(kind, std::move(lexical),
                                      std::move(datatype), std::move(lang));
      if (ShardOf(term) != s) {
        return Status::InvalidArgument(
            "dictionary snapshot term hashes to the wrong shard (stale or "
            "corrupt snapshot): " + path);
      }
      parsed[s].push_back(std::move(term));
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("malformed dictionary snapshot: " + path);
  }

  uint64_t restored = 0;
  for (size_t s = 0; s < kShards; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (rdf::Term& term : parsed[s]) {
      rdf::TermId id = (static_cast<rdf::TermId>(shard.terms.size()) << 4) |
                       static_cast<rdf::TermId>(s);
      shard.hashes.push_back(HashTermContent(term));
      shard.bytes += TermBytes(term);
      shard.ids.emplace(term, id);
      shard.terms.push_back(std::move(term));
      ++restored;
    }
  }
  return restored;
}

TermDictionary::TermDictionary()
    : epoch_(EpochCounter().fetch_add(1, std::memory_order_relaxed)) {}

rdf::TermId TermDictionary::Intern(const rdf::Term& term) {
  size_t s = ShardOf(term);
  Shard& shard = shards_[s];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.ids.find(term);
  if (it != shard.ids.end()) return it->second;
  rdf::TermId id = (static_cast<rdf::TermId>(shard.terms.size()) << 4) |
                   static_cast<rdf::TermId>(s);
  shard.terms.push_back(term);
  shard.hashes.push_back(HashTermContent(term));
  shard.ids.emplace(term, id);
  shard.bytes += TermBytes(term);
  return id;
}

uint64_t TermDictionary::content_hash(rdf::TermId id) const {
  const Shard& shard = shards_[id & kShardMask];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.hashes[id >> 4];
}

rdf::TermId TermDictionary::Lookup(const rdf::Term& term) const {
  const Shard& shard = shards_[ShardOf(term)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.ids.find(term);
  return it != shard.ids.end() ? it->second : rdf::kInvalidTermId;
}

const rdf::Term& TermDictionary::term(rdf::TermId id) const {
  const Shard& shard = shards_[id & kShardMask];
  // The lock covers the deque's block bookkeeping (a concurrent Intern
  // may grow it); the returned reference itself is stable because
  // elements are never moved or erased.
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.terms[id >> 4];
}

size_t TermDictionary::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.terms.size();
  }
  return total;
}

void TermDictionary::AddEncodeBatch(double seconds, uint64_t cells) const {
  encode_ns_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
  encode_cells_.fetch_add(cells, std::memory_order_relaxed);
}

void TermDictionary::AddDecodeBatch(double seconds, uint64_t cells) const {
  decode_ns_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
  decode_cells_.fetch_add(cells, std::memory_order_relaxed);
}

DictionaryStats TermDictionary::GetStats() const {
  DictionaryStats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.terms += shard.terms.size();
    stats.bytes += shard.bytes;
  }
  stats.encode_terms = encode_cells_.load(std::memory_order_relaxed);
  stats.decode_terms = decode_cells_.load(std::memory_order_relaxed);
  stats.encode_seconds =
      static_cast<double>(encode_ns_.load(std::memory_order_relaxed)) / 1e9;
  stats.decode_seconds =
      static_cast<double>(decode_ns_.load(std::memory_order_relaxed)) / 1e9;
  return stats;
}

void TermDictionary::ExportMetrics(obs::MetricsSnapshot* snapshot,
                                   const std::string& subsystem) const {
  DictionaryStats stats = GetStats();
  const std::string prefix = "lusail_" + subsystem + "_dictionary_";
  snapshot->AddGauge(prefix + "terms",
                     "Distinct terms interned in the dictionary", {},
                     static_cast<double>(stats.terms));
  snapshot->AddGauge(prefix + "bytes",
                     "Approximate resident bytes of the dictionary", {},
                     static_cast<double>(stats.bytes));
  snapshot->AddCounter(prefix + "encode_cells_total",
                       "Cells encoded from terms to ids", {},
                       static_cast<double>(stats.encode_terms));
  snapshot->AddCounter(prefix + "decode_cells_total",
                       "Cells decoded from ids back to terms", {},
                       static_cast<double>(stats.decode_terms));
  snapshot->AddCounter(prefix + "encode_seconds_total",
                       "Wall time spent encoding terms to ids", {},
                       stats.encode_seconds);
  snapshot->AddCounter(prefix + "decode_seconds_total",
                       "Wall time spent decoding ids to terms", {},
                       stats.decode_seconds);
}

}  // namespace lusail::core
