#include "core/gjv_detector.h"

#include <algorithm>
#include <future>

#include "cache/federation_cache.h"
#include "core/query_graph.h"

namespace lusail::core {

namespace {

using sparql::TriplePattern;

std::pair<int, int> OrderedPair(int a, int b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

/// One pending locality check: the pair it would incriminate and the
/// query to run at every relevant endpoint.
struct Check {
  std::string var;
  std::pair<int, int> pair;
  std::string query_text;
};

}  // namespace

std::string GjvDetector::CheckQueryText(
    const std::string& var, const TriplePattern& outer,
    const TriplePattern& inner,
    const std::vector<TriplePattern>& type_patterns) {
  std::string text = "SELECT ?" + var + " WHERE { ";
  for (const TriplePattern& tp : type_patterns) {
    text += tp.ToString() + " . ";
  }
  text += outer.ToString() + " . ";
  text += "FILTER NOT EXISTS { SELECT ?" + var + " WHERE { " +
          inner.ToString() + " . } } }";
  text += " LIMIT 1";
  return text;
}

Result<GjvResult> GjvDetector::Detect(
    const std::vector<TriplePattern>& triples,
    const std::vector<std::vector<int>>& sources,
    fed::MetricsCollector* metrics, const Deadline& deadline,
    bool use_cache, const net::RetryPolicy* retry, bool tolerate_failures) {
  GjvResult result;
  std::vector<JoinVariable> join_vars = QueryGraph::JoinVariables(triples);
  std::vector<Check> checks;

  for (const JoinVariable& jv : join_vars) {
    // Variables in the predicate position join data across predicates; we
    // conservatively make every pair with such a variable global.
    if (jv.HasPredicateRole()) {
      std::vector<int> all = jv.type_patterns;
      for (const VarOccurrence& occ : jv.occurrences) {
        all.push_back(occ.triple_index);
      }
      for (size_t i = 0; i < all.size(); ++i) {
        for (size_t j = i + 1; j < all.size(); ++j) {
          result.causes[jv.name].insert(OrderedPair(all[i], all[j]));
        }
      }
      continue;
    }

    // Step 1 (Algorithm 1, lines 8-11): source-list mismatch over every
    // pair of the variable's patterns (type patterns included) makes the
    // pair global with no endpoint communication.
    std::vector<int> all_patterns = jv.type_patterns;
    for (const VarOccurrence& occ : jv.occurrences) {
      all_patterns.push_back(occ.triple_index);
    }
    bool source_mismatch = false;
    for (size_t i = 0; i < all_patterns.size(); ++i) {
      for (size_t j = i + 1; j < all_patterns.size(); ++j) {
        if (sources[all_patterns[i]] != sources[all_patterns[j]]) {
          result.causes[jv.name].insert(
              OrderedPair(all_patterns[i], all_patterns[j]));
          source_mismatch = true;
        }
      }
    }
    if (source_mismatch) continue;  // Algorithm 1, line 12.

    // Step 2: formulate locality check queries.
    std::vector<TriplePattern> type_tps;
    for (int ti : jv.type_patterns) type_tps.push_back(triples[ti]);

    auto add_check = [&](int outer_idx, int inner_idx) {
      Check check;
      check.var = jv.name;
      check.pair = OrderedPair(outer_idx, inner_idx);
      check.query_text = CheckQueryText(jv.name, triples[outer_idx],
                                        triples[inner_idx], type_tps);
      checks.push_back(std::move(check));
    };

    if (jv.SubjectOnly() || jv.ObjectOnly()) {
      // Both set differences must be empty: check each direction.
      for (size_t i = 0; i < jv.occurrences.size(); ++i) {
        for (size_t j = i + 1; j < jv.occurrences.size(); ++j) {
          add_check(jv.occurrences[i].triple_index,
                    jv.occurrences[j].triple_index);
          add_check(jv.occurrences[j].triple_index,
                    jv.occurrences[i].triple_index);
        }
      }
    } else {
      // Subject-and-object case (Figure 5): for every (object-occurrence,
      // subject-occurrence) pair, check object-side minus subject-side.
      for (const VarOccurrence& obj_occ : jv.occurrences) {
        if (obj_occ.role != VarRole::kObject) continue;
        for (const VarOccurrence& subj_occ : jv.occurrences) {
          if (subj_occ.role != VarRole::kSubject) continue;
          add_check(obj_occ.triple_index, subj_occ.triple_index);
        }
      }
    }
  }

  // Execute the checks at their relevant endpoints through the pool.
  struct Pending {
    size_t check_index;
    std::string cache_key;
    std::string endpoint_id;
    std::future<Result<bool>> nonempty;
  };
  cache::FederationCache* shared =
      use_cache ? federation_->query_cache() : nullptr;
  std::vector<Pending> pending;
  for (size_t ci = 0; ci < checks.size(); ++ci) {
    const Check& check = checks[ci];
    // Both patterns of the pair have the same relevant sources here.
    const std::vector<int>& eps = sources[check.pair.first];
    for (int ep : eps) {
      std::string key = federation_->id(ep) + "|" + check.query_text;
      if (use_cache) {
        std::optional<bool> cached = cache_->Get(key);
        if (!cached.has_value() && shared != nullptr) {
          cached = shared->GetVerdict(key);
          if (cached.has_value()) cache_->Put(key, *cached);
        }
        if (cached.has_value()) {
          if (*cached) result.causes[check.var].insert(check.pair);
          continue;
        }
      }
      Pending p;
      p.check_index = ci;
      p.cache_key = key;
      p.endpoint_id = federation_->id(ep);
      std::string text = check.query_text;
      p.nonempty =
          pool_->Submit([this, ep, text = std::move(text), metrics,
                         deadline, retry]() -> Result<bool> {
            LUSAIL_ASSIGN_OR_RETURN(
                sparql::ResultTable table,
                federation_->Execute(static_cast<size_t>(ep), text, metrics,
                                     deadline, retry));
            return !table.rows.empty();
          });
      pending.push_back(std::move(p));
      ++result.check_queries;
    }
  }

  std::vector<Status> failures;
  for (Pending& p : pending) {
    Result<bool> nonempty = p.nonempty.get();
    if (!nonempty.ok()) {
      if (tolerate_failures) {
        // Unverifiable locality: conservatively treat the pair as causing
        // (its variable goes global), which is always correct — it only
        // costs an extra federator-side join.
        result.causes[checks[p.check_index].var].insert(
            checks[p.check_index].pair);
      } else {
        failures.push_back(nonempty.status());
      }
      continue;
    }
    cache_->Put(p.cache_key, *nonempty);
    if (shared != nullptr) {
      shared->PutVerdict(p.cache_key, p.endpoint_id, *nonempty);
    }
    if (*nonempty) {
      result.causes[checks[p.check_index].var].insert(
          checks[p.check_index].pair);
    }
  }
  if (!failures.empty()) {
    std::string msg = std::to_string(failures.size()) + " of " +
                      std::to_string(pending.size()) +
                      " locality check queries failed; first: " +
                      failures.front().ToString();
    return Status(failures.front().code(), std::move(msg));
  }
  return result;
}

}  // namespace lusail::core
