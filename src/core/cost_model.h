#ifndef LUSAIL_CORE_COST_MODEL_H_
#define LUSAIL_CORE_COST_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/options.h"
#include "core/subquery.h"
#include "federation/federation.h"
#include "sparql/ast.h"

namespace lusail::core {

/// Lightweight runtime statistics and the SAPE cost model (Section 4.1).
///
/// During query analysis one SELECT COUNT probe per (triple pattern,
/// relevant endpoint) collects exact pattern cardinalities; applicable
/// FILTER clauses are pushed into the probe for tighter estimates. The
/// subquery cardinality estimate is then
///   C(sq, v, ep) = min over patterns of sq containing v of count(tp, ep)
///   C(sq, v)     = sum over relevant endpoints of C(sq, v, ep)
///   C(sq)        = max over sq's projected variables of C(sq, v)
class CostModel {
 public:
  CostModel(const fed::Federation* federation, ThreadPool* pool)
      : federation_(federation), pool_(pool) {}

  /// Issues the COUNT probes (in parallel) and stores the statistics.
  /// Probes go through `retry` when given. A failed probe normally fails
  /// collection; with `tolerate_failures` it is skipped instead — its
  /// (pattern, endpoint) count stays 0, biasing that subquery toward the
  /// concurrent phase, which only affects performance, not correctness.
  /// With `use_cache`, probes consult the federation's shared
  /// cache::FederationCache (when attached) before going to the network,
  /// and store fresh results there.
  Status CollectStatistics(const std::vector<sparql::TriplePattern>& triples,
                           const std::vector<std::vector<int>>& sources,
                           const std::vector<sparql::Expr>& filters,
                           fed::MetricsCollector* metrics,
                           const Deadline& deadline,
                           const net::RetryPolicy* retry = nullptr,
                           bool tolerate_failures = false,
                           bool use_cache = true);

  /// Cardinality of pattern `tp_index` at endpoint `ep` (0 if unprobed).
  uint64_t PatternCount(int tp_index, int ep) const;

  /// Total cardinality of a pattern across its relevant endpoints.
  uint64_t PatternTotal(int tp_index) const;

  /// The paper's C(sq) estimate.
  double SubqueryCardinality(
      const Subquery& sq,
      const std::vector<sparql::TriplePattern>& triples) const;

  /// Cost of a candidate decomposition: total estimated intermediate
  /// results Σ C(sq) (what Algorithm 2 minimizes across GJV roots).
  double DecompositionCost(
      const std::vector<Subquery>& subqueries,
      const std::vector<sparql::TriplePattern>& triples) const;

  /// Probe text: SELECT (COUNT(*) AS ?c) WHERE { tp . pushed filters }.
  static std::string CountQueryText(
      const sparql::TriplePattern& tp,
      const std::vector<const sparql::Expr*>& pushed_filters);

 private:
  const fed::Federation* federation_;
  ThreadPool* pool_;
  std::map<std::pair<int, int>, uint64_t> counts_;  ///< (tp, ep) -> count.
};

/// Parses a COUNT-probe literal as an exact unsigned integer. Plain
/// decimal digit strings (the form every real endpoint returns) are
/// parsed directly so counts above 2^53 keep full 64-bit precision —
/// going through double would silently round them. Non-integral numeric
/// literals fall back to AsDouble with saturation at uint64 max;
/// non-numeric literals parse as 0.
uint64_t ParseCountLiteral(const rdf::Term& term);

/// Chauvenet's criterion: flags values whose expected number of
/// occurrences in a normal sample of this size is below 0.5. Applied
/// before computing the delay threshold so extreme subqueries do not
/// inflate sigma.
std::vector<bool> ChauvenetOutliers(const std::vector<double>& values);

/// SAPE's delay decision (Figure 7 / Figure 13): a subquery is delayed
/// when its estimated cardinality or its relevant-endpoint count exceeds
/// the threshold (computed over non-outlier subqueries). Guarantees at
/// least one non-delayed subquery when there are any.
std::vector<bool> DecideDelayed(const std::vector<double>& cardinalities,
                                const std::vector<double>& endpoint_counts,
                                DelayThreshold threshold);

}  // namespace lusail::core

#endif  // LUSAIL_CORE_COST_MODEL_H_
