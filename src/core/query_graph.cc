#include "core/query_graph.h"

#include <algorithm>

namespace lusail::core {

namespace {

bool IsTypePattern(const sparql::TriplePattern& tp) {
  return tp.s.is_variable() && tp.p.is_term() && tp.p.term().is_iri() &&
         tp.p.term().lexical() == rdf::kRdfType && tp.o.is_term();
}

}  // namespace

bool JoinVariable::SubjectOnly() const {
  return std::all_of(occurrences.begin(), occurrences.end(),
                     [](const VarOccurrence& o) {
                       return o.role == VarRole::kSubject;
                     });
}

bool JoinVariable::ObjectOnly() const {
  return std::all_of(occurrences.begin(), occurrences.end(),
                     [](const VarOccurrence& o) {
                       return o.role == VarRole::kObject;
                     });
}

bool JoinVariable::HasPredicateRole() const {
  return std::any_of(occurrences.begin(), occurrences.end(),
                     [](const VarOccurrence& o) {
                       return o.role == VarRole::kPredicate;
                     });
}

QueryGraph::QueryGraph(const std::vector<sparql::TriplePattern>& triples)
    : triples_(triples) {
  for (size_t i = 0; i < triples.size(); ++i) {
    std::string s = VertexKey(triples[i].s);
    std::string o = VertexKey(triples[i].o);
    adjacency_[s].push_back(static_cast<int>(i));
    if (o != s) adjacency_[o].push_back(static_cast<int>(i));
  }
}

std::string QueryGraph::VertexKey(const sparql::TermOrVar& tv) {
  return tv.is_variable() ? tv.var().ToString() : tv.term().ToString();
}

const std::vector<int>& QueryGraph::Edges(const std::string& vertex) const {
  auto it = adjacency_.find(vertex);
  return it == adjacency_.end() ? empty_ : it->second;
}

std::string QueryGraph::Destination(const std::string& vertex,
                                    int triple_index) const {
  const sparql::TriplePattern& tp = triples_[triple_index];
  std::string s = VertexKey(tp.s);
  std::string o = VertexKey(tp.o);
  return (s == vertex) ? o : s;
}

std::vector<std::string> QueryGraph::Vertices() const {
  std::vector<std::string> out;
  out.reserve(adjacency_.size());
  for (const auto& [v, edges] : adjacency_) out.push_back(v);
  return out;
}

std::vector<std::vector<int>> QueryGraph::ConnectedComponents() const {
  // Union-find over triple indices; two patterns unite when they share a
  // variable (constants do not connect patterns — two patterns mentioning
  // the same constant IRI are still independently evaluable).
  const size_t n = triples_.size();
  std::vector<int> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](int a, int b) { parent[find(a)] = find(b); };

  std::map<std::string, int> first_seen;
  for (size_t i = 0; i < n; ++i) {
    for (const std::string& v : triples_[i].VariableNames()) {
      auto [it, inserted] = first_seen.emplace(v, static_cast<int>(i));
      if (!inserted) unite(static_cast<int>(i), it->second);
    }
  }
  std::map<int, std::vector<int>> groups;
  for (size_t i = 0; i < n; ++i) {
    groups[find(static_cast<int>(i))].push_back(static_cast<int>(i));
  }
  std::vector<std::vector<int>> out;
  out.reserve(groups.size());
  for (auto& [root, members] : groups) out.push_back(std::move(members));
  return out;
}

std::vector<JoinVariable> QueryGraph::JoinVariables(
    const std::vector<sparql::TriplePattern>& triples) {
  std::map<std::string, JoinVariable> vars;
  std::map<std::string, int> total_occurrences;
  for (size_t i = 0; i < triples.size(); ++i) {
    const sparql::TriplePattern& tp = triples[i];
    bool is_type = IsTypePattern(tp);
    auto record = [&](const sparql::TermOrVar& tv, VarRole role) {
      if (!tv.is_variable()) return;
      JoinVariable& jv = vars[tv.var().name];
      jv.name = tv.var().name;
      ++total_occurrences[tv.var().name];
      if (is_type && role == VarRole::kSubject) {
        jv.type_patterns.push_back(static_cast<int>(i));
      } else {
        jv.occurrences.push_back({static_cast<int>(i), role});
      }
    };
    record(tp.s, VarRole::kSubject);
    record(tp.p, VarRole::kPredicate);
    record(tp.o, VarRole::kObject);
  }
  std::vector<JoinVariable> out;
  for (auto& [name, jv] : vars) {
    if (total_occurrences[name] >= 2) out.push_back(std::move(jv));
  }
  return out;
}

}  // namespace lusail::core
