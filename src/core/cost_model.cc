#include "core/cost_model.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <future>
#include <set>

#include "cache/federation_cache.h"

namespace lusail::core {

namespace {

struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};

MeanStd ComputeMeanStd(const std::vector<double>& xs,
                       const std::vector<bool>& exclude) {
  MeanStd ms;
  size_t n = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (!exclude[i]) {
      ms.mean += xs[i];
      ++n;
    }
  }
  if (n == 0) return ms;
  ms.mean /= static_cast<double>(n);
  for (size_t i = 0; i < xs.size(); ++i) {
    if (!exclude[i]) {
      ms.std += (xs[i] - ms.mean) * (xs[i] - ms.mean);
    }
  }
  ms.std = std::sqrt(ms.std / static_cast<double>(n));
  return ms;
}

}  // namespace

uint64_t ParseCountLiteral(const rdf::Term& term) {
  const std::string& lex = term.lexical();
  // Fast path: a plain decimal integer (optionally '+'-signed), which is
  // what COUNT(*) yields everywhere. strtoull keeps all 64 bits where a
  // double round-trip would round above 2^53.
  size_t start = (!lex.empty() && lex[0] == '+') ? 1 : 0;
  bool all_digits = lex.size() > start;
  for (size_t i = start; i < lex.size(); ++i) {
    if (lex[i] < '0' || lex[i] > '9') {
      all_digits = false;
      break;
    }
  }
  if (all_digits) {
    errno = 0;
    char* end = nullptr;
    unsigned long long value = std::strtoull(lex.c_str() + start, &end, 10);
    if (errno == ERANGE) return std::numeric_limits<uint64_t>::max();
    if (end == lex.c_str() + lex.size()) return static_cast<uint64_t>(value);
  }
  // Fallback: scientific/decimal forms ("1.2e3") via double, saturating
  // instead of invoking the undefined negative/overflow casts.
  double d = term.AsDouble();
  if (!(d > 0.0)) return 0;  // NaN and negatives count as zero rows.
  if (d >= 18446744073709551615.0) return std::numeric_limits<uint64_t>::max();
  return static_cast<uint64_t>(d);
}

std::string CostModel::CountQueryText(
    const sparql::TriplePattern& tp,
    const std::vector<const sparql::Expr*>& pushed_filters) {
  std::string text = "SELECT (COUNT(*) AS ?c) WHERE { " + tp.ToString() + " . ";
  for (const sparql::Expr* f : pushed_filters) {
    text += "FILTER (" + sparql::ExprToString(*f) + ") ";
  }
  text += "}";
  return text;
}

Status CostModel::CollectStatistics(
    const std::vector<sparql::TriplePattern>& triples,
    const std::vector<std::vector<int>>& sources,
    const std::vector<sparql::Expr>& filters,
    fed::MetricsCollector* metrics, const Deadline& deadline,
    const net::RetryPolicy* retry, bool tolerate_failures, bool use_cache) {
  struct Probe {
    int tp;
    int ep;
    std::string cache_key;
    std::string endpoint_id;
    std::future<Result<sparql::ResultTable>> result;
  };
  cache::FederationCache* shared =
      use_cache ? federation_->query_cache() : nullptr;
  std::vector<Probe> probes;
  for (size_t ti = 0; ti < triples.size(); ++ti) {
    // Push filters whose variables all appear in this single pattern.
    std::vector<const sparql::Expr*> pushed;
    std::vector<std::string> tp_vars = triples[ti].VariableNames();
    for (const sparql::Expr& f : filters) {
      std::set<std::string> fvars;
      f.CollectVariables(&fvars);
      bool covered = !fvars.empty();
      for (const std::string& v : fvars) {
        if (std::find(tp_vars.begin(), tp_vars.end(), v) == tp_vars.end()) {
          covered = false;
          break;
        }
      }
      if (covered) pushed.push_back(&f);
    }
    std::string text = CountQueryText(triples[ti], pushed);
    for (int ep : sources[ti]) {
      std::string endpoint_id = federation_->id(static_cast<size_t>(ep));
      std::string key = cache::FederationCache::Key(endpoint_id, text);
      if (shared != nullptr) {
        std::optional<uint64_t> cached = shared->GetCount(key);
        if (cached.has_value()) {
          counts_[{static_cast<int>(ti), ep}] = *cached;
          continue;
        }
      }
      Probe probe;
      probe.tp = static_cast<int>(ti);
      probe.ep = ep;
      probe.cache_key = std::move(key);
      probe.endpoint_id = std::move(endpoint_id);
      probe.result = pool_->Submit([this, ep, text, metrics, deadline,
                                    retry]() {
        return federation_->Execute(static_cast<size_t>(ep), text, metrics,
                                    deadline, retry);
      });
      probes.push_back(std::move(probe));
    }
  }

  size_t failed = 0;
  Status first_error;
  for (Probe& probe : probes) {
    Result<sparql::ResultTable> table = probe.result.get();
    if (!table.ok()) {
      ++failed;
      if (first_error.ok()) first_error = table.status();
      continue;
    }
    uint64_t count = 0;
    if (!table->rows.empty() && !table->rows[0].empty() &&
        table->rows[0][0].has_value()) {
      count = ParseCountLiteral(*table->rows[0][0]);
    }
    counts_[{probe.tp, probe.ep}] = count;
    if (shared != nullptr) {
      shared->PutCount(probe.cache_key, probe.endpoint_id, count);
    }
  }
  if (failed > 0 && !tolerate_failures) {
    return Status(first_error.code(),
                  std::to_string(failed) + " of " +
                      std::to_string(probes.size()) +
                      " COUNT probes failed; first: " +
                      first_error.ToString());
  }
  return Status::OK();
}

uint64_t CostModel::PatternCount(int tp_index, int ep) const {
  auto it = counts_.find({tp_index, ep});
  return it == counts_.end() ? 0 : it->second;
}

uint64_t CostModel::PatternTotal(int tp_index) const {
  uint64_t total = 0;
  for (const auto& [key, count] : counts_) {
    if (key.first == tp_index) total += count;
  }
  return total;
}

double CostModel::SubqueryCardinality(
    const Subquery& sq,
    const std::vector<sparql::TriplePattern>& triples) const {
  std::vector<std::string> vars =
      sq.projection.empty() ? sq.Variables(triples) : sq.projection;
  double best = 0.0;
  bool any_var = false;
  for (const std::string& v : vars) {
    // Patterns of this subquery containing v.
    std::vector<int> with_v;
    for (int ti : sq.triple_indices) {
      const auto names = triples[ti].VariableNames();
      if (std::find(names.begin(), names.end(), v) != names.end()) {
        with_v.push_back(ti);
      }
    }
    if (with_v.empty()) continue;
    any_var = true;
    double total = 0.0;
    for (int ep : sq.sources) {
      uint64_t min_count = std::numeric_limits<uint64_t>::max();
      for (int ti : with_v) {
        min_count = std::min(min_count, PatternCount(ti, ep));
      }
      total += static_cast<double>(min_count);
    }
    best = std::max(best, total);
  }
  if (!any_var) {
    // Fully ground subquery: at most one row per endpoint.
    return static_cast<double>(sq.sources.size());
  }
  return best;
}

double CostModel::DecompositionCost(
    const std::vector<Subquery>& subqueries,
    const std::vector<sparql::TriplePattern>& triples) const {
  double total = 0.0;
  for (const Subquery& sq : subqueries) {
    total += SubqueryCardinality(sq, triples);
  }
  return total;
}

std::vector<bool> ChauvenetOutliers(const std::vector<double>& values) {
  std::vector<bool> outlier(values.size(), false);
  if (values.size() < 3) return outlier;
  const double n = static_cast<double>(values.size());
  // Iterate to a fixpoint (bounded by the sample size).
  for (size_t round = 0; round < values.size(); ++round) {
    MeanStd ms = ComputeMeanStd(values, outlier);
    if (ms.std <= 0.0) break;
    bool changed = false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (outlier[i]) continue;
      double z = std::fabs(values[i] - ms.mean) / ms.std;
      double expected = n * std::erfc(z / std::sqrt(2.0));
      if (expected < 0.5) {
        outlier[i] = true;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return outlier;
}

std::vector<bool> DecideDelayed(const std::vector<double>& cardinalities,
                                const std::vector<double>& endpoint_counts,
                                DelayThreshold threshold) {
  const size_t n = cardinalities.size();
  std::vector<bool> delayed(n, false);
  if (n <= 1) return delayed;

  std::vector<bool> card_outliers = ChauvenetOutliers(cardinalities);
  std::vector<bool> ep_outliers = ChauvenetOutliers(endpoint_counts);

  if (threshold == DelayThreshold::kOutliersOnly) {
    for (size_t i = 0; i < n; ++i) {
      delayed[i] = card_outliers[i] || ep_outliers[i];
    }
  } else {
    double k = 0.0;
    if (threshold == DelayThreshold::kMuSigma) k = 1.0;
    if (threshold == DelayThreshold::kMu2Sigma) k = 2.0;
    MeanStd card_ms = ComputeMeanStd(cardinalities, card_outliers);
    MeanStd ep_ms = ComputeMeanStd(endpoint_counts, ep_outliers);
    // The comparison is >= so that with only two subqueries the larger one
    // is still delayed (for n = 2, max == mu + sigma exactly); the
    // strictly-above-minimum guard keeps equal-valued sets undelayed.
    double card_min = *std::min_element(cardinalities.begin(),
                                        cardinalities.end());
    double ep_min = *std::min_element(endpoint_counts.begin(),
                                      endpoint_counts.end());
    for (size_t i = 0; i < n; ++i) {
      bool by_cardinality =
          cardinalities[i] >= card_ms.mean + k * card_ms.std &&
          cardinalities[i] > card_min;
      bool by_endpoints = endpoint_counts[i] >= ep_ms.mean + k * ep_ms.std &&
                          endpoint_counts[i] > ep_min;
      delayed[i] = by_cardinality || by_endpoints;
    }
  }

  // At least one subquery must run in the concurrent phase to seed the
  // bound joins: un-delay the one with the smallest cardinality.
  if (std::all_of(delayed.begin(), delayed.end(), [](bool d) { return d; })) {
    size_t smallest = 0;
    for (size_t i = 1; i < n; ++i) {
      if (cardinalities[i] < cardinalities[smallest]) smallest = i;
    }
    delayed[smallest] = false;
  }
  return delayed;
}

}  // namespace lusail::core
