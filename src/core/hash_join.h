#ifndef LUSAIL_CORE_HASH_JOIN_H_
#define LUSAIL_CORE_HASH_JOIN_H_

#include "common/thread_pool.h"
#include "federation/binding_table.h"

namespace lusail::core {

/// Parallel partitioned in-memory hash join over federation binding
/// tables (the join machinery behind SAPE's global join phase).
///
/// Both inputs are hash-partitioned on the shared-variable key into
/// `partitions` buckets; bucket pairs are joined concurrently through the
/// pool and concatenated. Inputs with no shared variables (cartesian
/// product) or with unbound key cells (OPTIONAL leftovers) fall back to
/// the single-threaded compatibility join.
fed::BindingTable ParallelHashJoin(const fed::BindingTable& left,
                                   const fed::BindingTable& right,
                                   ThreadPool* pool, size_t partitions);

}  // namespace lusail::core

#endif  // LUSAIL_CORE_HASH_JOIN_H_
