#ifndef LUSAIL_CORE_HASH_JOIN_H_
#define LUSAIL_CORE_HASH_JOIN_H_

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "federation/binding_table.h"

namespace lusail::core {

/// Parallel partitioned in-memory hash join over federation binding
/// tables (the join machinery behind SAPE's global join phase).
///
/// Both inputs are hash-partitioned on the shared-variable key into
/// `partitions` buckets; bucket pairs are joined concurrently through the
/// pool and concatenated. Inputs with no shared variables (cartesian
/// product) or with unbound key cells (OPTIONAL leftovers) fall back to
/// the single-threaded compatibility join.
///
/// When `cancel` is non-null the join polls it at partition/chunk
/// boundaries (and every ~1k cells of a cartesian product) and stops
/// producing output once it fires. The return value is then an
/// incomplete table the caller must discard after its own cancel check —
/// the join itself cannot fail, so cancellation surfaces as a Status one
/// level up, where the token is visible.
fed::BindingTable ParallelHashJoin(const fed::BindingTable& left,
                                   const fed::BindingTable& right,
                                   ThreadPool* pool, size_t partitions,
                                   const CancelToken* cancel = nullptr);

/// Cartesian product with left rows range-partitioned across the pool;
/// each worker crosses its left chunk with the whole right side.
/// ParallelHashJoin dispatches here above its output-size threshold;
/// exposed so bench_micro can measure the serial/parallel crossover at
/// any size (that measurement is how the threshold was chosen) and the
/// cancellation latency of a running join.
fed::BindingTable ParallelCartesian(const fed::BindingTable& left,
                                    const fed::BindingTable& right,
                                    ThreadPool* pool, size_t partitions,
                                    const CancelToken* cancel = nullptr);

}  // namespace lusail::core

#endif  // LUSAIL_CORE_HASH_JOIN_H_
