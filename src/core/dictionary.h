#ifndef LUSAIL_CORE_DICTIONARY_H_
#define LUSAIL_CORE_DICTIONARY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace lusail::core {

/// Cumulative counters of one TermDictionary, read at scrape time.
struct DictionaryStats {
  uint64_t terms = 0;          ///< Distinct terms interned.
  uint64_t bytes = 0;          ///< Approximate resident bytes.
  uint64_t encode_terms = 0;   ///< Cells pushed through Encode batches.
  uint64_t decode_terms = 0;   ///< Cells pulled through Decode batches.
  double encode_seconds = 0.0; ///< Wall time spent in encode batches.
  double decode_seconds = 0.0; ///< Wall time spent in decode batches.
};

/// Thread-safe two-way Term <-> TermId dictionary: the per-engine term
/// space ID-space execution runs on. Endpoint responses are encoded into
/// ids once at the federator boundary (or parsed straight to ids by the
/// HTTP transport), every join/dedup/fingerprint downstream works on
/// fixed-width u64s, and only the final projected rows are decoded back
/// to terms (late materialization).
///
/// Sharded 16 ways to keep concurrent interning from SAPE's fetch pool
/// off a single mutex: id = (index_in_shard << 4) | shard. Terms live in
/// per-shard deques, so `term(id)` hands out references that stay valid
/// for the dictionary's lifetime — filter evaluation holds them across
/// expression trees with no per-row copies.
///
/// The dictionary is owned by the engine and lives across queries (terms
/// are never evicted; LUBM-scale federations intern a few hundred
/// thousand distinct terms). Because ids are only meaningful relative to
/// one dictionary instance, every instance carries a process-unique
/// `epoch` tag. Anything id-derived that can outlive or escape the
/// engine — VALUES-block cache fingerprints for the shared result
/// cache — must NOT be keyed on raw ids or the epoch: the shared cache
/// spans engines, so keys have to be content-based. For that, every
/// interned term also gets a 64-bit `content_hash` computed once from
/// its kind/lexical/datatype/lang; it is equal across dictionaries for
/// equal terms and O(1) to look up by id.
class TermDictionary {
 public:
  TermDictionary();
  TermDictionary(const TermDictionary&) = delete;
  TermDictionary& operator=(const TermDictionary&) = delete;

  /// Interns `term`, returning its id (existing or newly assigned).
  rdf::TermId Intern(const rdf::Term& term);

  /// Returns the id of `term` if interned, otherwise kInvalidTermId.
  rdf::TermId Lookup(const rdf::Term& term) const;

  /// Returns the term for `id`. The reference stays valid for the
  /// dictionary's lifetime. Requires an id previously returned by Intern.
  const rdf::Term& term(rdf::TermId id) const;

  /// Number of distinct interned terms.
  size_t size() const;

  /// Process-unique instance tag (debugging / --explain output; ids from
  /// dictionaries with different epochs are incomparable).
  uint64_t epoch() const { return epoch_; }

  /// Stable 64-bit content hash of the term behind `id`, computed once
  /// at intern time from kind/lexical/datatype/lang. Equal terms hash
  /// equally in every dictionary instance, so fingerprints built from
  /// content hashes are valid keys for caches shared across engines.
  uint64_t content_hash(rdf::TermId id) const;

  /// Batch timing hooks: encode/decode helpers time a whole table pass
  /// and report it here, so the hot path never reads the clock per cell.
  /// Const because decode runs against a const dictionary (stats are
  /// bookkeeping, not term-space state).
  void AddEncodeBatch(double seconds, uint64_t cells) const;
  void AddDecodeBatch(double seconds, uint64_t cells) const;

  DictionaryStats GetStats() const;

  /// Emits lusail_<subsystem>_dictionary_{terms,bytes} gauges and
  /// encode/decode {seconds,cells}_total counters.
  void ExportMetrics(obs::MetricsSnapshot* snapshot,
                     const std::string& subsystem) const;

  // --- Crash-safe persistence (warm endpointd restarts) ---

  /// Writes a versioned, checksummed binary snapshot of every interned
  /// term to `path` (atomically: tmp file + rename), preserving per-shard
  /// insertion order so a LoadFromDisk into a fresh dictionary reproduces
  /// the identical TermId for every term — id-derived state that survived
  /// the restart (persisted caches, logged ids) stays meaningful.
  Status SaveToDisk(const std::string& path) const;

  /// Restores a SaveToDisk snapshot. The dictionary must be empty (ids
  /// are only reproducible from a clean slate); unknown magic, version
  /// mismatches, truncation, checksum mismatches, and terms that no
  /// longer hash to their recorded shard are rejected without touching
  /// the dictionary. Content hashes are recomputed, so equal terms keep
  /// equal hashes across save/load. Returns the number of terms restored.
  Result<uint64_t> LoadFromDisk(const std::string& path);

 private:
  static constexpr size_t kShards = 16;
  static constexpr uint64_t kShardMask = kShards - 1;

  struct Shard {
    mutable std::mutex mu;
    std::deque<rdf::Term> terms;
    std::deque<uint64_t> hashes;  ///< content_hash, parallel to `terms`.
    std::unordered_map<rdf::Term, rdf::TermId, rdf::TermHash> ids;
    size_t bytes = 0;
  };

  static size_t ShardOf(const rdf::Term& term) {
    return rdf::TermHash{}(term) & kShardMask;
  }

  Shard shards_[kShards];
  uint64_t epoch_;
  mutable std::atomic<uint64_t> encode_cells_{0};
  mutable std::atomic<uint64_t> decode_cells_{0};
  mutable std::atomic<uint64_t> encode_ns_{0};
  mutable std::atomic<uint64_t> decode_ns_{0};
};

}  // namespace lusail::core

#endif  // LUSAIL_CORE_DICTIONARY_H_
