#ifndef LUSAIL_CORE_QUERY_GRAPH_H_
#define LUSAIL_CORE_QUERY_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sparql/ast.h"

namespace lusail::core {

/// Role a variable plays in a triple pattern.
enum class VarRole {
  kSubject,
  kPredicate,
  kObject,
};

/// One occurrence of a join variable in the basic graph pattern.
struct VarOccurrence {
  int triple_index = 0;
  VarRole role = VarRole::kSubject;
};

/// Per-variable occurrence analysis of a BGP, as needed by GJV detection
/// (Algorithm 1): which triple patterns a variable appears in, in which
/// roles, and which of those patterns are rdf:type restrictions usable to
/// narrow locality checks.
struct JoinVariable {
  std::string name;
  std::vector<VarOccurrence> occurrences;  ///< Non-type-pattern occurrences.
  /// Indices of patterns of the form (?v, rdf:type, <Const>); these are
  /// appended to every check query for ?v instead of forming check pairs.
  std::vector<int> type_patterns;

  bool SubjectOnly() const;
  bool ObjectOnly() const;
  bool HasPredicateRole() const;
};

/// The vertex/edge view of a BGP used by query decomposition
/// (Algorithm 2): vertices are subjects/objects (variables or constants),
/// edges are triple patterns connecting them.
class QueryGraph {
 public:
  /// Builds the graph over `triples`.
  explicit QueryGraph(const std::vector<sparql::TriplePattern>& triples);

  /// Canonical vertex key of a subject/object slot ("?name" for variables,
  /// the N-Triples form for constants).
  static std::string VertexKey(const sparql::TermOrVar& tv);

  /// Edges (triple indices) incident to a vertex.
  const std::vector<int>& Edges(const std::string& vertex) const;

  /// The vertex on the other end of edge `triple_index` from `vertex`
  /// (for a self-loop, returns `vertex`).
  std::string Destination(const std::string& vertex, int triple_index) const;

  /// All vertices.
  std::vector<std::string> Vertices() const;

  /// Connected components as sets of triple indices (two patterns are
  /// connected when they share any variable).
  std::vector<std::vector<int>> ConnectedComponents() const;

  /// Variables occurring in >= 2 triple patterns, with occurrence roles
  /// and type-pattern annotations — the candidates of Algorithm 1.
  static std::vector<JoinVariable> JoinVariables(
      const std::vector<sparql::TriplePattern>& triples);

 private:
  const std::vector<sparql::TriplePattern>& triples_;
  std::map<std::string, std::vector<int>> adjacency_;
  std::vector<int> empty_;
};

}  // namespace lusail::core

#endif  // LUSAIL_CORE_QUERY_GRAPH_H_
