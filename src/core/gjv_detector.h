#ifndef LUSAIL_CORE_GJV_DETECTOR_H_
#define LUSAIL_CORE_GJV_DETECTOR_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "federation/federation.h"
#include "federation/source_selection.h"
#include "sparql/ast.h"

namespace lusail::core {

/// Output of Algorithm 1: the global join variables and, per variable,
/// the *causing pairs* of triple patterns — the pairs whose instances are
/// not co-located and therefore cannot share a subquery. Pairs that share
/// a GJV but were not flagged can still be grouped (Figure 6).
struct GjvResult {
  /// Variable name -> causing pairs (triple indices, smaller first).
  std::map<std::string, std::set<std::pair<int, int>>> causes;

  /// Number of locality check queries issued (cache misses only).
  uint64_t check_queries = 0;

  bool IsGjv(const std::string& var) const { return causes.count(var) > 0; }

  /// True when triple patterns `a` and `b` must not share a subquery.
  bool IsCausingPair(int a, int b) const {
    std::pair<int, int> key = a < b ? std::make_pair(a, b)
                                    : std::make_pair(b, a);
    for (const auto& [var, pairs] : causes) {
      if (pairs.count(key)) return true;
    }
    return false;
  }

  std::set<std::string> GjvNames() const {
    std::set<std::string> names;
    for (const auto& [var, pairs] : causes) names.insert(var);
    return names;
  }
};

/// Locality-aware global-join-variable detection (paper Section 3.1,
/// Algorithm 1).
///
/// For every variable in >= 2 triple patterns:
///   1. If two of its patterns have different relevant-source lists, the
///      variable is global (no endpoint communication needed).
///   2. Otherwise SPARQL check queries (Figure 5) are sent to the relevant
///      endpoints: set differences of the variable's instance bindings
///      between pattern pairs, computed with FILTER NOT EXISTS and
///      LIMIT 1. Any non-empty difference at any endpoint makes the pair a
///      causing pair.
/// rdf:type patterns on the variable restrict the checks to relevantly
/// typed instances instead of forming pairs themselves. Variables used in
/// the predicate position are conservatively treated as global (correct
/// by the paper's Lemma 2).
class GjvDetector {
 public:
  GjvDetector(const fed::Federation* federation, fed::AskCache* check_cache,
              ThreadPool* pool)
      : federation_(federation), cache_(check_cache), pool_(pool) {}

  /// Runs detection for `triples`, whose per-pattern relevant sources are
  /// `sources` (from source selection). `use_cache=false` forces fresh
  /// check queries. Check queries go through `retry` when given. A failed
  /// check normally fails detection; with `tolerate_failures` the pair is
  /// conservatively treated as a causing pair instead (uncached) — its
  /// variable becomes global, which is always correct, just less optimal.
  Result<GjvResult> Detect(const std::vector<sparql::TriplePattern>& triples,
                           const std::vector<std::vector<int>>& sources,
                           fed::MetricsCollector* metrics,
                           const Deadline& deadline, bool use_cache,
                           const net::RetryPolicy* retry = nullptr,
                           bool tolerate_failures = false);

  /// Builds the Figure 5 check-query text for one (outer, inner) pair:
  /// SELECT ?v WHERE { [type triples] <outer pattern> FILTER NOT EXISTS {
  /// SELECT ?v WHERE { <inner pattern> } } } LIMIT 1. Exposed for tests.
  static std::string CheckQueryText(
      const std::string& var, const sparql::TriplePattern& outer,
      const sparql::TriplePattern& inner,
      const std::vector<sparql::TriplePattern>& type_patterns);

 private:
  const fed::Federation* federation_;
  fed::AskCache* cache_;
  ThreadPool* pool_;
};

}  // namespace lusail::core

#endif  // LUSAIL_CORE_GJV_DETECTOR_H_
