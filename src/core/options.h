#ifndef LUSAIL_CORE_OPTIONS_H_
#define LUSAIL_CORE_OPTIONS_H_

#include <cstddef>

#include "net/resilience.h"

namespace lusail::core {

/// Threshold for deciding which subqueries SAPE delays (Section 4.1,
/// evaluated in Figure 13 of the paper). A subquery is delayed when its
/// estimated cardinality (or relevant-endpoint count) exceeds the
/// threshold computed over all subqueries after Chauvenet outlier
/// rejection.
enum class DelayThreshold {
  kMu,            ///< Delay everything above the mean.
  kMuSigma,       ///< mu + sigma — the paper's default (best overall).
  kMu2Sigma,      ///< mu + 2*sigma.
  kOutliersOnly,  ///< Delay only Chauvenet-rejected outliers.
};

/// Tuning knobs of the Lusail engine. Defaults match the paper's
/// configuration.
struct LusailOptions {
  /// Threshold for delayed-subquery selection (Figure 13 ablation).
  DelayThreshold delay_threshold = DelayThreshold::kMuSigma;

  /// When false, SAPE is disabled: all subqueries are evaluated
  /// concurrently with no delaying/bound joins and joined at the
  /// federator. This is the "LADE only" configuration of Figure 14.
  bool enable_sape = true;

  /// Use the ASK + check-query cache (Figure 12's with/without-cache
  /// profiles toggle this). Also gates the federation-attached shared
  /// cache::FederationCache (verdict + COUNT tiers) when one is set.
  bool use_cache = true;

  /// Memoize non-delayed subquery result tables in the federation's
  /// shared cache (tier 3). Off by default: result reuse is only sound
  /// while the underlying stores do not mutate (or are invalidated via
  /// FederationCache::Invalidate). No effect without an attached cache.
  bool result_cache = false;

  /// Push endpoint-local OPTIONAL blocks into subqueries when the
  /// locality analysis allows it (Section 3's FILTER/OPTIONAL placement).
  /// Off = every OPTIONAL left-joins at the federator.
  bool enable_optional_pushdown = true;

  /// Number of bindings per VALUES block in bound joins of delayed
  /// subqueries.
  size_t bound_join_block_size = 50;

  /// Worker threads for the Elastic Request Handler; 0 = hardware
  /// concurrency.
  size_t num_threads = 0;

  /// Sample size for the delayed-subquery source-refinement ASK probes
  /// (re-running source selection with found bindings, Algorithm 3 l.13).
  size_t source_refinement_sample = 10;

  /// Partitions for the parallel hash join.
  size_t join_partitions = 8;

  /// Client-side retry policy for every endpoint request this engine
  /// issues (ASK probes, check queries, COUNT probes, subqueries). The
  /// default (max_attempts = 1) is the fail-stop behaviour of the paper's
  /// setup; enable retries (e.g. net::RetryPolicy::Standard()) to ride
  /// out transient endpoint failures. Retries engage the federation's
  /// per-endpoint circuit breakers and never sleep past the query
  /// deadline.
  net::RetryPolicy retry_policy;

  /// Record a span trace of every execution (phases, subqueries, endpoint
  /// requests, retry attempts) into ExecutionProfile::trace. Off by
  /// default: when disabled no tracer exists and no spans are allocated,
  /// so the overhead is a handful of null-pointer checks per request.
  bool trace = false;

  /// When true, an endpoint that stays down past the retry budget is
  /// *dropped* instead of failing the query: its contribution to each
  /// subquery's per-endpoint union is skipped and the degradation is
  /// reported in ExecutionProfile (partial, failed_endpoint_ids,
  /// subqueries_dropped). The result is then a lower bound of the exact
  /// answer. When false (default) such failures abort the query with an
  /// aggregated multi-endpoint error.
  bool partial_results = false;
};

}  // namespace lusail::core

#endif  // LUSAIL_CORE_OPTIONS_H_
