#include "core/hash_join.h"

#include <algorithm>
#include <future>

namespace lusail::core {

namespace {

size_t KeyHash(const std::vector<rdf::TermId>& row,
               const std::vector<int>& key_cols) {
  size_t h = 1469598103934665603ULL;
  for (int c : key_cols) {
    h ^= row[c] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

/// Used when the sides share no variable (no key to hash-partition on).
fed::BindingTable ParallelCartesian(const fed::BindingTable& left,
                                    const fed::BindingTable& right,
                                    ThreadPool* pool, size_t partitions,
                                    const CancelToken* cancel) {
  fed::BindingTable out;
  out.vars = left.vars;
  out.vars.insert(out.vars.end(), right.vars.begin(), right.vars.end());
  if (left.rows.empty() || right.rows.empty()) return out;

  const size_t chunk = (left.rows.size() + partitions - 1) / partitions;
  auto cross_chunk = [&left, &right, cancel](size_t begin, size_t end) {
    std::vector<std::vector<rdf::TermId>> rows;
    rows.reserve((end - begin) * right.rows.size());
    // Poll the token every ~1k output cells: cheap enough to keep the
    // ~50 ns/cell inner loop unaffected, frequent enough that a running
    // product stops within microseconds of the token firing.
    size_t ticks = 0;
    for (size_t i = begin; i < end; ++i) {
      for (const auto& rrow : right.rows) {
        if (cancel != nullptr && (++ticks & 1023u) == 0 &&
            cancel->Cancelled()) {
          return rows;
        }
        std::vector<rdf::TermId> combined = left.rows[i];
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        rows.push_back(std::move(combined));
      }
    }
    return rows;
  };

  std::vector<std::future<std::vector<std::vector<rdf::TermId>>>> futures;
  for (size_t begin = 0; begin < left.rows.size(); begin += chunk) {
    size_t end = std::min(left.rows.size(), begin + chunk);
    futures.push_back(pool->Submit(cross_chunk, begin, end));
  }
  for (auto& f : futures) {
    std::vector<std::vector<rdf::TermId>> rows = f.get();
    if (cancel != nullptr && cancel->Cancelled()) continue;  // Drain only.
    out.rows.insert(out.rows.end(), std::make_move_iterator(rows.begin()),
                    std::make_move_iterator(rows.end()));
  }
  return out;
}

fed::BindingTable ParallelHashJoin(const fed::BindingTable& left,
                                   const fed::BindingTable& right,
                                   ThreadPool* pool, size_t partitions,
                                   const CancelToken* cancel) {
  std::vector<std::string> shared = fed::BindingTable::SharedVars(left, right);
  if (shared.empty()) {
    // Cartesian product: parallelize when the output is big enough to
    // amortize the task overhead; HashJoin handles the small cases.
    //
    // Threshold measured with bench_micro's BM_CartesianSerial /
    // BM_CartesianParallel pair: serial costs ~50 ns/cell, and
    // dispatching 8 pool tasks costs ~25 us total (the wall-time gap
    // at small sizes). At 2048 cells the serial product takes ~105 us
    // — about 4x the dispatch overhead, the knee where offloading
    // already cuts main-thread CPU ~3x (38 us vs 105 us) and any
    // second core turns that into wall-clock speedup; by ~16k cells
    // the overhead is fully amortized (<2% even on one core). Below
    // 2048 the dispatch overhead rivals the work itself.
    if (partitions > 1 && pool != nullptr && !right.rows.empty() &&
        left.rows.size() >= 2 &&
        left.rows.size() * right.rows.size() >= 2048) {
      return ParallelCartesian(left, right, pool, partitions, cancel);
    }
    return fed::HashJoin(left, right);
  }
  if (partitions <= 1 || pool == nullptr ||
      left.rows.size() + right.rows.size() < 2048) {
    return fed::HashJoin(left, right);
  }
  std::vector<int> left_keys, right_keys;
  for (const std::string& v : shared) {
    left_keys.push_back(left.VarIndex(v));
    right_keys.push_back(right.VarIndex(v));
  }
  // Rows with unbound key cells break partitioning; fall back.
  auto has_unbound_key = [](const fed::BindingTable& t,
                            const std::vector<int>& keys) {
    for (const auto& row : t.rows) {
      for (int k : keys) {
        if (row[k] == rdf::kInvalidTermId) return true;
      }
    }
    return false;
  };
  if (has_unbound_key(left, left_keys) || has_unbound_key(right, right_keys)) {
    return fed::HashJoin(left, right);
  }

  std::vector<fed::BindingTable> left_parts(partitions);
  std::vector<fed::BindingTable> right_parts(partitions);
  for (size_t p = 0; p < partitions; ++p) {
    left_parts[p].vars = left.vars;
    right_parts[p].vars = right.vars;
  }
  for (const auto& row : left.rows) {
    left_parts[KeyHash(row, left_keys) % partitions].rows.push_back(row);
  }
  for (const auto& row : right.rows) {
    right_parts[KeyHash(row, right_keys) % partitions].rows.push_back(row);
  }

  std::vector<std::future<fed::BindingTable>> futures;
  futures.reserve(partitions);
  for (size_t p = 0; p < partitions; ++p) {
    futures.push_back(pool->Submit(
        [&left_parts, &right_parts, p, cancel]() {
          // Partition-boundary cancellation: a queued bucket join whose
          // token already fired produces nothing instead of joining.
          if (cancel != nullptr && cancel->Cancelled()) {
            return fed::BindingTable{};
          }
          return fed::HashJoin(left_parts[p], right_parts[p]);
        }));
  }
  // Fixed output layout: left vars then right-only vars. fed::HashJoin may
  // swap sides internally, so realign each partition's columns by name.
  fed::BindingTable out;
  out.vars = left.vars;
  for (const std::string& v : right.vars) {
    if (out.VarIndex(v) < 0) out.vars.push_back(v);
  }
  for (auto& f : futures) {
    fed::BindingTable part = f.get();
    if (cancel != nullptr && cancel->Cancelled()) continue;  // Drain only.
    std::vector<int> mapping(out.vars.size(), -1);
    for (size_t i = 0; i < out.vars.size(); ++i) {
      mapping[i] = part.VarIndex(out.vars[i]);
    }
    for (const auto& row : part.rows) {
      std::vector<rdf::TermId> aligned(out.vars.size(), rdf::kInvalidTermId);
      for (size_t i = 0; i < mapping.size(); ++i) {
        if (mapping[i] >= 0) aligned[i] = row[mapping[i]];
      }
      out.rows.push_back(std::move(aligned));
    }
  }
  return out;
}

}  // namespace lusail::core
