#include "core/hash_join.h"

#include <algorithm>
#include <future>

namespace lusail::core {

namespace {

size_t KeyHash(const fed::BindingTable& table, size_t row,
               const std::vector<int>& key_cols) {
  size_t h = 1469598103934665603ULL;
  for (int c : key_cols) {
    h ^= table.At(row, static_cast<size_t>(c)) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

/// Used when the sides share no variable (no key to hash-partition on).
fed::BindingTable ParallelCartesian(const fed::BindingTable& left,
                                    const fed::BindingTable& right,
                                    ThreadPool* pool, size_t partitions,
                                    const CancelToken* cancel) {
  std::vector<std::string> out_vars = left.vars;
  out_vars.insert(out_vars.end(), right.vars.begin(), right.vars.end());
  if (left.NumRows() == 0 || right.NumRows() == 0) {
    return fed::BindingTable(std::move(out_vars));
  }

  const size_t ln = left.NumRows();
  const size_t rn = right.NumRows();
  const size_t chunk = (ln + partitions - 1) / partitions;
  // Each worker builds its chunk's columns directly: left columns repeat
  // each value rn times, right columns tile whole column copies — block
  // appends instead of the old per-row vector allocations. The token is
  // polled between blocks (a block is one column copy, microseconds even
  // at bench sizes), and a cancelled worker returns an empty table the
  // drain below discards anyway.
  auto cross_chunk = [&left, &right, &out_vars, rn,
                      cancel](size_t begin, size_t end) -> fed::BindingTable {
    const size_t out_n = (end - begin) * rn;
    std::vector<std::vector<rdf::TermId>> cols(out_vars.size());
    for (size_t c = 0; c < left.NumVars(); ++c) {
      const std::vector<rdf::TermId>& lc = left.Column(c);
      std::vector<rdf::TermId>& dst = cols[c];
      dst.reserve(out_n);
      for (size_t i = begin; i < end; ++i) {
        if (cancel != nullptr && cancel->Cancelled()) {
          return fed::BindingTable{};
        }
        dst.insert(dst.end(), rn,
                   lc.empty() ? rdf::kInvalidTermId : lc[i]);
      }
    }
    for (size_t c = 0; c < right.NumVars(); ++c) {
      const std::vector<rdf::TermId>& rc = right.Column(c);
      std::vector<rdf::TermId>& dst = cols[left.NumVars() + c];
      dst.reserve(out_n);
      for (size_t i = begin; i < end; ++i) {
        if (cancel != nullptr && cancel->Cancelled()) {
          return fed::BindingTable{};
        }
        if (rc.empty()) {
          dst.insert(dst.end(), rn, rdf::kInvalidTermId);
        } else {
          dst.insert(dst.end(), rc.begin(), rc.end());
        }
      }
    }
    return fed::BindingTable::FromColumns(out_vars, std::move(cols), out_n);
  };

  std::vector<std::future<fed::BindingTable>> futures;
  for (size_t begin = 0; begin < ln; begin += chunk) {
    size_t end = std::min(ln, begin + chunk);
    futures.push_back(pool->Submit(cross_chunk, begin, end));
  }
  fed::BindingTable out(out_vars);
  for (auto& f : futures) {
    fed::BindingTable part = f.get();
    if (cancel != nullptr && cancel->Cancelled()) continue;  // Drain only.
    out.Append(part);
  }
  return out;
}

fed::BindingTable ParallelHashJoin(const fed::BindingTable& left,
                                   const fed::BindingTable& right,
                                   ThreadPool* pool, size_t partitions,
                                   const CancelToken* cancel) {
  std::vector<std::string> shared = fed::BindingTable::SharedVars(left, right);
  if (shared.empty()) {
    // Cartesian product: parallelize when the output is big enough to
    // amortize the task overhead; HashJoin handles the small cases.
    //
    // Threshold measured with bench_micro's BM_CartesianSerial /
    // BM_CartesianParallel pair: serial costs ~50 ns/cell, and
    // dispatching 8 pool tasks costs ~25 us total (the wall-time gap
    // at small sizes). At 2048 cells the serial product takes ~105 us
    // — about 4x the dispatch overhead, the knee where offloading
    // already cuts main-thread CPU ~3x (38 us vs 105 us) and any
    // second core turns that into wall-clock speedup; by ~16k cells
    // the overhead is fully amortized (<2% even on one core). Below
    // 2048 the dispatch overhead rivals the work itself.
    if (partitions > 1 && pool != nullptr && right.NumRows() > 0 &&
        left.NumRows() >= 2 &&
        left.NumRows() * right.NumRows() >= 2048) {
      return ParallelCartesian(left, right, pool, partitions, cancel);
    }
    return fed::HashJoin(left, right);
  }
  if (partitions <= 1 || pool == nullptr ||
      left.NumRows() + right.NumRows() < 2048) {
    return fed::HashJoin(left, right);
  }
  std::vector<int> left_keys, right_keys;
  for (const std::string& v : shared) {
    left_keys.push_back(left.VarIndex(v));
    right_keys.push_back(right.VarIndex(v));
  }
  // Rows with unbound key cells break partitioning; fall back.
  auto has_unbound_key = [](const fed::BindingTable& t,
                            const std::vector<int>& keys) {
    for (int k : keys) {
      const std::vector<rdf::TermId>& col = t.Column(static_cast<size_t>(k));
      if (col.empty() && t.NumRows() > 0) return true;
      for (rdf::TermId id : col) {
        if (id == rdf::kInvalidTermId) return true;
      }
    }
    return false;
  };
  if (has_unbound_key(left, left_keys) || has_unbound_key(right, right_keys)) {
    return fed::HashJoin(left, right);
  }

  // Partition row indices by key hash, then materialize each partition
  // with one column gather per side.
  std::vector<std::vector<uint32_t>> left_index(partitions);
  std::vector<std::vector<uint32_t>> right_index(partitions);
  for (size_t r = 0; r < left.NumRows(); ++r) {
    left_index[KeyHash(left, r, left_keys) % partitions].push_back(
        static_cast<uint32_t>(r));
  }
  for (size_t r = 0; r < right.NumRows(); ++r) {
    right_index[KeyHash(right, r, right_keys) % partitions].push_back(
        static_cast<uint32_t>(r));
  }
  std::vector<fed::BindingTable> left_parts(partitions);
  std::vector<fed::BindingTable> right_parts(partitions);
  for (size_t p = 0; p < partitions; ++p) {
    left_parts[p] = left.SelectRows(left_index[p]);
    right_parts[p] = right.SelectRows(right_index[p]);
  }

  std::vector<std::future<fed::BindingTable>> futures;
  futures.reserve(partitions);
  for (size_t p = 0; p < partitions; ++p) {
    futures.push_back(pool->Submit(
        [&left_parts, &right_parts, p, cancel]() {
          // Partition-boundary cancellation: a queued bucket join whose
          // token already fired produces nothing instead of joining.
          if (cancel != nullptr && cancel->Cancelled()) {
            return fed::BindingTable{};
          }
          // JoinIds directly (not the build-side-swapping HashJoin
          // wrapper): every partition then shares the fixed layout
          // left.vars + right-only vars and concatenates with no
          // column realignment.
          return core::JoinIds(left_parts[p], right_parts[p],
                               /*left_outer=*/false);
        }));
  }
  fed::BindingTable out;
  out.vars = left.vars;
  for (const std::string& v : right.vars) {
    if (out.VarIndex(v) < 0) out.vars.push_back(v);
  }
  for (auto& f : futures) {
    fed::BindingTable part = f.get();
    if (cancel != nullptr && cancel->Cancelled()) continue;  // Drain only.
    out.Append(part);
  }
  return out;
}

}  // namespace lusail::core
