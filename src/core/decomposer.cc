#include "core/decomposer.h"

#include <algorithm>
#include <map>

#include "core/query_graph.h"

namespace lusail::core {

namespace {

using sparql::TriplePattern;

/// A subquery under construction: triple indices plus the shared source
/// list (all members have identical relevant sources by construction).
struct ProtoSubquery {
  std::vector<int> triples;
  std::vector<int> sources;
};

bool CanBeAdded(const ProtoSubquery& sq, int edge,
                const std::vector<std::vector<int>>& sources,
                const GjvResult& gjvs) {
  if (sources[edge] != sq.sources) return false;
  for (int t : sq.triples) {
    if (gjvs.IsCausingPair(t, edge)) return false;
  }
  return true;
}

/// The branching phase of Algorithm 2: depth-first traversal from `root`,
/// restricted to the triples in `component`.
std::vector<ProtoSubquery> Branch(const QueryGraph& graph,
                                  const std::vector<int>& component,
                                  const std::string& root,
                                  const std::vector<std::vector<int>>& sources,
                                  const GjvResult& gjvs) {
  std::set<int> in_component(component.begin(), component.end());
  std::set<int> visited;
  std::vector<ProtoSubquery> subqueries;
  std::vector<std::string> nodes;
  nodes.push_back(root);

  // Finds a subquery containing an edge incident to `vrtx`.
  auto parent_of = [&](const std::string& vrtx) -> ProtoSubquery* {
    for (int e : graph.Edges(vrtx)) {
      for (ProtoSubquery& sq : subqueries) {
        if (std::find(sq.triples.begin(), sq.triples.end(), e) !=
            sq.triples.end()) {
          return &sq;
        }
      }
    }
    return nullptr;
  };

  while (!nodes.empty()) {
    std::string vrtx = nodes.back();
    nodes.pop_back();
    std::vector<int> edges;
    for (int e : graph.Edges(vrtx)) {
      if (in_component.count(e) && !visited.count(e)) edges.push_back(e);
    }
    if (subqueries.empty()) {
      for (int e : edges) {
        subqueries.push_back(ProtoSubquery{{e}, sources[e]});
        nodes.push_back(graph.Destination(vrtx, e));
        visited.insert(e);
      }
      continue;
    }
    ProtoSubquery* parent = parent_of(vrtx);
    for (int e : edges) {
      if (parent != nullptr && CanBeAdded(*parent, e, sources, gjvs)) {
        parent->triples.push_back(e);
      } else {
        subqueries.push_back(ProtoSubquery{{e}, sources[e]});
        // The vector may have reallocated; refresh the parent pointer.
        parent = parent_of(vrtx);
      }
      nodes.push_back(graph.Destination(vrtx, e));
      visited.insert(e);
    }
  }
  return subqueries;
}

std::vector<std::string> SubqueryVars(const ProtoSubquery& sq,
                                      const std::vector<TriplePattern>& triples) {
  std::vector<std::string> out;
  for (int ti : sq.triples) {
    for (const std::string& v : triples[ti].VariableNames()) {
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
    }
  }
  return out;
}

/// The merging phase: merge pairs with a common variable, the same
/// sources, and no causing pair across them; repeat to a fixpoint.
void Merge(std::vector<ProtoSubquery>* subqueries,
           const std::vector<TriplePattern>& triples, const GjvResult& gjvs) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < subqueries->size() && !changed; ++i) {
      for (size_t j = i + 1; j < subqueries->size() && !changed; ++j) {
        ProtoSubquery& a = (*subqueries)[i];
        ProtoSubquery& b = (*subqueries)[j];
        if (a.sources != b.sources) continue;
        std::vector<std::string> va = SubqueryVars(a, triples);
        std::vector<std::string> vb = SubqueryVars(b, triples);
        bool share = std::any_of(va.begin(), va.end(), [&](const auto& v) {
          return std::find(vb.begin(), vb.end(), v) != vb.end();
        });
        if (!share) continue;
        bool causes = false;
        for (int ta : a.triples) {
          for (int tb : b.triples) {
            if (gjvs.IsCausingPair(ta, tb)) {
              causes = true;
              break;
            }
          }
          if (causes) break;
        }
        if (causes) continue;
        a.triples.insert(a.triples.end(), b.triples.begin(), b.triples.end());
        subqueries->erase(subqueries->begin() + j);
        changed = true;
      }
    }
  }
}

}  // namespace

Decomposition Decomposer::Decompose(
    const std::vector<TriplePattern>& triples,
    const std::vector<std::vector<int>>& sources, const GjvResult& gjvs,
    const std::vector<sparql::Expr>& filters,
    const std::set<std::string>& needed_vars) const {
  Decomposition result;
  result.gjvs = gjvs.GjvNames();

  QueryGraph graph(triples);
  std::vector<ProtoSubquery> chosen;

  for (const std::vector<int>& component : graph.ConnectedComponents()) {
    // GJVs whose causing pairs fall inside this component.
    std::vector<std::string> roots;
    for (const auto& [var, pairs] : gjvs.causes) {
      for (const auto& pair : pairs) {
        if (std::find(component.begin(), component.end(), pair.first) !=
            component.end()) {
          roots.push_back("?" + var);
          break;
        }
      }
    }

    if (roots.empty()) {
      // Algorithm 2, line 3: no GJVs — the whole component is one
      // subquery. (All patterns share one source list; see Section 3.)
      ProtoSubquery sq;
      sq.triples = component;
      sq.sources = sources[component[0]];
      chosen.push_back(std::move(sq));
      continue;
    }

    std::vector<ProtoSubquery> best;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const std::string& root : roots) {
      std::vector<ProtoSubquery> candidate =
          Branch(graph, component, root, sources, gjvs);
      // The DFS from this root may not reach vertices in other parts of
      // the component if the root is not an articulation point of every
      // edge; pick up any stragglers with extra passes.
      std::set<int> covered;
      for (const ProtoSubquery& sq : candidate) {
        covered.insert(sq.triples.begin(), sq.triples.end());
      }
      for (int e : component) {
        if (!covered.count(e)) {
          candidate.push_back(ProtoSubquery{{e}, sources[e]});
          covered.insert(e);
        }
      }
      Merge(&candidate, triples, gjvs);

      // Estimate cost through the cost model.
      std::vector<Subquery> as_subqueries;
      for (const ProtoSubquery& p : candidate) {
        Subquery sq;
        sq.triple_indices = p.triples;
        sq.sources = p.sources;
        as_subqueries.push_back(std::move(sq));
      }
      double cost = cost_model_->DecompositionCost(as_subqueries, triples);
      if (cost < best_cost) {
        best_cost = cost;
        best = std::move(candidate);
      }
    }
    for (ProtoSubquery& sq : best) chosen.push_back(std::move(sq));
  }

  // Materialize subqueries; order triples within each for determinism.
  for (ProtoSubquery& p : chosen) {
    std::sort(p.triples.begin(), p.triples.end());
    Subquery sq;
    sq.triple_indices = p.triples;
    sq.sources = p.sources;
    result.subqueries.push_back(std::move(sq));
  }

  // Push filters into the first covering subquery.
  for (const sparql::Expr& f : filters) {
    std::set<std::string> fvars;
    f.CollectVariables(&fvars);
    bool pushed = false;
    for (Subquery& sq : result.subqueries) {
      std::vector<std::string> sv = sq.Variables(triples);
      bool covered = std::all_of(fvars.begin(), fvars.end(), [&](const auto& v) {
        return std::find(sv.begin(), sv.end(), v) != sv.end();
      });
      if (covered) {
        sq.filters.push_back(f);
        pushed = true;
        break;
      }
    }
    if (!pushed) result.global_filters.push_back(f);
  }

  // Projections: join variables (shared across subqueries), variables the
  // final answer needs, and variables referenced by global filters.
  std::set<std::string> global_filter_vars;
  for (const sparql::Expr& f : result.global_filters) {
    f.CollectVariables(&global_filter_vars);
  }
  std::map<std::string, int> var_subquery_count;
  for (const Subquery& sq : result.subqueries) {
    for (const std::string& v : sq.Variables(triples)) {
      ++var_subquery_count[v];
    }
  }
  for (Subquery& sq : result.subqueries) {
    for (const std::string& v : sq.Variables(triples)) {
      if (needed_vars.count(v) || var_subquery_count[v] > 1 ||
          global_filter_vars.count(v)) {
        sq.projection.push_back(v);
      }
    }
    if (sq.projection.empty()) {
      // Nothing outside cares about this subquery's bindings; project all
      // variables so the row count (bag semantics) stays observable.
      sq.projection = sq.Variables(triples);
    }
    sq.estimated_cardinality = cost_model_->SubqueryCardinality(sq, triples);
  }
  result.cost = cost_model_->DecompositionCost(result.subqueries, triples);
  return result;
}

}  // namespace lusail::core
