#include "sparql/parser.h"

#include <cctype>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace lusail::sparql {

namespace {

enum class TokenKind {
  kEnd,
  kIri,      // <...> with the brackets stripped.
  kPname,    // prefix:local (raw, unresolved).
  kVar,      // ?name / $name (name only).
  kString,   // "..." (unescaped lexical form).
  kLangTag,  // @en (tag only).
  kNumber,   // Raw numeric text.
  kIdent,    // Keyword / bare identifier (includes 'a', 'true', 'false').
  kPunct,    // Operators and delimiters.
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t offset = 0;  // For error messages.
};

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view text) : text_(text) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '#') {  // Comment to end of line.
        while (i < text_.size() && text_[i] != '\n') ++i;
        continue;
      }
      Token tok;
      tok.offset = i;
      if (c == '<') {
        // IRI if '>' appears before any whitespace; otherwise '<' / '<='.
        size_t j = i + 1;
        bool is_iri = false;
        while (j < text_.size()) {
          if (text_[j] == '>') {
            is_iri = true;
            break;
          }
          if (std::isspace(static_cast<unsigned char>(text_[j]))) break;
          ++j;
        }
        if (is_iri) {
          tok.kind = TokenKind::kIri;
          tok.text = std::string(text_.substr(i + 1, j - i - 1));
          i = j + 1;
        } else {
          tok.kind = TokenKind::kPunct;
          if (i + 1 < text_.size() && text_[i + 1] == '=') {
            tok.text = "<=";
            i += 2;
          } else {
            tok.text = "<";
            ++i;
          }
        }
      } else if (c == '?' || c == '$') {
        size_t j = i + 1;
        while (j < text_.size() && (std::isalnum(static_cast<unsigned char>(
                                        text_[j])) ||
                                    text_[j] == '_')) {
          ++j;
        }
        if (j == i + 1) {
          return Status::ParseError("empty variable name at offset " +
                                    std::to_string(i));
        }
        tok.kind = TokenKind::kVar;
        tok.text = std::string(text_.substr(i + 1, j - i - 1));
        i = j;
      } else if (c == '"') {
        size_t j = i + 1;
        std::string lexical;
        bool closed = false;
        while (j < text_.size()) {
          if (text_[j] == '\\' && j + 1 < text_.size()) {
            lexical += text_[j];
            lexical += text_[j + 1];
            j += 2;
            continue;
          }
          if (text_[j] == '"') {
            closed = true;
            break;
          }
          lexical += text_[j];
          ++j;
        }
        if (!closed) {
          return Status::ParseError("unterminated string literal at offset " +
                                    std::to_string(i));
        }
        tok.kind = TokenKind::kString;
        tok.text = UnescapeLiteral(lexical);
        i = j + 1;
      } else if (c == '@') {
        size_t j = i + 1;
        while (j < text_.size() && (std::isalnum(static_cast<unsigned char>(
                                        text_[j])) ||
                                    text_[j] == '-')) {
          ++j;
        }
        tok.kind = TokenKind::kLangTag;
        tok.text = std::string(text_.substr(i + 1, j - i - 1));
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i + 1;
        bool seen_dot = false, seen_exp = false;
        while (j < text_.size()) {
          char d = text_[j];
          if (std::isdigit(static_cast<unsigned char>(d))) {
            ++j;
          } else if (d == '.' && !seen_dot && !seen_exp) {
            seen_dot = true;
            ++j;
          } else if ((d == 'e' || d == 'E') && !seen_exp) {
            seen_exp = true;
            ++j;
            if (j < text_.size() && (text_[j] == '+' || text_[j] == '-')) ++j;
          } else {
            break;
          }
        }
        // A trailing '.' is a statement terminator, not a decimal point.
        if (text_[j - 1] == '.') --j;
        tok.kind = TokenKind::kNumber;
        tok.text = std::string(text_.substr(i, j - i));
        i = j;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < text_.size() && (std::isalnum(static_cast<unsigned char>(
                                        text_[j])) ||
                                    text_[j] == '_' || text_[j] == '-' ||
                                    text_[j] == '.')) {
          ++j;
        }
        // Trailing '.' belongs to the statement, not the name.
        while (j > i && text_[j - 1] == '.') --j;
        std::string word(text_.substr(i, j - i));
        if (j < text_.size() && text_[j] == ':') {
          // prefixed name "pfx:local".
          size_t k = j + 1;
          while (k < text_.size() && (std::isalnum(static_cast<unsigned char>(
                                          text_[k])) ||
                                      text_[k] == '_' || text_[k] == '-' ||
                                      text_[k] == '.')) {
            ++k;
          }
          while (k > j + 1 && text_[k - 1] == '.') --k;
          tok.kind = TokenKind::kPname;
          tok.text = std::string(text_.substr(i, k - i));
          i = k;
        } else {
          tok.kind = TokenKind::kIdent;
          tok.text = word;
          i = j;
        }
      } else if (c == ':') {
        // Default-prefix pname ":local".
        size_t k = i + 1;
        while (k < text_.size() && (std::isalnum(static_cast<unsigned char>(
                                        text_[k])) ||
                                    text_[k] == '_' || text_[k] == '-' ||
                                    text_[k] == '.')) {
          ++k;
        }
        while (k > i + 1 && text_[k - 1] == '.') --k;
        tok.kind = TokenKind::kPname;
        tok.text = std::string(text_.substr(i, k - i));
        i = k;
      } else {
        // Punctuation, including multi-character operators.
        tok.kind = TokenKind::kPunct;
        auto two = text_.substr(i, 2);
        if (two == "!=" || two == ">=" || two == "&&" || two == "||" ||
            two == "^^") {
          tok.text = std::string(two);
          i += 2;
        } else {
          tok.text = std::string(1, c);
          ++i;
        }
      }
      out->push_back(std::move(tok));
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.offset = text_.size();
    out->push_back(end);
    return Status::OK();
  }

 private:
  std::string_view text_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    LUSAIL_RETURN_NOT_OK(ParsePrologue());
    Query query;
    if (IsKeyword("SELECT")) {
      LUSAIL_RETURN_NOT_OK(ParseSelect(&query));
    } else if (IsKeyword("ASK")) {
      LUSAIL_RETURN_NOT_OK(ParseAsk(&query));
    } else {
      return Error("expected SELECT or ASK");
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing tokens after query");
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool IsKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdent && EqualsIgnoreCase(t.text, kw);
  }
  bool IsPunct(std::string_view p, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kPunct && t.text == p;
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (!IsKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool ConsumePunct(std::string_view p) {
    if (!IsPunct(p)) return false;
    Advance();
    return true;
  }
  Status ExpectPunct(std::string_view p) {
    if (!ConsumePunct(p)) {
      return Error("expected '" + std::string(p) + "'");
    }
    return Status::OK();
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " (near offset " +
                              std::to_string(Peek().offset) + ", token '" +
                              Peek().text + "')");
  }

  Status ParsePrologue() {
    while (IsKeyword("PREFIX") || IsKeyword("BASE")) {
      if (ConsumeKeyword("BASE")) {
        if (Peek().kind != TokenKind::kIri) return Error("expected IRI");
        Advance();  // BASE is accepted and ignored.
        continue;
      }
      Advance();  // PREFIX
      std::string prefix;
      if (Peek().kind == TokenKind::kPname) {
        // Tokenizer lexed "pfx:" (possibly with empty local part).
        std::string raw = Advance().text;
        size_t colon = raw.find(':');
        prefix = raw.substr(0, colon);
        if (colon + 1 != raw.size()) {
          return Error("malformed PREFIX declaration");
        }
      } else if (Peek().kind == TokenKind::kIdent && IsPunct(":", 1)) {
        prefix = Advance().text;
        Advance();  // ':'
      } else if (IsPunct(":")) {
        Advance();
      } else {
        return Error("expected prefix name");
      }
      if (Peek().kind != TokenKind::kIri) {
        return Error("expected IRI in PREFIX declaration");
      }
      prefixes_[prefix] = Advance().text;
    }
    return Status::OK();
  }

  Result<rdf::Term> ResolvePname(const std::string& raw) {
    size_t colon = raw.find(':');
    std::string prefix = raw.substr(0, colon);
    std::string local = raw.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Status::ParseError("undeclared prefix '" + prefix + ":'");
    }
    return rdf::Term::Iri(it->second + local);
  }

  Status ParseSelect(Query* query) {
    Advance();  // SELECT
    query->form = QueryForm::kSelect;
    if (ConsumeKeyword("DISTINCT")) query->distinct = true;
    if (ConsumePunct("*")) {
      query->select_all = true;
    } else {
      while (true) {
        if (Peek().kind == TokenKind::kVar) {
          query->projection.push_back(Variable{Advance().text});
        } else if (IsPunct("(")) {
          Advance();
          if (!ConsumeKeyword("COUNT")) {
            return Error("only COUNT aggregates are supported");
          }
          LUSAIL_RETURN_NOT_OK(ExpectPunct("("));
          CountAggregate agg;
          if (ConsumePunct("*")) {
            // COUNT(*)
          } else {
            if (ConsumeKeyword("DISTINCT")) agg.distinct = true;
            if (Peek().kind != TokenKind::kVar) {
              return Error("expected variable in COUNT");
            }
            agg.var = Variable{Advance().text};
          }
          LUSAIL_RETURN_NOT_OK(ExpectPunct(")"));
          if (!ConsumeKeyword("AS")) return Error("expected AS");
          if (Peek().kind != TokenKind::kVar) {
            return Error("expected alias variable");
          }
          agg.alias = Variable{Advance().text};
          LUSAIL_RETURN_NOT_OK(ExpectPunct(")"));
          query->aggregate = std::move(agg);
        } else {
          break;
        }
      }
      if (query->projection.empty() && !query->aggregate.has_value()) {
        return Error("empty SELECT projection");
      }
    }
    ConsumeKeyword("WHERE");
    LUSAIL_ASSIGN_OR_RETURN(query->where, ParseGroupGraphPattern());
    return ParseSolutionModifiers(query);
  }

  Status ParseAsk(Query* query) {
    Advance();  // ASK
    query->form = QueryForm::kAsk;
    ConsumeKeyword("WHERE");
    LUSAIL_ASSIGN_OR_RETURN(query->where, ParseGroupGraphPattern());
    return ParseSolutionModifiers(query);
  }

  Status ParseSolutionModifiers(Query* query) {
    while (true) {
      if (IsKeyword("ORDER") && IsKeyword("BY", 1)) {
        Advance();
        Advance();
        bool any = false;
        while (true) {
          OrderKey key;
          if (ConsumeKeyword("ASC") || ConsumeKeyword("DESC")) {
            key.descending = EqualsIgnoreCase(tokens_[pos_ - 1].text, "DESC");
            LUSAIL_RETURN_NOT_OK(ExpectPunct("("));
            if (Peek().kind != TokenKind::kVar) {
              return Error("expected variable in ORDER BY");
            }
            key.var = Variable{Advance().text};
            LUSAIL_RETURN_NOT_OK(ExpectPunct(")"));
          } else if (Peek().kind == TokenKind::kVar) {
            key.var = Variable{Advance().text};
          } else {
            break;
          }
          query->order_by.push_back(std::move(key));
          any = true;
        }
        if (!any) return Error("empty ORDER BY clause");
        continue;
      }
      if (ConsumeKeyword("LIMIT")) {
        if (Peek().kind != TokenKind::kNumber) {
          return Error("expected number after LIMIT");
        }
        query->limit = std::stoull(Advance().text);
      } else if (ConsumeKeyword("OFFSET")) {
        if (Peek().kind != TokenKind::kNumber) {
          return Error("expected number after OFFSET");
        }
        query->offset = std::stoull(Advance().text);
      } else {
        break;
      }
    }
    return Status::OK();
  }

  Result<GraphPattern> ParseGroupGraphPattern() {
    LUSAIL_RETURN_NOT_OK(ExpectPunct("{"));
    GraphPattern group;
    while (!IsPunct("}")) {
      if (Peek().kind == TokenKind::kEnd) {
        return Error("unterminated group graph pattern");
      }
      if (IsKeyword("FILTER")) {
        Advance();
        if (IsKeyword("EXISTS") ||
            (IsKeyword("NOT") && IsKeyword("EXISTS", 1))) {
          ExistsFilter ef;
          if (ConsumeKeyword("NOT")) ef.negated = true;
          Advance();  // EXISTS
          // The braces may wrap a nested SELECT (Figure 5 check queries).
          LUSAIL_ASSIGN_OR_RETURN(ef.pattern, ParseNestedGroup());
          group.exists_filters.push_back(std::move(ef));
        } else {
          LUSAIL_RETURN_NOT_OK(ExpectPunct("("));
          LUSAIL_ASSIGN_OR_RETURN(Expr e, ParseExpression());
          LUSAIL_RETURN_NOT_OK(ExpectPunct(")"));
          group.filters.push_back(std::move(e));
        }
        ConsumePunct(".");
        continue;
      }
      if (IsKeyword("OPTIONAL")) {
        Advance();
        LUSAIL_ASSIGN_OR_RETURN(GraphPattern opt, ParseGroupGraphPattern());
        group.optionals.push_back(std::move(opt));
        ConsumePunct(".");
        continue;
      }
      if (IsKeyword("VALUES")) {
        Advance();
        LUSAIL_ASSIGN_OR_RETURN(ValuesClause vc, ParseValues());
        group.values.push_back(std::move(vc));
        ConsumePunct(".");
        continue;
      }
      if (IsPunct("{")) {
        // A nested group, possibly the head of a UNION chain.
        std::vector<GraphPattern> alternatives;
        LUSAIL_ASSIGN_OR_RETURN(GraphPattern first, ParseNestedGroup());
        alternatives.push_back(std::move(first));
        while (IsKeyword("UNION")) {
          Advance();
          LUSAIL_ASSIGN_OR_RETURN(GraphPattern alt, ParseNestedGroup());
          alternatives.push_back(std::move(alt));
        }
        if (alternatives.size() == 1) {
          MergeInto(&group, std::move(alternatives[0]));
        } else {
          group.unions.push_back(std::move(alternatives));
        }
        ConsumePunct(".");
        continue;
      }
      // Plain triples block element.
      LUSAIL_RETURN_NOT_OK(ParseTriplesSameSubject(&group));
      ConsumePunct(".");
    }
    Advance();  // '}'
    return group;
  }

  /// Parses `{ ... }` where the content may be a nested SELECT (whose WHERE
  /// pattern is flattened; projection only matters for emptiness checks in
  /// EXISTS filters, which is all we use nested SELECTs for).
  Result<GraphPattern> ParseNestedGroup() {
    if (IsPunct("{") && IsKeyword("SELECT", 1)) {
      Advance();  // '{'
      Query sub;
      LUSAIL_RETURN_NOT_OK(ParseSelect(&sub));
      LUSAIL_RETURN_NOT_OK(ExpectPunct("}"));
      return std::move(sub.where);
    }
    return ParseGroupGraphPattern();
  }

  static void MergeInto(GraphPattern* dst, GraphPattern src) {
    for (auto& t : src.triples) dst->triples.push_back(std::move(t));
    for (auto& f : src.filters) dst->filters.push_back(std::move(f));
    for (auto& e : src.exists_filters) {
      dst->exists_filters.push_back(std::move(e));
    }
    for (auto& o : src.optionals) dst->optionals.push_back(std::move(o));
    for (auto& u : src.unions) dst->unions.push_back(std::move(u));
    for (auto& v : src.values) dst->values.push_back(std::move(v));
  }

  Status ParseTriplesSameSubject(GraphPattern* group) {
    LUSAIL_ASSIGN_OR_RETURN(TermOrVar subject, ParseTermOrVar());
    while (true) {
      LUSAIL_ASSIGN_OR_RETURN(TermOrVar predicate, ParseVerb());
      while (true) {
        LUSAIL_ASSIGN_OR_RETURN(TermOrVar object, ParseTermOrVar());
        group->triples.push_back(TriplePattern{subject, predicate, object});
        if (!ConsumePunct(",")) break;
      }
      if (!ConsumePunct(";")) break;
      if (IsPunct(".") || IsPunct("}")) break;  // Trailing ';' is legal.
    }
    return Status::OK();
  }

  Result<TermOrVar> ParseVerb() {
    if (Peek().kind == TokenKind::kIdent && Peek().text == "a") {
      Advance();
      return TermOrVar(rdf::Term::Iri(std::string(rdf::kRdfType)));
    }
    return ParseTermOrVar();
  }

  Result<TermOrVar> ParseTermOrVar() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVar:
        Advance();
        return TermOrVar(Variable{t.text});
      case TokenKind::kIri:
        Advance();
        return TermOrVar(rdf::Term::Iri(t.text));
      case TokenKind::kPname: {
        Advance();
        LUSAIL_ASSIGN_OR_RETURN(rdf::Term term, ResolvePname(t.text));
        return TermOrVar(std::move(term));
      }
      case TokenKind::kString: {
        LUSAIL_ASSIGN_OR_RETURN(rdf::Term lit, ParseLiteralTail());
        return TermOrVar(std::move(lit));
      }
      case TokenKind::kNumber: {
        Advance();
        return TermOrVar(NumberToTerm(t.text));
      }
      case TokenKind::kIdent:
        if (t.text == "true" || t.text == "false") {
          Advance();
          return TermOrVar(rdf::Term::TypedLiteral(
              t.text, std::string(rdf::kXsdBoolean)));
        }
        return Error("unexpected identifier '" + t.text + "' in pattern");
      default:
        return Error("expected term or variable");
    }
  }

  /// Consumes a kString token plus optional @lang / ^^<dt> suffix.
  Result<rdf::Term> ParseLiteralTail() {
    std::string lexical = Advance().text;
    if (Peek().kind == TokenKind::kLangTag) {
      return rdf::Term::LangLiteral(std::move(lexical), Advance().text);
    }
    if (ConsumePunct("^^")) {
      if (Peek().kind == TokenKind::kIri) {
        return rdf::Term::TypedLiteral(std::move(lexical), Advance().text);
      }
      if (Peek().kind == TokenKind::kPname) {
        LUSAIL_ASSIGN_OR_RETURN(rdf::Term dt, ResolvePname(Advance().text));
        return rdf::Term::TypedLiteral(std::move(lexical), dt.lexical());
      }
      return Error("expected datatype IRI after ^^");
    }
    return rdf::Term::Literal(std::move(lexical));
  }

  static rdf::Term NumberToTerm(const std::string& text) {
    if (text.find('.') != std::string::npos ||
        text.find('e') != std::string::npos ||
        text.find('E') != std::string::npos) {
      return rdf::Term::TypedLiteral(text, std::string(rdf::kXsdDouble));
    }
    return rdf::Term::TypedLiteral(text, std::string(rdf::kXsdInteger));
  }

  Result<ValuesClause> ParseValues() {
    ValuesClause vc;
    bool tuple_form = false;
    if (ConsumePunct("(")) {
      tuple_form = true;
      while (Peek().kind == TokenKind::kVar) {
        vc.vars.push_back(Variable{Advance().text});
      }
      LUSAIL_RETURN_NOT_OK(ExpectPunct(")"));
    } else if (Peek().kind == TokenKind::kVar) {
      vc.vars.push_back(Variable{Advance().text});
    } else {
      return Error("expected variable(s) after VALUES");
    }
    LUSAIL_RETURN_NOT_OK(ExpectPunct("{"));
    while (!IsPunct("}")) {
      std::vector<std::optional<rdf::Term>> row;
      if (tuple_form) {
        LUSAIL_RETURN_NOT_OK(ExpectPunct("("));
        while (!IsPunct(")")) {
          LUSAIL_ASSIGN_OR_RETURN(std::optional<rdf::Term> cell,
                                  ParseValuesCell());
          row.push_back(std::move(cell));
        }
        Advance();  // ')'
        if (row.size() != vc.vars.size()) {
          return Error("VALUES row arity mismatch");
        }
      } else {
        LUSAIL_ASSIGN_OR_RETURN(std::optional<rdf::Term> cell,
                                ParseValuesCell());
        row.push_back(std::move(cell));
      }
      vc.rows.push_back(std::move(row));
    }
    Advance();  // '}'
    return vc;
  }

  Result<std::optional<rdf::Term>> ParseValuesCell() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kIdent && EqualsIgnoreCase(t.text, "UNDEF")) {
      Advance();
      return std::optional<rdf::Term>();
    }
    LUSAIL_ASSIGN_OR_RETURN(TermOrVar tv, ParseTermOrVar());
    if (tv.is_variable()) {
      return Error("variables are not allowed inside VALUES data");
    }
    return std::optional<rdf::Term>(tv.term());
  }

  // ---- Expression parsing (precedence climbing) ----

  Result<Expr> ParseExpression() { return ParseOr(); }

  Result<Expr> ParseOr() {
    LUSAIL_ASSIGN_OR_RETURN(Expr left, ParseAnd());
    while (IsPunct("||")) {
      Advance();
      LUSAIL_ASSIGN_OR_RETURN(Expr right, ParseAnd());
      left = Expr::Binary(ExprOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<Expr> ParseAnd() {
    LUSAIL_ASSIGN_OR_RETURN(Expr left, ParseRelational());
    while (IsPunct("&&")) {
      Advance();
      LUSAIL_ASSIGN_OR_RETURN(Expr right, ParseRelational());
      left = Expr::Binary(ExprOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<Expr> ParseRelational() {
    LUSAIL_ASSIGN_OR_RETURN(Expr left, ParseAdditive());
    static const std::pair<const char*, ExprOp> kOps[] = {
        {"=", ExprOp::kEq},  {"!=", ExprOp::kNe}, {"<=", ExprOp::kLe},
        {">=", ExprOp::kGe}, {"<", ExprOp::kLt},  {">", ExprOp::kGt},
    };
    for (const auto& [sym, op] : kOps) {
      if (IsPunct(sym)) {
        Advance();
        LUSAIL_ASSIGN_OR_RETURN(Expr right, ParseAdditive());
        return Expr::Binary(op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<Expr> ParseAdditive() {
    LUSAIL_ASSIGN_OR_RETURN(Expr left, ParseMultiplicative());
    while (IsPunct("+") || IsPunct("-")) {
      ExprOp op = IsPunct("+") ? ExprOp::kAdd : ExprOp::kSub;
      Advance();
      LUSAIL_ASSIGN_OR_RETURN(Expr right, ParseMultiplicative());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<Expr> ParseMultiplicative() {
    LUSAIL_ASSIGN_OR_RETURN(Expr left, ParseUnary());
    while (IsPunct("*") || IsPunct("/")) {
      ExprOp op = IsPunct("*") ? ExprOp::kMul : ExprOp::kDiv;
      Advance();
      LUSAIL_ASSIGN_OR_RETURN(Expr right, ParseUnary());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<Expr> ParseUnary() {
    if (IsPunct("!")) {
      Advance();
      LUSAIL_ASSIGN_OR_RETURN(Expr inner, ParseUnary());
      return Expr::Unary(ExprOp::kNot, std::move(inner));
    }
    if (IsPunct("-")) {
      // Unary minus, desugared to (0 - x).
      Advance();
      LUSAIL_ASSIGN_OR_RETURN(Expr inner, ParseUnary());
      return Expr::Binary(ExprOp::kSub, Expr::Const(rdf::Term::Integer(0)),
                          std::move(inner));
    }
    if (IsPunct("+")) {
      Advance();
      return ParseUnary();
    }
    return ParsePrimary();
  }

  Result<Expr> ParsePrimary() {
    const Token& t = Peek();
    if (IsPunct("(")) {
      Advance();
      LUSAIL_ASSIGN_OR_RETURN(Expr inner, ParseExpression());
      LUSAIL_RETURN_NOT_OK(ExpectPunct(")"));
      return inner;
    }
    if (t.kind == TokenKind::kVar) {
      Advance();
      return Expr::Var(t.text);
    }
    if (t.kind == TokenKind::kIri) {
      Advance();
      return Expr::Const(rdf::Term::Iri(t.text));
    }
    if (t.kind == TokenKind::kPname) {
      Advance();
      LUSAIL_ASSIGN_OR_RETURN(rdf::Term term, ResolvePname(t.text));
      return Expr::Const(std::move(term));
    }
    if (t.kind == TokenKind::kString) {
      LUSAIL_ASSIGN_OR_RETURN(rdf::Term lit, ParseLiteralTail());
      return Expr::Const(std::move(lit));
    }
    if (t.kind == TokenKind::kNumber) {
      Advance();
      return Expr::Const(NumberToTerm(t.text));
    }
    if (t.kind == TokenKind::kIdent) {
      if (t.text == "true" || t.text == "false") {
        Advance();
        return Expr::Const(
            rdf::Term::TypedLiteral(t.text, std::string(rdf::kXsdBoolean)));
      }
      static const std::pair<const char*, ExprOp> kFuncs[] = {
          {"BOUND", ExprOp::kBound},         {"STR", ExprOp::kStr},
          {"LANG", ExprOp::kLang},           {"DATATYPE", ExprOp::kDatatype},
          {"isIRI", ExprOp::kIsIri},         {"isURI", ExprOp::kIsIri},
          {"isLiteral", ExprOp::kIsLiteral}, {"isBlank", ExprOp::kIsBlank},
          {"REGEX", ExprOp::kRegex},         {"CONTAINS", ExprOp::kContains},
          {"STRSTARTS", ExprOp::kStrStarts}, {"sameTerm", ExprOp::kSameTerm},
      };
      for (const auto& [name, op] : kFuncs) {
        if (EqualsIgnoreCase(t.text, name)) {
          Advance();
          LUSAIL_RETURN_NOT_OK(ExpectPunct("("));
          Expr call;
          call.op = op;
          while (!IsPunct(")")) {
            LUSAIL_ASSIGN_OR_RETURN(Expr arg, ParseExpression());
            call.args.push_back(std::move(arg));
            if (!ConsumePunct(",")) break;
          }
          LUSAIL_RETURN_NOT_OK(ExpectPunct(")"));
          return call;
        }
      }
      return Error("unknown function '" + t.text + "'");
    }
    return Error("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::map<std::string, std::string> prefixes_;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  std::vector<Token> tokens;
  Tokenizer tokenizer(text);
  LUSAIL_RETURN_NOT_OK(tokenizer.Tokenize(&tokens));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace lusail::sparql
