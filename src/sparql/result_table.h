#ifndef LUSAIL_SPARQL_RESULT_TABLE_H_
#define LUSAIL_SPARQL_RESULT_TABLE_H_

#include <optional>
#include <string>
#include <vector>

#include "rdf/term.h"

namespace lusail::sparql {

/// A materialized SPARQL SELECT result: one column per projected variable,
/// one row per solution. Unbound cells (from OPTIONAL or UNDEF) are
/// std::nullopt. This is the wire format endpoints return to federated
/// engines; SerializedBytes() is what the network simulator charges for a
/// response.
struct ResultTable {
  std::vector<std::string> vars;
  std::vector<std::vector<std::optional<rdf::Term>>> rows;

  size_t NumRows() const { return rows.size(); }
  size_t NumVars() const { return vars.size(); }

  /// Wire size: header plus each cell's N-Triples form plus separators.
  size_t SerializedBytes() const {
    size_t bytes = 0;
    for (const std::string& v : vars) bytes += v.size() + 2;
    for (const auto& row : rows) {
      for (const auto& cell : row) {
        bytes += cell.has_value() ? cell->ToString().size() + 1 : 1;
      }
      bytes += 1;  // Row terminator.
    }
    return bytes;
  }

  /// Tab-separated rendering (debugging and examples).
  ///
  /// Cells are escaped with TsvEscape: a term's N-Triples form can carry
  /// raw tabs or newlines outside the quoted-literal section (IRIs, blank
  /// node labels, and language tags pass through ToString verbatim), and
  /// an unescaped occurrence silently shifts every later cell in the row.
  std::string ToTsv() const {
    std::string out;
    for (size_t i = 0; i < vars.size(); ++i) {
      if (i > 0) out += '\t';
      out += '?';
      out += vars[i];
    }
    out += '\n';
    for (const auto& row : rows) {
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out += '\t';
        if (row[i].has_value()) out += TsvEscape(row[i]->ToString());
      }
      out += '\n';
    }
    return out;
  }

  /// Escapes a cell for the TSV rendering: backslash-escapes the three
  /// characters that are structural in TSV (tab, newline, carriage
  /// return) plus backslash itself so the escape is unambiguous.
  static std::string TsvEscape(const std::string& cell) {
    std::string out;
    out.reserve(cell.size());
    for (char c : cell) {
      switch (c) {
        case '\t': out += "\\t"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\\': out += "\\\\"; break;
        default: out += c;
      }
    }
    return out;
  }
};

}  // namespace lusail::sparql

#endif  // LUSAIL_SPARQL_RESULT_TABLE_H_
