#ifndef LUSAIL_SPARQL_AST_H_
#define LUSAIL_SPARQL_AST_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "rdf/term.h"

namespace lusail::sparql {

/// A SPARQL variable (without the leading '?').
struct Variable {
  std::string name;

  bool operator==(const Variable& other) const { return name == other.name; }
  bool operator!=(const Variable& other) const { return name != other.name; }
  bool operator<(const Variable& other) const { return name < other.name; }

  /// Renders "?name".
  std::string ToString() const { return "?" + name; }
};

/// One slot of a triple pattern: a constant RDF term or a variable.
class TermOrVar {
 public:
  TermOrVar() : value_(rdf::Term()) {}
  TermOrVar(rdf::Term term) : value_(std::move(term)) {}      // NOLINT
  TermOrVar(Variable var) : value_(std::move(var)) {}         // NOLINT

  bool is_variable() const {
    return std::holds_alternative<Variable>(value_);
  }
  bool is_term() const { return !is_variable(); }

  const Variable& var() const { return std::get<Variable>(value_); }
  const rdf::Term& term() const { return std::get<rdf::Term>(value_); }

  bool operator==(const TermOrVar& other) const {
    return value_ == other.value_;
  }

  /// SPARQL rendering: "?v" or the term's N-Triples form.
  std::string ToString() const {
    return is_variable() ? var().ToString() : term().ToString();
  }

 private:
  std::variant<rdf::Term, Variable> value_;
};

/// A triple pattern (subject, predicate, object), any slot may be a
/// variable.
struct TriplePattern {
  TermOrVar s;
  TermOrVar p;
  TermOrVar o;

  bool operator==(const TriplePattern& other) const {
    return s == other.s && p == other.p && o == other.o;
  }

  /// Names of the variables appearing in this pattern (no duplicates,
  /// subject-predicate-object order).
  std::vector<std::string> VariableNames() const;

  /// Number of variable slots (0-3); the paper calls single patterns with
  /// 2-3 variables "simple subqueries".
  int VariableCount() const;

  /// Renders "s p o ." without the trailing dot.
  std::string ToString() const {
    return s.ToString() + " " + p.ToString() + " " + o.ToString();
  }
};

/// Expression node kinds for FILTER expressions.
enum class ExprOp {
  kVar,        ///< Variable reference.
  kConst,      ///< Constant term.
  kAnd,
  kOr,
  kNot,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kBound,      ///< BOUND(?v)
  kStr,        ///< STR(x)
  kLang,       ///< LANG(x)
  kDatatype,   ///< DATATYPE(x)
  kIsIri,
  kIsLiteral,
  kIsBlank,
  kRegex,      ///< REGEX(text, pattern) — substring semantics subset.
  kContains,
  kStrStarts,
  kSameTerm,
};

/// A FILTER expression tree (value type; no sharing).
struct Expr {
  ExprOp op = ExprOp::kConst;
  Variable var;           ///< For kVar.
  rdf::Term constant;     ///< For kConst.
  std::vector<Expr> args; ///< Operands for everything else.

  static Expr Var(std::string name) {
    Expr e;
    e.op = ExprOp::kVar;
    e.var = Variable{std::move(name)};
    return e;
  }
  static Expr Const(rdf::Term t) {
    Expr e;
    e.op = ExprOp::kConst;
    e.constant = std::move(t);
    return e;
  }
  static Expr Unary(ExprOp op, Expr a) {
    Expr e;
    e.op = op;
    e.args.push_back(std::move(a));
    return e;
  }
  static Expr Binary(ExprOp op, Expr a, Expr b) {
    Expr e;
    e.op = op;
    e.args.push_back(std::move(a));
    e.args.push_back(std::move(b));
    return e;
  }

  /// Collects the names of all variables referenced by the expression.
  void CollectVariables(std::set<std::string>* out) const;
};

/// A VALUES data block: inline bindings joined with the enclosing group.
/// std::nullopt cells are UNDEF.
struct ValuesClause {
  std::vector<Variable> vars;
  std::vector<std::vector<std::optional<rdf::Term>>> rows;
};

struct ExistsFilter;

/// A group graph pattern: a conjunctive basic graph pattern plus filters,
/// EXISTS/NOT EXISTS filters, OPTIONAL blocks, UNION blocks, and VALUES
/// data blocks. Nested plain groups are flattened by the parser.
struct GraphPattern {
  std::vector<TriplePattern> triples;
  std::vector<Expr> filters;

  /// FILTER EXISTS { ... } / FILTER NOT EXISTS { ... } blocks.
  std::vector<ExistsFilter> exists_filters;

  std::vector<GraphPattern> optionals;

  /// Each entry is one UNION chain: alternatives[0] UNION alternatives[1]…
  std::vector<std::vector<GraphPattern>> unions;

  std::vector<ValuesClause> values;

  /// True when nothing at all was specified.
  bool IsEmpty() const {
    return triples.empty() && filters.empty() && exists_filters.empty() &&
           optionals.empty() && unions.empty() && values.empty();
  }

  /// Collects the names of all variables bound or referenced anywhere in
  /// the pattern (including nested blocks).
  void CollectVariables(std::set<std::string>* out) const;
};

/// FILTER EXISTS { ... } / FILTER NOT EXISTS { ... }.
struct ExistsFilter {
  bool negated = false;
  GraphPattern pattern;
};

/// Query form.
enum class QueryForm {
  kSelect,
  kAsk,
};

/// One ORDER BY key: a variable with a direction.
struct OrderKey {
  Variable var;
  bool descending = false;
};

/// COUNT aggregate in the projection: COUNT(*) or COUNT(DISTINCT ?v),
/// aliased AS ?alias.
struct CountAggregate {
  bool distinct = false;
  std::optional<Variable> var;  ///< nullopt means COUNT(*).
  Variable alias;
};

/// A parsed SPARQL query (SELECT or ASK) over the implemented subset.
struct Query {
  QueryForm form = QueryForm::kSelect;
  bool distinct = false;
  bool select_all = false;  ///< SELECT *.
  std::vector<Variable> projection;
  std::optional<CountAggregate> aggregate;
  GraphPattern where;
  std::vector<OrderKey> order_by;
  std::optional<uint64_t> limit;
  std::optional<uint64_t> offset;

  /// Effective projection: the explicit list, or all pattern variables for
  /// SELECT * (sorted for determinism).
  std::vector<Variable> EffectiveProjection() const;
};

}  // namespace lusail::sparql

#endif  // LUSAIL_SPARQL_AST_H_
