#include "sparql/evaluator.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "sparql/expr_eval.h"

namespace lusail::sparql {

namespace {

using rdf::Term;
using rdf::TermId;
using store::EncodedTriple;

constexpr size_t kNoLimit = std::numeric_limits<size_t>::max();

/// A partial solution: one TermId per variable slot; kInvalidTermId is
/// unbound.
using Binding = std::vector<TermId>;

/// Per-execution state: variable slot map and the auxiliary dictionary for
/// terms that appear in the query (or seeded VALUES) but not in the store.
class EvalContext {
 public:
  explicit EvalContext(const store::TripleStore& store) : store_(store) {}

  const store::TripleStore& store() const { return store_; }

  int SlotFor(const std::string& name) {
    auto it = slots_.find(name);
    if (it != slots_.end()) return it->second;
    int slot = static_cast<int>(slot_names_.size());
    slots_.emplace(name, slot);
    slot_names_.push_back(name);
    return slot;
  }

  int LookupSlot(const std::string& name) const {
    auto it = slots_.find(name);
    return it == slots_.end() ? -1 : it->second;
  }

  size_t NumSlots() const { return slot_names_.size(); }

  /// Interns a term that may not exist in the store's dictionary. Store
  /// ids are reused; foreign terms get ids past the store dictionary.
  TermId InternForeign(const Term& t) {
    TermId id = store_.dict().Lookup(t);
    if (id != rdf::kInvalidTermId) return id;
    auto it = aux_ids_.find(t);
    if (it != aux_ids_.end()) return it->second;
    TermId aux = store_.dict().size() + aux_terms_.size();
    aux_terms_.push_back(t);
    aux_ids_.emplace(t, aux);
    return aux;
  }

  const Term& TermFor(TermId id) const {
    if (id < store_.dict().size()) return store_.dict().term(id);
    return aux_terms_[id - store_.dict().size()];
  }

 private:
  const store::TripleStore& store_;
  std::unordered_map<std::string, int> slots_;
  std::vector<std::string> slot_names_;
  std::vector<Term> aux_terms_;
  std::unordered_map<Term, TermId, rdf::TermHash> aux_ids_;
};

/// Makes a VarLookup over (ctx, binding) for filter evaluation.
VarLookup MakeLookup(const EvalContext& ctx, const Binding& binding) {
  return [&ctx, &binding](const std::string& name) -> const Term* {
    int slot = ctx.LookupSlot(name);
    if (slot < 0) return nullptr;
    TermId id = binding[slot];
    if (id == rdf::kInvalidTermId) return nullptr;
    return &ctx.TermFor(id);
  };
}

/// Hash for deduplicating projected id-rows.
struct IdRowHash {
  size_t operator()(const std::vector<TermId>& row) const {
    size_t h = 1469598103934665603ULL;
    for (TermId id : row) {
      h ^= id + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

class GroupEvaluator {
 public:
  GroupEvaluator(EvalContext* ctx, const CancelToken& cancel)
      : ctx_(*ctx), cancel_(cancel) {}

  /// Evaluates `gp` seeded with `input`, producing at most `max_rows`
  /// solutions (the cap applies to the group's final output).
  Result<std::vector<Binding>> Eval(const GraphPattern& gp,
                                    std::vector<Binding> input,
                                    size_t max_rows) {
    // 1. VALUES data blocks join with the input seed first.
    for (const ValuesClause& vc : gp.values) {
      LUSAIL_ASSIGN_OR_RETURN(input, JoinValues(std::move(input), vc));
    }
    if (input.empty()) return input;

    // 2. Basic graph pattern with inline filter pushdown.
    std::vector<size_t> post_filters;
    std::vector<Binding> rows;
    LUSAIL_RETURN_NOT_OK(
        EvalBgp(gp, std::move(input), max_rows, &rows, &post_filters));

    // 3. UNION chains (each alternative seeded per partial solution).
    for (const auto& chain : gp.unions) {
      std::vector<Binding> unioned;
      for (const GraphPattern& alt : chain) {
        LUSAIL_ASSIGN_OR_RETURN(std::vector<Binding> branch,
                                Eval(alt, rows, kNoLimit));
        unioned.insert(unioned.end(),
                       std::make_move_iterator(branch.begin()),
                       std::make_move_iterator(branch.end()));
      }
      rows = std::move(unioned);
    }

    // 4. OPTIONAL blocks: left outer join, one row at a time.
    for (const GraphPattern& opt : gp.optionals) {
      std::vector<Binding> joined;
      for (Binding& row : rows) {
        LUSAIL_ASSIGN_OR_RETURN(std::vector<Binding> extended,
                                Eval(opt, {row}, kNoLimit));
        if (extended.empty()) {
          joined.push_back(std::move(row));
        } else {
          joined.insert(joined.end(),
                        std::make_move_iterator(extended.begin()),
                        std::make_move_iterator(extended.end()));
        }
      }
      rows = std::move(joined);
    }

    // 5. Remaining plain filters (those whose variables were not all bound
    // within the BGP) and EXISTS / NOT EXISTS filters.
    if (!post_filters.empty() || !gp.exists_filters.empty()) {
      std::vector<Binding> kept;
      for (Binding& row : rows) {
        bool pass = true;
        for (size_t fi : post_filters) {
          if (!EvalFilter(gp.filters[fi], MakeLookup(ctx_, row))) {
            pass = false;
            break;
          }
        }
        if (pass) {
          for (const auto& ef : gp.exists_filters) {
            LUSAIL_ASSIGN_OR_RETURN(std::vector<Binding> probe,
                                    Eval(ef.pattern, {row}, 1));
            bool exists = !probe.empty();
            if (exists == ef.negated) {
              pass = false;
              break;
            }
          }
        }
        if (pass) kept.push_back(std::move(row));
        if (kept.size() >= max_rows) break;
      }
      rows = std::move(kept);
    }

    if (rows.size() > max_rows) rows.resize(max_rows);
    return rows;
  }

 private:
  /// Joins the current rows with a VALUES data block on shared variables.
  Result<std::vector<Binding>> JoinValues(std::vector<Binding> input,
                                          const ValuesClause& vc) {
    std::vector<int> slots;
    slots.reserve(vc.vars.size());
    for (const Variable& v : vc.vars) slots.push_back(ctx_.SlotFor(v.name));
    // Pre-intern the data block once.
    std::vector<std::vector<TermId>> data;
    data.reserve(vc.rows.size());
    for (const auto& row : vc.rows) {
      std::vector<TermId> ids;
      ids.reserve(row.size());
      for (const auto& cell : row) {
        ids.push_back(cell.has_value() ? ctx_.InternForeign(*cell)
                                       : rdf::kInvalidTermId);
      }
      data.push_back(std::move(ids));
    }
    std::vector<Binding> out;
    for (const Binding& base : input) {
      for (const auto& ids : data) {
        Binding merged = base;
        bool compatible = true;
        for (size_t i = 0; i < slots.size(); ++i) {
          if (ids[i] == rdf::kInvalidTermId) continue;  // UNDEF matches all.
          TermId existing = merged[slots[i]];
          if (existing == rdf::kInvalidTermId) {
            merged[slots[i]] = ids[i];
          } else if (existing != ids[i]) {
            compatible = false;
            break;
          }
        }
        if (compatible) out.push_back(std::move(merged));
      }
    }
    return out;
  }

  /// Greedy static join order: prefer patterns with the most bound slots,
  /// then connectivity to already-bound variables, then the smallest
  /// constant-only index count. Avoids cartesian products when possible.
  std::vector<size_t> OrderPatterns(const std::vector<TriplePattern>& triples,
                                    const std::set<std::string>& initial) {
    std::vector<size_t> order;
    std::vector<bool> used(triples.size(), false);
    std::set<std::string> bound = initial;
    auto const_id = [this](const TermOrVar& tv) -> std::optional<TermId> {
      if (tv.is_variable()) return std::nullopt;
      return ctx_.InternForeign(tv.term());
    };
    for (size_t n = 0; n < triples.size(); ++n) {
      size_t best = triples.size();
      // Order key: (disconnected, -bound_slots, estimated_count).
      std::tuple<int, int, uint64_t> best_key{2, 0, 0};
      for (size_t i = 0; i < triples.size(); ++i) {
        if (used[i]) continue;
        const TriplePattern& tp = triples[i];
        int bound_slots = 0;
        bool shares = false;
        for (const TermOrVar* tv : {&tp.s, &tp.p, &tp.o}) {
          if (!tv->is_variable()) {
            ++bound_slots;
          } else if (bound.count(tv->var().name)) {
            ++bound_slots;
            shares = true;
          }
        }
        int disconnected = (bound_slots == 0 && !bound.empty() && n > 0) ||
                                   (n > 0 && !shares && bound_slots == 0)
                               ? 1
                               : 0;
        if (n > 0 && !shares && bound_slots > 0) {
          // Constants only, no shared variable: still a cartesian product
          // with what is bound so far, but a cheap one.
          disconnected = 1;
        }
        if (n == 0) disconnected = 0;
        uint64_t est = ctx_.store().Count(const_id(tp.s), const_id(tp.p),
                                          const_id(tp.o));
        std::tuple<int, int, uint64_t> key{disconnected, -bound_slots, est};
        if (best == triples.size() || key < best_key) {
          best = i;
          best_key = key;
        }
      }
      order.push_back(best);
      used[best] = true;
      for (const std::string& v : triples[best].VariableNames()) {
        bound.insert(v);
      }
    }
    return order;
  }

  Status EvalBgp(const GraphPattern& gp, std::vector<Binding> input,
                 size_t max_rows, std::vector<Binding>* out,
                 std::vector<size_t>* post_filters) {
    // Make sure every variable in this group has a slot.
    std::set<std::string> group_vars;
    gp.CollectVariables(&group_vars);
    for (const std::string& v : group_vars) ctx_.SlotFor(v);

    if (gp.triples.empty()) {
      // Pure filter/optional group: all plain filters become post filters.
      for (size_t i = 0; i < gp.filters.size(); ++i) post_filters->push_back(i);
      *out = std::move(input);
      return Status::OK();
    }

    // Initially-bound variables: bound in every input row.
    std::set<std::string> initial;
    for (const std::string& v : group_vars) {
      int slot = ctx_.LookupSlot(v);
      bool all = !input.empty();
      for (const Binding& row : input) {
        if (row[slot] == rdf::kInvalidTermId) {
          all = false;
          break;
        }
      }
      if (all) initial.insert(v);
    }

    std::vector<size_t> order = OrderPatterns(gp.triples, initial);

    // Assign each filter to the earliest step after which its variables
    // are all bound; unassignable filters run post-BGP.
    std::vector<std::set<std::string>> bound_after(order.size());
    std::set<std::string> running = initial;
    for (size_t k = 0; k < order.size(); ++k) {
      for (const std::string& v : gp.triples[order[k]].VariableNames()) {
        running.insert(v);
      }
      bound_after[k] = running;
    }
    std::vector<std::vector<size_t>> inline_at(order.size());
    for (size_t fi = 0; fi < gp.filters.size(); ++fi) {
      std::set<std::string> fvars;
      gp.filters[fi].CollectVariables(&fvars);
      bool assigned = false;
      for (size_t k = 0; k < order.size() && !assigned; ++k) {
        if (std::includes(bound_after[k].begin(), bound_after[k].end(),
                          fvars.begin(), fvars.end())) {
          inline_at[k].push_back(fi);
          assigned = true;
        }
      }
      if (!assigned) post_filters->push_back(fi);
    }

    // The BGP may stop early only if no later stage can drop rows.
    bool later_reduces = !post_filters->empty() || !gp.exists_filters.empty() ||
                         !gp.unions.empty();
    size_t bgp_max = later_reduces ? kNoLimit : max_rows;

    for (Binding& row : input) {
      Enumerate(gp, order, inline_at, 0, &row, bgp_max, out);
      if (cancelled_) return cancel_.StatusAt("endpoint evaluation");
      if (out->size() >= bgp_max) break;
    }
    return Status::OK();
  }

  /// Amortized cancellation probe for the enumeration hot loop: the
  /// token's clock read happens once per 1024 calls. Sticky once fired.
  bool CheckCancelled() {
    if (cancelled_) return true;
    if ((++cancel_ticks_ & 1023u) == 0 && cancel_.Cancelled()) {
      cancelled_ = true;
    }
    return cancelled_;
  }

  void Enumerate(const GraphPattern& gp, const std::vector<size_t>& order,
                 const std::vector<std::vector<size_t>>& inline_at,
                 size_t step, Binding* row, size_t max_rows,
                 std::vector<Binding>* out) {
    if (out->size() >= max_rows) return;
    if (step == order.size()) {
      out->push_back(*row);
      return;
    }
    const TriplePattern& tp = gp.triples[order[step]];

    // Resolve each position: a constant id, a bound variable id, or a
    // wildcard (with its slot recorded for assignment).
    std::optional<TermId> pos[3];
    int assign_slot[3] = {-1, -1, -1};
    const TermOrVar* tvs[3] = {&tp.s, &tp.p, &tp.o};
    for (int i = 0; i < 3; ++i) {
      if (tvs[i]->is_variable()) {
        int slot = ctx_.LookupSlot(tvs[i]->var().name);
        TermId bound = (*row)[slot];
        if (bound != rdf::kInvalidTermId) {
          pos[i] = bound;
        } else {
          assign_slot[i] = slot;
        }
      } else {
        TermId id = ctx_.store().dict().Lookup(tvs[i]->term());
        if (id == rdf::kInvalidTermId) return;  // Constant not in store.
        pos[i] = id;
      }
    }

    auto matches = ctx_.store().Match(pos[0], pos[1], pos[2]);
    for (const EncodedTriple& t : matches) {
      if (CheckCancelled()) return;
      TermId values[3] = {t.s, t.p, t.o};
      // Assign unbound slots, honoring repeated variables in the pattern.
      int assigned[3];
      int num_assigned = 0;
      bool ok = true;
      for (int i = 0; i < 3 && ok; ++i) {
        int slot = assign_slot[i];
        if (slot < 0) continue;
        TermId current = (*row)[slot];
        if (current == rdf::kInvalidTermId) {
          (*row)[slot] = values[i];
          assigned[num_assigned++] = slot;
        } else if (current != values[i]) {
          ok = false;  // Repeated variable mismatch, e.g. (?x p ?x).
        }
      }
      if (ok) {
        bool filters_pass = true;
        for (size_t fi : inline_at[step]) {
          if (!EvalFilter(gp.filters[fi], MakeLookup(ctx_, *row))) {
            filters_pass = false;
            break;
          }
        }
        if (filters_pass) {
          Enumerate(gp, order, inline_at, step + 1, row, max_rows, out);
        }
      }
      for (int i = 0; i < num_assigned; ++i) {
        (*row)[assigned[i]] = rdf::kInvalidTermId;
      }
      if (out->size() >= max_rows) return;
    }
  }

  EvalContext& ctx_;
  const CancelToken& cancel_;
  uint64_t cancel_ticks_ = 0;
  bool cancelled_ = false;
};

}  // namespace

namespace {

/// True when the query is a single-triple-pattern group with no other
/// operators and no repeated variables — eligible for index fast paths.
bool IsSinglePatternGroup(const Query& query) {
  const GraphPattern& gp = query.where;
  if (gp.triples.size() != 1 || !gp.filters.empty() ||
      !gp.exists_filters.empty() || !gp.optionals.empty() ||
      !gp.unions.empty() || !gp.values.empty()) {
    return false;
  }
  return gp.triples[0].VariableNames().size() ==
         static_cast<size_t>(gp.triples[0].VariableCount());
}

/// Resolves a pattern slot to a term id; nullopt = wildcard; sets
/// `*missing` when a constant is absent from the store (zero matches).
std::optional<rdf::TermId> ResolveSlot(const store::TripleStore& store,
                                       const TermOrVar& tv, bool* missing) {
  if (tv.is_variable()) return std::nullopt;
  rdf::TermId id = store.dict().Lookup(tv.term());
  if (id == rdf::kInvalidTermId) *missing = true;
  return id;
}

}  // namespace

Result<ResultTable> Evaluator::Execute(const Query& query,
                                       const CancelToken& cancel) const {
  if (!store_->frozen()) {
    return Status::Internal("evaluator requires a frozen store");
  }
  if (cancel.Cancelled()) return cancel.StatusAt("endpoint evaluation");

  // Fast paths for the probe queries federated engines hammer endpoints
  // with: single-pattern COUNT(*) and single-pattern ASK resolve directly
  // against the covering indexes, no binding materialization.
  if (IsSinglePatternGroup(query)) {
    const TriplePattern& tp = query.where.triples[0];
    bool missing = false;
    std::optional<rdf::TermId> s = ResolveSlot(*store_, tp.s, &missing);
    std::optional<rdf::TermId> p = ResolveSlot(*store_, tp.p, &missing);
    std::optional<rdf::TermId> o = ResolveSlot(*store_, tp.o, &missing);
    if (query.form == QueryForm::kAsk) {
      ResultTable table;
      if (!missing && store_->Ask(s, p, o)) table.rows.push_back({});
      return table;
    }
    if (query.aggregate.has_value() && !query.aggregate->var.has_value() &&
        query.form == QueryForm::kSelect) {
      uint64_t count = missing ? 0 : store_->Count(s, p, o);
      ResultTable table;
      table.vars.push_back(query.aggregate->alias.name);
      table.rows.push_back(
          {rdf::Term::Integer(static_cast<int64_t>(count))});
      return table;
    }
  }

  EvalContext ctx(*store_);
  // Register every variable (pattern + projection) before evaluation so
  // binding widths are stable.
  std::set<std::string> all_vars;
  query.where.CollectVariables(&all_vars);
  for (const std::string& v : all_vars) ctx.SlotFor(v);
  std::vector<Variable> projection = query.EffectiveProjection();
  for (const Variable& v : projection) ctx.SlotFor(v.name);

  size_t max_rows = kNoLimit;
  bool simple = !query.distinct && !query.aggregate.has_value();
  if (query.form == QueryForm::kAsk) {
    max_rows = 1;
  } else if (simple && query.order_by.empty() && query.limit.has_value()) {
    // ORDER BY needs the full result before truncation.
    max_rows = *query.limit + query.offset.value_or(0);
  }

  std::vector<Binding> seed(1, Binding(ctx.NumSlots(), rdf::kInvalidTermId));
  GroupEvaluator ge(&ctx, cancel);
  LUSAIL_ASSIGN_OR_RETURN(std::vector<Binding> rows,
                          ge.Eval(query.where, std::move(seed), max_rows));

  ResultTable table;
  if (query.form == QueryForm::kAsk) {
    if (!rows.empty()) table.rows.push_back({});
    return table;
  }

  if (query.aggregate.has_value()) {
    const CountAggregate& agg = *query.aggregate;
    uint64_t count = 0;
    if (!agg.var.has_value()) {
      count = rows.size();
    } else {
      int slot = ctx.LookupSlot(agg.var->name);
      if (agg.distinct) {
        std::unordered_set<TermId> seen;
        for (const Binding& row : rows) {
          if (slot >= 0 && row[slot] != rdf::kInvalidTermId) {
            seen.insert(row[slot]);
          }
        }
        count = seen.size();
      } else {
        for (const Binding& row : rows) {
          if (slot >= 0 && row[slot] != rdf::kInvalidTermId) ++count;
        }
      }
    }
    table.vars.push_back(agg.alias.name);
    table.rows.push_back({rdf::Term::Integer(static_cast<int64_t>(count))});
    return table;
  }

  // ORDER BY keys outside the SELECT list must survive until the sort:
  // carry them as hidden trailing columns, dropped after windowing.
  // (Not under DISTINCT — there the spec ties ordering keys to the
  // select list, and widening the dedup set would change the answer.)
  const size_t visible = projection.size();
  if (!query.order_by.empty() && !query.distinct) {
    for (const OrderKey& key : query.order_by) {
      bool present = false;
      for (const Variable& v : projection) {
        if (v.name == key.var.name) {
          present = true;
          break;
        }
      }
      if (!present) projection.push_back(key.var);
    }
  }

  std::vector<int> slots;
  slots.reserve(projection.size());
  for (const Variable& v : projection) {
    table.vars.push_back(v.name);
    slots.push_back(ctx.LookupSlot(v.name));
  }

  // Project (optionally deduplicating on the projected ids).
  std::vector<std::vector<TermId>> projected;
  projected.reserve(rows.size());
  std::unordered_set<std::vector<TermId>, IdRowHash> seen;
  for (const Binding& row : rows) {
    std::vector<TermId> p;
    p.reserve(slots.size());
    for (int slot : slots) {
      p.push_back(slot >= 0 ? row[slot] : rdf::kInvalidTermId);
    }
    if (query.distinct && !seen.insert(p).second) continue;
    projected.push_back(std::move(p));
  }

  // With ORDER BY the full result is decoded and sorted before the
  // LIMIT/OFFSET window is cut; otherwise decode only the window.
  size_t begin = std::min<size_t>(query.offset.value_or(0), projected.size());
  size_t end = projected.size();
  if (query.order_by.empty() && query.limit.has_value()) {
    end = std::min(end, begin + *query.limit);
  }
  size_t decode_begin = query.order_by.empty() ? begin : 0;
  size_t decode_end = query.order_by.empty() ? end : projected.size();
  table.rows.reserve(decode_end - decode_begin);
  for (size_t i = decode_begin; i < decode_end; ++i) {
    std::vector<std::optional<Term>> out_row;
    out_row.reserve(projected[i].size());
    for (TermId id : projected[i]) {
      if (id == rdf::kInvalidTermId) {
        out_row.push_back(std::nullopt);
      } else {
        out_row.push_back(ctx.TermFor(id));
      }
    }
    table.rows.push_back(std::move(out_row));
  }
  if (!query.order_by.empty()) {
    SortRows(&table, query.order_by);
    size_t window_end = table.rows.size();
    if (query.limit.has_value()) {
      window_end = std::min(window_end, begin + *query.limit);
    }
    if (begin > table.rows.size()) begin = table.rows.size();
    table.rows.assign(table.rows.begin() + begin,
                      table.rows.begin() + window_end);
  }
  if (table.vars.size() != visible) {
    table.vars.resize(visible);
    for (auto& row : table.rows) row.resize(visible);
  }
  return table;
}

Result<bool> Evaluator::Ask(const Query& query) const {
  Query ask = query;
  ask.form = QueryForm::kAsk;
  LUSAIL_ASSIGN_OR_RETURN(ResultTable table, Execute(ask));
  return !table.rows.empty();
}

}  // namespace lusail::sparql
