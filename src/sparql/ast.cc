#include "sparql/ast.h"

#include <algorithm>

namespace lusail::sparql {

std::vector<std::string> TriplePattern::VariableNames() const {
  std::vector<std::string> out;
  auto add = [&out](const TermOrVar& tv) {
    if (tv.is_variable()) {
      const std::string& name = tv.var().name;
      if (std::find(out.begin(), out.end(), name) == out.end()) {
        out.push_back(name);
      }
    }
  };
  add(s);
  add(p);
  add(o);
  return out;
}

int TriplePattern::VariableCount() const {
  return static_cast<int>(s.is_variable()) + static_cast<int>(p.is_variable()) +
         static_cast<int>(o.is_variable());
}

void Expr::CollectVariables(std::set<std::string>* out) const {
  if (op == ExprOp::kVar) {
    out->insert(var.name);
  }
  for (const Expr& arg : args) {
    arg.CollectVariables(out);
  }
}

void GraphPattern::CollectVariables(std::set<std::string>* out) const {
  for (const TriplePattern& tp : triples) {
    for (const std::string& v : tp.VariableNames()) out->insert(v);
  }
  for (const Expr& f : filters) f.CollectVariables(out);
  for (const ExistsFilter& ef : exists_filters) {
    ef.pattern.CollectVariables(out);
  }
  for (const GraphPattern& opt : optionals) opt.CollectVariables(out);
  for (const auto& chain : unions) {
    for (const GraphPattern& alt : chain) alt.CollectVariables(out);
  }
  for (const ValuesClause& vc : values) {
    for (const Variable& v : vc.vars) out->insert(v.name);
  }
}

std::vector<Variable> Query::EffectiveProjection() const {
  if (!select_all) return projection;
  std::set<std::string> names;
  where.CollectVariables(&names);
  std::vector<Variable> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(Variable{n});
  return out;
}

}  // namespace lusail::sparql
