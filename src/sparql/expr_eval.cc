#include "sparql/expr_eval.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace lusail::sparql {

namespace {

using rdf::Term;

Term BoolTerm(bool b) {
  return Term::TypedLiteral(b ? "true" : "false",
                            std::string(rdf::kXsdBoolean));
}

/// SPARQL effective boolean value of a term; nullopt on type error.
std::optional<bool> Ebv(const Term& t) {
  if (!t.is_literal()) return std::nullopt;
  if (t.datatype() == rdf::kXsdBoolean) {
    return t.lexical() == "true" || t.lexical() == "1";
  }
  if (t.IsNumeric()) {
    return t.AsDouble() != 0.0;
  }
  if (t.datatype().empty() || t.datatype() == rdf::kXsdString) {
    return !t.lexical().empty();
  }
  return std::nullopt;
}

/// Three-way comparison; nullopt when the terms are incomparable.
std::optional<int> Compare(const Term& a, const Term& b) {
  if (a.IsNumeric() && b.IsNumeric()) {
    double x = a.AsDouble(), y = b.AsDouble();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.is_literal() && b.is_literal()) {
    int c = a.lexical().compare(b.lexical());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.is_iri() && b.is_iri()) {
    int c = a.lexical().compare(b.lexical());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return std::nullopt;
}

std::optional<Term> EvalNumeric(ExprOp op, const Term& a, const Term& b) {
  if (!a.IsNumeric() || !b.IsNumeric()) return std::nullopt;
  double x = a.AsDouble(), y = b.AsDouble();
  double r = 0;
  switch (op) {
    case ExprOp::kAdd:
      r = x + y;
      break;
    case ExprOp::kSub:
      r = x - y;
      break;
    case ExprOp::kMul:
      r = x * y;
      break;
    case ExprOp::kDiv:
      if (y == 0) return std::nullopt;
      r = x / y;
      break;
    default:
      return std::nullopt;
  }
  // Preserve integer typing when both operands are integers and the result
  // is integral (SPARQL integer division stays exact in our subset).
  if (a.datatype() == rdf::kXsdInteger && b.datatype() == rdf::kXsdInteger &&
      op != ExprOp::kDiv && std::floor(r) == r) {
    return Term::Integer(static_cast<int64_t>(r));
  }
  return Term::Double(r);
}

}  // namespace

std::optional<Term> EvalExpr(const Expr& expr, const VarLookup& lookup) {
  switch (expr.op) {
    case ExprOp::kVar: {
      const Term* t = lookup(expr.var.name);
      if (t == nullptr) return std::nullopt;
      return *t;
    }
    case ExprOp::kConst:
      return expr.constant;
    case ExprOp::kBound: {
      if (expr.args.size() != 1 || expr.args[0].op != ExprOp::kVar) {
        return std::nullopt;
      }
      return BoolTerm(lookup(expr.args[0].var.name) != nullptr);
    }
    case ExprOp::kAnd: {
      // SPARQL logical-and with error propagation: false && error = false.
      auto a = EvalExpr(expr.args[0], lookup);
      std::optional<bool> ea = a.has_value() ? Ebv(*a) : std::nullopt;
      if (ea == std::optional<bool>(false)) return BoolTerm(false);
      auto b = EvalExpr(expr.args[1], lookup);
      std::optional<bool> eb = b.has_value() ? Ebv(*b) : std::nullopt;
      if (eb == std::optional<bool>(false)) return BoolTerm(false);
      if (ea.has_value() && eb.has_value()) return BoolTerm(true);
      return std::nullopt;
    }
    case ExprOp::kOr: {
      // SPARQL logical-or with error propagation: true || error = true.
      auto a = EvalExpr(expr.args[0], lookup);
      std::optional<bool> ea = a.has_value() ? Ebv(*a) : std::nullopt;
      if (ea == std::optional<bool>(true)) return BoolTerm(true);
      auto b = EvalExpr(expr.args[1], lookup);
      std::optional<bool> eb = b.has_value() ? Ebv(*b) : std::nullopt;
      if (eb == std::optional<bool>(true)) return BoolTerm(true);
      if (ea.has_value() && eb.has_value()) return BoolTerm(false);
      return std::nullopt;
    }
    case ExprOp::kNot: {
      auto a = EvalExpr(expr.args[0], lookup);
      if (!a) return std::nullopt;
      auto e = Ebv(*a);
      if (!e) return std::nullopt;
      return BoolTerm(!*e);
    }
    case ExprOp::kEq:
    case ExprOp::kNe: {
      auto a = EvalExpr(expr.args[0], lookup);
      auto b = EvalExpr(expr.args[1], lookup);
      if (!a || !b) return std::nullopt;
      bool eq;
      if (a->IsNumeric() && b->IsNumeric()) {
        eq = a->AsDouble() == b->AsDouble();
      } else {
        eq = *a == *b;
      }
      return BoolTerm(expr.op == ExprOp::kEq ? eq : !eq);
    }
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe: {
      auto a = EvalExpr(expr.args[0], lookup);
      auto b = EvalExpr(expr.args[1], lookup);
      if (!a || !b) return std::nullopt;
      auto c = Compare(*a, *b);
      if (!c) return std::nullopt;
      switch (expr.op) {
        case ExprOp::kLt:
          return BoolTerm(*c < 0);
        case ExprOp::kLe:
          return BoolTerm(*c <= 0);
        case ExprOp::kGt:
          return BoolTerm(*c > 0);
        default:
          return BoolTerm(*c >= 0);
      }
    }
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv: {
      auto a = EvalExpr(expr.args[0], lookup);
      auto b = EvalExpr(expr.args[1], lookup);
      if (!a || !b) return std::nullopt;
      return EvalNumeric(expr.op, *a, *b);
    }
    case ExprOp::kStr: {
      auto a = EvalExpr(expr.args[0], lookup);
      if (!a) return std::nullopt;
      return Term::Literal(a->lexical());
    }
    case ExprOp::kLang: {
      auto a = EvalExpr(expr.args[0], lookup);
      if (!a || !a->is_literal()) return std::nullopt;
      return Term::Literal(a->lang());
    }
    case ExprOp::kDatatype: {
      auto a = EvalExpr(expr.args[0], lookup);
      if (!a || !a->is_literal()) return std::nullopt;
      if (!a->datatype().empty()) return Term::Iri(a->datatype());
      if (!a->lang().empty()) {
        return Term::Iri(
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString");
      }
      return Term::Iri(std::string(rdf::kXsdString));
    }
    case ExprOp::kIsIri: {
      auto a = EvalExpr(expr.args[0], lookup);
      if (!a) return std::nullopt;
      return BoolTerm(a->is_iri());
    }
    case ExprOp::kIsLiteral: {
      auto a = EvalExpr(expr.args[0], lookup);
      if (!a) return std::nullopt;
      return BoolTerm(a->is_literal());
    }
    case ExprOp::kIsBlank: {
      auto a = EvalExpr(expr.args[0], lookup);
      if (!a) return std::nullopt;
      return BoolTerm(a->is_blank());
    }
    case ExprOp::kRegex:
    case ExprOp::kContains: {
      // REGEX is implemented with substring semantics: the benchmark
      // queries only use it for containment tests.
      if (expr.args.size() < 2) return std::nullopt;
      auto text = EvalExpr(expr.args[0], lookup);
      auto pattern = EvalExpr(expr.args[1], lookup);
      if (!text || !pattern) return std::nullopt;
      return BoolTerm(text->lexical().find(pattern->lexical()) !=
                      std::string::npos);
    }
    case ExprOp::kStrStarts: {
      if (expr.args.size() != 2) return std::nullopt;
      auto text = EvalExpr(expr.args[0], lookup);
      auto prefix = EvalExpr(expr.args[1], lookup);
      if (!text || !prefix) return std::nullopt;
      return BoolTerm(StartsWith(text->lexical(), prefix->lexical()));
    }
    case ExprOp::kSameTerm: {
      if (expr.args.size() != 2) return std::nullopt;
      auto a = EvalExpr(expr.args[0], lookup);
      auto b = EvalExpr(expr.args[1], lookup);
      if (!a || !b) return std::nullopt;
      return BoolTerm(*a == *b);
    }
  }
  return std::nullopt;
}

bool EvalFilter(const Expr& expr, const VarLookup& lookup) {
  auto v = EvalExpr(expr, lookup);
  if (!v) return false;
  auto e = Ebv(*v);
  return e.value_or(false);
}

int CompareForOrder(const std::optional<Term>& a,
                    const std::optional<Term>& b) {
  if (!a.has_value() || !b.has_value()) {
    if (a.has_value() == b.has_value()) return 0;
    return a.has_value() ? 1 : -1;  // Unbound sorts first.
  }
  auto rank = [](const Term& t) {
    switch (t.kind()) {
      case rdf::TermKind::kBlankNode:
        return 0;
      case rdf::TermKind::kIri:
        return 1;
      case rdf::TermKind::kLiteral:
        return 2;
    }
    return 3;
  };
  int ra = rank(*a), rb = rank(*b);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (a->IsNumeric() && b->IsNumeric()) {
    double x = a->AsDouble(), y = b->AsDouble();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  int c = a->lexical().compare(b->lexical());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

void SortRows(ResultTable* table, const std::vector<OrderKey>& keys) {
  if (keys.empty()) return;
  std::vector<int> columns;
  std::vector<bool> descending;
  for (const OrderKey& key : keys) {
    for (size_t i = 0; i < table->vars.size(); ++i) {
      if (table->vars[i] == key.var.name) {
        columns.push_back(static_cast<int>(i));
        descending.push_back(key.descending);
        break;
      }
    }
  }
  if (columns.empty()) return;
  std::stable_sort(
      table->rows.begin(), table->rows.end(),
      [&](const std::vector<std::optional<Term>>& x,
          const std::vector<std::optional<Term>>& y) {
        for (size_t k = 0; k < columns.size(); ++k) {
          int c = CompareForOrder(x[columns[k]], y[columns[k]]);
          if (c != 0) return descending[k] ? c > 0 : c < 0;
        }
        return false;
      });
}

}  // namespace lusail::sparql
