#ifndef LUSAIL_SPARQL_SERIALIZER_H_
#define LUSAIL_SPARQL_SERIALIZER_H_

#include <string>

#include "sparql/ast.h"

namespace lusail::sparql {

/// Renders an expression as SPARQL text (fully parenthesized).
std::string ExprToString(const Expr& expr);

/// Renders a group graph pattern, including nested blocks, as the text
/// between (and including) its braces.
std::string GraphPatternToString(const GraphPattern& pattern);

/// Renders a complete query as SPARQL text with absolute IRIs (no PREFIX
/// declarations). The output round-trips through ParseQuery.
///
/// Federated engines use this to ship subqueries to endpoints, so the
/// serialized byte count is what the network simulator charges for a
/// request.
std::string QueryToString(const Query& query);

}  // namespace lusail::sparql

#endif  // LUSAIL_SPARQL_SERIALIZER_H_
