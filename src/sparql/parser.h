#ifndef LUSAIL_SPARQL_PARSER_H_
#define LUSAIL_SPARQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sparql/ast.h"

namespace lusail::sparql {

/// Parses SPARQL query text into a Query AST.
///
/// Supported subset (everything Lusail, the baselines, and the paper's
/// benchmark queries need):
///   PREFIX declarations; SELECT [DISTINCT] (*, var list, or
///   (COUNT(*|[DISTINCT] ?v) AS ?alias)); ASK; basic graph patterns with
///   ';' / ',' abbreviations and the 'a' keyword; FILTER with comparison /
///   logical / arithmetic operators and BOUND, STR, LANG, DATATYPE,
///   isIRI, isLiteral, isBlank, REGEX (substring semantics), CONTAINS,
///   STRSTARTS, sameTerm; FILTER [NOT] EXISTS { ... } including a nested
///   SELECT inside the braces (the projection of such a nested SELECT is
///   ignored — only emptiness matters, per Lusail's check queries);
///   OPTIONAL { ... }; { A } UNION { B } UNION ...; VALUES blocks (single
///   variable and tuple forms, UNDEF); LIMIT / OFFSET.
///
/// Unsupported constructs return Status::Unsupported or ParseError.
Result<Query> ParseQuery(std::string_view text);

}  // namespace lusail::sparql

#endif  // LUSAIL_SPARQL_PARSER_H_
