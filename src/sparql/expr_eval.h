#ifndef LUSAIL_SPARQL_EXPR_EVAL_H_
#define LUSAIL_SPARQL_EXPR_EVAL_H_

#include <functional>
#include <optional>
#include <string>

#include "rdf/term.h"
#include "sparql/ast.h"
#include "sparql/result_table.h"

namespace lusail::sparql {

/// Resolves a variable name to its bound term, or nullptr when unbound.
using VarLookup = std::function<const rdf::Term*(const std::string&)>;

/// Evaluates `expr` to a term value under SPARQL semantics. Returns
/// std::nullopt on a type error or unbound variable (SPARQL "error"
/// value); BOUND() is the only operator that observes unboundness
/// directly.
std::optional<rdf::Term> EvalExpr(const Expr& expr, const VarLookup& lookup);

/// Effective boolean value of `expr` under `lookup`. Errors coerce to
/// false, matching FILTER semantics.
bool EvalFilter(const Expr& expr, const VarLookup& lookup);

/// Total order over optional terms for ORDER BY: unbound < blank nodes <
/// IRIs < literals; numeric literals compare by value, everything else by
/// lexical form (SPARQL ordering semantics for the implemented subset).
int CompareForOrder(const std::optional<rdf::Term>& a,
                    const std::optional<rdf::Term>& b);

/// Stable-sorts `table`'s rows by the ORDER BY keys (variables resolved
/// by name; keys naming absent columns are ignored).
void SortRows(ResultTable* table, const std::vector<OrderKey>& keys);

}  // namespace lusail::sparql

#endif  // LUSAIL_SPARQL_EXPR_EVAL_H_
