#include "sparql/serializer.h"

namespace lusail::sparql {

namespace {

const char* BinaryOpSymbol(ExprOp op) {
  switch (op) {
    case ExprOp::kAnd:
      return "&&";
    case ExprOp::kOr:
      return "||";
    case ExprOp::kEq:
      return "=";
    case ExprOp::kNe:
      return "!=";
    case ExprOp::kLt:
      return "<";
    case ExprOp::kLe:
      return "<=";
    case ExprOp::kGt:
      return ">";
    case ExprOp::kGe:
      return ">=";
    case ExprOp::kAdd:
      return "+";
    case ExprOp::kSub:
      return "-";
    case ExprOp::kMul:
      return "*";
    case ExprOp::kDiv:
      return "/";
    default:
      return nullptr;
  }
}

const char* FunctionName(ExprOp op) {
  switch (op) {
    case ExprOp::kBound:
      return "BOUND";
    case ExprOp::kStr:
      return "STR";
    case ExprOp::kLang:
      return "LANG";
    case ExprOp::kDatatype:
      return "DATATYPE";
    case ExprOp::kIsIri:
      return "isIRI";
    case ExprOp::kIsLiteral:
      return "isLiteral";
    case ExprOp::kIsBlank:
      return "isBlank";
    case ExprOp::kRegex:
      return "REGEX";
    case ExprOp::kContains:
      return "CONTAINS";
    case ExprOp::kStrStarts:
      return "STRSTARTS";
    case ExprOp::kSameTerm:
      return "sameTerm";
    default:
      return nullptr;
  }
}

void AppendPattern(const GraphPattern& pattern, std::string* out);

void AppendValues(const ValuesClause& vc, std::string* out) {
  out->append("VALUES ");
  bool tuple_form = vc.vars.size() != 1;
  if (tuple_form) {
    out->append("(");
    for (size_t i = 0; i < vc.vars.size(); ++i) {
      if (i > 0) out->append(" ");
      out->append(vc.vars[i].ToString());
    }
    out->append(")");
  } else {
    out->append(vc.vars[0].ToString());
  }
  out->append(" { ");
  for (const auto& row : vc.rows) {
    if (tuple_form) out->append("(");
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out->append(" ");
      out->append(row[i].has_value() ? row[i]->ToString() : "UNDEF");
    }
    if (tuple_form) out->append(")");
    out->append(" ");
  }
  out->append("}");
}

void AppendPattern(const GraphPattern& pattern, std::string* out) {
  out->append("{ ");
  for (const ValuesClause& vc : pattern.values) {
    AppendValues(vc, out);
    out->append(" ");
  }
  for (const TriplePattern& tp : pattern.triples) {
    out->append(tp.ToString());
    out->append(" . ");
  }
  for (const auto& chain : pattern.unions) {
    for (size_t i = 0; i < chain.size(); ++i) {
      if (i > 0) out->append(" UNION ");
      AppendPattern(chain[i], out);
    }
    out->append(" ");
  }
  for (const GraphPattern& opt : pattern.optionals) {
    out->append("OPTIONAL ");
    AppendPattern(opt, out);
    out->append(" ");
  }
  for (const Expr& f : pattern.filters) {
    out->append("FILTER (");
    out->append(ExprToString(f));
    out->append(") ");
  }
  for (const auto& ef : pattern.exists_filters) {
    out->append(ef.negated ? "FILTER NOT EXISTS " : "FILTER EXISTS ");
    AppendPattern(ef.pattern, out);
    out->append(" ");
  }
  out->append("}");
}

}  // namespace

std::string ExprToString(const Expr& expr) {
  switch (expr.op) {
    case ExprOp::kVar:
      return expr.var.ToString();
    case ExprOp::kConst:
      return expr.constant.ToString();
    case ExprOp::kNot:
      return "(! " + ExprToString(expr.args[0]) + ")";
    default:
      break;
  }
  if (const char* sym = BinaryOpSymbol(expr.op)) {
    return "(" + ExprToString(expr.args[0]) + " " + sym + " " +
           ExprToString(expr.args[1]) + ")";
  }
  const char* fn = FunctionName(expr.op);
  std::string out = fn ? fn : "UNKNOWN";
  out += "(";
  for (size_t i = 0; i < expr.args.size(); ++i) {
    if (i > 0) out += ", ";
    out += ExprToString(expr.args[i]);
  }
  out += ")";
  return out;
}

std::string GraphPatternToString(const GraphPattern& pattern) {
  std::string out;
  AppendPattern(pattern, &out);
  return out;
}

std::string QueryToString(const Query& query) {
  std::string out;
  if (query.form == QueryForm::kAsk) {
    out = "ASK ";
  } else {
    out = "SELECT ";
    if (query.distinct) out += "DISTINCT ";
    if (query.select_all) {
      out += "* ";
    } else {
      for (const Variable& v : query.projection) {
        out += v.ToString();
        out += " ";
      }
    }
    if (query.aggregate.has_value()) {
      const CountAggregate& agg = *query.aggregate;
      out += "(COUNT(";
      if (!agg.var.has_value()) {
        out += "*";
      } else {
        if (agg.distinct) out += "DISTINCT ";
        out += agg.var->ToString();
      }
      out += ") AS " + agg.alias.ToString() + ") ";
    }
    out += "WHERE ";
  }
  out += GraphPatternToString(query.where);
  if (!query.order_by.empty()) {
    out += " ORDER BY";
    for (const OrderKey& key : query.order_by) {
      out += key.descending ? " DESC(" : " ASC(";
      out += key.var.ToString();
      out += ")";
    }
  }
  if (query.limit.has_value()) {
    out += " LIMIT " + std::to_string(*query.limit);
  }
  if (query.offset.has_value()) {
    out += " OFFSET " + std::to_string(*query.offset);
  }
  return out;
}

}  // namespace lusail::sparql
