#ifndef LUSAIL_SPARQL_EVALUATOR_H_
#define LUSAIL_SPARQL_EVALUATOR_H_

#include "common/cancel.h"
#include "common/status.h"
#include "sparql/ast.h"
#include "sparql/result_table.h"
#include "store/triple_store.h"

namespace lusail::sparql {

/// Executes parsed queries against one (frozen) TripleStore. This is the
/// query engine running *inside* each SPARQL endpoint; federated engines
/// never call it directly — they go through the endpoint's text-query
/// interface.
///
/// Evaluation strategy: selectivity-ordered index nested-loop joins over
/// the store's covering indexes for the basic graph pattern, with filters
/// pushed to the earliest step at which their variables are bound; then
/// UNION (seeded per partial solution), OPTIONAL (left outer join),
/// FILTER [NOT] EXISTS (correlated emptiness probe with early exit), and
/// remaining filters; finally DISTINCT / COUNT / LIMIT / OFFSET.
class Evaluator {
 public:
  /// The store must outlive the evaluator and be frozen.
  explicit Evaluator(const store::TripleStore* store) : store_(store) {}

  /// Runs a SELECT query and materializes the result table. ASK queries
  /// are also accepted (the table has zero columns and 0 or 1 rows).
  /// The token is polled every ~1k join iterations (amortized clock
  /// cost); once it fires, evaluation unwinds with kTimeout and no
  /// result rows are produced.
  Result<ResultTable> Execute(const Query& query,
                              const CancelToken& cancel = {}) const;

  /// Runs a query as ASK: true iff at least one solution exists. Stops at
  /// the first solution.
  Result<bool> Ask(const Query& query) const;

 private:
  const store::TripleStore* store_;
};

}  // namespace lusail::sparql

#endif  // LUSAIL_SPARQL_EVALUATOR_H_
