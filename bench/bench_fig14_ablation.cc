// Reproduces Figure 14: the effect of LADE and SAPE. For two
// medium/high-complexity queries from each benchmark (QFed, LUBM,
// LargeRDFBench), compares FedX (baseline), Lusail with LADE only (all
// subqueries concurrent, join at the federator), and full Lusail
// (LADE + SAPE). Expected shape (paper): LADE alone already beats FedX by
// up to three orders of magnitude; adding SAPE always improves on LADE
// alone.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "workload/lrb_generator.h"
#include "workload/lubm_generator.h"
#include "workload/qfed_generator.h"

int main(int argc, char** argv) {
  using namespace lusail;
  std::printf(
      "Figure 14 reproduction: FedX vs Lusail(LADE) vs Lusail(LADE+SAPE)\n"
      "on two queries from each benchmark (local cluster).\n\n");

  static std::vector<std::unique_ptr<bench::EngineSet>> keep_alive;
  auto register_pair = [](const std::string& benchmark_name,
                          bench::EngineSet* engines,
                          const std::string& label,
                          const std::string& query) {
    std::vector<fed::FederatedEngine*> lineup = {
        engines->fedx.get(), engines->lusail_lade_only.get(),
        engines->lusail.get()};
    bench::RegisterQueryBenchmarks("Fig14/" + benchmark_name, label, query,
                                   lineup);
  };

  {
    workload::QFedGenerator qfed{workload::QFedConfig()};
    auto engines = std::make_unique<bench::EngineSet>(
        bench::EngineSet::Create(qfed.GenerateAll(),
                                 bench::LocalClusterLatency()));
    register_pair("QFed", engines.get(), "C2P2B",
                  workload::QFedGenerator::C2P2B());
    register_pair("QFed", engines.get(), "C2P2BO",
                  workload::QFedGenerator::C2P2BO());
    keep_alive.push_back(std::move(engines));
  }
  {
    workload::LubmGenerator lubm(workload::LubmConfig::Bench());
    auto engines = std::make_unique<bench::EngineSet>(
        bench::EngineSet::Create(lubm.GenerateAll(),
                                 bench::LocalClusterLatency()));
    register_pair("LUBM", engines.get(), "Q1", workload::LubmGenerator::Q1());
    register_pair("LUBM", engines.get(), "Q4", workload::LubmGenerator::Q4());
    keep_alive.push_back(std::move(engines));
  }
  {
    workload::LrbGenerator lrb{workload::LrbConfig()};
    auto engines = std::make_unique<bench::EngineSet>(
        bench::EngineSet::Create(lrb.GenerateAll(),
                                 bench::LocalClusterLatency()));
    std::string c1, b4;
    for (const auto& [l, q] : workload::LrbGenerator::ComplexQueries()) {
      if (l == "C1") c1 = q;
    }
    for (const auto& [l, q] : workload::LrbGenerator::LargeQueries()) {
      if (l == "B4") b4 = q;
    }
    register_pair("LRB", engines.get(), "C1", c1);
    register_pair("LRB", engines.get(), "B4", b4);
    keep_alive.push_back(std::move(engines));
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
