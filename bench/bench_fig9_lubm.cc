// Reproduces Figure 9(a,b): LUBM queries Q1-Q4 on 2 and 4 university
// endpoints, local cluster. Expected shape (paper): identical schemas
// defeat FedX/HiBISCuS exclusive groups, so they evaluate one triple
// pattern at a time (request explosion); Lusail ships Q1/Q2 as a single
// subquery per endpoint and is up to three orders of magnitude faster on
// Q1/Q2/Q4.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "workload/lubm_generator.h"

int main(int argc, char** argv) {
  using namespace lusail;
  std::printf(
      "Figure 9 reproduction: LUBM Q1-Q4 on 2 and 4 endpoints (local).\n"
      "Watch the 'requests' counter: FedX-style bound joins explode while\n"
      "Lusail sends whole subqueries.\n\n");
  std::vector<std::unique_ptr<bench::EngineSet>> keep_alive;
  for (int universities : {2, 4}) {
    workload::LubmConfig config = workload::LubmConfig::Bench();
    config.num_universities = universities;
    workload::LubmGenerator generator(config);
    auto engines = std::make_unique<bench::EngineSet>(
        bench::EngineSet::Create(generator.GenerateAll(),
                                 bench::LocalClusterLatency()));
    std::string figure =
        "Fig9/" + std::to_string(universities) + "endpoints";
    for (const auto& [label, query] :
         workload::LubmGenerator::BenchmarkQueries()) {
      bench::RegisterQueryBenchmarks(figure, label, query,
                                     engines->ComparisonEngines());
    }
    keep_alive.push_back(std::move(engines));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
