// Streaming result plane microbenchmark: one LUBM endpoint served over
// loopback HTTP, queried with a large-answer scan through the buffered
// path and the chunked streaming path. Reports time-to-first-row next to
// total time (the streaming plane's whole point: the first batch prints
// while the server is still producing) and checks row counts agree.
// Dumps BENCH_stream_*.json with first_row_ms populated.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/id_table.h"
#include "net/sparql_endpoint.h"
#include "rpc/http_server.h"
#include "rpc/http_sparql_endpoint.h"
#include "store/triple_store.h"
#include "workload/lubm_generator.h"

namespace lusail {
namespace {

/// A large-answer scan (every triple in the endpoint): enough rows that
/// many chunks stream while evaluation and serialization still run.
const char kScanQuery[] = "SELECT ?s ?p ?o WHERE { ?s ?p ?o . }";

/// One in-process LUBM endpoint behind a loopback HttpServer, plus the
/// HTTP client endpoint pointed at it.
struct StreamFixture {
  std::unique_ptr<rpc::HttpServer> server;
  std::shared_ptr<rpc::HttpSparqlEndpoint> client;
};

StreamFixture* Fixture() {
  static std::unique_ptr<StreamFixture> fixture;
  if (fixture != nullptr) return fixture.get();
  fixture = std::make_unique<StreamFixture>();

  workload::LubmConfig config = workload::LubmConfig::Small();
  std::vector<workload::EndpointSpec> specs =
      workload::LubmGenerator(config).GenerateAll();
  auto store = std::make_unique<store::TripleStore>();
  for (const auto& spec : specs) {
    for (const auto& triple : spec.triples) store->Add(triple);
  }
  store->Freeze();
  auto backend = std::make_shared<net::SparqlEndpoint>(
      "bench", std::move(store), net::LatencyModel::None());

  rpc::HttpServerOptions options;
  options.port = 0;
  options.num_threads = 2;
  options.server_name = "bench-stream";
  fixture->server = std::make_unique<rpc::HttpServer>(backend, options);
  Status started = fixture->server->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "bench_stream: cannot start server: %s\n",
                 started.ToString().c_str());
    std::exit(1);
  }
  fixture->client = std::make_shared<rpc::HttpSparqlEndpoint>(
      "bench", "127.0.0.1", fixture->server->port());
  return fixture.get();
}

/// Buffered baseline: full SRJ response parsed at once.
void BM_BufferedScan(benchmark::State& state) {
  StreamFixture* fixture = Fixture();
  double rows = 0;
  fed::ExecutionProfile profile;
  for (auto _ : state) {
    Stopwatch sw;
    auto response = fixture->client->Query(kScanQuery);
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return;
    }
    rows = static_cast<double>(response->RowCount());
    profile.total_ms = sw.ElapsedMillis();
    // Buffered: the first row is only usable when everything arrived.
    profile.first_row_ms = profile.total_ms;
    profile.rows_received = response->RowCount();
    profile.bytes_received = response->response_bytes;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = rows;
  state.counters["firstRowMs"] = profile.first_row_ms;
  bench::DumpBenchMetrics("stream/buffered", profile, rows, 0, 0);
}
BENCHMARK(BM_BufferedScan)->Unit(benchmark::kMillisecond)->Iterations(3);

/// Chunked streaming path: rows decoded batch-by-batch as chunks arrive;
/// firstRowMs is when the first batch reached the sink.
void BM_StreamedScan(benchmark::State& state) {
  StreamFixture* fixture = Fixture();
  double rows = 0;
  fed::ExecutionProfile profile;
  for (auto _ : state) {
    Stopwatch sw;
    double first_row_ms = 0.0;
    uint64_t delivered = 0;
    net::StreamOptions options;
    auto summary = fixture->client->QueryStreaming(
        kScanQuery, CancelToken(), options,
        [&](net::StreamBatch&& batch) -> Status {
          if (batch.NumRows() > 0 && first_row_ms == 0.0) {
            first_row_ms = sw.ElapsedMillis();
          }
          delivered += batch.NumRows();
          return Status::OK();
        });
    if (!summary.ok()) {
      state.SkipWithError(summary.status().ToString().c_str());
      return;
    }
    rows = static_cast<double>(delivered);
    profile.total_ms = sw.ElapsedMillis();
    profile.first_row_ms = first_row_ms;
    profile.rows_received = delivered;
    profile.bytes_received = summary->response.response_bytes;
    benchmark::DoNotOptimize(delivered);
  }
  state.counters["rows"] = rows;
  state.counters["firstRowMs"] = profile.first_row_ms;
  state.counters["totalMs"] = profile.total_ms;
  bench::DumpBenchMetrics("stream/streamed", profile, rows, 0, 0);
}
BENCHMARK(BM_StreamedScan)->Unit(benchmark::kMillisecond)->Iterations(3);

/// Streaming with a row budget: the client half-closes once satisfied,
/// so a tiny budget on a big answer should cost a fraction of the full
/// stream.
void BM_StreamedBudget(benchmark::State& state) {
  StreamFixture* fixture = Fixture();
  double rows = 0;
  for (auto _ : state) {
    net::StreamOptions options;
    options.max_rows = static_cast<uint64_t>(state.range(0));
    uint64_t delivered = 0;
    auto summary = fixture->client->QueryStreaming(
        kScanQuery, CancelToken(), options,
        [&](net::StreamBatch&& batch) -> Status {
          delivered += batch.NumRows();
          return Status::OK();
        });
    if (!summary.ok()) {
      state.SkipWithError(summary.status().ToString().c_str());
      return;
    }
    rows = static_cast<double>(delivered);
    benchmark::DoNotOptimize(delivered);
  }
  state.counters["rows"] = rows;
}
BENCHMARK(BM_StreamedBudget)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace lusail

BENCHMARK_MAIN();
