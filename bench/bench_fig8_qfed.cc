// Reproduces Figure 8: QFed query performance on a local cluster.
// Series: Lusail vs FedX vs FedX+HiBISCuS vs SPLENDID over the C2P2
// family. Expected shape (paper): Lusail fastest everywhere; filter
// variants (F) are fast for everyone; big-literal variants (B*) blow up
// the baselines' communication (timeouts in the paper).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "workload/qfed_generator.h"

int main(int argc, char** argv) {
  using namespace lusail;
  std::printf(
      "Figure 8 reproduction: QFed (4 endpoints, local-cluster latency).\n"
      "Expected shape: Lusail fastest on every query; baselines degrade on\n"
      "big-literal (B*) variants via communication volume and requests.\n\n");
  workload::QFedGenerator generator{workload::QFedConfig()};
  auto engines = bench::EngineSet::Create(generator.GenerateAll(),
                                          bench::LocalClusterLatency());
  for (const auto& [label, query] :
       workload::QFedGenerator::BenchmarkQueries()) {
    bench::RegisterQueryBenchmarks("Fig8", label, query,
                                   engines.ComparisonEngines());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
