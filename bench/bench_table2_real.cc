// Reproduces Table 2: query runtimes on real, independently deployed
// endpoints — Bio2RDF log queries R1-R5 and the LargeRDFBench subset
// S3, S4, S7, S10, S14, C9; Lusail vs FedX. The "real endpoints" are
// simulated as the LRB federation under the geo-distributed latency model
// (independent deployments, WAN latency). Expected shape (paper): FedX
// wins the small selective queries (S3, S4), Lusail wins everything else
// by 1-2 orders of magnitude, and FedX fails some R queries outright.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "workload/lrb_generator.h"

int main(int argc, char** argv) {
  using namespace lusail;
  std::printf(
      "Table 2 reproduction: Bio2RDF-style R1-R5 and LargeRDFBench\n"
      "S3,S4,S7,S10,S14,C9 on independently deployed endpoints (geo\n"
      "latency). Engines: Lusail vs FedX.\n\n");
  workload::LrbGenerator generator{workload::LrbConfig()};
  auto engines = bench::EngineSet::Create(generator.GenerateAll(),
                                          bench::GeoLatency());
  std::vector<fed::FederatedEngine*> lineup = {engines.lusail.get(),
                                               engines.fedx.get()};

  for (const auto& [label, query] : workload::LrbGenerator::Bio2RdfQueries()) {
    bench::RegisterQueryBenchmarks("Table2/Bio2RDF", label, query, lineup);
  }

  std::map<std::string, std::string> lrb_queries;
  for (const auto& [label, query] : workload::LrbGenerator::SimpleQueries()) {
    lrb_queries[label] = query;
  }
  for (const auto& [label, query] : workload::LrbGenerator::ComplexQueries()) {
    lrb_queries[label] = query;
  }
  for (const char* label : {"S3", "S4", "S7", "S10", "S14", "C9"}) {
    bench::RegisterQueryBenchmarks("Table2/LRB", label, lrb_queries[label],
                                   lineup);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
